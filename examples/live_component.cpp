// Scenario: the online module running *live* — a ComponentRuntime worker
// serving CF requests through Algorithm 1 under a real wall-clock deadline
// while an open-loop client floods it beyond its exact-processing
// capacity. The latency histogram stays pinned near the deadline and the
// improvement work degrades gracefully (fewer ranked sets per request),
// exactly the trade the paper engineers.
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/stats.h"
#include "core/runtime.h"
#include "services/recommender/component.h"
#include "workload/ratings.h"

int main() {
  using namespace at;

  workload::RatingConfig wcfg;
  wcfg.num_components = 1;
  wcfg.users_per_component = 1200;
  wcfg.num_items = 400;
  wcfg.num_clusters = 16;
  workload::RatingWorkloadGen gen(wcfg);
  auto wl = gen.generate(60, 2);

  synopsis::BuildConfig bcfg;
  bcfg.svd.rank = 3;
  bcfg.size_ratio = 40.0;
  reco::RecommenderComponent component(std::move(wl.subsets[0]), bcfg);
  std::printf("component: %zu users, %zu aggregated users\n",
              component.num_users(), component.num_groups());

  core::RuntimeConfig rcfg;
  rcfg.algorithm.deadline_ms = 20.0;
  rcfg.queue_capacity = 256;
  core::ComponentRuntime runtime(rcfg);

  std::atomic<std::uint64_t> sets_total{0};
  std::atomic<std::uint64_t> deadline_stops{0};
  const std::size_t n_requests = 400;
  std::size_t accepted = 0;

  common::Stopwatch wall;
  for (std::size_t i = 0; i < n_requests; ++i) {
    const auto& request = wl.requests[i % wl.requests.size()];
    // The per-request state lives in a shared_ptr captured by the
    // callbacks; analyze() itself is the stage the deadline meters.
    auto work = std::make_shared<reco::CfComponentWork>();
    const bool ok = runtime.submit(
        [&component, &request, work] {
          *work = component.analyze(request);
          return work->correlations;
        },
        [work](std::size_t group) {
          // Improvement step: swap the group's approximation for its
          // members' exact contributions (kept artificially slow to make
          // the deadline visible at this tiny scale).
          double sink = 0.0;
          for (int spin = 0; spin < 20000; ++spin) sink += spin;
          // Defeat optimization without deprecated volatile compound ops.
          asm volatile("" : : "r,m"(sink) : "memory");
          (void)group;
        },
        [&](const core::JobResult& r) {
          sets_total += r.trace.sets_processed;
          deadline_stops += r.trace.stopped_by_deadline ? 1 : 0;
        });
    accepted += ok;
    // Open-loop arrival gap shorter than the service time: overload.
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  runtime.shutdown();

  const auto stats = runtime.stats();
  const auto latency = runtime.latency_snapshot();
  std::printf(
      "submitted %zu, accepted %zu, shed %zu; wall time %.2f s\n",
      n_requests, static_cast<std::size_t>(stats.accepted),
      static_cast<std::size_t>(stats.rejected), wall.elapsed_seconds());
  std::printf(
      "latency p50 %.1f ms | p99 %.1f ms | p99.9 %.1f ms (deadline %.0f)\n",
      latency.percentile(50), latency.percentile(99),
      latency.percentile(99.9), rcfg.algorithm.deadline_ms);
  std::printf(
      "mean ranked sets per request: %.2f of %zu; %.0f%% of requests were "
      "cut by the deadline\n",
      static_cast<double>(sets_total.load()) /
          static_cast<double>(stats.completed),
      component.num_groups(),
      100.0 * static_cast<double>(deadline_stops.load()) /
          static_cast<double>(stats.completed));
  return 0;
}
