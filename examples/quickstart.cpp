// Quickstart: the AccuracyTrader pipeline end to end on one component, in
// ~80 lines.
//
//  1. Build a subset of input data (sparse rows).
//  2. Offline: create the synopsis (SVD reduction -> R-tree grouping ->
//     information aggregation).
//  3. Online: answer a request with Algorithm 1 under a real wall-clock
//     deadline, watching the result improve as ranked sets are processed.
#include <cstdio>

#include "core/algorithm1.h"
#include "services/recommender/component.h"
#include "services/recommender/service.h"
#include "workload/ratings.h"

int main() {
  using namespace at;

  // --- 1. Input data: one component's slice of the user-item matrix -------
  workload::RatingConfig wcfg;
  wcfg.num_components = 1;
  wcfg.users_per_component = 400;
  wcfg.num_items = 200;
  wcfg.num_clusters = 12;
  workload::RatingWorkloadGen gen(wcfg);
  auto wl = gen.generate(/*active users*/ 1, /*targets each*/ 1);

  // --- 2. Offline synopsis management --------------------------------------
  synopsis::BuildConfig bcfg;
  bcfg.svd.rank = 3;        // reduce to 3 dimensions, as in the paper
  bcfg.size_ratio = 25.0;   // ~25 users per aggregated user
  reco::RecommenderComponent component(std::move(wl.subsets[0]), bcfg);
  std::printf("synopsis: %zu users -> %zu aggregated users (%.1fx smaller)\n",
              component.num_users(), component.num_groups(),
              static_cast<double>(component.num_users()) /
                  static_cast<double>(component.num_groups()));

  // --- 3. Online: Algorithm 1 with a wall-clock deadline -------------------
  const reco::CfRequest& request = wl.requests.at(0);
  const double actual = wl.actuals.at(0);

  const auto work = component.analyze(request);
  reco::CfPartial partial = work.stage1();  // initial synopsis-only result

  core::Algorithm1Config acfg;
  acfg.deadline_ms = 5.0;  // aggressive deadline to show the cutoff
  core::WallClock clock;
  std::size_t processed = 0;
  const auto trace = core::run_algorithm1(
      acfg, clock,
      [&] { return work.correlations; },
      [&](std::size_t group) {
        // Replace the group's aggregated approximation with its members'
        // exact contributions.
        partial.subtract(work.agg_by_group[group]);
        partial.merge(work.real_by_group[group]);
        ++processed;
      });

  const double prediction = reco::predict(request, partial, 1.0, 5.0);
  const double exact = reco::predict(request, work.exact(), 1.0, 5.0);
  std::printf(
      "deadline %.1f ms: processed %zu/%zu ranked sets in %.2f ms "
      "(stopped by deadline: %s)\n",
      acfg.deadline_ms, trace.sets_processed, component.num_groups(),
      trace.elapsed_ms, trace.stopped_by_deadline ? "yes" : "no");
  std::printf("prediction %.3f | exact %.3f | actual %.1f\n", prediction,
              exact, actual);
  return 0;
}
