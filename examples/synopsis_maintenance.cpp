// Scenario: keeping a synopsis fresh while the input data churns — the
// paper's offline synopsis updating module (§2.2, Fig. 3) in action.
//
// A search shard receives waves of new pages and content edits; after each
// wave the incremental updater reconciles the synopsis and reports how
// many aggregated points actually had to be recomputed.
#include <cstdio>

#include "common/rng.h"
#include "services/search/component.h"
#include "workload/corpus.h"

int main() {
  using namespace at;

  workload::CorpusConfig ccfg;
  ccfg.num_components = 1;
  ccfg.docs_per_component = 600;
  ccfg.vocab_size = 3000;
  ccfg.num_topics = 16;
  workload::CorpusGen gen(ccfg);
  auto wl = gen.generate(0);

  synopsis::BuildConfig bcfg;
  bcfg.svd.rank = 3;
  bcfg.size_ratio = 15.0;
  search::SearchComponent shard(std::move(wl.shards[0]), 0, bcfg);
  std::printf("initial: %zu pages in %zu aggregated pages\n",
              shard.num_docs(), shard.num_groups());

  common::Rng rng(2024);
  for (int wave = 1; wave <= 5; ++wave) {
    synopsis::UpdateBatch batch;
    // 2% new pages crawled...
    const auto added = shard.num_docs() / 50;
    for (std::size_t i = 0; i < added; ++i)
      batch.added.push_back(gen.sample_doc(rng));
    // ...and 1% of existing pages edited.
    const auto changed = shard.num_docs() / 100;
    for (std::size_t i = 0; i < changed; ++i) {
      batch.changed.emplace_back(
          static_cast<std::uint32_t>(rng.uniform_index(shard.num_docs())),
          gen.sample_doc(rng));
    }

    const auto report = shard.update(batch);
    std::printf(
        "wave %d: +%zu pages, ~%zu edited -> %zu/%zu groups re-aggregated "
        "(%zu reused) in %.3f s\n",
        wave, report.points_added, report.points_changed,
        report.dirty_groups, report.groups_after, report.clean_groups,
        report.seconds);
  }
  std::printf("final: %zu pages in %zu aggregated pages\n", shard.num_docs(),
              shard.num_groups());
  return 0;
}
