// Scenario: a small text search engine (the paper's second motivating
// service) built from real strings through the tokenizer/vocabulary
// pipeline, sharded over components, answering queries through
// AccuracyTrader's two-stage processing with a wall-clock deadline.
#include <cstdio>
#include <string>
#include <vector>

#include "core/algorithm1.h"
#include "services/search/service.h"
#include "services/search/text.h"

namespace {

// A tiny hand-written "web" of documents across three topics.
const char* kDocs[] = {
    "the cache hierarchy hides memory latency from the processor core",
    "tail latency in distributed systems grows with fan out and queueing",
    "a web search engine ranks pages by similarity to the query terms",
    "queueing delay dominates service latency under heavy load",
    "inverted index postings map each term to the documents containing it",
    "processor cores share the last level cache and memory bandwidth",
    "approximate processing trades result accuracy for latency reduction",
    "the recommender system predicts ratings from similar minded users",
    "collaborative filtering scans the user item rating matrix",
    "the synopsis aggregates similar data points to answer quickly",
    "replicas and request reissue cut stragglers in distributed storage",
    "page rank and term frequency drive the ranking of web pages",
    "memory bandwidth limits throughput of sparse matrix kernels",
    "deadline driven schedulers skip work that cannot finish in time",
    "users with similar taste rate the same items alike",
    "sharded indexes spread the corpus across parallel components",
};

}  // namespace

int main() {
  using namespace at;

  // Build the vocabulary and shard the corpus over 2 components.
  search::Vocabulary vocab;
  std::vector<synopsis::SparseVector> rows;
  for (const char* doc : kDocs) rows.push_back(text_to_counts(doc, vocab));

  synopsis::BuildConfig bcfg;
  bcfg.svd.rank = 2;
  bcfg.svd.epochs_per_dim = 40;
  bcfg.size_ratio = 4.0;  // tiny corpus -> small groups
  bcfg.min_groups = 2;

  std::vector<search::SearchComponent> comps;
  const std::size_t shard_size = rows.size() / 2;
  std::uint64_t base = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    synopsis::SparseRows shard(vocab.size());
    const std::size_t lo = s * shard_size;
    const std::size_t hi = (s == 1) ? rows.size() : lo + shard_size;
    for (std::size_t d = lo; d < hi; ++d) shard.add_row(rows[d]);
    comps.emplace_back(std::move(shard), base, bcfg);
    base += hi - lo;
  }
  search::SearchService service(std::move(comps), /*k=*/3);

  const std::string queries[] = {
      "tail latency under load",
      "cache memory bandwidth",
      "similar users rating items",
  };

  for (const auto& q : queries) {
    search::SearchRequest request{search::text_to_terms(q, vocab)};
    std::printf("query: \"%s\"\n", q.c_str());

    // Exact answer for reference.
    const auto exact = service.exact_topk(request);

    // AccuracyTrader per component under a wall-clock deadline.
    std::vector<core::ComponentOutcome> outcomes(service.num_components());
    for (std::size_t c = 0; c < service.num_components(); ++c) {
      const auto work = service.component(c).analyze(request);
      core::Algorithm1Config acfg;
      acfg.deadline_ms = 2.0;
      core::WallClock clock;
      const auto trace = core::run_algorithm1(
          acfg, clock, [&] { return work.correlations; },
          [&](std::size_t) { /* member scoring already in `work` */ });
      outcomes[c].sets = static_cast<std::uint32_t>(trace.sets_processed);
    }
    const auto approx =
        service.retrieve(request, core::Technique::kAccuracyTrader, outcomes);

    std::printf("  exact top-%zu:\n", exact.size());
    for (const auto& d : exact)
      std::printf("    [%5.2f] %s\n", d.score, kDocs[d.doc]);
    std::printf("  AccuracyTrader top-%zu (overlap %.0f%%):\n", approx.size(),
                100.0 * search::topk_overlap(approx, exact));
    for (const auto& d : approx)
      std::printf("    [%5.2f] %s\n", d.score, kDocs[d.doc]);
    std::printf("\n");
  }
  return 0;
}
