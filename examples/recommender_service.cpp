// Scenario: an e-commerce recommender (the paper's first motivating
// service) riding out a morning load spike.
//
// A fan-out CF service over 8 components is driven through three load
// levels; at each level the four techniques are compared on the two
// axes the paper trades against each other: 99.9th-percentile component
// latency and prediction accuracy loss.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "services/recommender/service.h"
#include "sim/arrivals.h"
#include "sim/cluster.h"
#include "workload/ratings.h"

int main() {
  using namespace at;

  // Build the service: 8 components x 400 users.
  workload::RatingConfig wcfg;
  wcfg.num_components = 8;
  wcfg.users_per_component = 400;
  wcfg.num_items = 250;
  wcfg.num_clusters = 16;
  workload::RatingWorkloadGen gen(wcfg);
  auto wl = gen.generate(150, 2);

  synopsis::BuildConfig bcfg;
  bcfg.svd.rank = 3;
  bcfg.size_ratio = 25.0;
  std::vector<reco::RecommenderComponent> comps;
  for (auto& subset : wl.subsets) comps.emplace_back(std::move(subset), bcfg);
  reco::CfService service(std::move(comps), wcfg.min_rating, wcfg.max_rating);

  // Simulator: exact scan ~75 ms, deadline 100 ms, interference on.
  sim::SimConfig scfg;
  scfg.num_components = service.num_components();
  scfg.num_nodes = 4;
  scfg.deadline_ms = 100.0;
  scfg.us_per_point = 75.0 * 1e3 / wcfg.users_per_component;
  scfg.session_length_s = 1e9;
  std::vector<sim::ComponentProfile> profiles;
  for (std::size_t c = 0; c < service.num_components(); ++c) {
    profiles.push_back(
        {static_cast<std::uint32_t>(service.component(c).num_users()),
         service.component(c).group_sizes()});
  }
  sim::ClusterSim sim(scfg, profiles);

  std::printf("CF service: %zu components, exact scan %.0f ms, deadline "
              "%.0f ms\n\n",
              service.num_components(), sim.mean_exact_service_ms(),
              scfg.deadline_ms);

  common::TableWriter table("morning spike: quiet -> busy -> overloaded");
  table.set_columns({"load (req/s)", "technique", "p99.9 latency (ms)",
                     "accuracy loss (%)"});

  for (double rate : {2.0, 12.0, 40.0}) {
    common::Rng rng(31 + static_cast<std::uint64_t>(rate));
    const auto arrivals = sim::poisson_arrivals(rate, 30.0, rng);
    for (auto tech :
         {core::Technique::kBasic, core::Technique::kRequestReissue,
          core::Technique::kPartialExecution,
          core::Technique::kAccuracyTrader}) {
      auto cfg = scfg;
      cfg.detail_every = std::max<std::size_t>(1, arrivals.size() / 200);
      sim::ClusterSim run_sim(cfg, profiles);
      const auto result = run_sim.run(tech, arrivals);

      double loss = 0.0;
      if (core::is_approximate(tech)) {
        std::vector<reco::CfRequest> reqs;
        std::vector<double> actuals;
        std::vector<std::vector<core::ComponentOutcome>> outcomes;
        std::size_t k = 0;
        for (const auto& d : result.details) {
          if (reqs.size() >= 150) break;
          reqs.push_back(wl.requests[k % wl.requests.size()]);
          actuals.push_back(wl.actuals[k % wl.actuals.size()]);
          outcomes.push_back(d.outcomes);
          ++k;
        }
        if (!reqs.empty()) {
          loss = service
                     .evaluate(reqs, actuals, tech,
                               [&outcomes](std::size_t r) {
                                 return outcomes[r];
                               })
                     .loss_pct;
        }
      }
      table.add_row({common::TableWriter::fmt(rate, 0),
                     core::to_string(tech),
                     common::TableWriter::fmt(result.p999_component_ms(), 1),
                     core::is_approximate(tech)
                         ? common::TableWriter::fmt(loss, 2)
                         : "0 (exact)"});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: under overload, exact techniques' tails explode; "
               "partial execution keeps the deadline but loses most of its "
               "accuracy; AccuracyTrader keeps both.\n";
  return 0;
}
