// Fig. 7: the full 24-hour diurnal search workload — (a) the average
// request arrival rate per hour, then the hourly 99.9th-percentile
// component latency of Basic / Request reissue / AccuracyTrader.
//
// Expected shape (paper): reissue has the lowest latency during the night
// trough (hours 2-8, light load); AccuracyTrader is lowest everywhere
// else and is the only technique that stays near the deadline through the
// daytime plateau and the evening peak.
//
// Scale note: each hour is compressed to a few minutes of simulated
// arrivals (the queueing equilibrium inside an hour is reached within the
// first minutes; simulating the full 3600 s per hour only inflates
// Basic's absolute backlog, not the ordering).
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Fig. 7",
      "(a) diurnal rate: night trough, morning ramp, daytime plateau, "
      "evening peak, post-midnight decay. (b)-(d): Basic explodes in busy "
      "hours; reissue best at hours 2-8, worse than AccuracyTrader "
      "elsewhere; AccuracyTrader pinned near 100 ms all day.");

  auto fx = make_search_fixture(12.0, 100);
  auto scfg = default_sim_config(fx);
  apply_search_imax(scfg, fx);
  scfg.session_length_s = 1e9;
  scfg.detail_every = 1u << 30;
  const workload::DiurnalProfile profile(100.0);
  const double hour_duration_s = large_scale() ? 600.0 : 120.0;

  common::TableWriter table(
      "Fig. 7 — 24-hour workload: hourly p99.9 component latency (ms)");
  table.set_columns({"hour", "mean rate (req/s)", "Basic", "Request reissue",
                     "AccuracyTrader"});

  double reissue_sum = 0.0, at_sum = 0.0;
  std::size_t at_best_hours = 0, reissue_best_hours = 0;
  for (std::size_t hour = 1; hour <= 24; ++hour) {
    common::Rng rng(7000 + hour);
    const auto arrivals = sim::nhpp_arrivals(
        [&](double t) {
          // Compress the hour: sample the rate profile across the full
          // hour but emit arrivals over hour_duration_s.
          return profile.rate_in_hour(hour, t / hour_duration_s * 3600.0);
        },
        profile.peak_rate(), hour_duration_s, rng);

    std::vector<double> p999s;
    for (auto tech :
         {core::Technique::kBasic, core::Technique::kRequestReissue,
          core::Technique::kAccuracyTrader}) {
      sim::ClusterSim sim(scfg, fx.profiles);
      p999s.push_back(sim.run(tech, arrivals).p999_component_ms());
    }
    reissue_sum += p999s[1];
    at_sum += p999s[2];
    if (p999s[2] <= p999s[1]) {
      ++at_best_hours;
    } else {
      ++reissue_best_hours;
    }
    table.add_row({std::to_string(hour),
                   common::TableWriter::fmt(profile.hourly_mean(hour), 1),
                   common::TableWriter::fmt(p999s[0], 1),
                   common::TableWriter::fmt(p999s[1], 1),
                   common::TableWriter::fmt(p999s[2], 1)});
  }
  table.print(std::cout);
  std::cout << "  AccuracyTrader best in " << at_best_hours
            << "/24 hours; reissue best in " << reissue_best_hours
            << " (paper: reissue wins only in the light hours 2-8)\n"
            << "  mean 24h p99.9 reduction vs reissue: "
            << common::TableWriter::fmt(reissue_sum / at_sum, 1)
            << "x (paper reports 42.72x for the search workload)\n";
  return 0;
}
