// Shared fixtures for the experiment-reproduction benchmarks: default
// workload scales, service construction, simulator profiles, and the glue
// that replays simulator outcomes onto the services for accuracy scoring.
//
// Scale note: the paper runs 108 components with 0.27M ratings / 0.5M
// pages each on a 30-node cluster. These benchmarks default to 16
// components with a few hundred data points each so every table/figure
// regenerates in seconds on a laptop; set AT_BENCH_SCALE=large for a
// bigger run. Shapes (who wins, by what order of magnitude, where the
// crossovers fall) are scale-stable; absolute milliseconds are not
// expected to match the paper's testbed.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sharded_executor.h"
#include "common/table.h"
#include "core/technique.h"
#include "services/recommender/service.h"
#include "services/search/service.h"
#include "sim/arrivals.h"
#include "sim/cluster.h"
#include "workload/corpus.h"
#include "workload/diurnal.h"
#include "workload/ratings.h"

namespace at::bench {

inline bool large_scale() {
  const char* s = std::getenv("AT_BENCH_SCALE");
  return s != nullptr && std::string(s) == "large";
}

/// Upper bound of the thread-count sweeps (ROADMAP scaling curves):
/// nproc, or AT_BENCH_THREADS when set (e.g. to measure oversubscription
/// past the core count).
inline std::size_t sweep_max_threads() {
  std::size_t max_threads =
      std::max(1u, std::thread::hardware_concurrency());
  if (const char* env = std::getenv("AT_BENCH_THREADS")) {
    const long n = std::atol(env);
    if (n >= 1) max_threads = static_cast<std::size_t>(n);
  }
  return max_threads;
}

/// Emits a (threads -> seconds) sweep as a JSON object: {"1": s1, ...}.
inline void write_sweep_json(
    std::ostream& os,
    const std::vector<std::pair<std::size_t, double>>& sweep) {
  os << "{";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    os << (i > 0 ? ", " : "") << "\"" << sweep[i].first
       << "\": " << sweep[i].second;
  }
  os << "}";
}

// ---------------------------------------------------------------------------
// Workload scales
// ---------------------------------------------------------------------------

inline workload::RatingConfig default_rating_config() {
  workload::RatingConfig cfg;
  const bool big = large_scale();
  cfg.num_components = big ? 32 : 12;
  cfg.users_per_component = big ? 1500 : 500;
  cfg.num_items = big ? 1000 : 300;
  cfg.num_clusters = big ? 48 : 20;
  cfg.seed = 20160816;  // ICPP'16
  return cfg;
}

inline workload::CorpusConfig default_corpus_config() {
  workload::CorpusConfig cfg;
  const bool big = large_scale();
  cfg.num_components = big ? 32 : 12;
  cfg.docs_per_component = big ? 1200 : 400;
  cfg.vocab_size = big ? 12000 : 4000;
  cfg.num_topics = big ? 64 : 24;
  cfg.topic_vocab = 100;
  cfg.seed = 20160816;
  return cfg;
}

inline synopsis::BuildConfig default_build_config(double ratio) {
  synopsis::BuildConfig cfg;
  cfg.svd.rank = 3;             // the paper reduces to 3 dimensions
  cfg.svd.epochs_per_dim = 60;  // (100 in the paper; 60 converges here)
  cfg.size_ratio = ratio;
  return cfg;
}

// ---------------------------------------------------------------------------
// Service construction
// ---------------------------------------------------------------------------

struct CfFixture {
  std::unique_ptr<reco::CfService> service;
  std::vector<reco::CfRequest> requests;
  std::vector<double> actuals;
  std::vector<sim::ComponentProfile> profiles;
};

inline CfFixture make_cf_fixture(double synopsis_ratio = 25.0,
                                 std::size_t active_users = 400,
                                 std::size_t targets_per_user = 2,
                                 const workload::RatingConfig* override_cfg =
                                     nullptr,
                                 const synopsis::BuildConfig* build_override =
                                     nullptr) {
  workload::RatingConfig wcfg =
      override_cfg != nullptr ? *override_cfg : default_rating_config();
  workload::RatingWorkloadGen gen(wcfg);
  auto wl = gen.generate(active_users, targets_per_user);

  CfFixture fx;
  std::vector<reco::RecommenderComponent> comps;
  for (auto& subset : wl.subsets) {
    comps.emplace_back(std::move(subset),
                       build_override != nullptr
                           ? *build_override
                           : default_build_config(synopsis_ratio));
  }
  fx.service =
      std::make_unique<reco::CfService>(std::move(comps), wcfg.min_rating,
                                        wcfg.max_rating);
  fx.requests = std::move(wl.requests);
  fx.actuals = std::move(wl.actuals);
  for (std::size_t c = 0; c < fx.service->num_components(); ++c) {
    sim::ComponentProfile p;
    p.num_points =
        static_cast<std::uint32_t>(fx.service->component(c).num_users());
    p.group_sizes = fx.service->component(c).group_sizes();
    fx.profiles.push_back(std::move(p));
  }
  return fx;
}

struct SearchFixture {
  std::unique_ptr<search::SearchService> service;
  std::vector<search::SearchRequest> queries;
  std::vector<sim::ComponentProfile> profiles;
};

inline SearchFixture make_search_fixture(double synopsis_ratio = 12.0,
                                         std::size_t num_queries = 400) {
  workload::CorpusConfig ccfg = default_corpus_config();
  workload::CorpusGen gen(ccfg);
  auto wl = gen.generate(num_queries);

  SearchFixture fx;
  std::vector<search::SearchComponent> comps;
  std::uint64_t base = 0;
  for (auto& shard : wl.shards) {
    const auto n = shard.rows();
    comps.emplace_back(std::move(shard), base,
                       default_build_config(synopsis_ratio));
    base += n;
  }
  fx.service = std::make_unique<search::SearchService>(std::move(comps), 10);
  fx.queries = std::move(wl.queries);
  for (std::size_t c = 0; c < fx.service->num_components(); ++c) {
    sim::ComponentProfile p;
    p.num_points =
        static_cast<std::uint32_t>(fx.service->component(c).num_docs());
    p.group_sizes = fx.service->component(c).group_sizes();
    fx.profiles.push_back(std::move(p));
  }
  return fx;
}

/// Topology-aware variant: each shard component is CONSTRUCTED inside a
/// task on its home group (so its CSR pool, postings and synopsis are
/// first-touched by node-local threads) and the executor is installed on
/// the service, homing every component's future work on the same group.
inline SearchFixture make_search_fixture_sharded(
    common::ShardedExecutor& exec, double synopsis_ratio = 12.0,
    std::size_t num_queries = 400) {
  workload::CorpusConfig ccfg = default_corpus_config();
  workload::CorpusGen gen(ccfg);
  auto wl = gen.generate(num_queries);

  SearchFixture fx;
  const std::size_t n = wl.shards.size();
  std::vector<std::optional<search::SearchComponent>> built(n);
  std::vector<std::uint64_t> bases(n);
  std::uint64_t base = 0;
  for (std::size_t c = 0; c < n; ++c) {
    bases[c] = base;
    base += wl.shards[c].rows();
  }
  exec.for_each_shard(n, [&](std::size_t c) {
    built[c].emplace(std::move(wl.shards[c]), bases[c],
                     default_build_config(synopsis_ratio),
                     search::ScorerParams{},
                     &exec.group(exec.home_group(c)));
  });
  std::vector<search::SearchComponent> comps;
  comps.reserve(n);
  for (auto& b : built) comps.push_back(std::move(*b));
  fx.service = std::make_unique<search::SearchService>(std::move(comps), 10);
  fx.service->set_executor(&exec);
  fx.queries = std::move(wl.queries);
  for (std::size_t c = 0; c < fx.service->num_components(); ++c) {
    sim::ComponentProfile p;
    p.num_points =
        static_cast<std::uint32_t>(fx.service->component(c).num_docs());
    p.group_sizes = fx.service->component(c).group_sizes();
    fx.profiles.push_back(std::move(p));
  }
  return fx;
}

// ---------------------------------------------------------------------------
// Simulator configuration
// ---------------------------------------------------------------------------

/// Service-time calibration. The exact scan of one component's subset is
/// set to ~20 ms, placing exact-processing capacity at ~50 req/s per
/// component: the paper's rate axis (20..100 req/s) then spans the same
/// regimes as its Table 1 — comfortable at 20, queueing-inflated at 40,
/// and progressively deeper overload at 60-100 — while the 100 ms
/// deadline is feasible when idle (paper's 76 ms light-load latency).
inline sim::SimConfig default_sim_config(const CfFixture& fx,
                                         double deadline_ms = 100.0) {
  sim::SimConfig cfg;
  cfg.num_components = fx.profiles.size();
  cfg.num_nodes = std::max<std::size_t>(2, fx.profiles.size() / 4);
  cfg.deadline_ms = deadline_ms;
  const double users = static_cast<double>(fx.profiles[0].num_points);
  cfg.us_per_point = 20.0 * 1e3 / users;
  cfg.synopsis_point_factor = 1.0;
  cfg.session_length_s = 60.0;
  cfg.seed = 99;
  return cfg;
}

inline sim::SimConfig default_sim_config(const SearchFixture& fx,
                                         double deadline_ms = 100.0) {
  sim::SimConfig cfg;
  cfg.num_components = fx.profiles.size();
  cfg.num_nodes = std::max<std::size_t>(2, fx.profiles.size() / 4);
  cfg.deadline_ms = deadline_ms;
  const double docs = static_cast<double>(fx.profiles[0].num_points);
  cfg.us_per_point = 20.0 * 1e3 / docs;
  cfg.synopsis_point_factor = 1.0;
  cfg.session_length_s = 60.0;
  cfg.seed = 99;
  return cfg;
}

/// Applies the paper's search-engine setting for i_max: "process at most
/// the original data points from the top 40% ranked aggregated data
/// points" (§4.3, justified by Fig. 4(b)). Besides skipping sets that
/// cannot improve the top-10, this bounds AccuracyTrader's worst-case
/// per-request work, which is what keeps its queues stable at rates where
/// exhaustive improvement would overload the components.
inline void apply_search_imax(sim::SimConfig& cfg, const SearchFixture& fx) {
  std::size_t max_groups = 0;
  for (const auto& p : fx.profiles)
    max_groups = std::max(max_groups, p.group_sizes.size());
  cfg.imax = std::max<std::size_t>(1, max_groups * 2 / 5);
}

// ---------------------------------------------------------------------------
// Outcome replay: accuracy of a finished simulation
// ---------------------------------------------------------------------------

/// Pairs each sampled simulated request with an evaluation request
/// (round-robin) and returns the CF accuracy summary.
inline reco::CfEvalResult replay_cf_accuracy(const CfFixture& fx,
                                             core::Technique tech,
                                             const sim::SimResult& sim_result,
                                             std::size_t max_requests = 300) {
  std::vector<reco::CfRequest> reqs;
  std::vector<double> actuals;
  std::vector<std::vector<core::ComponentOutcome>> outcomes;
  std::size_t k = 0;
  for (const auto& d : sim_result.details) {
    if (reqs.size() >= max_requests) break;
    reqs.push_back(fx.requests[k % fx.requests.size()]);
    actuals.push_back(fx.actuals[k % fx.actuals.size()]);
    outcomes.push_back(d.outcomes);
    ++k;
  }
  if (reqs.empty()) return {};
  return fx.service->evaluate(
      reqs, actuals, tech,
      [&outcomes](std::size_t r) { return outcomes[r]; });
}

inline search::SearchEvalResult replay_search_accuracy(
    const SearchFixture& fx, core::Technique tech,
    const sim::SimResult& sim_result, std::size_t max_requests = 200) {
  std::vector<search::SearchRequest> reqs;
  std::vector<std::vector<core::ComponentOutcome>> outcomes;
  std::size_t k = 0;
  for (const auto& d : sim_result.details) {
    if (reqs.size() >= max_requests) break;
    reqs.push_back(fx.queries[k % fx.queries.size()]);
    outcomes.push_back(d.outcomes);
    ++k;
  }
  if (reqs.empty()) return {};
  return fx.service->evaluate(
      reqs, tech, [&outcomes](std::size_t r) { return outcomes[r]; });
}

/// How many detail records to keep per run so accuracy replay has enough
/// samples without drowning in memory.
inline std::size_t detail_stride(std::size_t expected_requests,
                                 std::size_t wanted = 400) {
  return std::max<std::size_t>(1, expected_requests / wanted);
}

inline void print_paper_note(const std::string& exp,
                             const std::string& expectation) {
  std::cout << "\n[" << exp << "] paper expectation: " << expectation
            << "\n\n";
}

}  // namespace at::bench
