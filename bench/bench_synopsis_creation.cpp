// §4.2 "Evaluation of overheads of synopsis creation": times the three
// creation steps for one subset of each service and reports the
// aggregation ratios the paper quotes (133.01 original users and 42.55
// original pages per aggregated data point). The SVD step runs in both
// the scalar and the best SIMD dispatch tier (bit-identical factors; the
// residual-retire gather is the vectorized part, the SGD chain itself is
// latency-bound). Machine-readable output goes to
// BENCH_synopsis_creation.json (override: AT_SYNOPSIS_JSON).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/bench_common.h"
#include "bench/seed_reference.h"
#include "common/artifact.h"
#include "common/sharded_executor.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "linalg/svd.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"
#include "synopsis/serialize.h"

namespace at::bench {
namespace {

struct StepTimes {
  double svd_seed_s = 0.0;     // seed scalar kernel (pre-optimization)
  double svd_scalar_s = 0.0;   // CSR + cached residual, scalar dispatch tier
  double svd_s = 0.0;          // CSR + cached residual, best SIMD tier
  double svd_hogwild_s = 0.0;  // CSR + cached-residual, hogwild on 4 threads
  /// ROADMAP multi-core scaling curve: hogwild SVD wall clock per pool
  /// size, 1..nproc (extend past nproc with AT_BENCH_THREADS to measure
  /// oversubscription).
  std::vector<std::pair<std::size_t, double>> hogwild_sweep;
  /// Node-partitioned SVD on the AT_TOPOLOGY-resolved ShardedExecutor.
  double svd_sharded_s = 0.0;
  std::string topology;
  double rtree_s = 0.0;
  double aggregate_s = 0.0;
  std::size_t points = 0;
  std::size_t groups = 0;
  std::size_t synopsis_features = 0;
  std::size_t input_entries = 0;
  /// Serialized SVD-model artifact size per value codec (same model,
  /// exact round-trip in every codec), plus the synopsis artifact.
  std::size_t svd_artifact_bytes[3] = {0, 0, 0};
  std::size_t synopsis_artifact_bytes = 0;

  double svd_codec_ratio(common::Codec codec) const {
    const auto raw =
        svd_artifact_bytes[static_cast<std::size_t>(common::Codec::kRaw)];
    return raw > 0 ? static_cast<double>(
                         svd_artifact_bytes[static_cast<std::size_t>(codec)]) /
                         static_cast<double>(raw)
                   : 0.0;
  }
};

template <typename Fn>
std::size_t artifact_bytes(Fn&& fn) {
  std::ostringstream os;
  fn(os);
  return os.str().size();
}

StepTimes time_creation(const synopsis::SparseRows& rows,
                        const synopsis::BuildConfig& cfg,
                        synopsis::AggregationKind kind) {
  StepTimes t;
  t.points = rows.rows();
  t.input_entries = rows.total_entries();

  const auto dataset = rows.to_dataset();
  common::Stopwatch w;
  {
    auto seed_svd = seed_incremental_svd(dataset, cfg.svd);
    t.svd_seed_s = w.elapsed_seconds();
    (void)seed_svd;
  }
  {
    auto hw_cfg = cfg.svd;
    hw_cfg.deterministic = false;
    common::ThreadPool hw_pool(4);
    w.reset();
    auto hw_svd = linalg::incremental_svd(dataset, hw_cfg, &hw_pool);
    t.svd_hogwild_s = w.elapsed_seconds();
    (void)hw_svd;
  }
  {
    // Thread-count sweep 1..nproc (ROADMAP "multi-core wall-clock
    // measurement"): the hogwild scaling curve, best of 2 per point.
    auto hw_cfg = cfg.svd;
    hw_cfg.deterministic = false;
    for (std::size_t threads = 1; threads <= sweep_max_threads();
         ++threads) {
      common::ThreadPool pool(threads);
      double best = 1e300;
      for (int rep = 0; rep < 2; ++rep) {
        w.reset();
        auto svd = linalg::incremental_svd(dataset, hw_cfg, &pool);
        best = std::min(best, w.elapsed_seconds());
        (void)svd;
      }
      t.hogwild_sweep.emplace_back(threads, best);
    }
    // Node-partitioned run on the machine layout (one group on
    // single-node hardware — the fallback whose parity CI guards).
    common::ShardedExecutor exec;
    t.topology = exec.topology().describe();
    w.reset();
    auto sharded = linalg::incremental_svd_sharded(dataset, hw_cfg, exec);
    t.svd_sharded_s = w.elapsed_seconds();
    (void)sharded;
  }
  {
    const simd::Tier entry_tier = simd::active_tier();  // honor AT_SIMD
    simd::set_tier(simd::Tier::kScalar);
    w.reset();
    auto scalar_svd = linalg::incremental_svd(dataset, cfg.svd);
    t.svd_scalar_s = w.elapsed_seconds();
    simd::set_tier(entry_tier);
    (void)scalar_svd;
  }
  w.reset();
  auto svd = linalg::incremental_svd(dataset, cfg.svd);
  t.svd_s = w.elapsed_seconds();

  w.reset();
  std::vector<std::pair<std::uint64_t, rtree::Rect>> items;
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    items.emplace_back(r, rtree::Rect::point(std::span<const double>(
                              svd.row_factors.row(r), cfg.svd.rank)));
  }
  auto tree =
      rtree::RTree::bulk_load(cfg.svd.rank, std::move(items),
                              cfg.rtree_params);
  const auto level = synopsis::SynopsisBuilder::pick_level(
      tree, rows.rows(), cfg.size_ratio, cfg.min_groups);
  auto index = synopsis::SynopsisBuilder::derive_index(tree, level);
  t.rtree_s = w.elapsed_seconds();

  w.reset();
  common::ThreadPool pool;
  const auto synopsis = synopsis::aggregate_all(rows, index, kind, &pool);
  t.aggregate_s = w.elapsed_seconds();

  t.groups = index.size();
  t.synopsis_features = synopsis.total_features();

  // Artifact-store footprint of the shippable state (ROADMAP "Compress
  // remaining artifacts"): the SVD model under each value codec and the
  // aggregated synopsis. All encodings are exact, so the ratios are pure
  // size wins.
  for (common::Codec codec : common::kAllCodecs) {
    t.svd_artifact_bytes[static_cast<std::size_t>(codec)] = artifact_bytes(
        [&](std::ostream& os) { linalg::save(os, svd, codec); });
  }
  t.synopsis_artifact_bytes =
      artifact_bytes([&](std::ostream& os) { synopsis::save(os, synopsis); });
  return t;
}

void report(const char* service, const StepTimes& t) {
  common::TableWriter table(std::string("Synopsis creation — ") + service);
  table.set_columns({"step", "seconds", "notes"});
  table.add_row({"1. SVD reduction (seed scalar)",
                 common::TableWriter::fmt(t.svd_seed_s, 3),
                 "pre-optimization reference"});
  table.add_row({"1. SVD reduction (scalar tier)",
                 common::TableWriter::fmt(t.svd_scalar_s, 3),
                 "CSR + cached residual, " +
                     common::TableWriter::fmt(t.svd_seed_s / t.svd_scalar_s,
                                              2) +
                     "x vs seed"});
  table.add_row({std::string("1. SVD reduction (") +
                     simd::tier_name(simd::active_tier()) + " tier)",
                 common::TableWriter::fmt(t.svd_s, 3),
                 common::TableWriter::fmt(t.svd_seed_s / t.svd_s, 2) +
                     "x vs seed, " +
                     common::TableWriter::fmt(t.svd_scalar_s / t.svd_s, 2) +
                     "x vs scalar tier"});
  table.add_row({"1. SVD reduction (hogwild, 4 thr)",
                 common::TableWriter::fmt(t.svd_hogwild_s, 3),
                 common::TableWriter::fmt(t.svd_seed_s / t.svd_hogwild_s, 2) +
                     "x vs seed"});
  for (const auto& [threads, seconds] : t.hogwild_sweep) {
    table.add_row(
        {"1. SVD hogwild sweep (" + std::to_string(threads) + " thr)",
         common::TableWriter::fmt(seconds, 3),
         common::TableWriter::fmt(t.hogwild_sweep.front().second / seconds,
                                  2) +
             "x vs 1 thr"});
  }
  table.add_row({"1. SVD sharded executor",
                 common::TableWriter::fmt(t.svd_sharded_s, 3), t.topology});
  table.add_row({"2. R-tree + index file",
                 common::TableWriter::fmt(t.rtree_s, 3),
                 "bulk load + level select"});
  table.add_row({"3. information aggregation",
                 common::TableWriter::fmt(t.aggregate_s, 3),
                 "thread-pool parallel"});
  table.add_row({"total",
                 common::TableWriter::fmt(t.svd_s + t.rtree_s + t.aggregate_s,
                                          3),
                 ""});
  table.print(std::cout);
  std::cout << "  SVD model artifact: raw="
            << t.svd_artifact_bytes[static_cast<std::size_t>(
                   common::Codec::kRaw)]
            << " B, shuffle="
            << t.svd_artifact_bytes[static_cast<std::size_t>(
                   common::Codec::kShuffle)]
            << " B ("
            << common::TableWriter::fmt(
                   t.svd_codec_ratio(common::Codec::kShuffle), 3)
            << "x), q8="
            << t.svd_artifact_bytes[static_cast<std::size_t>(
                   common::Codec::kQ8)]
            << " B ("
            << common::TableWriter::fmt(t.svd_codec_ratio(common::Codec::kQ8),
                                        3)
            << "x); synopsis artifact=" << t.synopsis_artifact_bytes << " B\n";
  std::cout << "  points=" << t.points << " groups=" << t.groups
            << " points/aggregated="
            << common::TableWriter::fmt(
                   static_cast<double>(t.points) /
                       static_cast<double>(t.groups),
                   2)
            << " synopsis/input size="
            << common::TableWriter::fmt(
                   static_cast<double>(t.synopsis_features) /
                       static_cast<double>(t.input_entries),
                   3)
            << "\n";
}

void write_json(const StepTimes& cf, const StepTimes& ws) {
  const char* path_env = std::getenv("AT_SYNOPSIS_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_synopsis_creation.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: could not write " << path << "\n";
    return;
  }
  const auto emit = [&os](const char* name, const StepTimes& t,
                          const char* tail) {
    os << "  \"" << name << "\": {\n"
       << "    \"svd_seed_s\": " << t.svd_seed_s << ",\n"
       << "    \"svd_scalar_tier_s\": " << t.svd_scalar_s << ",\n"
       << "    \"svd_simd_tier_s\": " << t.svd_s << ",\n"
       << "    \"svd_simd_speedup_vs_scalar_tier\": "
       << t.svd_scalar_s / t.svd_s << ",\n"
       << "    \"svd_hogwild_s\": " << t.svd_hogwild_s << ",\n"
       << "    \"svd_hogwild_sweep\": ";
    write_sweep_json(os, t.hogwild_sweep);
    os << ",\n"
       << "    \"svd_sharded_s\": " << t.svd_sharded_s << ",\n"
       << "    \"topology\": \"" << t.topology << "\",\n"
       << "    \"rtree_s\": " << t.rtree_s << ",\n"
       << "    \"aggregate_s\": " << t.aggregate_s << ",\n"
       << "    \"points\": " << t.points << ",\n"
       << "    \"groups\": " << t.groups << ",\n"
       << "    \"svd_artifact_raw_bytes\": "
       << t.svd_artifact_bytes[static_cast<std::size_t>(common::Codec::kRaw)]
       << ",\n"
       << "    \"svd_artifact_shuffle_bytes\": "
       << t.svd_artifact_bytes[static_cast<std::size_t>(
              common::Codec::kShuffle)]
       << ",\n"
       << "    \"svd_artifact_q8_bytes\": "
       << t.svd_artifact_bytes[static_cast<std::size_t>(common::Codec::kQ8)]
       << ",\n"
       << "    \"svd_artifact_shuffle_ratio\": "
       << t.svd_codec_ratio(common::Codec::kShuffle) << ",\n"
       << "    \"synopsis_artifact_bytes\": " << t.synopsis_artifact_bytes
       << "\n  }" << tail << "\n";
  };
  os << "{\n  \"bench\": \"bench_synopsis_creation\",\n"
     << "  \"scale\": \"" << (large_scale() ? "large" : "small") << "\",\n"
     << "  \"simd_tier\": \""
     << simd::tier_name(simd::active_tier()) << "\",\n";
  emit("cf_recommender", cf, ",");
  emit("web_search", ws, "");
  os << "}\n";
  std::cout << "  wrote " << path << "\n";
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "§4.2 synopsis creation",
      "creation completes offline (paper: 30 s for a recommender subset, "
      "40 min for a 0.5M-page search subset on one node); each aggregated "
      "point stands for many originals (133.01 users / 42.55 pages).");

  StepTimes cf_times, ws_times;
  {
    auto wcfg = default_rating_config();
    wcfg.num_components = 1;
    workload::RatingWorkloadGen gen(wcfg);
    auto wl = gen.generate(0, 0);
    cf_times = time_creation(
        wl.subsets[0], default_build_config(25.0),
        synopsis::AggregationKind::kMean);
    report("CF recommender (one subset)", cf_times);
  }
  {
    auto ccfg = default_corpus_config();
    ccfg.num_components = 1;
    workload::CorpusGen gen(ccfg);
    auto wl = gen.generate(0);
    ws_times = time_creation(
        wl.shards[0], default_build_config(12.0),
        synopsis::AggregationKind::kMerge);
    report("web search (one shard)", ws_times);
  }
  write_json(cf_times, ws_times);

  // CI guard: with AT_REQUIRE_ARTIFACT_RATIO set (e.g. 0.9), the shuffle
  // codec must keep the SVD-model artifact at or below that fraction of
  // the raw encoding for both services — the storage analogue of the
  // postings-codec AT_REQUIRE_RATIO guard.
  if (const char* bound_env = std::getenv("AT_REQUIRE_ARTIFACT_RATIO")) {
    const double bound = std::atof(bound_env);
    const double worst =
        std::max(cf_times.svd_codec_ratio(common::Codec::kShuffle),
                 ws_times.svd_codec_ratio(common::Codec::kShuffle));
    if (!(bound > 0.0) || worst > bound) {
      std::cerr << "FAIL: SVD-model shuffle/raw artifact ratio "
                << common::TableWriter::fmt(worst, 3) << " exceeds bound "
                << bound_env << "\n";
      return 1;
    }
    std::cout << "  artifact ratio guard OK: shuffle/raw "
              << common::TableWriter::fmt(worst, 3) << " <= " << bound_env
              << "\n";
  }
  return 0;
}
