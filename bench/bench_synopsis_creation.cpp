// §4.2 "Evaluation of overheads of synopsis creation": times the three
// creation steps for one subset of each service and reports the
// aggregation ratios the paper quotes (133.01 original users and 42.55
// original pages per aggregated data point).
#include <iostream>

#include "bench/bench_common.h"
#include "bench/seed_reference.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "linalg/svd.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"

namespace at::bench {
namespace {

struct StepTimes {
  double svd_seed_s = 0.0;     // seed scalar kernel (pre-optimization)
  double svd_s = 0.0;          // CSR + cached-residual, sequential
  double svd_hogwild_s = 0.0;  // CSR + cached-residual, hogwild on 4 threads
  double rtree_s = 0.0;
  double aggregate_s = 0.0;
  std::size_t points = 0;
  std::size_t groups = 0;
  std::size_t synopsis_features = 0;
  std::size_t input_entries = 0;
};

StepTimes time_creation(const synopsis::SparseRows& rows,
                        const synopsis::BuildConfig& cfg,
                        synopsis::AggregationKind kind) {
  StepTimes t;
  t.points = rows.rows();
  t.input_entries = rows.total_entries();

  const auto dataset = rows.to_dataset();
  common::Stopwatch w;
  {
    auto seed_svd = seed_incremental_svd(dataset, cfg.svd);
    t.svd_seed_s = w.elapsed_seconds();
    (void)seed_svd;
  }
  {
    auto hw_cfg = cfg.svd;
    hw_cfg.deterministic = false;
    common::ThreadPool hw_pool(4);
    w.reset();
    auto hw_svd = linalg::incremental_svd(dataset, hw_cfg, &hw_pool);
    t.svd_hogwild_s = w.elapsed_seconds();
    (void)hw_svd;
  }
  w.reset();
  auto svd = linalg::incremental_svd(dataset, cfg.svd);
  t.svd_s = w.elapsed_seconds();

  w.reset();
  std::vector<std::pair<std::uint64_t, rtree::Rect>> items;
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    items.emplace_back(r, rtree::Rect::point(std::span<const double>(
                              svd.row_factors.row(r), cfg.svd.rank)));
  }
  auto tree =
      rtree::RTree::bulk_load(cfg.svd.rank, std::move(items),
                              cfg.rtree_params);
  const auto level = synopsis::SynopsisBuilder::pick_level(
      tree, rows.rows(), cfg.size_ratio, cfg.min_groups);
  auto index = synopsis::SynopsisBuilder::derive_index(tree, level);
  t.rtree_s = w.elapsed_seconds();

  w.reset();
  common::ThreadPool pool;
  const auto synopsis = synopsis::aggregate_all(rows, index, kind, &pool);
  t.aggregate_s = w.elapsed_seconds();

  t.groups = index.size();
  t.synopsis_features = synopsis.total_features();
  return t;
}

void report(const char* service, const StepTimes& t) {
  common::TableWriter table(std::string("Synopsis creation — ") + service);
  table.set_columns({"step", "seconds", "notes"});
  table.add_row({"1. SVD reduction (seed scalar)",
                 common::TableWriter::fmt(t.svd_seed_s, 3),
                 "pre-optimization reference"});
  table.add_row({"1. SVD reduction", common::TableWriter::fmt(t.svd_s, 3),
                 "CSR + cached residual, " +
                     common::TableWriter::fmt(t.svd_seed_s / t.svd_s, 2) +
                     "x vs seed"});
  table.add_row({"1. SVD reduction (hogwild, 4 thr)",
                 common::TableWriter::fmt(t.svd_hogwild_s, 3),
                 common::TableWriter::fmt(t.svd_seed_s / t.svd_hogwild_s, 2) +
                     "x vs seed"});
  table.add_row({"2. R-tree + index file",
                 common::TableWriter::fmt(t.rtree_s, 3),
                 "bulk load + level select"});
  table.add_row({"3. information aggregation",
                 common::TableWriter::fmt(t.aggregate_s, 3),
                 "thread-pool parallel"});
  table.add_row({"total",
                 common::TableWriter::fmt(t.svd_s + t.rtree_s + t.aggregate_s,
                                          3),
                 ""});
  table.print(std::cout);
  std::cout << "  points=" << t.points << " groups=" << t.groups
            << " points/aggregated="
            << common::TableWriter::fmt(
                   static_cast<double>(t.points) /
                       static_cast<double>(t.groups),
                   2)
            << " synopsis/input size="
            << common::TableWriter::fmt(
                   static_cast<double>(t.synopsis_features) /
                       static_cast<double>(t.input_entries),
                   3)
            << "\n";
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "§4.2 synopsis creation",
      "creation completes offline (paper: 30 s for a recommender subset, "
      "40 min for a 0.5M-page search subset on one node); each aggregated "
      "point stands for many originals (133.01 users / 42.55 pages).");

  {
    auto wcfg = default_rating_config();
    wcfg.num_components = 1;
    workload::RatingWorkloadGen gen(wcfg);
    auto wl = gen.generate(0, 0);
    const auto t = time_creation(
        wl.subsets[0], default_build_config(25.0),
        synopsis::AggregationKind::kMean);
    report("CF recommender (one subset)", t);
  }
  {
    auto ccfg = default_corpus_config();
    ccfg.num_components = 1;
    workload::CorpusGen gen(ccfg);
    auto wl = gen.generate(0);
    const auto t = time_creation(
        wl.shards[0], default_build_config(12.0),
        synopsis::AggregationKind::kMerge);
    report("web search (one shard)", t);
  }
  return 0;
}
