// Reference implementations of the pre-optimization (seed) SVD kernels:
// per-entry residual recomputation over the AoS entry list, single thread.
// The creation/update benchmarks time these against the CSR-backed,
// cached-residual kernels in linalg/ to report the before/after speedup.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/rng.h"
#include "linalg/svd.h"

namespace at::bench {

/// Residual of entry e under the biases plus first `dims` dimensions,
/// recomputed from scratch (the seed's per-step cost).
inline double seed_residual(const linalg::SvdModel& model,
                            const linalg::SparseEntry& e, std::size_t dims) {
  double pred = 0.0;
  if (model.has_biases()) {
    pred = model.global_mean + model.row_bias[e.row] + model.col_bias[e.col];
  }
  const double* p = model.row_factors.row(e.row);
  const double* q = model.col_factors.row(e.col);
  for (std::size_t d = 0; d < dims; ++d) pred += p[d] * q[d];
  return e.value - pred;
}

/// The seed's incremental_svd: scalar SGD over `entries`, O(d) residual
/// recomputation per step.
inline linalg::SvdModel seed_incremental_svd(const linalg::SparseDataset& data,
                                             const linalg::SvdConfig& config) {
  common::Rng rng(config.seed);
  linalg::SvdModel model;
  model.row_factors = linalg::Matrix(data.rows, config.rank);
  model.col_factors = linalg::Matrix(data.cols, config.rank);
  for (std::size_t r = 0; r < data.rows; ++r)
    for (std::size_t d = 0; d < config.rank; ++d)
      model.row_factors(r, d) = config.init_scale * (rng.uniform() - 0.5);
  for (std::size_t c = 0; c < data.cols; ++c)
    for (std::size_t d = 0; d < config.rank; ++d)
      model.col_factors(c, d) = config.init_scale * (rng.uniform() - 0.5);

  if (data.entries.empty()) return model;

  if (config.use_biases) {
    double sum = 0.0;
    for (const auto& e : data.entries) sum += e.value;
    model.global_mean = sum / static_cast<double>(data.entries.size());
    model.row_bias.assign(data.rows, 0.0);
    model.col_bias.assign(data.cols, 0.0);
  }

  for (std::size_t d = 0; d < config.rank; ++d) {
    double prev_rmse = -1.0;
    for (std::size_t epoch = 0; epoch < config.epochs_per_dim; ++epoch) {
      double sq_err = 0.0;
      for (const auto& e : data.entries) {
        const double err = seed_residual(model, e, d + 1);
        sq_err += err * err;
        if (config.use_biases) {
          double& br = model.row_bias[e.row];
          double& bc = model.col_bias[e.col];
          br += config.learning_rate * (err - config.regularization * br);
          bc += config.learning_rate * (err - config.regularization * bc);
        }
        double& p = model.row_factors(e.row, d);
        double& q = model.col_factors(e.col, d);
        const double p_old = p;
        p += config.learning_rate * (err * q - config.regularization * p);
        q += config.learning_rate * (err * p_old - config.regularization * q);
      }
      const double rmse =
          std::sqrt(sq_err / static_cast<double>(data.entries.size()));
      if (config.min_improvement > 0.0 && prev_rmse >= 0.0 &&
          prev_rmse - rmse < config.min_improvement) {
        break;
      }
      prev_rmse = rmse;
    }
  }
  model.train_rmse = linalg::reconstruction_rmse(model, data);
  return model;
}

/// The seed's fold_in_rows: interleaved scalar SGD over the new rows'
/// entries with O(d) prediction recomputation per step.
inline void seed_fold_in_rows(linalg::SvdModel& model,
                              const linalg::SparseDataset& new_rows,
                              const linalg::SvdConfig& config) {
  const std::size_t rank = model.row_factors.cols();
  const std::size_t old_rows = model.row_factors.rows();
  common::Rng rng(config.seed ^ 0xf01dULL);

  if (model.has_biases()) {
    model.row_bias.resize(old_rows + new_rows.rows, 0.0);
  }

  linalg::Matrix grown(old_rows + new_rows.rows, rank);
  for (std::size_t r = 0; r < old_rows; ++r)
    for (std::size_t d = 0; d < rank; ++d)
      grown(r, d) = model.row_factors(r, d);
  for (std::size_t r = old_rows; r < grown.rows(); ++r)
    for (std::size_t d = 0; d < rank; ++d)
      grown(r, d) = config.init_scale * (rng.uniform() - 0.5);
  model.row_factors = std::move(grown);

  for (std::size_t d = 0; d < rank; ++d) {
    for (std::size_t epoch = 0; epoch < config.epochs_per_dim; ++epoch) {
      for (const auto& e : new_rows.entries) {
        const std::size_t global_row = old_rows + e.row;
        double pred = 0.0;
        if (model.has_biases()) {
          pred = model.global_mean + model.row_bias[global_row] +
                 model.col_bias[e.col];
        }
        const double* p = model.row_factors.row(global_row);
        const double* q = model.col_factors.row(e.col);
        for (std::size_t k = 0; k <= d; ++k) pred += p[k] * q[k];
        const double err = e.value - pred;
        if (model.has_biases()) {
          double& br = model.row_bias[global_row];
          br += config.learning_rate * (err - config.regularization * br);
        }
        double& pd = model.row_factors(global_row, d);
        pd += config.learning_rate *
              (err * q[d] - config.regularization * pd);
      }
    }
  }
}

}  // namespace at::bench
