// Ablation: i_max, the cap on ranked member sets processed per component
// (Algorithm 1's second stop condition). The paper sets it from the
// correlation decay — e.g. the top 40% of ranked aggregated pages hold
// >98% of the actual top-10 pages, so processing more sets buys nothing.
// This sweep shows accuracy saturating at a fraction of the sets while
// the latency cost of a larger i_max appears only at light load (under
// heavy load the deadline binds first).
#include <iostream>

#include "bench/bench_common.h"

namespace at::bench {
namespace {

void sweep(const SearchFixture& fx, const sim::SimConfig& base, double rate,
           const char* label) {
  common::TableWriter table(std::string("i_max sweep — search workload, ") +
                            label);
  table.set_columns(
      {"i_max", "p99.9 latency (ms)", "mean sets done", "accuracy loss (%)"});

  std::size_t max_groups = 0;
  for (const auto& p : fx.profiles)
    max_groups = std::max(max_groups, p.group_sizes.size());

  common::Rng rng(37);
  const auto arrivals = sim::poisson_arrivals(rate, 30.0, rng);

  for (std::size_t imax :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, max_groups * 2 / 5,
        max_groups}) {
    auto cfg = base;
    cfg.imax = imax;
    cfg.detail_every = detail_stride(arrivals.size());
    sim::ClusterSim sim(cfg, fx.profiles);
    const auto result = sim.run(core::Technique::kAccuracyTrader, arrivals);
    const auto acc =
        replay_search_accuracy(fx, core::Technique::kAccuracyTrader, result);

    double mean_sets = 0.0;
    std::size_t n = 0;
    for (const auto& d : result.details) {
      for (const auto& o : d.outcomes) {
        mean_sets += o.sets;
        ++n;
      }
    }
    table.add_row(
        {std::to_string(imax),
         common::TableWriter::fmt(result.p999_component_ms(), 1),
         common::TableWriter::fmt(n ? mean_sets / static_cast<double>(n) : 0,
                                  2),
         common::TableWriter::fmt(acc.loss_pct, 2)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Ablation: i_max",
      "accuracy saturates near i_max ~ 40% of the groups (the paper's "
      "search setting); beyond that, extra sets add latency at light load "
      "and nothing at heavy load where the deadline binds first.");

  auto fx = make_search_fixture(12.0, 300);
  auto scfg = default_sim_config(fx);
  sweep(fx, scfg, 4.0, "light load (4 req/s)");
  sweep(fx, scfg, 40.0, "heavy load (40 req/s)");
  return 0;
}
