// Ablation: the synopsis compression ratio (#original points per
// aggregated point). The paper picks "e.g. 100x smaller" — this sweep
// shows the trade: a finer synopsis (small ratio) costs more per stage-1
// pass (higher AccuracyTrader tail under load, eventually instability),
// while a coarser one answers faster but starts from a worse initial
// result (higher loss when few sets fit the deadline).
#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Ablation: synopsis size ratio",
      "tail latency falls as the synopsis shrinks (cheaper mandatory "
      "stage 1); accuracy under overload degrades once the synopsis gets "
      "too coarse. The paper's ~100x sits on the flat part of both "
      "curves at its scale.");

  const double rate = 40.0;  // deep overload for exact processing
  const double duration_s = 30.0;

  common::TableWriter table(
      "AccuracyTrader vs synopsis ratio (CF workload, 40 req/s)");
  table.set_columns({"size ratio", "groups/component", "stage-1 cost (ms)",
                     "p99.9 latency (ms)", "accuracy loss (%)"});

  for (double ratio : {5.0, 10.0, 25.0, 50.0, 100.0}) {
    // Match the R-tree fan-out to the requested ratio so the selected tree
    // level lands near the target group count (levels quantize group
    // counts by powers of the fan-out otherwise).
    auto bcfg = default_build_config(ratio);
    bcfg.rtree_params.max_entries = static_cast<std::size_t>(
        std::clamp(ratio, 4.0, 32.0));
    bcfg.rtree_params.min_entries = bcfg.rtree_params.max_entries / 3;
    auto fx = make_cf_fixture(ratio, 200, 2, nullptr, &bcfg);
    auto scfg = default_sim_config(fx);
    common::Rng rng(91);
    const auto arrivals = sim::poisson_arrivals(rate, duration_s, rng);
    auto cfg = scfg;
    cfg.detail_every = detail_stride(arrivals.size());
    sim::ClusterSim sim(cfg, fx.profiles);
    const auto result = sim.run(core::Technique::kAccuracyTrader, arrivals);
    const auto acc =
        replay_cf_accuracy(fx, core::Technique::kAccuracyTrader, result);

    double mean_groups = 0.0;
    for (const auto& p : fx.profiles)
      mean_groups += static_cast<double>(p.group_sizes.size());
    mean_groups /= static_cast<double>(fx.profiles.size());

    table.add_row({common::TableWriter::fmt(ratio, 0),
                   common::TableWriter::fmt(mean_groups, 1),
                   common::TableWriter::fmt(sim.mean_synopsis_service_ms(), 2),
                   common::TableWriter::fmt(result.p999_component_ms(), 1),
                   common::TableWriter::fmt(acc.loss_pct, 2)});
  }
  table.print(std::cout);
  return 0;
}
