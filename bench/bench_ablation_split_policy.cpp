// Ablation: R-tree split policy (Guttman quadratic vs. R*). The synopsis
// inherits its group quality from the tree: tighter, less overlapping
// nodes group more-similar data points, which sharpens the correlation
// ranking. Measured on the search service: the share of the actual top-10
// pages found in the top-ranked 20% of groups, plus AccuracyTrader's
// accuracy at a small fixed set budget.
#include <iostream>
#include <unordered_set>

#include "bench/bench_common.h"
#include "core/algorithm1.h"

namespace at::bench {
namespace {

struct PolicyResult {
  double top20_share = 0.0;  // % of actual top-10 in top 20% ranked groups
  double loss_at_4sets = 0.0;
};

PolicyResult evaluate(rtree::SplitPolicy policy) {
  auto ccfg = default_corpus_config();
  workload::CorpusGen gen(ccfg);
  auto wl = gen.generate(150);

  auto bcfg = default_build_config(12.0);
  bcfg.rtree_params.split = policy;

  std::vector<search::SearchComponent> comps;
  std::uint64_t base = 0;
  for (auto& shard : wl.shards) {
    const auto n = shard.rows();
    comps.emplace_back(std::move(shard), base, bcfg);
    base += n * 4;  // headroom: ids stay disjoint as shards grow below
  }

  // The initial tree is STR bulk-loaded (no splits); the split policy
  // matters for trees that have *churned*. Apply several update waves —
  // 20% new pages, 10% edited — so a realistic share of the nodes was
  // produced by the policy under test.
  common::Rng churn(4242);
  for (auto& comp : comps) {
    for (int wave = 0; wave < 2; ++wave) {
      synopsis::UpdateBatch batch;
      const std::size_t added = comp.num_docs() / 10;
      for (std::size_t i = 0; i < added; ++i)
        batch.added.push_back(gen.sample_doc(churn));
      const std::size_t changed = comp.num_docs() / 20;
      for (std::size_t i = 0; i < changed; ++i) {
        batch.changed.emplace_back(
            static_cast<std::uint32_t>(churn.uniform_index(comp.num_docs())),
            gen.sample_doc(churn));
      }
      comp.update(batch);
    }
  }
  search::SearchService service(std::move(comps), 10);

  PolicyResult result;
  double hits_top20 = 0.0, hits_total = 0.0, acc = 0.0;
  for (const auto& query : wl.queries) {
    const auto actual = service.exact_topk(query);
    std::unordered_set<std::uint64_t> actual_ids;
    for (const auto& d : actual) actual_ids.insert(d.doc);
    if (actual_ids.empty()) continue;

    search::TopK top(10);
    for (std::size_t c = 0; c < service.num_components(); ++c) {
      const auto& comp = service.component(c);
      const auto work = comp.analyze(query);
      const auto ranked = core::rank_by_correlation(work.correlations);
      const std::size_t top20 = ranked.size() / 5 + 1;
      for (std::size_t pos = 0; pos < ranked.size(); ++pos) {
        for (auto m :
             comp.structure().index.groups()[ranked[pos]].members) {
          if (actual_ids.count(comp.doc_id_base() + m)) {
            hits_total += 1.0;
            if (pos < top20) hits_top20 += 1.0;
          }
        }
      }
      for (std::size_t i = 0; i < std::min<std::size_t>(4, ranked.size());
           ++i) {
        for (const auto& d : work.scored_by_group[ranked[i]]) top.offer(d);
      }
    }
    acc += search::topk_overlap(top.take(), actual);
  }
  result.top20_share =
      hits_total > 0.0 ? 100.0 * hits_top20 / hits_total : 0.0;
  result.loss_at_4sets =
      (1.0 - acc / static_cast<double>(wl.queries.size())) * 100.0;
  return result;
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Ablation: R-tree split policy",
      "the R* split's lower-overlap nodes should concentrate the actual "
      "top-10 pages at least as strongly into the top-ranked groups as "
      "Guttman's quadratic split (the paper uses the stock JSI R-tree; "
      "this quantifies how much the synopsis depends on tree quality).");

  common::TableWriter table("split policy vs synopsis quality (search)");
  table.set_columns({"policy", "% of top-10 in top-20% ranked groups",
                     "loss (%) @ 4 sets/component"});
  const auto quad = evaluate(rtree::SplitPolicy::kQuadratic);
  table.add_row({"quadratic", common::TableWriter::fmt(quad.top20_share, 2),
                 common::TableWriter::fmt(quad.loss_at_4sets, 2)});
  const auto rstar = evaluate(rtree::SplitPolicy::kRStar);
  table.add_row({"R*", common::TableWriter::fmt(rstar.top20_share, 2),
                 common::TableWriter::fmt(rstar.loss_at_4sets, 2)});
  table.print(std::cout);
  return 0;
}
