// Google-benchmark micro-benchmarks for the hot substrate operations:
// R-tree construction/queries, incremental SVD epochs, Pearson weights,
// inverted-index scoring, synopsis aggregation, and raw simulator event
// throughput. These guard the constant factors the experiment harnesses
// depend on.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/algorithm1.h"
#include "linalg/svd.h"
#include "rtree/rtree.h"
#include "services/search/inverted_index.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"

namespace {

using namespace at;

std::vector<std::pair<std::uint64_t, rtree::Rect>> random_points(
    std::size_t n, std::size_t dims, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::pair<std::uint64_t, rtree::Rect>> items;
  items.reserve(n);
  std::vector<double> c(dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : c) x = rng.uniform(0.0, 100.0);
    items.emplace_back(i, rtree::Rect::point(c));
  }
  return items;
}

void BM_RTreeInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto items = random_points(n, 3, 1);
  for (auto _ : state) {
    rtree::RTree t(3);
    for (const auto& [id, r] : items) t.insert(id, r);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(4000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto items = random_points(n, 3, 2);
  for (auto _ : state) {
    auto copy = items;
    auto t = rtree::RTree::bulk_load(3, std::move(copy));
    benchmark::DoNotOptimize(t.height());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000);

void BM_RTreeRangeQuery(benchmark::State& state) {
  auto items = random_points(20000, 3, 3);
  auto t = rtree::RTree::bulk_load(3, std::move(items));
  const rtree::Rect q({40, 40, 40}, {60, 60, 60});
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.range_query(q));
  }
}
BENCHMARK(BM_RTreeRangeQuery);

void BM_SvdEpochs(benchmark::State& state) {
  common::Rng rng(4);
  linalg::SparseDataset ds;
  ds.rows = 500;
  ds.cols = 300;
  for (std::uint32_t r = 0; r < ds.rows; ++r)
    for (std::uint32_t c = 0; c < ds.cols; ++c)
      if (rng.bernoulli(0.15))
        ds.entries.push_back({r, c, rng.uniform(1.0, 5.0)});
  linalg::SvdConfig cfg;
  cfg.rank = 3;
  cfg.epochs_per_dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::incremental_svd(ds, cfg).train_rmse);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(ds.entries.size() * cfg.rank *
                                cfg.epochs_per_dim));
}
BENCHMARK(BM_SvdEpochs)->Arg(10)->Arg(40);

void BM_PearsonWeight(benchmark::State& state) {
  common::Rng rng(5);
  synopsis::SparseVector a, b;
  for (std::uint32_t c = 0; c < 400; ++c) {
    if (rng.bernoulli(0.2)) a.emplace_back(c, rng.uniform(1.0, 5.0));
    if (rng.bernoulli(0.2)) b.emplace_back(c, rng.uniform(1.0, 5.0));
  }
  const double ma = reco::vector_mean(a);
  const double mb = reco::vector_mean(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reco::pearson_weight(a, ma, b, mb));
  }
}
BENCHMARK(BM_PearsonWeight);

void BM_IndexTopK(benchmark::State& state) {
  auto cfg = at::bench::default_corpus_config();
  cfg.num_components = 1;
  cfg.docs_per_component = 2000;
  workload::CorpusGen gen(cfg);
  auto wl = gen.generate(64);
  const search::InvertedIndex index(wl.shards[0]);
  std::size_t qi = 0;
  for (auto _ : state) {
    const auto& q = wl.queries[qi++ % wl.queries.size()];
    benchmark::DoNotOptimize(index.topk(q.terms, 0, 10));
  }
}
BENCHMARK(BM_IndexTopK);

void BM_SynopsisBuild(benchmark::State& state) {
  auto wcfg = at::bench::default_rating_config();
  wcfg.num_components = 1;
  wcfg.users_per_component = static_cast<std::size_t>(state.range(0));
  workload::RatingWorkloadGen gen(wcfg);
  auto wl = gen.generate(0, 0);
  auto bcfg = at::bench::default_build_config(25.0);
  bcfg.svd.epochs_per_dim = 15;  // keep the micro-bench fast
  for (auto _ : state) {
    auto s = synopsis::SynopsisBuilder(bcfg).build(wl.subsets[0]);
    benchmark::DoNotOptimize(s.num_groups());
  }
}
BENCHMARK(BM_SynopsisBuild)->Arg(300);

void BM_AggregateAll(benchmark::State& state) {
  auto wcfg = at::bench::default_rating_config();
  wcfg.num_components = 1;
  workload::RatingWorkloadGen gen(wcfg);
  auto wl = gen.generate(0, 0);
  auto s = synopsis::SynopsisBuilder(at::bench::default_build_config(25.0))
               .build(wl.subsets[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synopsis::aggregate_all(wl.subsets[0], s.index,
                                synopsis::AggregationKind::kMean)
            .size());
  }
}
BENCHMARK(BM_AggregateAll);

void BM_SimulatorThroughput(benchmark::State& state) {
  sim::SimConfig cfg;
  cfg.num_components = 16;
  cfg.num_nodes = 4;
  cfg.us_per_point = 50.0;
  cfg.session_length_s = 1e9;
  cfg.detail_every = 1u << 30;
  std::vector<sim::ComponentProfile> profiles(16);
  for (auto& p : profiles) {
    p.num_points = 1000;
    p.group_sizes.assign(20, 50);
  }
  sim::ClusterSim sim(cfg, profiles);
  common::Rng rng(6);
  const auto arrivals = sim::poisson_arrivals(50.0, 20.0, rng);
  for (auto _ : state) {
    const auto r = sim.run(core::Technique::kAccuracyTrader, arrivals);
    benchmark::DoNotOptimize(r.subops);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(arrivals.size() * 16));
}
BENCHMARK(BM_SimulatorThroughput);

}  // namespace

BENCHMARK_MAIN();
