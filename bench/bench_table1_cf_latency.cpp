// Table 1: 99.9th-percentile component latency (ms) of the CF recommender
// workload under request arrival rates 20..100 req/s, for Basic, Request
// reissue, and AccuracyTrader.
//
// Expected shape (paper): reissue wins slightly at the lightest rate;
// Basic and reissue explode once the load exceeds exact-processing
// capacity; AccuracyTrader stays pinned near the 100 ms deadline at every
// rate (the paper reports 87-130 ms vs. Basic's 202,834 ms).
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Table 1",
      "Basic: 76 / 263 / 48186 / 113496 / 202834 ms; Reissue: 63 / 213 / "
      "13505 / 27599 / 28981 ms; AccuracyTrader: 87 / 109 / 118 / 122 / "
      "130 ms at rates 20..100 (absolute values are testbed-specific; the "
      "ordering and explosion-vs-pinned shape are what reproduce).");

  auto fx = make_cf_fixture(25.0, 300, 2);
  auto scfg = default_sim_config(fx);
  const double duration_s = large_scale() ? 120.0 : 45.0;

  const std::vector<double> rates{20, 40, 60, 80, 100};
  const std::vector<core::Technique> techniques{
      core::Technique::kBasic, core::Technique::kRequestReissue,
      core::Technique::kAccuracyTrader};

  common::TableWriter table(
      "Table 1 — 99.9th percentile component latency (ms), CF workload");
  std::vector<std::string> cols{"technique"};
  for (double r : rates) cols.push_back(common::TableWriter::fmt(r, 0));
  table.set_columns(cols);

  // One arrival trace per rate, shared by all techniques.
  std::vector<std::vector<double>> traces;
  for (double rate : rates) {
    common::Rng rng(777 + static_cast<std::uint64_t>(rate));
    traces.push_back(sim::poisson_arrivals(rate, duration_s, rng));
  }

  double reissue_p999_sum = 0.0, at_p999_sum = 0.0;
  for (auto tech : techniques) {
    std::vector<std::string> row{core::to_string(tech)};
    for (std::size_t i = 0; i < rates.size(); ++i) {
      auto cfg = scfg;
      cfg.detail_every = detail_stride(traces[i].size());
      sim::ClusterSim sim(cfg, fx.profiles);
      const auto result = sim.run(tech, traces[i]);
      const double p999 = result.p999_component_ms();
      row.push_back(common::TableWriter::fmt(p999, 1));
      if (tech == core::Technique::kRequestReissue) reissue_p999_sum += p999;
      if (tech == core::Technique::kAccuracyTrader) at_p999_sum += p999;
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "  mean reduction vs request reissue: "
            << common::TableWriter::fmt(reissue_p999_sum / at_p999_sum, 1)
            << "x (paper: 133.38x for this workload)\n"
            << "  [exact scan = "
            << common::TableWriter::fmt(
                   sim::ClusterSim(scfg, fx.profiles).mean_exact_service_ms(),
                   1)
            << " ms; synopsis pass = "
            << common::TableWriter::fmt(
                   sim::ClusterSim(scfg, fx.profiles)
                       .mean_synopsis_service_ms(),
                   2)
            << " ms per component]\n";
  return 0;
}
