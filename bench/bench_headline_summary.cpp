// §4.3 "Results" — the paper's headline claims, reproduced in one table:
//
//  * vs request reissue: 133.38x (CF) and 42.72x (search) reductions in
//    the 99.9th-percentile component latency, at accuracy losses of 1.97%
//    and 6.31%;
//  * vs partial execution at the same service latency: 15.12x (CF) and
//    13.85x (search) reductions in accuracy loss.
//
// Methodology mirrors the paper: CF uses the five synthetic rates of
// Tables 1-2; search uses the 24-hour diurnal workload; ratios are averaged
// across rates/hours.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/bench_common.h"
#include "common/artifact.h"
#include "common/sharded_executor.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/topology.h"
#include "workload/diurnal.h"

namespace at::bench {
namespace {

struct ServiceSummary {
  double latency_reduction_vs_reissue = 0.0;
  double at_loss_pct = 0.0;
  double loss_reduction_vs_partial = 0.0;
  search::IndexSizeStats index_size;  // search service only
  /// Total component-snapshot artifact bytes per value codec (the state a
  /// builder ships to serving components).
  std::size_t snapshot_bytes[3] = {0, 0, 0};
};

/// Sums the per-codec artifact sizes of every component snapshot.
template <typename Service>
void measure_snapshots(const Service& service, ServiceSummary& s) {
  for (common::Codec codec : common::kAllCodecs) {
    std::size_t total = 0;
    for (std::size_t c = 0; c < service.num_components(); ++c) {
      std::ostringstream os;
      service.component(c).save(os, codec);
      total += os.str().size();
    }
    s.snapshot_bytes[static_cast<std::size_t>(codec)] = total;
  }
}

ServiceSummary run_cf() {
  auto fx = make_cf_fixture(25.0, 250, 2);
  ServiceSummary sizes;
  measure_snapshots(*fx.service, sizes);
  auto scfg = default_sim_config(fx);
  const double duration_s = large_scale() ? 90.0 : 30.0;
  double reissue_sum = 0.0, at_sum = 0.0, partial_loss = 0.0, at_loss = 0.0;
  int samples = 0;
  for (double rate : {20.0, 40.0, 60.0, 80.0, 100.0}) {
    common::Rng rng(777 + static_cast<std::uint64_t>(rate));
    const auto arrivals = sim::poisson_arrivals(rate, duration_s, rng);
    auto cfg = scfg;
    cfg.detail_every = detail_stride(arrivals.size());
    sim::ClusterSim sim(cfg, fx.profiles);
    const auto reissue = sim.run(core::Technique::kRequestReissue, arrivals);
    const auto at = sim.run(core::Technique::kAccuracyTrader, arrivals);
    const auto partial =
        sim.run(core::Technique::kPartialExecution, arrivals);
    reissue_sum += reissue.p999_component_ms();
    at_sum += at.p999_component_ms();
    partial_loss += replay_cf_accuracy(fx, core::Technique::kPartialExecution,
                                       partial, 150)
                        .loss_pct;
    at_loss +=
        replay_cf_accuracy(fx, core::Technique::kAccuracyTrader, at, 150)
            .loss_pct;
    ++samples;
  }
  ServiceSummary s = sizes;
  s.latency_reduction_vs_reissue = reissue_sum / at_sum;
  s.at_loss_pct = at_loss / samples;
  s.loss_reduction_vs_partial =
      at_loss > 0.0 ? partial_loss / at_loss : 0.0;
  return s;
}

ServiceSummary run_search() {
  auto fx = make_search_fixture(12.0, 250);
  ServiceSummary sizes;  // captured up front; the sim loop reuses fx
  sizes.index_size = fx.service->index_size();
  measure_snapshots(*fx.service, sizes);
  auto scfg = default_sim_config(fx);
  apply_search_imax(scfg, fx);
  scfg.session_length_s = 1e9;
  const workload::DiurnalProfile profile(100.0);
  const double hour_s = large_scale() ? 240.0 : 60.0;
  double reissue_sum = 0.0, at_sum = 0.0, partial_loss = 0.0, at_loss = 0.0;
  int samples = 0;
  for (std::size_t hour = 1; hour <= 24; hour += large_scale() ? 1 : 3) {
    common::Rng rng(9000 + hour);
    const auto arrivals = sim::nhpp_arrivals(
        [&](double t) {
          return profile.rate_in_hour(hour, t / hour_s * 3600.0);
        },
        profile.peak_rate(), hour_s, rng);
    auto cfg = scfg;
    cfg.detail_every = detail_stride(arrivals.size(), 120);
    sim::ClusterSim sim(cfg, fx.profiles);
    const auto reissue = sim.run(core::Technique::kRequestReissue, arrivals);
    const auto at = sim.run(core::Technique::kAccuracyTrader, arrivals);
    const auto partial =
        sim.run(core::Technique::kPartialExecution, arrivals);
    reissue_sum += reissue.p999_component_ms();
    at_sum += at.p999_component_ms();
    partial_loss += replay_search_accuracy(
                        fx, core::Technique::kPartialExecution, partial, 100)
                        .loss_pct;
    at_loss += replay_search_accuracy(fx, core::Technique::kAccuracyTrader,
                                      at, 100)
                   .loss_pct;
    ++samples;
  }
  ServiceSummary s = sizes;
  s.latency_reduction_vs_reissue = reissue_sum / at_sum;
  s.at_loss_pct = at_loss / samples;
  s.loss_reduction_vs_partial =
      at_loss > 0.0 ? partial_loss / at_loss : 0.0;
  return s;
}

/// Query fan-out latency of the exact path under the three dispatch modes:
/// sequential, the global ThreadPool, and the topology-aware
/// ShardedExecutor (per-node heaps + home-group dispatch; components built
/// node-locally). On single-node hardware the executor degrades to one
/// group, and AT_REQUIRE_FANOUT_PARITY turns that into a CI no-regression
/// guard against the global pool.
struct FanoutLatency {
  double sequential_us = 0.0;
  double pool_us = 0.0;
  double sharded_us = 0.0;
  std::size_t groups = 1;
  std::string topology;
};

FanoutLatency run_fanout() {
  FanoutLatency out;
  common::ShardedExecutor exec;  // AT_TOPOLOGY-resolved machine layout
  out.groups = exec.num_groups();
  out.topology = exec.topology().describe();
  auto fx = make_search_fixture_sharded(exec, 12.0, 200);

  // Best-of-3 full sweeps over the query set; the checksum both defeats
  // dead-code elimination and cross-checks dispatch-mode parity.
  double check_ref = -1.0;
  const auto measure = [&](double* check) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      double sum = 0.0;
      common::Stopwatch w;
      for (const auto& q : fx.queries) {
        for (const auto& d : fx.service->exact_topk(q))
          sum += d.score + static_cast<double>(d.doc);
      }
      best = std::min(best, w.elapsed_seconds());
      *check = sum;
    }
    return best * 1e6 / static_cast<double>(fx.queries.size());
  };

  out.sharded_us = measure(&check_ref);
  fx.service->set_executor(nullptr);
  fx.service->set_pool(nullptr);
  double check = 0.0;
  out.sequential_us = measure(&check);
  if (check != check_ref) {
    std::cerr << "FAIL: sharded fan-out results diverge from sequential\n";
    std::exit(1);
  }
  common::ThreadPool pool;
  fx.service->set_pool(&pool);
  out.pool_us = measure(&check);
  if (check != check_ref) {
    std::cerr << "FAIL: pooled fan-out results diverge from sequential\n";
    std::exit(1);
  }
  fx.service->set_pool(nullptr);

  common::TableWriter table("Exact query fan-out latency (us/query)");
  table.set_columns({"dispatch", "us/query", "notes"});
  table.add_row({"sequential", common::TableWriter::fmt(out.sequential_us, 1),
                 "one thread, component order"});
  table.add_row({"global pool", common::TableWriter::fmt(out.pool_us, 1),
                 "parallel_for over components"});
  table.add_row({"sharded executor",
                 common::TableWriter::fmt(out.sharded_us, 1),
                 out.topology + ", per-node heaps"});
  table.print(std::cout);
  return out;
}

/// Machine-readable record of the headline numbers so later PRs can diff
/// the perf/accuracy trajectory. Path override: AT_BENCH_JSON.
void write_json(const ServiceSummary& cf, const ServiceSummary& se,
                const FanoutLatency& fan) {
  const char* path_env = std::getenv("AT_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_headline.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: could not write " << path << "\n";
    return;
  }
  auto service = [&](const char* name, const ServiceSummary& s,
                     bool last) {
    os << "  \"" << name << "\": {\n"
       << "    \"p999_latency_reduction_vs_reissue\": "
       << s.latency_reduction_vs_reissue << ",\n"
       << "    \"accuracy_trader_loss_pct\": " << s.at_loss_pct << ",\n"
       << "    \"loss_reduction_vs_partial\": " << s.loss_reduction_vs_partial;
    if (s.index_size.postings > 0) {
      os << ",\n    \"index_raw_bytes\": " << s.index_size.raw_bytes
         << ",\n    \"index_compressed_bytes\": "
         << s.index_size.compressed_bytes
         << ",\n    \"index_size_ratio\": " << s.index_size.ratio();
    }
    const auto raw =
        s.snapshot_bytes[static_cast<std::size_t>(common::Codec::kRaw)];
    os << ",\n    \"snapshot_raw_bytes\": " << raw
       << ",\n    \"snapshot_shuffle_bytes\": "
       << s.snapshot_bytes[static_cast<std::size_t>(common::Codec::kShuffle)]
       << ",\n    \"snapshot_q8_bytes\": "
       << s.snapshot_bytes[static_cast<std::size_t>(common::Codec::kQ8)];
    os << "\n  }" << (last ? "\n" : ",\n");
  };
  os << "{\n  \"bench\": \"bench_headline_summary\",\n"
     << "  \"scale\": \"" << (large_scale() ? "large" : "small") << "\",\n"
     << "  \"fanout\": {\n"
     << "    \"topology\": \"" << fan.topology << "\",\n"
     << "    \"groups\": " << fan.groups << ",\n"
     << "    \"sequential_us_per_query\": " << fan.sequential_us << ",\n"
     << "    \"global_pool_us_per_query\": " << fan.pool_us << ",\n"
     << "    \"sharded_us_per_query\": " << fan.sharded_us << "\n  },\n";
  service("cf_recommender", cf, false);
  service("web_search", se, true);
  os << "}\n";
  std::cout << "  wrote " << path << "\n";
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "§4.3 Results (headline claims)",
      "latency reduction vs reissue 133.38x (CF) / 42.72x (search) at "
      "losses 1.97% / 6.31%; loss reduction vs partial execution at equal "
      "latency 15.12x (CF) / 13.85x (search). Claimed bounds: >40x and "
      ">13x respectively.");

  common::TableWriter table("Headline summary — this reproduction");
  table.set_columns({"service", "p99.9 reduction vs reissue",
                     "AccuracyTrader loss (%)",
                     "loss reduction vs partial execution"});
  const auto cf = run_cf();
  table.add_row(
      {"CF recommender",
       common::TableWriter::fmt(cf.latency_reduction_vs_reissue, 1) + "x",
       common::TableWriter::fmt(cf.at_loss_pct, 2),
       common::TableWriter::fmt(cf.loss_reduction_vs_partial, 1) + "x"});
  const auto se = run_search();
  table.add_row(
      {"web search",
       common::TableWriter::fmt(se.latency_reduction_vs_reissue, 1) + "x",
       common::TableWriter::fmt(se.at_loss_pct, 2),
       common::TableWriter::fmt(se.loss_reduction_vs_partial, 1) + "x"});
  table.print(std::cout);
  std::cout << "  paper claims: >40x latency reduction at <7% loss; >13x "
               "loss reduction at equal latency.\n";
  std::cout << "  search index footprint: raw " << se.index_size.raw_bytes
            << " B -> compressed " << se.index_size.compressed_bytes
            << " B (ratio "
            << common::TableWriter::fmt(se.index_size.ratio(), 3) << ")\n";
  const auto snapshot_line = [](const char* name, const ServiceSummary& s) {
    const auto raw =
        s.snapshot_bytes[static_cast<std::size_t>(common::Codec::kRaw)];
    const auto shuffle =
        s.snapshot_bytes[static_cast<std::size_t>(common::Codec::kShuffle)];
    const auto q8 =
        s.snapshot_bytes[static_cast<std::size_t>(common::Codec::kQ8)];
    std::cout << "  " << name << " snapshot artifacts: raw " << raw
              << " B, shuffle " << shuffle << " B ("
              << common::TableWriter::fmt(
                     raw ? static_cast<double>(shuffle) / raw : 0.0, 3)
              << "x), q8 " << q8 << " B ("
              << common::TableWriter::fmt(
                     raw ? static_cast<double>(q8) / raw : 0.0, 3)
              << "x)\n";
  };
  snapshot_line("CF", cf);
  snapshot_line("search", se);
  const auto fan = run_fanout();
  write_json(cf, se, fan);

  // CI guard: with AT_REQUIRE_FANOUT_PARITY set (e.g. 1.25), the sharded
  // executor's per-query latency must stay within that factor of the
  // global thread pool's. On a single-node runner the executor runs one
  // group, so this pins the "no regression in the fallback" acceptance;
  // on multi-node hardware it additionally catches dispatch overhead
  // swamping the locality win.
  if (const char* bound_env = std::getenv("AT_REQUIRE_FANOUT_PARITY")) {
    const double bound = std::atof(bound_env);
    const double ratio =
        fan.pool_us > 0.0 ? fan.sharded_us / fan.pool_us : 0.0;
    if (!(bound > 0.0) || ratio > bound) {
      std::cerr << "FAIL: sharded/pool fan-out latency ratio "
                << common::TableWriter::fmt(ratio, 3) << " exceeds bound "
                << bound_env << " (" << fan.topology << ")\n";
      return 1;
    }
    std::cout << "  fan-out parity guard OK: sharded/pool "
              << common::TableWriter::fmt(ratio, 3) << " <= " << bound_env
              << "\n";
  }
  return 0;
}
