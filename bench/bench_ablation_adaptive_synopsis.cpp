// Extension evaluation: load-adaptive synopsis selection (paper §2.3's
// deferred SARP idea, implemented in synopsis/multiresolution.h).
//
// For each materialized resolution of a CF component the table reports the
// mandatory stage-1 cost (group count) against the quality of what that
// resolution buys: the accuracy of the stage-1-only answer and of the
// answer after improving with 2 ranked sets. A fine synopsis is strictly
// better when affordable; the adaptive policy's point is that under load
// the coarse rows of this table are the ones that keep the deadline.
#include <iostream>

#include "bench/bench_common.h"
#include "core/algorithm1.h"
#include "synopsis/multiresolution.h"

namespace at::bench {
namespace {

/// Stage-1 + k-set evaluation of one resolution level against exact.
double loss_at_resolution(const CfFixture& fx,
                          const std::vector<synopsis::MultiResolutionSynopsis>&
                              multis,
                          std::size_t resolution, std::size_t sets) {
  const double range = fx.service->rating_range();
  std::vector<double> approx, exact;
  const std::size_t n = std::min<std::size_t>(fx.requests.size(), 120);
  for (std::size_t r = 0; r < n; ++r) {
    const auto& req = fx.requests[r];
    reco::CfPartial merged;
    for (std::size_t c = 0; c < fx.service->num_components(); ++c) {
      const auto& comp = fx.service->component(c);
      const auto& multi = multis[c];
      const std::size_t res = std::min(resolution, multi.levels() - 1);
      const auto& level = multi.level(res);

      // Re-run the component analysis against this resolution's groups.
      std::vector<double> correlations(level.groups());
      std::vector<reco::CfPartial> agg(level.groups());
      std::vector<reco::CfPartial> real(level.groups());
      for (std::size_t g = 0; g < level.groups(); ++g) {
        const auto& point = level.synopsis.points[g];
        const double mean = reco::vector_mean(point.features);
        const double w = reco::pearson_weight(req.ratings, req.rating_mean,
                                              point.features, mean);
        correlations[g] = std::abs(w);
        const double rating =
            synopsis::value_at(point.features, req.target_item);
        if (rating != 0.0 && w != 0.0) {
          auto it = std::lower_bound(
              point.features.begin(), point.features.end(), req.target_item,
              [](const auto& e, std::uint32_t col) { return e.first < col; });
          const auto idx =
              static_cast<std::size_t>(it - point.features.begin());
          const double backing =
              point.support.empty() ? point.member_count
                                    : static_cast<double>(point.support[idx]);
          agg[g].weighted_dev = backing * w * (rating - mean);
          agg[g].weight_abs = backing * std::abs(w);
        }
        for (auto member : level.index.groups()[g].members) {
          const double rating_vi =
              synopsis::value_at(comp.users().row(member), req.target_item);
          if (rating_vi == 0.0) continue;
          const double wv = comp.user_weight(req, member);
          if (wv == 0.0) continue;
          real[g].weighted_dev += wv * (rating_vi - comp.user_mean(member));
          real[g].weight_abs += std::abs(wv);
        }
      }
      reco::CfPartial partial;
      for (const auto& a : agg) partial.merge(a);
      const auto ranked = core::rank_by_correlation(correlations);
      for (std::size_t i = 0; i < std::min(sets, ranked.size()); ++i) {
        partial.subtract(agg[ranked[i]]);
        partial.merge(real[ranked[i]]);
      }
      merged.merge(partial);
    }
    approx.push_back(reco::predict(req, merged, fx.service->min_rating(),
                                   fx.service->max_rating()));
    exact.push_back(fx.service->predict_exact(req));
  }
  std::vector<double> actuals(fx.actuals.begin(), fx.actuals.begin() + n);
  const double a_ex =
      reco::accuracy_from_rmse(reco::rmse(exact, actuals, range), range);
  const double a_ap =
      reco::accuracy_from_rmse(reco::rmse(approx, actuals, range), range);
  return reco::accuracy_loss_pct(a_ex, a_ap);
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Extension: load-adaptive synopsis resolution",
      "finer synopses buy better stage-1 answers at a higher mandatory "
      "cost; the adaptive policy (SARP, deferred by the paper) picks per "
      "request the finest affordable level. Loss should fall as the "
      "resolution refines, cost should grow.");

  auto fx = make_cf_fixture(4.0, 150, 2);
  std::vector<synopsis::MultiResolutionSynopsis> multis;
  std::size_t max_levels = 0;
  for (std::size_t c = 0; c < fx.service->num_components(); ++c) {
    multis.emplace_back(fx.service->component(c).structure(),
                        fx.service->component(c).users(),
                        synopsis::AggregationKind::kMean);
    max_levels = std::max(max_levels, multis.back().levels());
  }

  common::TableWriter table(
      "CF accuracy loss (%) by synopsis resolution (0 = finest)");
  table.set_columns({"resolution", "groups (comp 0)", "stage-1 only",
                     "+2 ranked sets"});
  for (std::size_t r = 0; r < max_levels; ++r) {
    const std::size_t shown =
        std::min(r, multis[0].levels() - 1);
    table.add_row(
        {std::to_string(r),
         std::to_string(multis[0].level(shown).groups()),
         common::TableWriter::fmt(loss_at_resolution(fx, multis, r, 0), 2),
         common::TableWriter::fmt(loss_at_resolution(fx, multis, r, 2), 2)});
  }
  table.print(std::cout);

  // The adaptive policy itself: what each time budget selects.
  common::TableWriter policy("adaptive policy: remaining budget -> level");
  policy.set_columns({"remaining budget (ms)", "selected resolution",
                      "groups (comp 0)"});
  for (double budget : {100.0, 20.0, 5.0, 1.0}) {
    const auto res = multis[0].pick_for_deadline(budget, 0.05);
    policy.add_row({common::TableWriter::fmt(budget, 1),
                    std::to_string(res),
                    std::to_string(multis[0].level(res).groups())});
  }
  policy.print(std::cout);
  return 0;
}
