// Table 2: percentage accuracy losses of the CF recommender workload under
// arrival rates 20..100 req/s for Partial execution vs. AccuracyTrader,
// both given the same 100 ms service deadline.
//
// Expected shape (paper): partial execution's loss grows from 0.26% to
// 99.56% as overload deepens (more and more components miss the deadline
// and are skipped); AccuracyTrader stays in low single digits (0.08% to
// 4.82%) because every component always answers from its synopsis and
// spends whatever budget remains on the most accuracy-correlated sets.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Table 2",
      "Partial execution: 0.26 / 4.50 / 23.39 / 81.48 / 99.56 %; "
      "AccuracyTrader: 0.08 / 0.70 / 1.59 / 2.69 / 4.82 % at rates "
      "20..100. Shape: partial collapses toward ~100%, AccuracyTrader "
      "stays single-digit, and AT < partial at every rate.");

  auto fx = make_cf_fixture(25.0, 300, 2);
  auto scfg = default_sim_config(fx);
  const double duration_s = large_scale() ? 120.0 : 45.0;

  const std::vector<double> rates{20, 40, 60, 80, 100};

  common::TableWriter table(
      "Table 2 — accuracy loss (%), CF workload, same 100 ms deadline");
  std::vector<std::string> cols{"technique"};
  for (double r : rates) cols.push_back(common::TableWriter::fmt(r, 0));
  table.set_columns(cols);

  std::vector<std::string> partial_row{"Partial execution"};
  std::vector<std::string> at_row{"AccuracyTrader"};
  double partial_loss_sum = 0.0, at_loss_sum = 0.0;

  for (double rate : rates) {
    common::Rng rng(777 + static_cast<std::uint64_t>(rate));
    const auto arrivals = sim::poisson_arrivals(rate, duration_s, rng);
    auto cfg = scfg;
    cfg.detail_every = detail_stride(arrivals.size());
    sim::ClusterSim sim(cfg, fx.profiles);

    const auto partial_sim =
        sim.run(core::Technique::kPartialExecution, arrivals);
    const auto partial = replay_cf_accuracy(
        fx, core::Technique::kPartialExecution, partial_sim);
    partial_row.push_back(common::TableWriter::fmt(partial.loss_pct, 2));
    partial_loss_sum += partial.loss_pct;

    const auto at_sim = sim.run(core::Technique::kAccuracyTrader, arrivals);
    const auto at =
        replay_cf_accuracy(fx, core::Technique::kAccuracyTrader, at_sim);
    at_row.push_back(common::TableWriter::fmt(at.loss_pct, 2));
    at_loss_sum += at.loss_pct;
  }
  table.add_row(std::move(partial_row));
  table.add_row(std::move(at_row));
  table.print(std::cout);
  if (at_loss_sum > 0.0) {
    std::cout << "  mean loss reduction vs partial execution: "
              << common::TableWriter::fmt(partial_loss_sum / at_loss_sum, 1)
              << "x (paper: 15.12x for this workload)\n";
  }
  return 0;
}
