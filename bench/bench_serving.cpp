// Serving-path benchmark: the degradation ladder under load (ISSUE 6).
//
// Starts the real TCP server over a real fixture and replays two phases
// through the client library:
//
//   comfortable  few clients, generous deadlines — the full tier should
//                dominate, nothing sheds;
//   burst        many concurrent clients with tight deadlines — admission
//                control sheds what cannot meet its deadline and the
//                ladder degrades the rest, trading synopsis accuracy for
//                tail latency (the paper's core trade, now measured on a
//                live request path instead of the simulator).
//
// Machine-readable output: BENCH_serving.json (override: AT_SERVING_JSON)
// with per-tier request counts, client-observed p50/p99 latency, mean
// estimated accuracy loss and the shed rate of each phase.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "common/sharded_executor.h"
#include "server/replay.h"
#include "server/server.h"

using namespace at;

namespace {

server::ReplayConfig phase_config(std::uint16_t port, std::size_t clients,
                                  std::size_t requests,
                                  std::uint32_t deadline_ms) {
  server::ReplayConfig cfg;
  cfg.port = port;
  cfg.num_clients = clients;
  cfg.requests_per_client = requests;
  cfg.deadline_ms = deadline_ms;
  cfg.recommend_fraction = 0.0;  // search ladder is the object of study
  cfg.corpus = bench::default_corpus_config();
  // The burst wants the shed path exercised, not hidden behind retries.
  cfg.client.max_retries = 1;
  cfg.client.backoff_cap_ms = 20.0;
  return cfg;
}

void print_phase(const char* name, const server::ReplayReport& r) {
  std::cout << name << ": full=" << r.ok_full << " (p99 "
            << r.lat_full_ms.p99() << " ms), synopsis=" << r.ok_synopsis
            << " (p99 " << r.lat_synopsis_ms.p99()
            << " ms), cached=" << r.ok_cached << ", shed_rate "
            << r.shed_rate() << ", failures " << r.failures << "\n";
}

}  // namespace

int main() {
  common::ShardedExecutor exec;
  auto fx = bench::make_search_fixture_sharded(exec);

  server::ServerConfig scfg;
  scfg.max_queue_per_group = 8;  // small bound so the burst visibly sheds
  for (std::size_t i = 0; i < 16 && i < fx.queries.size(); ++i)
    scfg.calibration_queries.push_back(fx.queries[i]);

  server::Server srv(*fx.service, nullptr, exec, scfg);
  srv.start();

  bench::print_paper_note(
      "serving",
      "under overload the ladder sheds/degrades instead of queueing: "
      "synopsis-tier answers keep tail latency bounded at a calibrated "
      "accuracy loss (the Table-1/Fig-6 trade on a live request path)");

  const auto comfortable =
      server::run_replay(phase_config(srv.port(), 2, 60, 2000));
  print_phase("comfortable", comfortable);

  const auto burst = server::run_replay(phase_config(srv.port(), 16, 40, 15));
  print_phase("burst", burst);

  const auto snap = srv.snapshot();
  srv.stop();

  const char* path_env = std::getenv("AT_SERVING_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_serving.json";
  std::ofstream os(path);
  os << "{\"comfortable\": " << comfortable.to_json()
     << ", \"burst\": " << burst.to_json()
     << ", \"server\": {\"accepted\": " << snap.accepted
     << ", \"shed\": " << snap.shed << ", \"errors\": " << snap.errors
     << ", \"est_full_ms\": " << snap.est_full_ms
     << ", \"est_synopsis_ms\": " << snap.est_synopsis_ms
     << ", \"synopsis_loss_pct\": " << snap.synopsis_loss_pct << "}}\n";
  std::cout << "wrote " << path << "\n";
  return 0;
}
