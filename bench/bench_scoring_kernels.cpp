// Before/after microbench for the query-scoring path: the seed's
// hash-map/term-at-a-time scorer (re-allocating an unordered_map per
// query, then materializing every candidate before top-k selection)
// against the reusable dense accumulator with fused top-k selection.
// Results are checked to match exactly while timing.
#include <cmath>
#include <iostream>
#include <unordered_map>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "services/search/inverted_index.h"
#include "workload/corpus.h"

namespace at::bench {
namespace {

/// The seed's score_query: per-query unordered_map accumulation.
void seed_score_query(const search::InvertedIndex& idx,
                      const std::vector<std::uint32_t>& terms,
                      std::uint64_t base,
                      std::vector<search::ScoredDoc>& out) {
  std::unordered_map<std::uint32_t, double> acc;
  for (auto term : terms) {
    const double w = idx.idf(term);
    if (w <= 0.0) continue;
    for (const auto& p : idx.postings(term)) {
      const double len = idx.doc_length(p.doc);
      const double len_norm = len > 0.0 ? 1.0 / std::sqrt(len) : 0.0;
      acc[p.doc] += std::sqrt(p.tf) * w * len_norm;
    }
  }
  out.reserve(out.size() + acc.size());
  for (const auto& [doc, score] : acc) {
    if (score <= 0.0) continue;
    out.push_back(search::ScoredDoc{score, base + doc});
  }
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "scoring kernels",
      "query scoring is the search service's per-request hot path; the "
      "accumulator rewrite must beat the hash-map scorer at identical "
      "results.");

  auto ccfg = default_corpus_config();
  ccfg.num_components = 1;
  workload::CorpusGen gen(ccfg);
  auto wl = gen.generate(large_scale() ? 2000 : 800);
  search::InvertedIndex idx(wl.shards[0]);

  const int rounds = large_scale() ? 20 : 10;
  const std::size_t k = 10;

  // Warm both paths once, and verify identical top-k output.
  std::size_t checked = 0;
  for (const auto& q : wl.queries) {
    std::vector<search::ScoredDoc> seed_scored;
    seed_score_query(idx, q.terms, 0, seed_scored);
    search::TopK ref(k);
    for (const auto& d : seed_scored) ref.offer(d);
    const auto ref_top = ref.take();
    const auto got = idx.topk(q.terms, 0, k);
    if (got.size() != ref_top.size()) {
      std::cerr << "MISMATCH: topk size\n";
      return 1;
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].doc != ref_top[i].doc || got[i].score != ref_top[i].score) {
        std::cerr << "MISMATCH: topk content\n";
        return 1;
      }
    }
    ++checked;
  }

  common::Stopwatch w;
  std::size_t sink = 0;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& q : wl.queries) {
      std::vector<search::ScoredDoc> scored;
      seed_score_query(idx, q.terms, 0, scored);
      search::TopK top(k);
      for (const auto& d : scored) top.offer(d);
      sink += top.take().size();
    }
  }
  const double seed_s = w.elapsed_seconds();

  w.reset();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& q : wl.queries) {
      sink += idx.topk(q.terms, 0, k).size();
    }
  }
  const double acc_s = w.elapsed_seconds();

  const double n =
      static_cast<double>(rounds) * static_cast<double>(wl.queries.size());
  common::TableWriter table("Query scoring — seed hash-map vs accumulator");
  table.set_columns({"kernel", "us/query", "speedup"});
  table.add_row({"seed hash-map + materialized top-k",
                 common::TableWriter::fmt(seed_s / n * 1e6, 2), "1.00x"});
  table.add_row({"dense accumulator + fused top-k",
                 common::TableWriter::fmt(acc_s / n * 1e6, 2),
                 common::TableWriter::fmt(seed_s / acc_s, 2) + "x"});
  table.print(std::cout);
  std::cout << "  " << checked << " queries verified identical, sink=" << sink
            << "\n";
  return 0;
}
