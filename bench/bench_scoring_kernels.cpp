// Before/after microbench for the query-scoring path, four generations:
//  * the seed's hash-map/term-at-a-time scorer (re-allocating an
//    unordered_map per query, then materializing every candidate before
//    top-k selection);
//  * the PR-1 raw-array kernel: dense accumulator + fused top-k over
//    uncompressed u32/f64 posting arrays (rebuilt here as the baseline the
//    codec replaced);
//  * the block-compressed index scored at the *scalar* dispatch tier
//    (PR-2-equivalent: decode and score without vector kernels);
//  * the same index at the best SIMD tier the hardware offers (PR 3:
//    shuffle-table group-varint decode, gathered norms, vectorized
//    score math — bit-identical results by construction).
// Results are checked to match exactly across every tier while timing,
// and the compressed vs raw index footprint is reported.
// Machine-readable output goes to BENCH_scoring_kernels.json (override:
// AT_SCORING_JSON). CI guards: AT_REQUIRE_RATIO=<r> bounds the
// compressed/raw size ratio, and AT_REQUIRE_SIMD_SPEEDUP=<x> requires the
// SIMD-tier scoring to beat the scalar tier by at least x (skipped with a
// note when the hardware or build has no SIMD tier).
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <unordered_map>

#include "bench/bench_common.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "services/search/inverted_index.h"
#include "workload/corpus.h"

namespace at::bench {
namespace {

/// The PR-1 index layout, rebuilt (outside the timed region) from the
/// compressed index: one raw u32 doc array and f64 tf/sqrt-tf arrays per
/// term. The seed kernel and the raw-array accumulator kernel both score
/// over these arrays, so neither baseline pays any decode cost.
struct RawArrayIndex {
  std::vector<std::size_t> term_ptr;
  std::vector<std::uint32_t> post_doc;
  std::vector<double> post_tf;
  std::vector<double> post_sqrt_tf;
  std::vector<double> len_norm;
  std::vector<double> idf;
  std::size_t num_docs = 0;

  explicit RawArrayIndex(const search::InvertedIndex& idx) {
    num_docs = idx.num_docs();
    term_ptr.push_back(0);
    for (std::uint32_t t = 0; t < idx.vocab_size(); ++t) {
      for (const auto& p : idx.postings(t)) {
        post_doc.push_back(p.doc);
        post_tf.push_back(p.tf);
        post_sqrt_tf.push_back(std::sqrt(p.tf));
      }
      term_ptr.push_back(post_doc.size());
      idf.push_back(idx.idf(t));
    }
    len_norm.resize(num_docs);
    for (std::uint32_t d = 0; d < num_docs; ++d) {
      const double len = idx.doc_length(d);
      len_norm[d] = len > 0.0 ? 1.0 / std::sqrt(len) : 0.0;
    }
  }

  /// The seed's score_query, verbatim semantics: per-query unordered_map
  /// accumulation in term order with per-posting sqrt/div recomputation.
  void seed_score_query(const search::InvertedIndex& idx,
                        const std::vector<std::uint32_t>& terms,
                        std::uint64_t base,
                        std::vector<search::ScoredDoc>& out) const {
    std::unordered_map<std::uint32_t, double> acc;
    for (auto term : terms) {
      if (term >= idf.size()) continue;
      const double w = idx.idf(term);
      if (w <= 0.0) continue;
      for (std::size_t i = term_ptr[term]; i < term_ptr[term + 1]; ++i) {
        const std::uint32_t doc = post_doc[i];
        const double len = idx.doc_length(doc);
        const double ln = len > 0.0 ? 1.0 / std::sqrt(len) : 0.0;
        acc[doc] += std::sqrt(post_tf[i]) * w * ln;
      }
    }
    out.reserve(out.size() + acc.size());
    for (const auto& [doc, score] : acc) {
      if (score <= 0.0) continue;
      out.push_back(search::ScoredDoc{score, base + doc});
    }
  }

  std::vector<search::ScoredDoc> topk(const std::vector<std::uint32_t>& terms,
                                      std::uint64_t base, std::size_t k,
                                      search::ScoreAccumulator& acc) const {
    acc.begin(num_docs);
    for (auto term : terms) {
      if (term >= idf.size()) continue;
      const double w = idf[term];
      if (w <= 0.0) continue;
      for (std::size_t i = term_ptr[term]; i < term_ptr[term + 1]; ++i) {
        const std::uint32_t doc = post_doc[i];
        acc.add(doc, post_sqrt_tf[i] * w * len_norm[doc]);
      }
    }
    search::TopK top(k);
    for (auto doc : acc.touched()) {
      const double score = acc.score(doc);
      if (score <= 0.0) continue;
      top.offer(search::ScoredDoc{score, base + doc});
    }
    return top.take();
  }
};

/// Long-postings kernel workload: the corpus fixture's per-term lists are
/// only a handful of postings (it models many small components), which
/// measures per-query overheads rather than the decode-and-score loop. A
/// small vocabulary over many documents gives df in the thousands, so
/// almost all time goes to block decode + score accumulation — the loops
/// the SIMD tiers target and the ones long-tail production terms hit.
struct LongPostingsFixture {
  search::InvertedIndex idx;
  std::vector<double> len_norm;
  std::vector<double> bm25_norm;
  std::vector<double> idf;
  double k1p1 = 0.0;
  std::vector<std::vector<std::uint32_t>> queries;
  std::size_t postings_per_round = 0;

  static synopsis::SparseRows make_rows(std::size_t docs, std::size_t vocab) {
    common::Rng rng(4242);
    synopsis::SparseRows rows(vocab);
    for (std::size_t d = 0; d < docs; ++d) {
      synopsis::SparseVector v;
      for (std::uint32_t c = 0; c < vocab; ++c) {
        if (rng.uniform() < 0.12) {
          v.emplace_back(c, 1.0 + static_cast<double>(rng.uniform_index(5)));
        }
      }
      rows.add_row(std::move(v));
    }
    return rows;
  }

  explicit LongPostingsFixture(std::size_t docs, std::size_t vocab)
      : idx(make_rows(docs, vocab)) {
    len_norm.resize(idx.num_docs());
    bm25_norm.resize(idx.num_docs());
    k1p1 = idx.scorer().bm25_k1 + 1.0;
    const double k1 = idx.scorer().bm25_k1;
    const double b = idx.scorer().bm25_b;
    const double avg = idx.mean_doc_length() > 0.0 ? idx.mean_doc_length() : 1.0;
    for (std::uint32_t d = 0; d < idx.num_docs(); ++d) {
      const double dl = idx.doc_length(d);
      len_norm[d] = dl > 0.0 ? 1.0 / std::sqrt(dl) : 0.0;
      bm25_norm[d] = k1 * (1.0 - b + b * dl / avg);
    }
    for (std::uint32_t t = 0; t < idx.vocab_size(); ++t)
      idf.push_back(idx.idf(t));
    common::Rng rng(17);
    for (int q = 0; q < 64; ++q) {
      std::vector<std::uint32_t> terms;
      for (int t = 0; t < 4; ++t) {
        terms.push_back(static_cast<std::uint32_t>(rng.uniform_index(vocab)));
      }
      for (auto term : terms) postings_per_round += idx.doc_frequency(term);
      queries.push_back(std::move(terms));
    }
  }

  /// End-to-end query latency (decode + score + accumulate + top-k).
  double time_topk_rounds(int rounds, std::size_t k, std::size_t& sink) const {
    common::Stopwatch w;
    for (int r = 0; r < rounds; ++r) {
      for (const auto& q : queries) sink += idx.topk(q, 0, k).size();
    }
    return w.elapsed_seconds();
  }

  /// The kernel stage alone: per-block decode + tf expansion + score
  /// vector over the index's own compressed pool — exactly the per-block
  /// body of InvertedIndex::accumulate minus the accumulator drain, for
  /// both product scorers. This is what AT_REQUIRE_SIMD_SPEEDUP gates —
  /// the loops the SIMD tiers target. (The fixture's tfs are all small
  /// integers, so the exception branch of accumulate never runs here.)
  struct KernelTimes {
    double tfidf_s = 0.0;
    double bm25_s = 0.0;
  };
  KernelTimes time_kernel_rounds(int rounds, double& sink) const {
    KernelTimes t;
    double score_buf[search::codec::kBlockSize];
    common::Stopwatch w;
    for (int r = 0; r < rounds; ++r) {
      for (const auto& q : queries) {
        for (auto term : q) {
          const double w_term = idf[term];
          idx.postings_pool().scan_blocks(
              term, [&](const search::codec::BlockView& bv) {
            simd::score_tfidf_codes(score_buf, bv.codes,
                                    search::codec::kSqrtLut, bv.docs,
                                    len_norm.data(), w_term, bv.n);
            sink += score_buf[bv.n - 1];
          });
        }
      }
    }
    t.tfidf_s = w.elapsed_seconds();
    w.reset();
    for (int r = 0; r < rounds; ++r) {
      for (const auto& q : queries) {
        for (auto term : q) {
          const double w_term = idf[term];
          idx.postings_pool().scan_blocks(
              term, [&](const search::codec::BlockView& bv) {
            simd::score_bm25_codes(score_buf, bv.codes, bv.docs,
                                   bm25_norm.data(), w_term, k1p1, bv.n);
            sink += score_buf[bv.n - 1];
          });
        }
      }
    }
    t.bm25_s = w.elapsed_seconds();
    return t;
  }
};

bool same_results(const std::vector<search::ScoredDoc>& a,
                  const std::vector<search::ScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc || a[i].score != b[i].score) return false;
  }
  return true;
}

struct KernelNs {
  double tfidf_scalar, tfidf_simd, bm25_scalar, bm25_simd;
};

void write_json(double seed_us, double raw_us, double block_scalar_us,
                double block_simd_us, simd::Tier simd_tier,
                const KernelNs& kns, double kernel_speedup,
                const search::IndexSizeStats& size, std::size_t checked) {
  const char* path_env = std::getenv("AT_SCORING_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_scoring_kernels.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: could not write " << path << "\n";
    return;
  }
  os << "{\n  \"bench\": \"bench_scoring_kernels\",\n"
     << "  \"scale\": \"" << (large_scale() ? "large" : "small") << "\",\n"
     << "  \"us_per_query\": {\n"
     << "    \"seed_hash_map\": " << seed_us << ",\n"
     << "    \"raw_array_accumulator\": " << raw_us << ",\n"
     << "    \"block_compressed_scalar\": " << block_scalar_us << ",\n"
     << "    \"block_compressed_simd\": " << block_simd_us << ",\n"
     << "    \"block_compressed\": " << block_simd_us << "\n  },\n"
     << "  \"simd_tier\": \"" << simd::tier_name(simd_tier) << "\",\n"
     << "  \"simd_tier_compiled\": "
     << (simd::tier_compiled(simd_tier) ? "true" : "false") << ",\n"
     << "  \"simd_scoring_speedup\": " << block_scalar_us / block_simd_us
     << ",\n"
     << "  \"kernel_ns_per_posting\": {\n"
     << "    \"tfidf_scalar\": " << kns.tfidf_scalar << ",\n"
     << "    \"tfidf_simd\": " << kns.tfidf_simd << ",\n"
     << "    \"bm25_scalar\": " << kns.bm25_scalar << ",\n"
     << "    \"bm25_simd\": " << kns.bm25_simd << "\n  },\n"
     << "  \"simd_kernel_speedup\": " << kernel_speedup << ",\n"
     << "  \"index_postings\": " << size.postings << ",\n"
     << "  \"index_raw_bytes\": " << size.raw_bytes << ",\n"
     << "  \"index_compressed_bytes\": " << size.compressed_bytes << ",\n"
     << "  \"index_size_ratio\": " << size.ratio() << ",\n"
     << "  \"parity_queries\": " << checked << "\n}\n";
  std::cout << "  wrote " << path << "\n";
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "scoring kernels",
      "query scoring is the search service's per-request hot path; the "
      "block-compressed index must shrink the postings >=3x while the "
      "decode-on-the-fly scorer stays within a few percent of the raw-array "
      "kernel at identical results.");

  auto ccfg = default_corpus_config();
  ccfg.num_components = 1;
  workload::CorpusGen gen(ccfg);
  auto wl = gen.generate(large_scale() ? 2000 : 800);
  search::InvertedIndex idx(wl.shards[0]);
  RawArrayIndex raw(idx);
  search::ScoreAccumulator raw_acc;

  const int rounds = large_scale() ? 20 : 10;
  const std::size_t k = 10;
  // Guarded SIMD tier: the highest tier the hardware supports whose
  // kernels were actually compiled — if the toolchain lacked -mavx2 but
  // has -msse4.2, the guard still gates the compiled sse42 kernels
  // instead of silently comparing scalar against scalar.
  simd::Tier simd_tier = simd::max_supported_tier();
  while (simd_tier > simd::Tier::kScalar && !simd::tier_compiled(simd_tier)) {
    simd_tier = static_cast<simd::Tier>(static_cast<int>(simd_tier) - 1);
  }

  // Warm all paths once, and verify identical top-k output — in every
  // dispatch tier the hardware supports.
  std::size_t checked = 0;
  for (const auto& q : wl.queries) {
    std::vector<search::ScoredDoc> seed_scored;
    raw.seed_score_query(idx, q.terms, 0, seed_scored);
    search::TopK ref(k);
    for (const auto& d : seed_scored) ref.offer(d);
    const auto ref_top = ref.take();
    if (!same_results(raw.topk(q.terms, 0, k, raw_acc), ref_top)) {
      std::cerr << "MISMATCH: scorer parity\n";
      return 1;
    }
    for (int t = 0; t <= static_cast<int>(simd_tier); ++t) {
      simd::set_tier(static_cast<simd::Tier>(t));
      if (!same_results(idx.topk(q.terms, 0, k), ref_top)) {
        std::cerr << "MISMATCH: scorer parity at tier "
                  << simd::tier_name(static_cast<simd::Tier>(t)) << "\n";
        return 1;
      }
    }
    ++checked;
  }

  common::Stopwatch w;
  std::size_t sink = 0;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& q : wl.queries) {
      std::vector<search::ScoredDoc> scored;
      raw.seed_score_query(idx, q.terms, 0, scored);
      search::TopK top(k);
      for (const auto& d : scored) top.offer(d);
      sink += top.take().size();
    }
  }
  const double seed_s = w.elapsed_seconds();

  w.reset();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& q : wl.queries) {
      sink += raw.topk(q.terms, 0, k, raw_acc).size();
    }
  }
  const double raw_s = w.elapsed_seconds();

  simd::set_tier(simd::Tier::kScalar);
  w.reset();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& q : wl.queries) {
      sink += idx.topk(q.terms, 0, k).size();
    }
  }
  const double block_scalar_s = w.elapsed_seconds();

  simd::set_tier(simd_tier);
  w.reset();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& q : wl.queries) {
      sink += idx.topk(q.terms, 0, k).size();
    }
  }
  const double block_simd_s = w.elapsed_seconds();

  const double n =
      static_cast<double>(rounds) * static_cast<double>(wl.queries.size());
  common::TableWriter table(
      "Query scoring — seed vs raw arrays vs block-compressed "
      "(scalar/SIMD tiers)");
  table.set_columns({"kernel", "us/query", "speedup vs seed"});
  table.add_row({"seed hash-map + materialized top-k",
                 common::TableWriter::fmt(seed_s / n * 1e6, 2), "1.00x"});
  table.add_row({"raw arrays + dense accumulator (PR 1)",
                 common::TableWriter::fmt(raw_s / n * 1e6, 2),
                 common::TableWriter::fmt(seed_s / raw_s, 2) + "x"});
  table.add_row({"block-compressed, scalar tier (PR 2)",
                 common::TableWriter::fmt(block_scalar_s / n * 1e6, 2),
                 common::TableWriter::fmt(seed_s / block_scalar_s, 2) + "x"});
  table.add_row({std::string("block-compressed, ") +
                     simd::tier_name(simd_tier) + " tier (PR 3)",
                 common::TableWriter::fmt(block_simd_s / n * 1e6, 2),
                 common::TableWriter::fmt(seed_s / block_simd_s, 2) + "x"});
  table.print(std::cout);
  std::cout << "  SIMD tier " << simd::tier_name(simd_tier)
            << (simd::tier_compiled(simd_tier) ? "" : " (NOT compiled in)")
            << ": " << common::TableWriter::fmt(block_scalar_s / block_simd_s, 2)
            << "x over the scalar tier\n";

  // Long-postings kernel: df in the thousands so decode + score dominate.
  LongPostingsFixture lp(large_scale() ? 20000 : 8000, 64);
  {
    // Bit-identity across tiers on this shape too (block-spanning lists).
    simd::set_tier(simd::Tier::kScalar);
    std::vector<std::vector<search::ScoredDoc>> ref;
    for (const auto& q : lp.queries) ref.push_back(lp.idx.topk(q, 0, k));
    for (int t = 0; t <= static_cast<int>(simd_tier); ++t) {
      simd::set_tier(static_cast<simd::Tier>(t));
      for (std::size_t q = 0; q < lp.queries.size(); ++q) {
        if (!same_results(lp.idx.topk(lp.queries[q], 0, k), ref[q])) {
          std::cerr << "MISMATCH: long-postings parity at tier "
                    << simd::tier_name(static_cast<simd::Tier>(t)) << "\n";
          return 1;
        }
      }
    }
  }
  const int lp_rounds = large_scale() ? 40 : 20;
  double fsink = 0.0;
  // Kernel-stage times take the best of 3 repetitions per tier: the CI
  // guard compares a single ratio, and min-of-N is the standard way to
  // keep scheduler noise on shared runners out of a hard bound.
  const auto best_kernel = [&](int reps) {
    auto best = lp.time_kernel_rounds(lp_rounds * 2, fsink);
    for (int r = 1; r < reps; ++r) {
      const auto t = lp.time_kernel_rounds(lp_rounds * 2, fsink);
      best.tfidf_s = std::min(best.tfidf_s, t.tfidf_s);
      best.bm25_s = std::min(best.bm25_s, t.bm25_s);
    }
    return best;
  };
  simd::set_tier(simd::Tier::kScalar);
  lp.time_topk_rounds(2, k, sink);  // warm
  const double lp_scalar_s = lp.time_topk_rounds(lp_rounds, k, sink);
  const auto lpk_scalar = best_kernel(3);
  simd::set_tier(simd_tier);
  lp.time_topk_rounds(2, k, sink);
  const double lp_simd_s = lp.time_topk_rounds(lp_rounds, k, sink);
  const auto lpk_simd = best_kernel(3);
  const double lp_posts = static_cast<double>(lp_rounds) *
                          static_cast<double>(lp.postings_per_round);
  const double lpk_posts = 2.0 * lp_posts;
  // Guard ratio: both scorers weighted equally (tf-idf is gather-bound
  // and gains least; BM25's divisions vectorize best).
  const double lpk_scalar_s = lpk_scalar.tfidf_s + lpk_scalar.bm25_s;
  const double lpk_simd_s = lpk_simd.tfidf_s + lpk_simd.bm25_s;
  const double kernel_speedup = lpk_scalar_s / lpk_simd_s;

  common::TableWriter lp_table(
      "Long postings lists — decode+score kernel stage vs full query");
  lp_table.set_columns({"measurement", "ns/posting", "simd speedup"});
  lp_table.add_row(
      {"tf-idf kernel stage, scalar tier",
       common::TableWriter::fmt(lpk_scalar.tfidf_s / lpk_posts * 1e9, 2),
       "1.00x"});
  lp_table.add_row(
      {std::string("tf-idf kernel stage, ") + simd::tier_name(simd_tier),
       common::TableWriter::fmt(lpk_simd.tfidf_s / lpk_posts * 1e9, 2),
       common::TableWriter::fmt(lpk_scalar.tfidf_s / lpk_simd.tfidf_s, 2) +
           "x"});
  lp_table.add_row(
      {"BM25 kernel stage, scalar tier",
       common::TableWriter::fmt(lpk_scalar.bm25_s / lpk_posts * 1e9, 2),
       "1.00x"});
  lp_table.add_row(
      {std::string("BM25 kernel stage, ") + simd::tier_name(simd_tier),
       common::TableWriter::fmt(lpk_simd.bm25_s / lpk_posts * 1e9, 2),
       common::TableWriter::fmt(lpk_scalar.bm25_s / lpk_simd.bm25_s, 2) +
           "x"});
  lp_table.add_row(
      {"full tf-idf top-k, scalar tier",
       common::TableWriter::fmt(lp_scalar_s / lp_posts * 1e9, 2), "1.00x"});
  lp_table.add_row(
      {std::string("full tf-idf top-k, ") + simd::tier_name(simd_tier),
       common::TableWriter::fmt(lp_simd_s / lp_posts * 1e9, 2),
       common::TableWriter::fmt(lp_scalar_s / lp_simd_s, 2) + "x"});
  lp_table.print(std::cout);
  std::cout << "  " << lp.idx.num_docs() << " docs, "
            << lp.postings_per_round
            << " postings per query round; the guard gates the kernel "
               "stage (the accumulate drain is scatter-bound scalar work "
               "in every tier)\n";

  const auto size = idx.size_stats();
  std::cout << "  " << checked << " queries verified identical, sink=" << sink
            << "/" << static_cast<std::uint64_t>(fsink)
            << "\n  index: " << size.postings << " postings, raw "
            << size.raw_bytes << " B -> compressed " << size.compressed_bytes
            << " B (ratio " << common::TableWriter::fmt(size.ratio(), 3)
            << ", " << common::TableWriter::fmt(1.0 / size.ratio(), 2)
            << "x smaller)\n";
  write_json(seed_s / n * 1e6, raw_s / n * 1e6, block_scalar_s / n * 1e6,
             block_simd_s / n * 1e6, simd_tier,
             KernelNs{lpk_scalar.tfidf_s / lpk_posts * 1e9,
                      lpk_simd.tfidf_s / lpk_posts * 1e9,
                      lpk_scalar.bm25_s / lpk_posts * 1e9,
                      lpk_simd.bm25_s / lpk_posts * 1e9},
             kernel_speedup, size, checked);

  if (const char* bound = std::getenv("AT_REQUIRE_RATIO")) {
    const double limit = std::atof(bound);
    if (limit > 0.0 && size.ratio() > limit) {
      std::cerr << "FAIL: index size ratio " << size.ratio() << " exceeds "
                << limit << "\n";
      return 1;
    }
  }
  if (const char* bound = std::getenv("AT_REQUIRE_SIMD_SPEEDUP")) {
    const double limit = std::atof(bound);
    if (simd_tier == simd::Tier::kScalar ||
        !simd::tier_compiled(simd_tier)) {
      std::cout << "  SIMD speedup guard skipped: no SIMD tier available "
                   "(hardware max "
                << simd::tier_name(simd_tier) << ", compiled="
                << (simd::tier_compiled(simd_tier) ? "yes" : "no") << ")\n";
    } else if (limit > 0.0 && kernel_speedup < limit) {
      // The guard gates the long-postings kernel (decode + score bound),
      // not the tiny-list corpus numbers whose per-query overheads the
      // SIMD tiers cannot touch.
      std::cerr << "FAIL: SIMD scoring-kernel speedup " << kernel_speedup
                << " below required " << limit << "\n";
      return 1;
    }
  }
  return 0;
}
