// Before/after microbench for the query-scoring path, three generations:
//  * the seed's hash-map/term-at-a-time scorer (re-allocating an
//    unordered_map per query, then materializing every candidate before
//    top-k selection);
//  * the PR-1 raw-array kernel: dense accumulator + fused top-k over
//    uncompressed u32/f64 posting arrays (rebuilt here as the baseline the
//    codec replaced);
//  * the block-compressed index: delta/varint blocks with quantized tfs
//    decoded on the fly inside the scoring loop.
// Results are checked to match exactly while timing, and the compressed
// vs raw index footprint is reported. Machine-readable output goes to
// BENCH_scoring_kernels.json (override: AT_SCORING_JSON); setting
// AT_REQUIRE_RATIO=<r> turns the size ratio into a hard failure bound so
// CI can gate on compression regressions.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <unordered_map>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "services/search/inverted_index.h"
#include "workload/corpus.h"

namespace at::bench {
namespace {

/// The PR-1 index layout, rebuilt (outside the timed region) from the
/// compressed index: one raw u32 doc array and f64 tf/sqrt-tf arrays per
/// term. The seed kernel and the raw-array accumulator kernel both score
/// over these arrays, so neither baseline pays any decode cost.
struct RawArrayIndex {
  std::vector<std::size_t> term_ptr;
  std::vector<std::uint32_t> post_doc;
  std::vector<double> post_tf;
  std::vector<double> post_sqrt_tf;
  std::vector<double> len_norm;
  std::vector<double> idf;
  std::size_t num_docs = 0;

  explicit RawArrayIndex(const search::InvertedIndex& idx) {
    num_docs = idx.num_docs();
    term_ptr.push_back(0);
    for (std::uint32_t t = 0; t < idx.vocab_size(); ++t) {
      for (const auto& p : idx.postings(t)) {
        post_doc.push_back(p.doc);
        post_tf.push_back(p.tf);
        post_sqrt_tf.push_back(std::sqrt(p.tf));
      }
      term_ptr.push_back(post_doc.size());
      idf.push_back(idx.idf(t));
    }
    len_norm.resize(num_docs);
    for (std::uint32_t d = 0; d < num_docs; ++d) {
      const double len = idx.doc_length(d);
      len_norm[d] = len > 0.0 ? 1.0 / std::sqrt(len) : 0.0;
    }
  }

  /// The seed's score_query, verbatim semantics: per-query unordered_map
  /// accumulation in term order with per-posting sqrt/div recomputation.
  void seed_score_query(const search::InvertedIndex& idx,
                        const std::vector<std::uint32_t>& terms,
                        std::uint64_t base,
                        std::vector<search::ScoredDoc>& out) const {
    std::unordered_map<std::uint32_t, double> acc;
    for (auto term : terms) {
      if (term >= idf.size()) continue;
      const double w = idx.idf(term);
      if (w <= 0.0) continue;
      for (std::size_t i = term_ptr[term]; i < term_ptr[term + 1]; ++i) {
        const std::uint32_t doc = post_doc[i];
        const double len = idx.doc_length(doc);
        const double ln = len > 0.0 ? 1.0 / std::sqrt(len) : 0.0;
        acc[doc] += std::sqrt(post_tf[i]) * w * ln;
      }
    }
    out.reserve(out.size() + acc.size());
    for (const auto& [doc, score] : acc) {
      if (score <= 0.0) continue;
      out.push_back(search::ScoredDoc{score, base + doc});
    }
  }

  std::vector<search::ScoredDoc> topk(const std::vector<std::uint32_t>& terms,
                                      std::uint64_t base, std::size_t k,
                                      search::ScoreAccumulator& acc) const {
    acc.begin(num_docs);
    for (auto term : terms) {
      if (term >= idf.size()) continue;
      const double w = idf[term];
      if (w <= 0.0) continue;
      for (std::size_t i = term_ptr[term]; i < term_ptr[term + 1]; ++i) {
        const std::uint32_t doc = post_doc[i];
        acc.add(doc, post_sqrt_tf[i] * w * len_norm[doc]);
      }
    }
    search::TopK top(k);
    for (auto doc : acc.touched()) {
      const double score = acc.score(doc);
      if (score <= 0.0) continue;
      top.offer(search::ScoredDoc{score, base + doc});
    }
    return top.take();
  }
};

bool same_results(const std::vector<search::ScoredDoc>& a,
                  const std::vector<search::ScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc || a[i].score != b[i].score) return false;
  }
  return true;
}

void write_json(double seed_us, double raw_us, double block_us,
                const search::IndexSizeStats& size, std::size_t checked) {
  const char* path_env = std::getenv("AT_SCORING_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_scoring_kernels.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: could not write " << path << "\n";
    return;
  }
  os << "{\n  \"bench\": \"bench_scoring_kernels\",\n"
     << "  \"scale\": \"" << (large_scale() ? "large" : "small") << "\",\n"
     << "  \"us_per_query\": {\n"
     << "    \"seed_hash_map\": " << seed_us << ",\n"
     << "    \"raw_array_accumulator\": " << raw_us << ",\n"
     << "    \"block_compressed\": " << block_us << "\n  },\n"
     << "  \"index_postings\": " << size.postings << ",\n"
     << "  \"index_raw_bytes\": " << size.raw_bytes << ",\n"
     << "  \"index_compressed_bytes\": " << size.compressed_bytes << ",\n"
     << "  \"index_size_ratio\": " << size.ratio() << ",\n"
     << "  \"parity_queries\": " << checked << "\n}\n";
  std::cout << "  wrote " << path << "\n";
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "scoring kernels",
      "query scoring is the search service's per-request hot path; the "
      "block-compressed index must shrink the postings >=3x while the "
      "decode-on-the-fly scorer stays within a few percent of the raw-array "
      "kernel at identical results.");

  auto ccfg = default_corpus_config();
  ccfg.num_components = 1;
  workload::CorpusGen gen(ccfg);
  auto wl = gen.generate(large_scale() ? 2000 : 800);
  search::InvertedIndex idx(wl.shards[0]);
  RawArrayIndex raw(idx);
  search::ScoreAccumulator raw_acc;

  const int rounds = large_scale() ? 20 : 10;
  const std::size_t k = 10;

  // Warm all paths once, and verify identical top-k output.
  std::size_t checked = 0;
  for (const auto& q : wl.queries) {
    std::vector<search::ScoredDoc> seed_scored;
    raw.seed_score_query(idx, q.terms, 0, seed_scored);
    search::TopK ref(k);
    for (const auto& d : seed_scored) ref.offer(d);
    const auto ref_top = ref.take();
    if (!same_results(idx.topk(q.terms, 0, k), ref_top) ||
        !same_results(raw.topk(q.terms, 0, k, raw_acc), ref_top)) {
      std::cerr << "MISMATCH: scorer parity\n";
      return 1;
    }
    ++checked;
  }

  common::Stopwatch w;
  std::size_t sink = 0;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& q : wl.queries) {
      std::vector<search::ScoredDoc> scored;
      raw.seed_score_query(idx, q.terms, 0, scored);
      search::TopK top(k);
      for (const auto& d : scored) top.offer(d);
      sink += top.take().size();
    }
  }
  const double seed_s = w.elapsed_seconds();

  w.reset();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& q : wl.queries) {
      sink += raw.topk(q.terms, 0, k, raw_acc).size();
    }
  }
  const double raw_s = w.elapsed_seconds();

  w.reset();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& q : wl.queries) {
      sink += idx.topk(q.terms, 0, k).size();
    }
  }
  const double block_s = w.elapsed_seconds();

  const double n =
      static_cast<double>(rounds) * static_cast<double>(wl.queries.size());
  common::TableWriter table(
      "Query scoring — seed hash-map vs raw arrays vs block-compressed");
  table.set_columns({"kernel", "us/query", "speedup vs seed"});
  table.add_row({"seed hash-map + materialized top-k",
                 common::TableWriter::fmt(seed_s / n * 1e6, 2), "1.00x"});
  table.add_row({"raw arrays + dense accumulator (PR 1)",
                 common::TableWriter::fmt(raw_s / n * 1e6, 2),
                 common::TableWriter::fmt(seed_s / raw_s, 2) + "x"});
  table.add_row({"block-compressed, decode-on-the-fly",
                 common::TableWriter::fmt(block_s / n * 1e6, 2),
                 common::TableWriter::fmt(seed_s / block_s, 2) + "x"});
  table.print(std::cout);

  const auto size = idx.size_stats();
  std::cout << "  " << checked << " queries verified identical, sink=" << sink
            << "\n  index: " << size.postings << " postings, raw "
            << size.raw_bytes << " B -> compressed " << size.compressed_bytes
            << " B (ratio " << common::TableWriter::fmt(size.ratio(), 3)
            << ", " << common::TableWriter::fmt(1.0 / size.ratio(), 2)
            << "x smaller)\n";
  write_json(seed_s / n * 1e6, raw_s / n * 1e6, block_s / n * 1e6, size,
             checked);

  if (const char* bound = std::getenv("AT_REQUIRE_RATIO")) {
    const double limit = std::atof(bound);
    if (limit > 0.0 && size.ratio() > limit) {
      std::cerr << "FAIL: index size ratio " << size.ratio() << " exceeds "
                << limit << "\n";
      return 1;
    }
  }
  return 0;
}
