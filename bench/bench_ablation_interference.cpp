// Ablation: where do the latency tails come from, and which technique
// benefits from what?
//
// Runs the CF workload at a moderate (sub-saturation) rate under four
// conditions: {no variance, node-speed heterogeneity only, SWIM
// interference only, both}. Expectations:
//  * with no variance, Basic ~= Reissue (hedging has nothing to cut) and
//    tails are mild;
//  * interference creates the stragglers that request reissue exists for —
//    its advantage over Basic appears only in the interference columns;
//  * AccuracyTrader's bound does not depend on either variance source.
// Also prints the wait-vs-service decomposition of the p99.9.
#include <iostream>

#include "bench/bench_common.h"
#include "workload/swim.h"

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Ablation: variance sources",
      "reissue's benefit exists only when components have unequal "
      "performance (paper §4.3: 'request reissue works best when load is "
      "light and parallel components have different performances').");

  auto fx = make_cf_fixture(25.0, 100, 2);
  auto base = default_sim_config(fx);
  base.session_length_s = 1e9;
  base.detail_every = 1u << 30;
  const double rate = 25.0;  // ~half of exact capacity
  common::Rng rng(3131);
  const auto arrivals = sim::poisson_arrivals(rate, 45.0, rng);

  struct Condition {
    const char* name;
    bool speed_variance;
    bool interference;
  };
  const Condition conditions[] = {
      {"none", false, false},
      {"node speeds only", true, false},
      {"interference only", false, true},
      {"both", true, true},
  };

  common::TableWriter table(
      "p99.9 component latency (ms) by variance source, CF @ 25 req/s");
  table.set_columns({"variance", "Basic", "Request reissue",
                     "AccuracyTrader", "reissue gain vs Basic"});

  for (const auto& cond : conditions) {
    auto cfg = base;
    if (!cond.speed_variance) {
      cfg.node_speed_min = cfg.node_speed_max = 1.0;
    }
    cfg.interference.enabled = cond.interference;
    if (cond.interference) {
      // Replay the *same* SWIM trace for every technique and condition.
      workload::SwimConfig swim;
      cfg.interference_trace = workload::to_interference(
          workload::generate_swim_trace(swim, cfg.num_nodes, 60.0, 555));
    }
    sim::ClusterSim sim(cfg, fx.profiles);
    const auto basic = sim.run(core::Technique::kBasic, arrivals);
    const auto reissue = sim.run(core::Technique::kRequestReissue, arrivals);
    const auto at = sim.run(core::Technique::kAccuracyTrader, arrivals);
    table.add_row(
        {cond.name, common::TableWriter::fmt(basic.p999_component_ms(), 1),
         common::TableWriter::fmt(reissue.p999_component_ms(), 1),
         common::TableWriter::fmt(at.p999_component_ms(), 1),
         common::TableWriter::fmt(
             basic.p999_component_ms() /
                 std::max(1.0, reissue.p999_component_ms()),
             2) +
             "x"});
    if (cond.interference && cond.speed_variance) {
      std::cout << "  [both] wait/service decomposition, p99.9 wait: Basic "
                << common::TableWriter::fmt(
                       basic.subop_wait_ms.percentile(99.9), 1)
                << " ms, AccuracyTrader "
                << common::TableWriter::fmt(at.subop_wait_ms.percentile(99.9),
                                            1)
                << " ms\n";
    }
  }
  table.print(std::cout);
  return 0;
}
