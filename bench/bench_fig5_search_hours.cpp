// Fig. 5: fluctuation of the 99.9th-percentile component latency across
// 1-minute sessions of the search workload in three characteristic hours
// of the diurnal query log: hour 9 (rising), hour 10 (steady), hour 24
// (decaying), for Basic / Request reissue / AccuracyTrader. The first
// column reproduces the arrival-rate panels (Fig. 5(a)(e)(i)).
//
// Expected shape (paper): Basic's tail keeps climbing while load rises
// (queueing compounds); reissue tracks much lower but still far above the
// deadline under load; AccuracyTrader stays flat slightly above 100 ms in
// every session of every hour.
#include <iostream>

#include "bench/bench_common.h"

namespace at::bench {
namespace {

void run_hour(const SearchFixture& fx, const sim::SimConfig& base_cfg,
              const workload::DiurnalProfile& profile, std::size_t hour,
              std::size_t n_sessions) {
  const double duration_s = static_cast<double>(n_sessions) * 60.0;
  common::Rng rng(5000 + hour);
  // Compress the hour: the sessions sweep the hour's full rate profile
  // (hour 9 ramps up, hour 10 stays flat, hour 24 decays) even though
  // only n_sessions minutes are simulated.
  const auto arrivals = sim::nhpp_arrivals(
      [&](double t) {
        return profile.rate_in_hour(hour, t / duration_s * 3600.0);
      },
      profile.peak_rate(), duration_s, rng);

  auto cfg = base_cfg;
  cfg.session_length_s = 60.0;
  cfg.detail_every = 1u << 30;  // latency-only run

  struct Run {
    core::Technique tech;
    sim::SimResult result;
  };
  std::vector<Run> runs;
  for (auto tech : {core::Technique::kBasic, core::Technique::kRequestReissue,
                    core::Technique::kAccuracyTrader}) {
    sim::ClusterSim sim(cfg, fx.profiles);
    runs.push_back({tech, sim.run(tech, arrivals)});
  }

  common::TableWriter table("Fig. 5 — hour " + std::to_string(hour) +
                            ": p99.9 component latency (ms) per session");
  table.set_columns({"session", "arrivals/s", "Basic", "Request reissue",
                     "AccuracyTrader"});
  const std::size_t sessions = runs[0].result.sessions.size();
  for (std::size_t s = 0; s < sessions; ++s) {
    const auto& sess = runs[0].result.sessions[s];
    std::vector<std::string> row{
        std::to_string(s + 1),
        common::TableWriter::fmt(static_cast<double>(sess.requests) / 60.0,
                                 1)};
    for (const auto& run : runs) {
      row.push_back(common::TableWriter::fmt(
          run.result.sessions[s].subop_latency_ms.percentile(99.9), 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Fig. 5",
      "per-session tails: Basic highest and rising with load; reissue "
      "lower but unbounded under stress; AccuracyTrader flat near the "
      "100 ms deadline in all sessions of hours 9, 10 and 24.");

  auto fx = make_search_fixture(12.0, 100);
  const auto isz = fx.service->index_size();
  std::cout << "  shard indexes: " << isz.postings << " postings, raw "
            << isz.raw_bytes << " B -> compressed " << isz.compressed_bytes
            << " B (ratio " << common::TableWriter::fmt(isz.ratio(), 3)
            << ")\n";
  auto scfg = default_sim_config(fx);
  apply_search_imax(scfg, fx);
  const workload::DiurnalProfile profile(100.0);  // peak 100 req/s: busy hours overload exact processing
  const std::size_t n_sessions = large_scale() ? 20 : 5;

  for (std::size_t hour : {9u, 10u, 24u}) {
    run_hour(fx, scfg, profile, hour, n_sessions);
  }
  return 0;
}
