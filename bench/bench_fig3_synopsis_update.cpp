// Fig. 3: synopsis updating cost when i% of the data points are (a) newly
// added or (b) changed, i = 1..10, for both services. Each scenario is
// repeated and the mean wall-clock time reported, alongside the full
// creation time for reference — updates must be much cheaper than
// re-creation, and "changed" must cost more than "added" (delete + insert
// vs. insert only).
#include <atomic>
#include <fstream>
#include <iostream>
#include <thread>

#include "bench/bench_common.h"
#include "bench/seed_reference.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "services/search/component.h"
#include "synopsis/updater.h"

namespace at::bench {
namespace {

constexpr int kRepeats = 3;

/// ROADMAP multi-core scaling curve: mean update cost of a 5% added + 5%
/// changed batch per pool size, 1..nproc (AT_BENCH_THREADS extends the
/// sweep past nproc for oversubscription measurements).
std::vector<std::pair<std::size_t, double>> g_sweep_cf, g_sweep_ws;

/// Epoch-swap serving cost: read-side tail latency while the component is
/// continuously retrained and republished through its RCU epoch slot,
/// against a contention-matched baseline (same retraining CPU burned on a
/// twin component the readers never touch). The ratio isolates what the
/// publish pointer swap itself costs in-flight queries; AT_REQUIRE_SWAP_
/// READ_RATIO turns it into a CI no-blocking guard.
struct SwapLatencyResult {
  std::uint64_t publishes = 0;
  std::uint64_t reads_baseline = 0, reads_retraining = 0;
  double update_p50_ms = 0.0, update_p99_ms = 0.0;
  double read_p99_baseline_ms = 0.0, read_p99_retraining_ms = 0.0;
  double ratio() const {
    return read_p99_baseline_ms > 0.0
               ? read_p99_retraining_ms / read_p99_baseline_ms
               : 0.0;
  }
};
SwapLatencyResult g_swap;

struct Scenario {
  synopsis::SparseRows rows;
  synopsis::BuildConfig cfg;
  synopsis::AggregationKind kind;
  std::function<synopsis::SparseVector(common::Rng&)> sample_point;
};

double time_update(const Scenario& base, double add_frac, double change_frac,
                   std::uint64_t seed, double* dirty_fraction,
                   common::ThreadPool* pool) {
  // Fresh build per measurement so updates do not compound.
  synopsis::SparseRows rows = base.rows;
  auto structure = synopsis::SynopsisBuilder(base.cfg).build(rows);
  auto syn = synopsis::aggregate_all(rows, structure.index, base.kind);

  common::Rng rng(seed);
  synopsis::UpdateBatch batch;
  const auto n = rows.rows();
  const auto n_add = static_cast<std::size_t>(add_frac * n);
  const auto n_change = static_cast<std::size_t>(change_frac * n);
  for (std::size_t i = 0; i < n_add; ++i)
    batch.added.push_back(base.sample_point(rng));
  for (std::size_t i = 0; i < n_change; ++i) {
    batch.changed.emplace_back(
        static_cast<std::uint32_t>(rng.uniform_index(n)),
        base.sample_point(rng));
  }

  synopsis::SynopsisUpdater updater(base.cfg);
  const auto report =
      updater.apply(structure, rows, syn, batch, base.kind, pool);
  if (dirty_fraction != nullptr) {
    *dirty_fraction = report.groups_after
                          ? static_cast<double>(report.dirty_groups) /
                                static_cast<double>(report.groups_after)
                          : 0.0;
  }
  return report.seconds;
}

/// Before/after comparison of the SVD fold-in kernel itself on a 10% add
/// batch: the seed's scalar interleaved loop vs the cached-residual
/// row-kernel, sequential and on a 4-thread pool (both new variants are
/// bit-identical; see ParallelSvd.FoldInParallelBitIdenticalToSequential).
void report_foldin_kernel(const char* name, const Scenario& scenario) {
  synopsis::SparseRows rows = scenario.rows;
  auto structure = synopsis::SynopsisBuilder(scenario.cfg).build(rows);
  common::Rng rng(4242);
  const auto first_new = static_cast<std::uint32_t>(rows.rows());
  const auto n_add = std::max<std::size_t>(1, rows.rows() / 10);
  for (std::size_t i = 0; i < n_add; ++i)
    rows.add_row(scenario.sample_point(rng));
  const auto tail = rows.tail_dataset(first_new);

  common::Stopwatch w;
  auto seed_model = structure.svd;
  seed_fold_in_rows(seed_model, tail, scenario.cfg.svd);
  const double seed_s = w.elapsed_seconds();

  w.reset();
  auto seq_model = structure.svd;
  linalg::fold_in_rows(seq_model, tail, scenario.cfg.svd);
  const double seq_s = w.elapsed_seconds();

  common::ThreadPool pool(4);
  w.reset();
  auto par_model = structure.svd;
  linalg::fold_in_rows(par_model, tail, scenario.cfg.svd, &pool);
  const double par_s = w.elapsed_seconds();

  common::TableWriter table(std::string("SVD fold-in kernel (10% adds), ") +
                            name);
  table.set_columns({"kernel", "seconds", "speedup vs seed"});
  table.add_row({"seed scalar", common::TableWriter::fmt(seed_s, 4), "1.00x"});
  table.add_row({"cached residual (1 thr)", common::TableWriter::fmt(seq_s, 4),
                 common::TableWriter::fmt(seed_s / seq_s, 2) + "x"});
  table.add_row({"cached residual (4 thr)", common::TableWriter::fmt(par_s, 4),
                 common::TableWriter::fmt(seed_s / par_s, 2) + "x"});
  table.print(std::cout);
}

void report_thread_sweep(const char* name, const Scenario& scenario,
                         std::vector<std::pair<std::size_t, double>>* out) {
  const std::size_t max_threads = sweep_max_threads();
  common::TableWriter table(
      std::string("Update thread sweep (5% added + 5% changed), ") + name);
  table.set_columns({"threads", "seconds", "speedup vs 1 thr"});
  out->clear();
  for (std::size_t threads = 1; threads <= max_threads; ++threads) {
    common::ThreadPool pool(threads);
    double mean = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      mean += time_update(scenario, 0.05, 0.05, 5000 + rep, nullptr, &pool);
    }
    mean /= kRepeats;
    out->emplace_back(threads, mean);
    table.add_row({std::to_string(threads), common::TableWriter::fmt(mean, 4),
                   common::TableWriter::fmt(out->front().second / mean, 2) +
                       "x"});
  }
  table.print(std::cout);
}

/// One measurement phase: reader threads query `read_comp` flat out while
/// this thread applies `publishes` changes-only retraining batches to
/// `write_comp` back to back (no sleeps — the writer IS the contention).
/// Passing the same component as both measures serving under continuous
/// epoch swaps; passing a twin measures the contention-matched baseline.
/// Changes-only batches keep the corpus size constant, so both phases
/// scan identical row counts and the read p99 ratio is size-fair.
void swap_phase(const workload::CorpusGen& gen,
                search::SearchComponent* read_comp,
                search::SearchComponent* write_comp, std::size_t publishes,
                std::uint64_t seed, common::PercentileTracker* reads,
                common::PercentileTracker* updates) {
  constexpr std::size_t kReaders = 2;
  std::atomic<bool> done{false};
  std::vector<common::PercentileTracker> per_reader(kReaders);
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      common::Rng rng(seed * 131 + r);
      std::size_t hits = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto query = gen.sample_query(rng);
        const search::SearchRequest req{query.terms};
        common::Stopwatch w;
        const auto snap = read_comp->snapshot();  // pin one epoch
        hits += snap->exact_topk(req, 10).size();
        per_reader[r].add(w.elapsed_ms());
      }
      if (hits == static_cast<std::size_t>(-1)) std::abort();  // keep live
    });
  }

  common::Rng wrng(seed);
  const auto rows = write_comp->num_docs();
  for (std::size_t i = 0; i < publishes; ++i) {
    synopsis::UpdateBatch batch;
    for (int c = 0; c < 4; ++c) {
      batch.changed.emplace_back(
          static_cast<std::uint32_t>(wrng.uniform_index(rows)),
          gen.sample_doc(wrng));
    }
    common::Stopwatch w;
    write_comp->update(batch);
    updates->add(w.elapsed_ms());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  for (const auto& p : per_reader) reads->merge(p);
}

void report_epoch_swap() {
  auto ccfg = default_corpus_config();
  ccfg.num_components = 1;
  workload::CorpusGen gen(ccfg);
  auto wl_live = gen.generate(0);
  auto wl_twin = gen.generate(0);  // identical shard for the baseline writer
  const auto bcfg = default_build_config(12.0);
  search::SearchComponent live(std::move(wl_live.shards[0]), 0, bcfg);
  search::SearchComponent twin(std::move(wl_twin.shards[0]), 0, bcfg);

  const std::size_t publishes = large_scale() ? 32 : 12;
  constexpr int kPhaseRepeats = 3;  // best-of, like the fan-out parity guard
  const auto v0 = live.epoch_version();

  common::PercentileTracker base_all, retrain_all, live_updates,
      twin_updates;
  double best_base = 0.0, best_retrain = 0.0;
  for (int rep = 0; rep < kPhaseRepeats; ++rep) {
    common::PercentileTracker r;
    swap_phase(gen, &live, &twin, publishes, 8100 + rep, &r, &twin_updates);
    if (rep == 0 || r.p99() < best_base) best_base = r.p99();
    base_all.merge(r);
  }
  for (int rep = 0; rep < kPhaseRepeats; ++rep) {
    common::PercentileTracker r;
    swap_phase(gen, &live, &live, publishes, 9100 + rep, &r, &live_updates);
    if (rep == 0 || r.p99() < best_retrain) best_retrain = r.p99();
    retrain_all.merge(r);
  }
  if (live.epoch_version() != v0 + kPhaseRepeats * publishes) {
    std::cerr << "FAIL: epoch version did not advance once per publish\n";
    std::exit(1);
  }

  g_swap.publishes = kPhaseRepeats * publishes;
  g_swap.reads_baseline = base_all.count();
  g_swap.reads_retraining = retrain_all.count();
  g_swap.update_p50_ms = live_updates.median();
  g_swap.update_p99_ms = live_updates.p99();
  g_swap.read_p99_baseline_ms = best_base;
  g_swap.read_p99_retraining_ms = best_retrain;

  common::TableWriter table(
      "Epoch-swap serving cost, web search (2 readers vs retraining "
      "writer; best p99 of 3 runs)");
  table.set_columns(
      {"phase", "reads", "read p50 ms", "read p99 ms", "publish p99 ms"});
  table.add_row({"baseline (twin contention)",
                 std::to_string(base_all.count()),
                 common::TableWriter::fmt(base_all.median(), 3),
                 common::TableWriter::fmt(best_base, 3), "-"});
  table.add_row({"continuous retraining",
                 std::to_string(retrain_all.count()),
                 common::TableWriter::fmt(retrain_all.median(), 3),
                 common::TableWriter::fmt(best_retrain, 3),
                 common::TableWriter::fmt(live_updates.p99(), 3)});
  table.print(std::cout);
  std::cout << "  read p99 ratio (retraining / baseline): "
            << common::TableWriter::fmt(g_swap.ratio(), 2)
            << "x over " << g_swap.publishes << " publishes\n";
}

/// Machine-readable scaling record (ROADMAP asks for the curves). Path
/// override: AT_FIG3_JSON.
void write_json() {
  const char* path_env = std::getenv("AT_FIG3_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_fig3_synopsis_update.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: could not write " << path << "\n";
    return;
  }
  const auto emit = [&os](const char* name,
                          const std::vector<std::pair<std::size_t, double>>&
                              sweep,
                          const char* tail) {
    os << "  \"" << name << "\": ";
    write_sweep_json(os, sweep);
    os << tail << "\n";
  };
  os << "{\n  \"bench\": \"bench_fig3_synopsis_update\",\n"
     << "  \"scale\": \"" << (large_scale() ? "large" : "small") << "\",\n"
     << "  \"batch\": \"5pct_added_plus_5pct_changed\",\n"
     << "  \"epoch_swap\": {\"publishes\": " << g_swap.publishes
     << ", \"update_p50_ms\": " << g_swap.update_p50_ms
     << ", \"update_p99_ms\": " << g_swap.update_p99_ms
     << ", \"read_p99_no_retrain_ms\": " << g_swap.read_p99_baseline_ms
     << ", \"read_p99_retraining_ms\": " << g_swap.read_p99_retraining_ms
     << ", \"read_p99_ratio\": " << g_swap.ratio() << "},\n";
  emit("cf_update_seconds_by_threads", g_sweep_cf, ",");
  emit("search_update_seconds_by_threads", g_sweep_ws, "");
  os << "}\n";
  std::cout << "  wrote " << path << "\n";
}

void run_service(const char* name, const Scenario& scenario) {
  common::ThreadPool pool;
  common::Stopwatch w;
  auto structure = synopsis::SynopsisBuilder(scenario.cfg).build(scenario.rows);
  auto syn =
      synopsis::aggregate_all(scenario.rows, structure.index, scenario.kind);
  const double creation_s = w.elapsed_seconds();

  common::TableWriter table(std::string("Fig. 3 — synopsis updating, ") +
                            name);
  table.set_columns({"i%", "added: seconds", "added: dirty groups",
                     "changed: seconds", "changed: dirty groups"});
  for (int i = 1; i <= 10; ++i) {
    double add_s = 0.0, change_s = 0.0, add_dirty = 0.0, change_dirty = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      double d = 0.0;
      add_s += time_update(scenario, i / 100.0, 0.0,
                           1000 * i + rep, &d, &pool);
      add_dirty += d;
      change_s += time_update(scenario, 0.0, i / 100.0,
                              2000 * i + rep, &d, &pool);
      change_dirty += d;
    }
    add_s /= kRepeats;
    change_s /= kRepeats;
    table.add_row({std::to_string(i), common::TableWriter::fmt(add_s, 4),
                   common::TableWriter::fmt(add_dirty / kRepeats, 3),
                   common::TableWriter::fmt(change_s, 4),
                   common::TableWriter::fmt(change_dirty / kRepeats, 3)});
  }
  table.print(std::cout);
  std::cout << "  full creation: " << common::TableWriter::fmt(creation_s, 3)
            << " s (updates above should be well below this)\n";
  report_foldin_kernel(name, scenario);
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Fig. 3",
      "(i) every update finishes much faster than full synopsis creation; "
      "(ii) 'changed' scenarios cost more than 'added' ones (node deletion "
      "+ insertion vs. insertion only); cost grows with i.");

  {
    auto wcfg = default_rating_config();
    wcfg.num_components = 1;
    workload::RatingWorkloadGen gen(wcfg);
    auto wl = gen.generate(0, 0);
    Scenario s{std::move(wl.subsets[0]), default_build_config(25.0),
               synopsis::AggregationKind::kMean,
               [gen](common::Rng& rng) { return gen.sample_user(rng); }};
    run_service("CF recommender", s);
    report_thread_sweep("CF recommender", s, &g_sweep_cf);
  }
  {
    auto ccfg = default_corpus_config();
    ccfg.num_components = 1;
    workload::CorpusGen gen(ccfg);
    auto wl = gen.generate(0);
    Scenario s{std::move(wl.shards[0]), default_build_config(12.0),
               synopsis::AggregationKind::kMerge,
               [gen](common::Rng& rng) { return gen.sample_doc(rng); }};
    run_service("web search", s);
    report_thread_sweep("web search", s, &g_sweep_ws);
  }
  report_epoch_swap();
  write_json();

  // CI guard: with AT_REQUIRE_SWAP_READ_RATIO set (e.g. 1.5), read p99
  // under continuous retraining must stay within that factor of the
  // contention-matched baseline — queries never block on an epoch
  // publish; the swap is a pointer exchange, not a lock.
  if (const char* bound_env = std::getenv("AT_REQUIRE_SWAP_READ_RATIO")) {
    const double bound = std::atof(bound_env);
    if (!(bound > 0.0) || g_swap.ratio() > bound) {
      std::cerr << "FAIL: retraining/baseline read p99 ratio "
                << common::TableWriter::fmt(g_swap.ratio(), 3)
                << " exceeds bound " << bound_env << "\n";
      return 1;
    }
    std::cout << "  swap read-p99 guard OK: ratio "
              << common::TableWriter::fmt(g_swap.ratio(), 3)
              << " <= " << bound_env << "\n";
  }
  return 0;
}
