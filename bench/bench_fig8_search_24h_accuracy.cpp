// Fig. 8: hourly accuracy losses of Partial execution vs. AccuracyTrader
// over the 24-hour diurnal search workload (same deadline).
//
// Expected shape (paper): partial execution's loss swings with the
// diurnal load and reaches catastrophic levels in busy hours;
// AccuracyTrader's loss stays an order of magnitude smaller all day
// (13.85x mean reduction).
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Fig. 8",
      "hourly losses: partial execution tracks load and collapses in busy "
      "hours; AccuracyTrader stays small all 24 hours (paper: 13.85x mean "
      "loss reduction).");

  auto fx = make_search_fixture(12.0, 300);
  auto scfg = default_sim_config(fx);
  apply_search_imax(scfg, fx);
  scfg.session_length_s = 1e9;
  const workload::DiurnalProfile profile(100.0);
  const double hour_duration_s = large_scale() ? 360.0 : 90.0;

  common::TableWriter table(
      "Fig. 8 — 24-hour workload: hourly accuracy loss (%)");
  table.set_columns(
      {"hour", "mean rate (req/s)", "Partial execution", "AccuracyTrader"});

  double partial_sum = 0.0, at_sum = 0.0;
  for (std::size_t hour = 1; hour <= 24; ++hour) {
    common::Rng rng(8000 + hour);
    const auto arrivals = sim::nhpp_arrivals(
        [&](double t) {
          return profile.rate_in_hour(hour, t / hour_duration_s * 3600.0);
        },
        profile.peak_rate(), hour_duration_s, rng);

    auto cfg = scfg;
    cfg.detail_every = detail_stride(arrivals.size(), 120);
    sim::ClusterSim sim(cfg, fx.profiles);

    const auto partial_sim =
        sim.run(core::Technique::kPartialExecution, arrivals);
    const auto partial = replay_search_accuracy(
        fx, core::Technique::kPartialExecution, partial_sim, 120);
    const auto at_sim = sim.run(core::Technique::kAccuracyTrader, arrivals);
    const auto at = replay_search_accuracy(
        fx, core::Technique::kAccuracyTrader, at_sim, 120);

    partial_sum += partial.loss_pct;
    at_sum += at.loss_pct;
    table.add_row({std::to_string(hour),
                   common::TableWriter::fmt(profile.hourly_mean(hour), 1),
                   common::TableWriter::fmt(partial.loss_pct, 2),
                   common::TableWriter::fmt(at.loss_pct, 2)});
  }
  table.print(std::cout);
  if (at_sum > 0.0) {
    std::cout << "  mean loss reduction vs partial execution: "
              << common::TableWriter::fmt(partial_sum / at_sum, 1)
              << "x (paper: 13.85x)\n";
  }
  return 0;
}
