// Ablation: does the correlation-based ranking of aggregated data points
// actually matter? We fix the per-component set budget and compare three
// improvement orders:
//   ranked      — Algorithm 1's descending-correlation order,
//   random      — sets processed in a seeded random order,
//   anti-ranked — ascending correlation (adversarial).
// If the synopsis correlations carry signal (Fig. 4), ranked must beat
// random, which must beat anti-ranked, at every budget below "all sets".
#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "core/algorithm1.h"
#include "services/search/topk.h"

namespace at::bench {
namespace {

enum class Order { kRanked, kRandom, kAntiRanked };

std::vector<std::size_t> make_order(const std::vector<double>& correlations,
                                    Order order, common::Rng& rng) {
  auto ranked = core::rank_by_correlation(correlations);
  switch (order) {
    case Order::kRanked:
      return ranked;
    case Order::kAntiRanked:
      std::reverse(ranked.begin(), ranked.end());
      return ranked;
    case Order::kRandom:
      for (std::size_t i = ranked.size(); i > 1; --i) {
        std::swap(ranked[i - 1], ranked[rng.uniform_index(i)]);
      }
      return ranked;
  }
  return ranked;
}

double cf_loss(const CfFixture& fx, std::size_t sets, Order order) {
  common::Rng rng(42);
  const double range = fx.service->rating_range();
  std::vector<double> approx, exact;
  const std::size_t n = std::min<std::size_t>(fx.requests.size(), 150);
  for (std::size_t r = 0; r < n; ++r) {
    const auto& req = fx.requests[r];
    reco::CfPartial merged;
    for (std::size_t c = 0; c < fx.service->num_components(); ++c) {
      const auto work = fx.service->component(c).analyze(req);
      const auto ord = make_order(work.correlations, order, rng);
      merged.merge(work.after_sets(ord, sets));
    }
    approx.push_back(
        reco::predict(req, merged, fx.service->min_rating(),
                      fx.service->max_rating()));
    exact.push_back(fx.service->predict_exact(req));
  }
  std::vector<double> actuals(fx.actuals.begin(), fx.actuals.begin() + n);
  const double a_ex = reco::accuracy_from_rmse(
      reco::rmse(exact, actuals, range), range);
  const double a_ap = reco::accuracy_from_rmse(
      reco::rmse(approx, actuals, range), range);
  return reco::accuracy_loss_pct(a_ex, a_ap);
}

double search_loss(const SearchFixture& fx, std::size_t sets, Order order) {
  common::Rng rng(42);
  double acc = 0.0;
  const std::size_t n = std::min<std::size_t>(fx.queries.size(), 150);
  for (std::size_t q = 0; q < n; ++q) {
    const auto& query = fx.queries[q];
    const auto actual = fx.service->exact_topk(query);
    search::TopK top(fx.service->k());
    for (std::size_t c = 0; c < fx.service->num_components(); ++c) {
      const auto work = fx.service->component(c).analyze(query);
      const auto ord = make_order(work.correlations, order, rng);
      const std::size_t take = std::min(sets, ord.size());
      for (std::size_t i = 0; i < take; ++i) {
        for (const auto& d : work.scored_by_group[ord[i]]) top.offer(d);
      }
    }
    acc += search::topk_overlap(top.take(), actual);
  }
  return (1.0 - acc / static_cast<double>(n)) * 100.0;
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Ablation: improvement order",
      "Algorithm 1's correlation ranking should dominate random and "
      "anti-ranked orders at every set budget — this isolates the value "
      "of the synopsis correlation estimates (Fig. 4's implication).");

  auto cf = make_cf_fixture(25.0, 150, 2);
  auto se = make_search_fixture(12.0, 200);

  for (const char* service : {"CF recommender", "web search"}) {
    common::TableWriter table(
        std::string("Accuracy loss (%) by improvement order — ") + service);
    table.set_columns({"sets processed", "ranked (Algorithm 1)",
                       "random order", "anti-ranked"});
    for (std::size_t sets : {1u, 2u, 4u, 8u}) {
      std::vector<std::string> row{std::to_string(sets)};
      for (Order o : {Order::kRanked, Order::kRandom, Order::kAntiRanked}) {
        const double loss = service[0] == 'C' ? cf_loss(cf, sets, o)
                                              : search_loss(se, sets, o);
        row.push_back(common::TableWriter::fmt(loss, 2));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return 0;
}
