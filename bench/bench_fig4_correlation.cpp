// Fig. 4: do aggregated data points with higher estimated correlations
// really correspond to the original data points most related to result
// accuracy?
//
// (a) Recommender: rank each component's aggregated users by |Pearson
//     weight| to 1,000 active users; split the ranking into 10 sections;
//     report each section's average percentage of "highly related"
//     original users (|weight| > 0.8). Paper: 95.03% in section 1 decaying
//     to 22.00% in section 10.
// (b) Search: rank aggregated pages by similarity score to 1,000 queries;
//     report each section's share of the actual top-10 pages. Paper:
//     78% / 14.17% / 4.33% / 1.67% in sections 1-4, <1.17% beyond.
#include <iostream>
#include <unordered_set>

#include "bench/bench_common.h"
#include "core/algorithm1.h"

namespace at::bench {
namespace {

constexpr std::size_t kSections = 10;

void run_recommender() {
  // Tighter taste clusters than the load benchmarks: the paper's |w|>0.8
  // "highly related" threshold presumes MovieLens-like user similarity
  // (long rating histories, strong co-rating overlap), so this experiment
  // uses longer histories, continuous ratings and lower noise.
  auto wcfg = default_rating_config();
  wcfg.ratings_per_user_min = 80;
  wcfg.ratings_per_user_max = 140;
  wcfg.noise_stddev = 0.3;
  wcfg.cluster_affinity_stddev = 1.4;
  wcfg.integer_ratings = false;
  wcfg.num_clusters = 8;  // well separated in the rank-3 reduced space
  // Ratio 10 keeps the leaf level (~60 groups/component) selected, so the
  // 10 ranking sections are well populated.
  auto fx = make_cf_fixture(10.0, 200, 2, &wcfg);
  const std::size_t n_requests =
      std::min<std::size_t>(fx.requests.size(), large_scale() ? 1000 : 250);

  std::vector<double> section_sum(kSections, 0.0);
  std::vector<std::size_t> section_cnt(kSections, 0);

  for (std::size_t r = 0; r < n_requests; ++r) {
    const auto& req = fx.requests[r];
    for (std::size_t c = 0; c < fx.service->num_components(); ++c) {
      const auto& comp = fx.service->component(c);
      const auto work = comp.analyze(req);
      const auto ranked = core::rank_by_correlation(work.correlations);
      const auto& groups = comp.structure().index.groups();
      for (std::size_t pos = 0; pos < ranked.size(); ++pos) {
        const std::size_t section = pos * kSections / ranked.size();
        const auto& members = groups[ranked[pos]].members;
        std::size_t highly = 0;
        for (auto u : members) {
          if (std::abs(comp.user_weight(req, u)) > 0.8) ++highly;
        }
        section_sum[section] += members.empty()
                                    ? 0.0
                                    : 100.0 * static_cast<double>(highly) /
                                          static_cast<double>(members.size());
        section_cnt[section] += 1;
      }
    }
  }

  common::TableWriter table(
      "Fig. 4(a) — % of highly related original users per ranked section");
  table.set_columns({"section", "% highly related (|w| > 0.8)"});
  for (std::size_t s = 0; s < kSections; ++s) {
    table.add_row({std::to_string(s + 1),
                   common::TableWriter::fmt(
                       section_cnt[s] ? section_sum[s] / section_cnt[s] : 0.0,
                       2)});
  }
  table.print(std::cout);
}

void run_search() {
  auto fx = make_search_fixture(12.0, large_scale() ? 1000 : 300);

  std::vector<double> section_hits(kSections, 0.0);
  double total_hits = 0.0;

  for (const auto& query : fx.queries) {
    // Actual top-10 over the whole corpus.
    const auto actual = fx.service->exact_topk(query);
    std::unordered_set<std::uint64_t> actual_ids;
    for (const auto& d : actual) actual_ids.insert(d.doc);
    if (actual_ids.empty()) continue;

    for (std::size_t c = 0; c < fx.service->num_components(); ++c) {
      const auto& comp = fx.service->component(c);
      const auto work = comp.analyze(query);
      const auto ranked = core::rank_by_correlation(work.correlations);
      const auto& groups = comp.structure().index.groups();
      for (std::size_t pos = 0; pos < ranked.size(); ++pos) {
        const std::size_t section = pos * kSections / ranked.size();
        for (auto m : groups[ranked[pos]].members) {
          if (actual_ids.count(comp.doc_id_base() + m)) {
            section_hits[section] += 1.0;
            total_hits += 1.0;
          }
        }
      }
    }
  }

  common::TableWriter table(
      "Fig. 4(b) — share of actual top-10 pages per ranked section");
  table.set_columns({"section", "% of actual top-10 pages"});
  double cumulative_top4 = 0.0;
  for (std::size_t s = 0; s < kSections; ++s) {
    const double pct =
        total_hits > 0.0 ? 100.0 * section_hits[s] / total_hits : 0.0;
    if (s < 4) cumulative_top4 += pct;
    table.add_row({std::to_string(s + 1), common::TableWriter::fmt(pct, 2)});
  }
  table.print(std::cout);
  std::cout << "  top 40% of ranked sections hold "
            << common::TableWriter::fmt(cumulative_top4, 2)
            << "% of the actual top-10 pages (paper: >98.83%)\n";
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at::bench;
  print_paper_note(
      "Fig. 4",
      "higher-ranked aggregated points contain far more accuracy-relevant "
      "originals; the percentage decays monotonically across sections "
      "(95.03% -> 22.00% for users; 78% / 14% / 4% / 2% then <1.2% for "
      "pages).");
  run_recommender();
  run_search();
  return 0;
}
