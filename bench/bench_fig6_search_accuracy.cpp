// Fig. 6: percentage accuracy losses of Partial execution vs.
// AccuracyTrader across the sessions of hours 9, 10 and 24 of the diurnal
// search workload (same 100 ms deadline for both).
//
// Expected shape (paper): both losses track the arrival rate, but
// AccuracyTrader's stay a small fraction of partial execution's — partial
// skips whole components once their queues blow the deadline, while
// AccuracyTrader degrades gracefully by processing fewer ranked sets.
#include <iostream>
#include <map>

#include "bench/bench_common.h"

namespace at::bench {
namespace {

struct SessionLoss {
  double arrivals_per_s = 0.0;
  double partial_loss = 0.0;
  double at_loss = 0.0;
};

/// Replays accuracy per 60 s session from the sampled details.
std::map<std::size_t, search::SearchEvalResult> per_session_accuracy(
    const SearchFixture& fx, core::Technique tech,
    const sim::SimResult& result) {
  std::map<std::size_t, std::vector<const sim::RequestDetail*>> by_session;
  for (const auto& d : result.details) {
    by_session[static_cast<std::size_t>(d.submit_ms / 1e3 / 60.0)]
        .push_back(&d);
  }
  std::map<std::size_t, search::SearchEvalResult> out;
  for (const auto& [session, details] : by_session) {
    std::vector<search::SearchRequest> reqs;
    std::vector<std::vector<core::ComponentOutcome>> outcomes;
    for (std::size_t k = 0; k < details.size(); ++k) {
      reqs.push_back(fx.queries[k % fx.queries.size()]);
      outcomes.push_back(details[k]->outcomes);
    }
    out[session] = fx.service->evaluate(
        reqs, tech, [&outcomes](std::size_t r) { return outcomes[r]; });
  }
  return out;
}

void run_hour(const SearchFixture& fx, const sim::SimConfig& base_cfg,
              const workload::DiurnalProfile& profile, std::size_t hour,
              std::size_t n_sessions) {
  const double duration_s = static_cast<double>(n_sessions) * 60.0;
  common::Rng rng(6000 + hour);
  // Compress the hour: the sessions sweep the hour's full rate profile
  // (hour 9 ramps up, hour 10 stays flat, hour 24 decays) even though
  // only n_sessions minutes are simulated.
  const auto arrivals = sim::nhpp_arrivals(
      [&](double t) {
        return profile.rate_in_hour(hour, t / duration_s * 3600.0);
      },
      profile.peak_rate(), duration_s, rng);

  auto cfg = base_cfg;
  cfg.session_length_s = 60.0;
  cfg.detail_every =
      detail_stride(arrivals.size(), n_sessions * 40);  // ~40 per session

  sim::ClusterSim sim(cfg, fx.profiles);
  const auto partial_sim =
      sim.run(core::Technique::kPartialExecution, arrivals);
  const auto at_sim = sim.run(core::Technique::kAccuracyTrader, arrivals);

  const auto partial = per_session_accuracy(
      fx, core::Technique::kPartialExecution, partial_sim);
  const auto at =
      per_session_accuracy(fx, core::Technique::kAccuracyTrader, at_sim);

  common::TableWriter table("Fig. 6 — hour " + std::to_string(hour) +
                            ": accuracy loss (%) per session");
  table.set_columns(
      {"session", "arrivals/s", "Partial execution", "AccuracyTrader"});
  for (std::size_t s = 0; s < partial_sim.sessions.size(); ++s) {
    const double rate =
        static_cast<double>(partial_sim.sessions[s].requests) / 60.0;
    const double p_loss =
        partial.count(s) ? partial.at(s).loss_pct : 0.0;
    const double a_loss = at.count(s) ? at.at(s).loss_pct : 0.0;
    table.add_row({std::to_string(s + 1), common::TableWriter::fmt(rate, 1),
                   common::TableWriter::fmt(p_loss, 2),
                   common::TableWriter::fmt(a_loss, 2)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace at::bench

int main() {
  using namespace at;
  using namespace at::bench;

  print_paper_note(
      "Fig. 6",
      "losses fluctuate with the arrival rate; AccuracyTrader's stay far "
      "below partial execution's in every session of hours 9, 10, 24.");

  auto fx = make_search_fixture(12.0, 300);
  auto scfg = default_sim_config(fx);
  apply_search_imax(scfg, fx);
  const workload::DiurnalProfile profile(100.0);
  const std::size_t n_sessions = large_scale() ? 15 : 4;

  for (std::size_t hour : {9u, 10u, 24u}) {
    run_hour(fx, scfg, profile, hour, n_sessions);
  }
  return 0;
}
