// at_replay: scripted replay driver against a running at_server.
//
// Drives a deterministic query stream from N concurrent clients and prints
// the aggregated report (per-tier p50/p99 latency, shed rate, transport
// errors) as JSON to stdout — the payload the CI smoke job and
// BENCH_serving.json consume. Exit code 0 iff every call was eventually
// answered (shed-then-retried is fine; exhausted retries are not) and no
// server error was returned, unless --allow-errors is given (fault
// injection runs expect some).
//
// Flags: --port N       (required) server port
//        --clients N    concurrent clients (default 4)
//        --requests N   requests per client (default 50)
//        --deadline MS  per-request deadline (default 100)
//        --reco-frac P  fraction [0,1] of recommend ops (default 0.1)
//        --update-mix P fraction [0,1] of online-retraining update ops,
//                       interleaved with the query load from the same
//                       seeded stream (default 0 — queries only)
//        --update-adds N    rows added per update batch (default 4)
//        --update-changes N rows changed per update batch (default 4)
//        --components N corpus shards — must match the server (default 8)
//        --docs N       docs per component — must match (default 200)
//        --seed N       replay stream seed (default 7)
//        --allow-errors tolerate shed-exhaustion / error responses
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "server/replay.h"

namespace {

long arg_long(int argc, char** argv, const char* name, long def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  return def;
}

double arg_double(int argc, char** argv, const char* name, double def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  return def;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace at;

  const long port = arg_long(argc, argv, "--port", 0);
  if (port <= 0) {
    std::cerr << "at_replay: --port is required\n";
    return 2;
  }

  server::ReplayConfig cfg;
  cfg.port = static_cast<std::uint16_t>(port);
  cfg.num_clients = static_cast<std::size_t>(arg_long(argc, argv, "--clients", 4));
  cfg.requests_per_client =
      static_cast<std::size_t>(arg_long(argc, argv, "--requests", 50));
  cfg.deadline_ms =
      static_cast<std::uint32_t>(arg_long(argc, argv, "--deadline", 100));
  cfg.recommend_fraction = arg_double(argc, argv, "--reco-frac", 0.1);
  cfg.update_fraction = arg_double(argc, argv, "--update-mix", 0.0);
  cfg.update_adds = static_cast<std::uint32_t>(
      arg_long(argc, argv, "--update-adds", 4));
  cfg.update_changes = static_cast<std::uint32_t>(
      arg_long(argc, argv, "--update-changes", 4));
  cfg.seed = static_cast<std::uint64_t>(arg_long(argc, argv, "--seed", 7));
  cfg.corpus.num_components =
      static_cast<std::size_t>(arg_long(argc, argv, "--components", 8));
  cfg.update_components =
      static_cast<std::uint32_t>(cfg.corpus.num_components);
  cfg.corpus.docs_per_component =
      static_cast<std::size_t>(arg_long(argc, argv, "--docs", 200));
  cfg.corpus.seed = 20160816;  // same stream the server was built from

  const auto report = server::run_replay(cfg);
  std::cout << report.to_json() << std::endl;

  if (arg_flag(argc, argv, "--allow-errors")) return 0;
  if (report.failures > 0 || report.server_errors > 0) {
    std::cerr << "at_replay: " << report.failures << " failed calls, "
              << report.server_errors << " server errors\n";
    return 1;
  }
  return 0;
}
