#!/usr/bin/env sh
# clang-format helper (ISSUE 7 satellite).
#
#   tools/format.sh            rewrite all tracked C++ sources in place
#   tools/format.sh --check    exit 1 if any file needs formatting (CI)
#   tools/format.sh [files..]  format (or --check) just those files
#
# Degrades gracefully: exits 0 with a notice when clang-format is not
# installed (the format-check CI step provides it).
set -eu
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format.sh: $CLANG_FORMAT not found; skipping (CI enforces format)"
  exit 0
fi

MODE=write
if [ "${1:-}" = "--check" ]; then
  MODE=check
  shift
fi

if [ "$#" -gt 0 ]; then
  FILES="$*"
else
  # Default scope: the files the ISSUE 7 formatting pass covered (the
  # concurrency layer + linter). Widen as more of the tree is formatted;
  # pass explicit paths to format anything else.
  FILES=$(git ls-files \
      'src/common/thread_annotations.h' 'src/common/thread_pool.*' \
      'src/common/sharded_executor.*' 'src/common/failpoint.cpp' \
      'src/common/logging.cpp' 'src/core/runtime.*' 'src/core/fanout.cpp' \
      'src/server/*.cpp' 'src/server/*.h' \
      'src/services/search/query_cache.*' 'tools/atlint/*.cpp')
fi

if [ "$MODE" = "check" ]; then
  # --dry-run --Werror: non-zero exit on any file that would change.
  # shellcheck disable=SC2086
  $CLANG_FORMAT --dry-run --Werror $FILES
  echo "format.sh: all files clean"
else
  # shellcheck disable=SC2086
  $CLANG_FORMAT -i $FILES
  echo "format.sh: formatted"
fi
