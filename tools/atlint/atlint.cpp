// atlint — project-invariant linter (ISSUE 7 tentpole, part 2).
//
// Enforces the repo-specific invariants the compiler cannot see:
//
//   failpoint-registry  every failpoint site literal in src/ and tools/ is
//                       unique and listed in tools/lint/failpoints.txt
//                       (AT_FAILPOINTS typos become lint errors); every
//                       registry entry is used. Dynamic sites built from a
//                       literal prefix register as "<prefix>*".
//   atac-tags           every ATAC artifact kind written anywhere appears
//                       exactly once in tools/lint/atac_tags.txt with its
//                       version and an existing golden fixture (version
//                       bumps must check in a new golden); every chunk 4-CC
//                       is registered exactly once; unused entries are
//                       errors.
//   simd-dispatch       every kernel slot declared in src/common/simd.h
//                       has an entry in each dispatch table (scalar,
//                       sse42 + fallback, avx2 + fallback).
//   banned-rand         rand() and default-seeded std::mt19937 outside
//                       tests/ — all randomness flows through common/rng.h
//                       so runs are reproducible.
//   banned-sleep        std::this_thread::sleep_for outside tests/ and the
//                       failpoint delay engine — sleeps hide scheduling
//                       bugs the deadline logic must instead surface.
//   memcpy-guard        memcpy in src/server/ (the protocol frame codec)
//                       without a sizeof-bearing size guard on the call or
//                       within the preceding 8 lines.
//   env-prefix          getenv of a variable not starting with AT_.
//
// Any rule is suppressed at one site by `// atlint: allow(<rule>)` on the
// same line or the line above.
//
// Usage:
//   atlint --root <repo-root>      lint the tree; exit 1 on any violation
//   atlint --selftest <fixtures>   run every tests/lint fixture: clean/
//                                  must pass, each bad_<rule>/ must fail
//                                  mentioning [<rule>]
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct SourceFile {
  std::string rel;                  // path relative to the lint root
  std::vector<std::string> lines;   // 0-based
};

struct Linter {
  fs::path root;
  std::vector<SourceFile> files;
  int violations = 0;

  void report(const std::string& rule, const SourceFile& f, std::size_t line,
              const std::string& what) {
    std::cerr << f.rel << ":" << (line + 1) << ": [" << rule << "] " << what
              << "\n";
    ++violations;
  }
  void report_global(const std::string& rule, const std::string& what) {
    std::cerr << "(registry): [" << rule << "] " << what << "\n";
    ++violations;
  }

  // `// atlint: allow(<rule>)` on the flagged line or the line above.
  static bool allowed(const SourceFile& f, std::size_t line,
                      const std::string& rule) {
    const std::string marker = "atlint: allow(" + rule + ")";
    if (f.lines[line].find(marker) != std::string::npos) return true;
    return line > 0 && f.lines[line - 1].find(marker) != std::string::npos;
  }
};

bool has_suffix(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

bool has_prefix(const std::string& s, const std::string& pre) {
  return s.compare(0, pre.size(), pre) == 0;
}

bool in_dir(const std::string& rel, const std::string& dir) {
  return has_prefix(rel, dir + "/");
}

// The string literal starting at s[i] == '"'; returns false on newline-
// spanning or unterminated literals (never appears in flagged constructs).
bool read_literal(const std::string& s, std::size_t i, std::string* out,
                  std::size_t* end) {
  std::string lit;
  for (std::size_t j = i + 1; j < s.size(); ++j) {
    if (s[j] == '\\') {
      if (j + 1 < s.size()) lit += s[++j];
      continue;
    }
    if (s[j] == '"') {
      *out = lit;
      *end = j + 1;
      return true;
    }
    lit += s[j];
  }
  return false;
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0)
    ++i;
  return i;
}

// ---------------------------------------------------------------------------
// Walking
// ---------------------------------------------------------------------------

bool lintable(const std::string& rel) {
  if (!(has_suffix(rel, ".cpp") || has_suffix(rel, ".h"))) return false;
  // The linter's own sources (this file names every banned construct) and
  // the negative fixtures are not part of the linted tree.
  if (in_dir(rel, "tools/atlint") || in_dir(rel, "tests/lint")) return false;
  return in_dir(rel, "src") || in_dir(rel, "tests") || in_dir(rel, "bench") ||
         in_dir(rel, "tools");
}

void load_tree(Linter* lint) {
  for (const char* top : {"src", "tests", "bench", "tools"}) {
    const fs::path dir = lint->root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      const std::string rel =
          fs::relative(e.path(), lint->root).generic_string();
      if (!lintable(rel)) continue;
      SourceFile f;
      f.rel = rel;
      std::ifstream is(e.path());
      std::string line;
      while (std::getline(is, line)) f.lines.push_back(line);
      lint->files.push_back(std::move(f));
    }
  }
  std::sort(lint->files.begin(), lint->files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
}

// ---------------------------------------------------------------------------
// failpoint-registry
// ---------------------------------------------------------------------------

void rule_failpoints(Linter* lint) {
  const char* kRule = "failpoint-registry";
  // Registry: one site name per line; '#' comments; a trailing '*' marks a
  // literal prefix used to build dynamic site names.
  std::set<std::string> registered, used_entries;
  {
    std::ifstream is(lint->root / "tools" / "lint" / "failpoints.txt");
    std::string line;
    while (std::getline(is, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                  line.back())) != 0)
        line.pop_back();
      if (line.empty()) continue;
      if (!registered.insert(line).second)
        lint->report_global(kRule, "duplicate registry entry '" + line + "'");
    }
  }

  std::map<std::string, std::string> first_site;  // literal -> file:line
  for (const auto& f : lint->files) {
    // Tests arm ad-hoc sites ("unit.a") on purpose; only production code
    // participates.
    if (!(in_dir(f.rel, "src") || in_dir(f.rel, "tools"))) continue;
    for (std::size_t ln = 0; ln < f.lines.size(); ++ln) {
      const std::string& s = f.lines[ln];
      for (const char* call :
           {"AT_FAILPOINT(", "failpoint::check(", "failpoint::check_throw("}) {
        for (std::size_t pos = s.find(call); pos != std::string::npos;
             pos = s.find(call, pos + 1)) {
          std::size_t i = skip_ws(s, pos + std::string(call).size());
          std::string name;
          std::size_t end = 0;
          // A dynamic site's literal prefix may start on the next line.
          const SourceFile& file = f;
          std::size_t name_ln = ln;
          if (i >= s.size() && ln + 1 < f.lines.size()) {
            name_ln = ln + 1;
            i = skip_ws(f.lines[name_ln], 0);
          }
          const std::string& ns = file.lines[name_ln];
          // Dynamic sites parenthesize their concatenation:
          // check_throw(("prefix" + suffix).c_str()).
          while (i < ns.size() && ns[i] == '(') i = skip_ws(ns, i + 1);
          if (i >= ns.size() || ns[i] != '"') continue;
          if (!read_literal(ns, i, &name, &end)) continue;
          const bool dynamic =
              skip_ws(ns, end) < ns.size() && ns[skip_ws(ns, end)] == '+';
          const std::string key = dynamic ? name + "*" : name;
          if (Linter::allowed(file, name_ln, kRule)) continue;
          if (registered.count(key) == 0) {
            lint->report(kRule, file, name_ln,
                         "failpoint site '" + key +
                             "' is not in tools/lint/failpoints.txt");
          } else {
            used_entries.insert(key);
          }
          if (!dynamic) {
            const std::string here =
                file.rel + ":" + std::to_string(name_ln + 1);
            auto [it, fresh] = first_site.emplace(name, here);
            if (!fresh)
              lint->report(kRule, file, name_ln,
                           "failpoint site '" + name +
                               "' already defined at " + it->second);
          }
        }
      }
    }
  }
  for (const auto& entry : registered) {
    if (used_entries.count(entry) == 0)
      lint->report_global(
          kRule, "registry entry '" + entry + "' has no code site");
  }
}

// ---------------------------------------------------------------------------
// atac-tags
// ---------------------------------------------------------------------------

void rule_atac(Linter* lint) {
  const char* kRule = "atac-tags";
  // Registry lines: `kind <4CC> <version> <golden-path>` | `chunk <4CC>`.
  std::map<std::string, std::uint64_t> kind_version;
  std::map<std::string, std::string> kind_golden;
  std::set<std::string> chunks, used_kinds, used_chunks;
  {
    std::ifstream is(lint->root / "tools" / "lint" / "atac_tags.txt");
    std::string line;
    while (std::getline(is, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ss(line);
      std::string tag, cc;
      if (!(ss >> tag)) continue;
      if (tag == "kind") {
        std::uint64_t ver = 0;
        std::string golden;
        if (!(ss >> cc >> ver >> golden) || cc.size() != 4) {
          lint->report_global(kRule, "malformed kind entry: " + line);
          continue;
        }
        if (!kind_version.emplace(cc, ver).second) {
          lint->report_global(kRule, "duplicate kind entry '" + cc + "'");
          continue;
        }
        kind_golden[cc] = golden;
        if (!fs::exists(lint->root / golden))
          lint->report_global(kRule, "kind " + cc + " v" +
                                         std::to_string(ver) +
                                         ": golden fixture '" + golden +
                                         "' does not exist (a version bump "
                                         "must check one in)");
      } else if (tag == "chunk") {
        if (!(ss >> cc) || cc.size() != 4) {
          lint->report_global(kRule, "malformed chunk entry: " + line);
          continue;
        }
        if (!chunks.insert(cc).second)
          lint->report_global(kRule, "duplicate chunk entry '" + cc + "'");
      } else {
        lint->report_global(kRule, "unknown entry kind '" + tag + "'");
      }
    }
  }

  for (const auto& f : lint->files) {
    if (!in_dir(f.rel, "src")) continue;
    for (std::size_t ln = 0; ln < f.lines.size(); ++ln) {
      const std::string& s = f.lines[ln];
      // ArtifactWriter w(os, "KIND", version)
      const std::size_t wpos = s.find("ArtifactWriter ");
      if (wpos != std::string::npos) {
        const std::size_t q = s.find('"', wpos);
        std::string cc;
        std::size_t end = 0;
        if (q != std::string::npos && read_literal(s, q, &cc, &end) &&
            cc.size() == 4 && !Linter::allowed(f, ln, kRule)) {
          std::size_t i = skip_ws(s, end);
          std::uint64_t ver = 0;
          bool have_ver = false;
          if (i < s.size() && s[i] == ',') {
            i = skip_ws(s, i + 1);
            while (i < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
              ver = ver * 10 + static_cast<std::uint64_t>(s[i] - '0');
              have_ver = true;
              ++i;
            }
          }
          auto it = kind_version.find(cc);
          if (it == kind_version.end()) {
            lint->report(kRule, f, ln,
                         "artifact kind '" + cc +
                             "' is not in tools/lint/atac_tags.txt");
          } else {
            used_kinds.insert(cc);
            if (have_ver && it->second != ver)
              lint->report(kRule, f, ln,
                           "artifact kind '" + cc + "' written at v" +
                               std::to_string(ver) + " but registered v" +
                               std::to_string(it->second) +
                               " (bump the registry and golden together)");
          }
        }
      }
      // Writer and reader chunk sites: w.chunk("4CC", ...) / r.chunk("4CC")
      for (const char* call : {".chunk(\""}) {
        for (std::size_t pos = s.find(call); pos != std::string::npos;
             pos = s.find(call, pos + 1)) {
          std::string cc;
          std::size_t end = 0;
          const std::size_t q = pos + std::string(call).size() - 1;
          if (!read_literal(s, q, &cc, &end) || cc.size() != 4) continue;
          if (Linter::allowed(f, ln, kRule)) continue;
          if (chunks.count(cc) == 0) {
            lint->report(kRule, f, ln,
                         "chunk tag '" + cc +
                             "' is not in tools/lint/atac_tags.txt");
          } else {
            used_chunks.insert(cc);
          }
        }
      }
    }
  }
  for (const auto& [cc, ver] : kind_version) {
    (void)ver;
    if (used_kinds.count(cc) == 0)
      lint->report_global(kRule, "registered kind '" + cc +
                                     "' has no writer in src/");
  }
  for (const auto& cc : chunks) {
    if (used_chunks.count(cc) == 0)
      lint->report_global(kRule, "registered chunk '" + cc +
                                     "' has no code site");
  }
}

// ---------------------------------------------------------------------------
// simd-dispatch
// ---------------------------------------------------------------------------

std::size_t count_occurrences(const std::string& s, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t pos = s.find(pat); pos != std::string::npos;
       pos = s.find(pat, pos + 1))
    ++n;
  return n;
}

void rule_simd(Linter* lint) {
  const char* kRule = "simd-dispatch";
  const SourceFile* header = nullptr;
  for (const auto& f : lint->files) {
    if (f.rel == "src/common/simd.h") header = &f;
  }
  if (header == nullptr) return;  // fixture trees without the SIMD layer

  // Kernel slots: function-pointer fields inside `struct Kernels { ... };`.
  std::size_t slots = 0;
  bool in_struct = false;
  for (const auto& s : header->lines) {
    if (s.find("struct Kernels {") != std::string::npos) in_struct = true;
    if (!in_struct) continue;
    slots += count_occurrences(s, "(*");
    if (s.find("};") != std::string::npos) break;
  }
  if (slots == 0) {
    lint->report(kRule, *header, 0, "struct Kernels declares no kernels");
    return;
  }

  // Dispatch tables: `const Kernels k<Tier> = { &entry, ... };` — one
  // &-entry per slot, in every tier TU.
  const char* kTables[] = {"kScalarKernels", "kSse42Kernels", "kSse42Fallback",
                           "kAvx2Kernels", "kAvx2Fallback"};
  for (const char* table : kTables) {
    bool found = false;
    for (const auto& f : lint->files) {
      if (!has_prefix(f.rel, "src/common/simd")) continue;
      for (std::size_t ln = 0; ln < f.lines.size(); ++ln) {
        if (f.lines[ln].find(std::string("Kernels ") + table + " = {") ==
            std::string::npos)
          continue;
        found = true;
        std::size_t entries = 0;
        for (std::size_t j = ln; j < f.lines.size(); ++j) {
          entries += count_occurrences(f.lines[j], "&");
          if (f.lines[j].find("};") != std::string::npos) break;
        }
        if (entries != slots)
          lint->report(kRule, f, ln,
                       std::string(table) + " has " +
                           std::to_string(entries) + " entries but simd.h "
                           "declares " + std::to_string(slots) +
                           " kernel slots");
      }
    }
    if (!found)
      lint->report_global(kRule, std::string("dispatch table ") + table +
                                     " not found under src/common/");
  }
}

// ---------------------------------------------------------------------------
// Banned patterns
// ---------------------------------------------------------------------------

bool word_at(const std::string& s, std::size_t pos, std::size_t len) {
  const bool left_ok =
      pos == 0 || (std::isalnum(static_cast<unsigned char>(s[pos - 1])) == 0 &&
                   s[pos - 1] != '_');
  const std::size_t after = pos + len;
  const bool right_ok =
      after >= s.size() ||
      (std::isalnum(static_cast<unsigned char>(s[after])) == 0 &&
       s[after] != '_');
  return left_ok && right_ok;
}

void rule_banned(Linter* lint) {
  for (const auto& f : lint->files) {
    const bool is_test = in_dir(f.rel, "tests");
    for (std::size_t ln = 0; ln < f.lines.size(); ++ln) {
      const std::string& s = f.lines[ln];

      if (!is_test) {
        // banned-rand: rand() and default-seeded std::mt19937 — all
        // production randomness flows through common/rng.h.
        const std::size_t rp = s.find("rand()");
        if (rp != std::string::npos && word_at(s, rp, 4) &&
            !Linter::allowed(f, ln, "banned-rand"))
          lint->report("banned-rand", f, ln,
                       "rand() is banned; use common/rng.h");
        for (std::size_t mp = s.find("std::mt19937");
             mp != std::string::npos; mp = s.find("std::mt19937", mp + 1)) {
          // Default-construction only: `std::mt19937 g;` / `mt19937 g{};`
          std::size_t i = mp + std::string("std::mt19937").size();
          if (i < s.size() && s[i] == '_') i += 3;  // _64
          i = skip_ws(s, i);
          while (i < s.size() &&
                 (std::isalnum(static_cast<unsigned char>(s[i])) != 0 ||
                  s[i] == '_'))
            ++i;
          i = skip_ws(s, i);
          const bool unseeded =
              i >= s.size() || s[i] == ';' ||
              (s[i] == '{' && i + 1 < s.size() && s[i + 1] == '}');
          if (unseeded && !Linter::allowed(f, ln, "banned-rand"))
            lint->report("banned-rand", f, ln,
                         "default-seeded std::mt19937 is banned; seed it or "
                         "use common/rng.h");
        }

        // banned-sleep: the failpoint delay engine is the one legitimate
        // production sleep (it implements injected delays).
        if (f.rel != "src/common/failpoint.cpp" &&
            s.find("sleep_for") != std::string::npos &&
            !Linter::allowed(f, ln, "banned-sleep"))
          lint->report("banned-sleep", f, ln,
                       "sleep_for outside tests/failpoints; wait on a "
                       "condition instead");
      }

      // memcpy-guard: frame codec copies must be visibly bounded.
      if (in_dir(f.rel, "src/server")) {
        const std::size_t mp = s.find("memcpy");
        if (mp != std::string::npos && word_at(s, mp, 6) &&
            !Linter::allowed(f, ln, "memcpy-guard")) {
          bool guarded = false;
          const std::size_t lo = ln >= 8 ? ln - 8 : 0;
          for (std::size_t j = lo; j <= ln && !guarded; ++j)
            guarded = f.lines[j].find("sizeof") != std::string::npos;
          if (!guarded)
            lint->report("memcpy-guard", f, ln,
                         "memcpy in the frame codec without a sizeof-bearing "
                         "size guard within 8 lines");
        }
      }

      // env-prefix: applies everywhere, tests included.
      for (std::size_t gp = s.find("getenv("); gp != std::string::npos;
           gp = s.find("getenv(", gp + 1)) {
        std::size_t i = skip_ws(s, gp + std::string("getenv(").size());
        std::string name;
        std::size_t end = 0;
        if (i < s.size() && s[i] == '"' && read_literal(s, i, &name, &end) &&
            !has_prefix(name, "AT_") && !Linter::allowed(f, ln, "env-prefix"))
          lint->report("env-prefix", f, ln,
                       "environment variable '" + name +
                           "' must use the AT_ prefix");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

int run_lint(const fs::path& root) {
  Linter lint;
  lint.root = root;
  if (!fs::exists(root)) {
    std::cerr << "atlint: no such root: " << root << "\n";
    return 2;
  }
  load_tree(&lint);
  rule_failpoints(&lint);
  rule_atac(&lint);
  rule_simd(&lint);
  rule_banned(&lint);
  if (lint.violations > 0) {
    std::cerr << "atlint: " << lint.violations << " violation(s) under "
              << root << "\n";
    return 1;
  }
  std::cout << "atlint: clean (" << lint.files.size() << " files)\n";
  return 0;
}

// Each fixture under <dir> is a miniature repo root. clean/ must lint
// clean; every bad_<rule>/ must fail with its rule id in the output.
int run_selftest(const fs::path& dir) {
  int failures = 0;
  std::size_t fixtures = 0;
  std::vector<fs::path> entries;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.is_directory()) entries.push_back(e.path());
  std::sort(entries.begin(), entries.end());
  for (const auto& path : entries) {
    const std::string name = path.filename().string();
    ++fixtures;
    // Capture the lint report so expected-failure noise stays out of the
    // selftest log (and so the rule id can be asserted on).
    std::ostringstream captured;
    std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
    const int rc = run_lint(path);
    std::cerr.rdbuf(old);
    if (name == "clean") {
      if (rc != 0) {
        std::cerr << "selftest: clean fixture failed:\n" << captured.str();
        ++failures;
      }
      continue;
    }
    if (name.rfind("bad_", 0) != 0) {
      std::cerr << "selftest: unexpected fixture dir '" << name
                << "' (want clean/ or bad_<rule>/)\n";
      ++failures;
      continue;
    }
    std::string rule = name.substr(4);
    std::replace(rule.begin(), rule.end(), '_', '-');
    if (rc == 0) {
      std::cerr << "selftest: " << name << " should have failed\n";
      ++failures;
    } else if (captured.str().find("[" + rule + "]") == std::string::npos) {
      std::cerr << "selftest: " << name << " failed without firing [" << rule
                << "]:\n"
                << captured.str();
      ++failures;
    }
  }
  if (fixtures == 0) {
    std::cerr << "selftest: no fixtures under " << dir << "\n";
    return 2;
  }
  if (failures > 0) {
    std::cerr << "selftest: " << failures << "/" << fixtures
              << " fixtures failed\n";
    return 1;
  }
  std::cout << "selftest: " << fixtures << " fixtures ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--root")
    return run_lint(argv[2]);
  if (argc == 3 && std::string(argv[1]) == "--selftest")
    return run_selftest(argv[2]);
  std::cerr << "usage: atlint --root <repo-root> | --selftest <fixture-dir>\n";
  return 2;
}
