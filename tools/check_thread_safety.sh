#!/usr/bin/env sh
# Thread-safety gate sanity check (ISSUE 7 acceptance criterion): proves
# the Clang analysis is actually armed by compiling the deliberate
# violation in tests/lint/thread_safety_negative.cpp and requiring it to
# FAIL. A toolchain where that file compiles would silently pass every
# real violation too.
#
# Usage: tools/check_thread_safety.sh [clang++-binary]
# Exits 0 when the gate works, 1 when the violation slipped through,
# 77 (the automake SKIP code) when no clang is available.
set -eu
cd "$(dirname "$0")/.."

CLANG="${1:-clang++}"
if ! command -v "$CLANG" >/dev/null 2>&1; then
  echo "check_thread_safety: $CLANG not found; skipping (gate runs in the" \
       "clang-analysis CI job)"
  exit 77
fi

FLAGS="-std=c++20 -Isrc -Wthread-safety -Werror -fsyntax-only"

# The violation must fail ...
if $CLANG $FLAGS tests/lint/thread_safety_negative.cpp 2>/dev/null; then
  echo "check_thread_safety: FAIL — the unguarded access compiled; the" \
       "thread-safety gate is not armed"
  exit 1
fi

# ... for the right reason (the analysis, not some unrelated error), and a
# guarded-only version of the same code must compile.
if ! $CLANG $FLAGS tests/lint/thread_safety_negative.cpp 2>&1 |
    grep -q "requires holding mutex"; then
  echo "check_thread_safety: FAIL — compile failed without a thread-safety" \
       "diagnostic"
  exit 1
fi
if ! $CLANG $FLAGS -DAT_TS_NEGATIVE_GUARDED_ONLY=1 -x c++ - <<'EOF'
#include "common/thread_annotations.h"
at::common::Mutex mu;
int value AT_GUARDED_BY(mu) = 0;
int read_guarded() {
  at::common::MutexLock lock(mu);
  return value;
}
EOF
then
  echo "check_thread_safety: FAIL — correctly guarded code did not compile"
  exit 1
fi

echo "check_thread_safety: OK — gate armed ($CLANG)"
exit 0
