// at_standby: warm-standby replica binary for CI takeover smoke runs and
// manual drills.
//
// Loads the checkpoint written by at_server --ckpt-dir, tails the delta
// directory, and waits for signals:
//
//   SIGUSR1        promote: stop tailing, drain remaining deltas, start
//                  serving. Prints "PROMOTED <port>" (parsed by scripts).
//   SIGTERM/SIGINT shut down cleanly and print the final stats JSON
//                  ({"standby": ..., "server": ...}) to stdout.
//
// Startup line (parsed by scripts):  TAILING
// A failed promotion (resync required) prints "RESYNC_REQUIRED <reason>"
// and exits 2.
//
// Flags: --ckpt-dir P    checkpoint directory (required)
//        --delta-dir P   delta directory to tail (required)
//        --port N        port the promoted server binds (default 0)
//        --poll-ms N     tailer poll interval (default 20)
//        --queue N       admission bound per group once promoted
//        --deadline MS   default deadline once promoted
//        --emit-deltas   promoted server keeps emitting deltas into the
//                        tailed directory, continuing the primary's chain
//
// Fault injection: arm failpoints via AT_FAILPOINTS (standby.apply,
// standby.promote; see README).
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "server/standby.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_promote = 0;
void handle_stop(int) { g_stop = 1; }
void handle_promote(int) { g_promote = 1; }

long arg_long(int argc, char** argv, const char* name, long def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  return def;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

std::string arg_str(int argc, char** argv, const char* name,
                    const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace at;

  server::StandbyConfig cfg;
  cfg.checkpoint_dir = arg_str(argc, argv, "--ckpt-dir", "");
  cfg.delta_dir = arg_str(argc, argv, "--delta-dir", "");
  cfg.poll_interval_ms =
      static_cast<double>(arg_long(argc, argv, "--poll-ms", 20));
  cfg.server.port =
      static_cast<std::uint16_t>(arg_long(argc, argv, "--port", 0));
  cfg.server.max_queue_per_group =
      static_cast<std::size_t>(arg_long(argc, argv, "--queue", 64));
  cfg.server.default_deadline_ms =
      static_cast<double>(arg_long(argc, argv, "--deadline", 100));
  if (arg_flag(argc, argv, "--emit-deltas")) cfg.server.delta_dir = cfg.delta_dir;
  if (cfg.checkpoint_dir.empty() || cfg.delta_dir.empty()) {
    std::cerr << "at_standby: --ckpt-dir and --delta-dir are required\n";
    return 1;
  }

  server::StandbyReplica standby(cfg);
  try {
    standby.load();
    standby.start();
  } catch (const std::exception& e) {
    std::cerr << "at_standby: " << e.what() << "\n";
    return 1;
  }

  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);
  std::signal(SIGUSR1, handle_promote);
  std::cout << "TAILING" << std::endl;

  while (g_stop == 0) {
    if (g_promote != 0) {
      g_promote = 0;
      try {
        server::Server& srv = standby.promote();
        std::cout << "PROMOTED " << srv.port() << std::endl;
      } catch (const std::exception& e) {
        std::cout << "RESYNC_REQUIRED " << e.what() << std::endl;
        std::cout << standby.stats_json() << std::endl;
        return 2;
      }
    }
    // atlint: allow(banned-sleep) — signal-wait poll in the binary's main.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server::Server* promoted = standby.server();
  const std::string server_json =
      promoted != nullptr ? promoted->stats_json() : "null";
  standby.stop();
  std::cout << "{\"standby\": " << standby.stats_json()
            << ", \"server\": " << server_json << "}" << std::endl;
  return 0;
}
