// at_server: standalone serving binary for CI smoke runs and manual poking.
//
// Builds a synthetic search corpus (plus a small CF recommender), starts
// the deadline-aware server and blocks until SIGTERM/SIGINT, then shuts
// down cleanly and prints the final serving stats JSON to stdout.
//
// Startup line (parsed by scripts):  LISTENING <port>
//
// Flags: --port N        bind port (default 0 = ephemeral)
//        --components N  shard components (default 8)
//        --docs N        docs per component (default 200)
//        --queue N       admission bound per group (default 64)
//        --deadline MS   default deadline for requests that carry none
//        --no-reco       skip building the recommender
//        --delta-dir P   emit one DLTA delta artifact per epoch publish
//                        into directory P (warm-standby tailing; see
//                        README "Online retraining & epochs")
//        --ckpt-dir P    write a full warm-standby checkpoint (SCMP/RCMP
//                        per component + the global idf) into directory P
//                        right after startup; prints "CHECKPOINT <dir>"
//
// Fault injection: arm failpoints via AT_FAILPOINTS (see README).
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/sharded_executor.h"
#include "server/server.h"
#include "services/recommender/service.h"
#include "services/search/service.h"
#include "workload/corpus.h"
#include "workload/ratings.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

long arg_long(int argc, char** argv, const char* name, long def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  return def;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

std::string arg_str(int argc, char** argv, const char* name,
                    const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace at;

  const long port = arg_long(argc, argv, "--port", 0);
  const long components = arg_long(argc, argv, "--components", 8);
  const long docs = arg_long(argc, argv, "--docs", 200);
  const long queue = arg_long(argc, argv, "--queue", 64);
  const long deadline = arg_long(argc, argv, "--deadline", 100);
  const bool no_reco = arg_flag(argc, argv, "--no-reco");
  const std::string delta_dir = arg_str(argc, argv, "--delta-dir", "");
  const std::string ckpt_dir = arg_str(argc, argv, "--ckpt-dir", "");

  // Search corpus + service.
  workload::CorpusConfig ccfg;
  ccfg.num_components = static_cast<std::size_t>(components);
  ccfg.docs_per_component = static_cast<std::size_t>(docs);
  ccfg.seed = 20160816;
  workload::CorpusGen gen(ccfg);
  auto wl = gen.generate(16);  // the 16 queries seed calibration

  synopsis::BuildConfig bcfg;
  bcfg.svd.rank = 3;
  bcfg.svd.epochs_per_dim = 30;
  bcfg.size_ratio = 12.0;

  std::vector<search::SearchComponent> comps;
  std::uint64_t base = 0;
  for (auto& shard : wl.shards) {
    const auto n = shard.rows();
    comps.emplace_back(std::move(shard), base, bcfg);
    base += n;
  }
  search::SearchService search(std::move(comps), 10);
  common::ShardedExecutor exec;
  search.set_executor(&exec);

  // Small CF recommender so the recommend op is live.
  std::unique_ptr<reco::CfService> reco;
  if (!no_reco) {
    workload::RatingConfig rcfg;
    rcfg.num_components = 4;
    rcfg.users_per_component = 120;
    rcfg.num_items = 256;
    rcfg.seed = 20160816;
    workload::RatingWorkloadGen rgen(rcfg);
    auto rwl = rgen.generate(8, 1);
    std::vector<reco::RecommenderComponent> rcomps;
    for (auto& subset : rwl.subsets) rcomps.emplace_back(std::move(subset), bcfg);
    reco = std::make_unique<reco::CfService>(std::move(rcomps),
                                             rcfg.min_rating, rcfg.max_rating);
    reco->set_executor(&exec);
  }

  server::ServerConfig scfg;
  scfg.port = static_cast<std::uint16_t>(port);
  scfg.max_queue_per_group = static_cast<std::size_t>(queue);
  scfg.default_deadline_ms = static_cast<double>(deadline);
  scfg.delta_dir = delta_dir;
  scfg.calibration_queries = wl.queries;

  server::Server server(search, reco.get(), exec, scfg);
  try {
    server.start();
    if (!ckpt_dir.empty()) {
      server.write_checkpoint(ckpt_dir);
      std::cout << "CHECKPOINT " << ckpt_dir << std::endl;
    }
  } catch (const std::exception& e) {
    std::cerr << "at_server: " << e.what() << "\n";
    return 1;
  }

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::cout << "LISTENING " << server.port() << std::endl;

  while (g_stop == 0)
    // atlint: allow(banned-sleep) — signal-wait poll in the binary's main.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server.stop();
  std::cout << server.stats_json() << std::endl;
  return 0;
}
