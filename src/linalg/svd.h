// Incremental SVD (Funk-style stochastic gradient descent) for the
// dimensionality reduction in synopsis creation step 1.
//
// The paper uses Simon Funk's incremental SVD [5][17]: latent dimensions
// are trained one at a time, each for a fixed number of epochs over the
// observed entries, against the residual left by previously trained
// dimensions. The transformed dataset is the row-factor matrix P (u x j):
// each original data point's low-dimensional feature vector. Per-epoch
// cost is O(#entries), independent of the dense u x v size, which is what
// lets the paper finish the transform "within a few seconds".
//
// Two layout/scheduling optimizations over the textbook loop:
//  * the residual left by the already-trained dimensions is cached per
//    entry and updated once per dimension, so each SGD step costs O(1)
//    instead of O(d) dot-product work;
//  * epochs can run hogwild-style across contiguous entry shards on a
//    thread pool (SvdConfig::deterministic = false); the default
//    deterministic mode keeps the exact sequential entry order so results
//    are reproducible and independent of the pool.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/sharded_executor.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"

namespace at::linalg {

struct SvdConfig {
  /// Target dimensionality j (the paper uses 3).
  std::size_t rank = 3;
  /// Training epochs per latent dimension (the paper uses 100).
  std::size_t epochs_per_dim = 100;
  /// SGD learning rate.
  double learning_rate = 0.01;
  /// L2 regularization strength.
  double regularization = 0.02;
  /// Initial factor value scale.
  double init_scale = 0.1;
  /// Seed for factor initialization and entry shuffling.
  std::uint64_t seed = 42;
  /// Stop a dimension's training early once the epoch RMSE improvement
  /// drops below this threshold (0 disables early stopping).
  double min_improvement = 0.0;
  /// Train a global mean plus per-row/per-column bias terms alongside the
  /// factors (Funk's full model). Biases absorb systematic offsets (e.g.
  /// generous raters, popular items) so the latent factors concentrate on
  /// interaction structure — usually a better reduction for grouping.
  bool use_biases = false;
  /// When true (the default), SGD epochs process entries in the sequential
  /// row-major order regardless of any thread pool, so factors are
  /// bit-reproducible. When false and a pool is passed, epochs run
  /// hogwild-style across entry shards: racy but convergent, and the
  /// factor races are the only nondeterminism (fold-in stays exact either
  /// way because rows train independently).
  bool deterministic = true;
};

/// Result of a factorization:
///   dataset ~= global_mean + row_bias + col_bias + row_factors *
///   col_factors^T
/// (bias terms are zero/empty unless trained with use_biases).
struct SvdModel {
  Matrix row_factors;  // u x j : the reduced representation of data points
  Matrix col_factors;  // v x j
  double global_mean = 0.0;
  std::vector<double> row_bias;  // empty when biases are unused
  std::vector<double> col_bias;
  double train_rmse = 0.0;

  bool has_biases() const { return !row_bias.empty(); }

  /// Predicted value of cell (r, c).
  double predict(std::size_t r, std::size_t c) const;
};

/// Artifact-store persistence of a model (kind "SVDM"): biases and both
/// factor matrices go through the chosen f64 codec, every chunk is
/// CRC-checked. The loader also accepts the legacy "ATSV" v1 stream.
void save(std::ostream& os, const SvdModel& model,
          common::Codec codec = common::default_codec());
SvdModel load_svd_model(std::istream& is);

/// Trains a rank-`config.rank` factorization of the observed entries.
/// `pool` enables hogwild sharding when config.deterministic is false.
/// The hogwild path uses relaxed atomic loads/stores on the shared column
/// factors (and column biases), so it is data-race-free in the C++ memory
/// model — the *algorithmic* races (lost updates) are the intended hogwild
/// semantics; the sequential/deterministic path stays plain (and
/// bit-identical to previous releases).
SvdModel incremental_svd(const SparseDataset& data, const SvdConfig& config,
                         common::ThreadPool* pool = nullptr);

/// Topology-aware variant: entry shards are partitioned by node (contiguous
/// row ranges, entry-balanced across the executor's groups), each node
/// trains hogwild-style against a node-local working copy of the current
/// dimension's column factors (allocated from the node's arena, so the
/// per-step factor traffic never crosses the interconnect), and the
/// per-node factor deltas are merged into the global model at every epoch
/// boundary. Degrades exactly:
///  * config.deterministic — the sequential exact order, run node-locally
///    on group 0 (bit-identical to incremental_svd without a pool);
///  * one group — plain hogwild on that group's pool (bit-equivalent in
///    distribution to incremental_svd with a same-size pool).
SvdModel incremental_svd_sharded(const SparseDataset& data,
                                 const SvdConfig& config,
                                 common::ShardedExecutor& exec);

/// Root-mean-square reconstruction error of the model over the entries.
double reconstruction_rmse(const SvdModel& model, const SparseDataset& data);

/// Incremental extension: given a model trained on `data`, folds in new rows
/// (appended after the existing ones) by training only the new rows' factors
/// against the frozen column factors. This is the "execution time independent
/// of the dataset size" property the paper relies on for synopsis updating.
/// Rows train independently, so pool-parallel execution is bit-identical to
/// the sequential order.
void fold_in_rows(SvdModel& model, const SparseDataset& new_rows,
                  const SvdConfig& config, common::ThreadPool* pool = nullptr);

/// Retrains the factors (and bias term) of an existing row against frozen
/// column factors from a warm start — the per-row kernel shared by fold-in
/// and the synopsis updater's changed-row path. `cols`/`vals` hold the
/// row's `n` observed entries sorted by column.
void retrain_row_factors(SvdModel& model, std::size_t row,
                         const std::uint32_t* cols, const double* vals,
                         std::size_t n, const SvdConfig& config);

}  // namespace at::linalg
