// Incremental SVD (Funk-style stochastic gradient descent) for the
// dimensionality reduction in synopsis creation step 1.
//
// The paper uses Simon Funk's incremental SVD [5][17]: latent dimensions
// are trained one at a time, each for a fixed number of epochs over the
// observed entries, against the residual left by previously trained
// dimensions. The transformed dataset is the row-factor matrix P (u x j):
// each original data point's low-dimensional feature vector. Per-epoch
// cost is O(#entries), independent of the dense u x v size, which is what
// lets the paper finish the transform "within a few seconds".
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace at::linalg {

struct SvdConfig {
  /// Target dimensionality j (the paper uses 3).
  std::size_t rank = 3;
  /// Training epochs per latent dimension (the paper uses 100).
  std::size_t epochs_per_dim = 100;
  /// SGD learning rate.
  double learning_rate = 0.01;
  /// L2 regularization strength.
  double regularization = 0.02;
  /// Initial factor value scale.
  double init_scale = 0.1;
  /// Seed for factor initialization and entry shuffling.
  std::uint64_t seed = 42;
  /// Stop a dimension's training early once the epoch RMSE improvement
  /// drops below this threshold (0 disables early stopping).
  double min_improvement = 0.0;
  /// Train a global mean plus per-row/per-column bias terms alongside the
  /// factors (Funk's full model). Biases absorb systematic offsets (e.g.
  /// generous raters, popular items) so the latent factors concentrate on
  /// interaction structure — usually a better reduction for grouping.
  bool use_biases = false;
};

/// Result of a factorization:
///   dataset ~= global_mean + row_bias + col_bias + row_factors *
///   col_factors^T
/// (bias terms are zero/empty unless trained with use_biases).
struct SvdModel {
  Matrix row_factors;  // u x j : the reduced representation of data points
  Matrix col_factors;  // v x j
  double global_mean = 0.0;
  std::vector<double> row_bias;  // empty when biases are unused
  std::vector<double> col_bias;
  double train_rmse = 0.0;

  bool has_biases() const { return !row_bias.empty(); }

  /// Predicted value of cell (r, c).
  double predict(std::size_t r, std::size_t c) const;
};

/// Trains a rank-`config.rank` factorization of the observed entries.
SvdModel incremental_svd(const SparseDataset& data, const SvdConfig& config);

/// Root-mean-square reconstruction error of the model over the entries.
double reconstruction_rmse(const SvdModel& model, const SparseDataset& data);

/// Incremental extension: given a model trained on `data`, folds in new rows
/// (appended after the existing ones) by training only the new rows' factors
/// against the frozen column factors. This is the "execution time independent
/// of the dataset size" property the paper relies on for synopsis updating.
void fold_in_rows(SvdModel& model, const SparseDataset& new_rows,
                  const SvdConfig& config);

}  // namespace at::linalg
