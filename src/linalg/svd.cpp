#include "linalg/svd.h"

#include <cmath>
#include <stdexcept>

namespace at::linalg {

double SvdModel::predict(std::size_t r, std::size_t c) const {
  double pred = dot(row_factors.row(r), col_factors.row(c),
                    row_factors.cols());
  if (has_biases()) {
    pred += global_mean + row_bias[r] + col_bias[c];
  }
  return pred;
}

namespace {

/// Residual of entry e under the biases plus first `dims` dimensions.
double residual(const SvdModel& model, const SparseEntry& e,
                std::size_t dims) {
  double pred = 0.0;
  if (model.has_biases()) {
    pred = model.global_mean + model.row_bias[e.row] + model.col_bias[e.col];
  }
  const double* p = model.row_factors.row(e.row);
  const double* q = model.col_factors.row(e.col);
  for (std::size_t d = 0; d < dims; ++d) pred += p[d] * q[d];
  return e.value - pred;
}

}  // namespace

SvdModel incremental_svd(const SparseDataset& data, const SvdConfig& config) {
  if (config.rank == 0)
    throw std::invalid_argument("incremental_svd: rank must be >= 1");
  if (data.rows == 0 || data.cols == 0)
    throw std::invalid_argument("incremental_svd: empty dataset dims");
  for (const auto& e : data.entries) {
    if (e.row >= data.rows || e.col >= data.cols)
      throw std::out_of_range("incremental_svd: entry outside dataset dims");
  }

  common::Rng rng(config.seed);
  SvdModel model;
  model.row_factors = Matrix(data.rows, config.rank);
  model.col_factors = Matrix(data.cols, config.rank);
  for (std::size_t r = 0; r < data.rows; ++r)
    for (std::size_t d = 0; d < config.rank; ++d)
      model.row_factors(r, d) = config.init_scale * (rng.uniform() - 0.5);
  for (std::size_t c = 0; c < data.cols; ++c)
    for (std::size_t d = 0; d < config.rank; ++d)
      model.col_factors(c, d) = config.init_scale * (rng.uniform() - 0.5);

  if (data.entries.empty()) return model;

  if (config.use_biases) {
    double sum = 0.0;
    for (const auto& e : data.entries) sum += e.value;
    model.global_mean = sum / static_cast<double>(data.entries.size());
    model.row_bias.assign(data.rows, 0.0);
    model.col_bias.assign(data.cols, 0.0);
  }

  // Funk-style training: one latent dimension at a time against the
  // residual of the previously trained dimensions (biases, when enabled,
  // keep adapting throughout).
  for (std::size_t d = 0; d < config.rank; ++d) {
    double prev_rmse = -1.0;
    for (std::size_t epoch = 0; epoch < config.epochs_per_dim; ++epoch) {
      double sq_err = 0.0;
      for (const auto& e : data.entries) {
        const double err = residual(model, e, d + 1);
        sq_err += err * err;
        if (config.use_biases) {
          double& br = model.row_bias[e.row];
          double& bc = model.col_bias[e.col];
          br += config.learning_rate * (err - config.regularization * br);
          bc += config.learning_rate * (err - config.regularization * bc);
        }
        double& p = model.row_factors(e.row, d);
        double& q = model.col_factors(e.col, d);
        const double p_old = p;
        p += config.learning_rate * (err * q - config.regularization * p);
        q += config.learning_rate * (err * p_old - config.regularization * q);
      }
      const double rmse =
          std::sqrt(sq_err / static_cast<double>(data.entries.size()));
      if (config.min_improvement > 0.0 && prev_rmse >= 0.0 &&
          prev_rmse - rmse < config.min_improvement) {
        break;
      }
      prev_rmse = rmse;
    }
  }
  model.train_rmse = reconstruction_rmse(model, data);
  return model;
}

double reconstruction_rmse(const SvdModel& model, const SparseDataset& data) {
  if (data.entries.empty()) return 0.0;
  double sq = 0.0;
  for (const auto& e : data.entries) {
    const double err = e.value - model.predict(e.row, e.col);
    sq += err * err;
  }
  return std::sqrt(sq / static_cast<double>(data.entries.size()));
}

void fold_in_rows(SvdModel& model, const SparseDataset& new_rows,
                  const SvdConfig& config) {
  const std::size_t rank = model.row_factors.cols();
  if (rank == 0) throw std::invalid_argument("fold_in_rows: untrained model");
  if (new_rows.cols != model.col_factors.rows())
    throw std::invalid_argument("fold_in_rows: column dimension mismatch");

  const std::size_t old_rows = model.row_factors.rows();
  common::Rng rng(config.seed ^ 0xf01dULL);

  if (model.has_biases()) {
    model.row_bias.resize(old_rows + new_rows.rows, 0.0);
  }

  Matrix grown(old_rows + new_rows.rows, rank);
  for (std::size_t r = 0; r < old_rows; ++r)
    for (std::size_t d = 0; d < rank; ++d)
      grown(r, d) = model.row_factors(r, d);
  for (std::size_t r = old_rows; r < grown.rows(); ++r)
    for (std::size_t d = 0; d < rank; ++d)
      grown(r, d) = config.init_scale * (rng.uniform() - 0.5);
  model.row_factors = std::move(grown);

  // Train only the new rows (and their bias terms); column factors and
  // column biases stay frozen so existing reduced coordinates remain valid.
  for (std::size_t d = 0; d < rank; ++d) {
    for (std::size_t epoch = 0; epoch < config.epochs_per_dim; ++epoch) {
      for (const auto& e : new_rows.entries) {
        const std::size_t global_row = old_rows + e.row;
        double pred = 0.0;
        if (model.has_biases()) {
          pred = model.global_mean + model.row_bias[global_row] +
                 model.col_bias[e.col];
        }
        const double* p = model.row_factors.row(global_row);
        const double* q = model.col_factors.row(e.col);
        for (std::size_t k = 0; k <= d; ++k) pred += p[k] * q[k];
        const double err = e.value - pred;
        if (model.has_biases()) {
          double& br = model.row_bias[global_row];
          br += config.learning_rate * (err - config.regularization * br);
        }
        double& pd = model.row_factors(global_row, d);
        pd += config.learning_rate *
              (err * q[d] - config.regularization * pd);
      }
    }
  }
}

}  // namespace at::linalg
