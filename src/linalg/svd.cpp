#include "linalg/svd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "common/artifact.h"
#include "common/binary_io.h"
#include "common/simd.h"

namespace at::linalg {

double SvdModel::predict(std::size_t r, std::size_t c) const {
  double pred = dot(row_factors.row(r), col_factors.row(c),
                    row_factors.cols());
  if (has_biases()) {
    pred += global_mean + row_bias[r] + col_bias[c];
  }
  return pred;
}

namespace {

/// SoA view of a dataset's entries in CSR (row-major) order. Borrows the
/// dataset's CSR arrays when present; otherwise owns a locally built copy.
struct EntryStream {
  const std::size_t* row_ptr = nullptr;
  const std::uint32_t* cols = nullptr;
  const double* vals = nullptr;
  std::size_t num_rows = 0;
  std::size_t count = 0;
  SparseDataset local;  // storage when the input had no CSR form

  explicit EntryStream(const SparseDataset& data) {
    const SparseDataset* d = &data;
    if (!data.has_csr()) {
      local.rows = data.rows;
      local.cols = data.cols;
      local.entries = data.entries;
      local.build_csr();
      d = &local;
    } else {
      for (std::size_t i = 0; i < d->col_idx.size(); ++i) {
        if (d->col_idx[i] >= d->cols)
          throw std::out_of_range("incremental_svd: entry outside dims");
      }
    }
    row_ptr = d->row_ptr.data();
    cols = d->col_idx.data();
    vals = d->values.data();
    num_rows = d->rows;
    count = d->col_idx.size();
  }

  /// Row-range boundaries splitting the entries into `shards` roughly
  /// entry-balanced contiguous chunks (hogwild shards own whole rows, so
  /// row-factor updates never race — only column factors do).
  std::vector<std::size_t> shard_bounds(std::size_t shards) const {
    return sub_bounds(0, num_rows, shards);
  }

  /// Same split restricted to the row range [lo, hi) — the per-node
  /// sub-sharding of the topology-partitioned path.
  std::vector<std::size_t> sub_bounds(std::size_t lo, std::size_t hi,
                                      std::size_t shards) const {
    shards = std::max<std::size_t>(
        1, std::min(shards, hi > lo ? hi - lo : std::size_t{1}));
    std::vector<std::size_t> bounds(shards + 1, hi);
    bounds[0] = lo;
    const std::size_t base = row_ptr[lo];
    const std::size_t total = row_ptr[hi] - base;
    std::size_t r = lo;
    for (std::size_t s = 1; s < shards; ++s) {
      const std::size_t target = base + s * total / shards;
      while (r < hi && row_ptr[r] < target) ++r;
      bounds[s] = r;
    }
    return bounds;
  }
};

// Shared-factor access for the SGD sweep. The hogwild path (kRacy) goes
// through relaxed atomics: the lost-update races on column factors are the
// intended hogwild semantics, but bare loads/stores of a concurrently
// written double are UB in the C++ memory model (and ThreadSanitizer
// findings); relaxed atomics express exactly "tear-free, no ordering". The
// sequential path compiles to the plain load/store it always was.
template <bool kRacy>
inline double shared_load(double& x) {
  if constexpr (kRacy) {
    return std::atomic_ref<double>(x).load(std::memory_order_relaxed);
  } else {
    return x;
  }
}

template <bool kRacy>
inline void shared_store(double& x, double v) {
  if constexpr (kRacy) {
    std::atomic_ref<double>(x).store(v, std::memory_order_relaxed);
  } else {
    x = v;
  }
}

/// Everything one SGD sweep needs. Column state is accessed as
/// colf[c * colf_stride] so the same kernel trains against the global
/// factor matrix (stride = rank, offset pre-applied) or a node-local
/// stride-1 working set.
struct SweepCtx {
  const std::size_t* row_ptr = nullptr;
  const std::uint32_t* cols = nullptr;
  double* resid = nullptr;
  Matrix* row_factors = nullptr;
  double* colf = nullptr;
  std::size_t colf_stride = 1;
  double* row_bias = nullptr;  // nullptr when biases are off
  double* col_bias = nullptr;  // stride 1, nullptr when biases are off
  double global_mean = 0.0;
  double lr = 0.0;
  double reg = 0.0;
  std::size_t d = 0;
};

// One shard's SGD sweep over the contiguous row range [r_lo, r_hi) for
// dimension ctx.d. Iterating row-by-row keeps the row factor (and row
// bias) in registers across the row's entries; with kRacy = false the
// arithmetic sequence is bit-identical to the original per-entry
// formulation (each shared value is read once per entry, exactly where the
// reference formulation first read it).
template <bool kRacy>
double sweep_rows(const SweepCtx& ctx, std::size_t r_lo, std::size_t r_hi) {
  const bool biases = ctx.col_bias != nullptr;
  double sq_err = 0.0;
  for (std::size_t r = r_lo; r < r_hi; ++r) {
    double p = (*ctx.row_factors)(r, ctx.d);
    double br = biases ? ctx.row_bias[r] : 0.0;
    for (std::size_t i = ctx.row_ptr[r]; i < ctx.row_ptr[r + 1]; ++i) {
      const std::uint32_t c = ctx.cols[i];
      double& qref = ctx.colf[c * ctx.colf_stride];
      const double q = shared_load<kRacy>(qref);
      double err = ctx.resid[i] - p * q;
      double bc = 0.0;
      if (biases) {
        bc = shared_load<kRacy>(ctx.col_bias[c]);
        err -= ctx.global_mean + br + bc;
      }
      sq_err += err * err;
      if (biases) {
        br += ctx.lr * (err - ctx.reg * br);
        shared_store<kRacy>(ctx.col_bias[c],
                            bc + ctx.lr * (err - ctx.reg * bc));
      }
      const double p_old = p;
      p += ctx.lr * (err * q - ctx.reg * p);
      shared_store<kRacy>(qref, q + ctx.lr * (err * p_old - ctx.reg * q));
    }
    (*ctx.row_factors)(r, ctx.d) = p;
    if (biases) ctx.row_bias[r] = br;
  }
  return sq_err;
}

}  // namespace

SvdModel incremental_svd(const SparseDataset& data, const SvdConfig& config,
                         common::ThreadPool* pool) {
  if (config.rank == 0)
    throw std::invalid_argument("incremental_svd: rank must be >= 1");
  if (data.rows == 0 || data.cols == 0)
    throw std::invalid_argument("incremental_svd: empty dataset dims");

  // Contiguous SoA entry arrays: one O(#entries) layout pass buys every
  // epoch a straight scan over three flat arrays.
  EntryStream es(data);

  common::Rng rng(config.seed);
  SvdModel model;
  model.row_factors = Matrix(data.rows, config.rank);
  model.col_factors = Matrix(data.cols, config.rank);
  for (std::size_t r = 0; r < data.rows; ++r)
    for (std::size_t d = 0; d < config.rank; ++d)
      model.row_factors(r, d) = config.init_scale * (rng.uniform() - 0.5);
  for (std::size_t c = 0; c < data.cols; ++c)
    for (std::size_t d = 0; d < config.rank; ++d)
      model.col_factors(c, d) = config.init_scale * (rng.uniform() - 0.5);

  if (es.count == 0) return model;

  if (config.use_biases) {
    double sum = 0.0;
    for (std::size_t i = 0; i < es.count; ++i) sum += es.vals[i];
    model.global_mean = sum / static_cast<double>(es.count);
    model.row_bias.assign(data.rows, 0.0);
    model.col_bias.assign(data.cols, 0.0);
  }

  const double lr = config.learning_rate;
  const double reg = config.regularization;
  const std::size_t rank = config.rank;
  const bool biases = config.use_biases;

  // Residual of each entry under the *finished* dimensions (biases
  // excluded — they keep moving). Updated once per dimension, so each SGD
  // step is O(1) instead of re-deriving a d-term dot product.
  std::vector<double> resid(es.vals, es.vals + es.count);

  const std::size_t shards =
      (!config.deterministic && pool != nullptr)
          ? std::max<std::size_t>(1, std::min(pool->size(), es.num_rows))
          : 1;
  const std::vector<std::size_t> bounds = es.shard_bounds(shards);
  std::vector<double> shard_sq(shards, 0.0);

  auto make_ctx = [&](std::size_t d) {
    SweepCtx ctx;
    ctx.row_ptr = es.row_ptr;
    ctx.cols = es.cols;
    ctx.resid = resid.data();
    ctx.row_factors = &model.row_factors;
    ctx.colf = model.col_factors.row(0) + d;
    ctx.colf_stride = rank;
    if (biases) {
      ctx.row_bias = model.row_bias.data();
      ctx.col_bias = model.col_bias.data();
    }
    ctx.global_mean = model.global_mean;
    ctx.lr = lr;
    ctx.reg = reg;
    ctx.d = d;
    return ctx;
  };

  // Funk-style training: one latent dimension at a time against the cached
  // residual of the previously trained dimensions (biases, when enabled,
  // keep adapting throughout).
  for (std::size_t d = 0; d < rank; ++d) {
    const SweepCtx ctx = make_ctx(d);
    double prev_rmse = -1.0;
    for (std::size_t epoch = 0; epoch < config.epochs_per_dim; ++epoch) {
      if (shards == 1) {
        shard_sq[0] = sweep_rows<false>(ctx, bounds[0], bounds[1]);
      } else {
        pool->parallel_for(shards, [&](std::size_t s) {
          shard_sq[s] = sweep_rows<true>(ctx, bounds[s], bounds[s + 1]);
        });
      }
      double sq = 0.0;
      for (double s : shard_sq) sq += s;
      const double rmse = std::sqrt(sq / static_cast<double>(es.count));
      if (config.min_improvement > 0.0 && prev_rmse >= 0.0 &&
          prev_rmse - rmse < config.min_improvement) {
        break;
      }
      prev_rmse = rmse;
    }
    // Retire dimension d into the cached residuals. Element-wise (no
    // reduction), so the SIMD gather kernel is bit-identical to the scalar
    // loop in every dispatch tier.
    const double* col_base = model.col_factors.row(0);
    auto retire = [&](std::size_t s) {
      for (std::size_t r = bounds[s]; r < bounds[s + 1]; ++r) {
        const std::size_t lo = es.row_ptr[r];
        simd::retire_axpy(resid.data() + lo, es.cols + lo,
                          es.row_ptr[r + 1] - lo, col_base, rank, d,
                          model.row_factors(r, d));
      }
    };
    if (shards == 1) {
      retire(0);
    } else {
      pool->parallel_for(shards, retire);
    }
  }
  model.train_rmse = reconstruction_rmse(model, data);
  return model;
}

SvdModel incremental_svd_sharded(const SparseDataset& data,
                                 const SvdConfig& config,
                                 common::ShardedExecutor& exec) {
  // Degenerate layouts keep the established semantics: deterministic mode
  // is the exact sequential order (driven node-locally on group 0, so the
  // model's pages land on the node that built it), and a single group is
  // plain hogwild on that group's pinned pool.
  if (config.deterministic) {
    SvdModel model;
    exec.submit(0, [&] { model = incremental_svd(data, config, nullptr); })
        .get();
    return model;
  }
  if (exec.num_groups() == 1) {
    return incremental_svd(data, config, &exec.group(0));
  }

  if (config.rank == 0)
    throw std::invalid_argument("incremental_svd: rank must be >= 1");
  if (data.rows == 0 || data.cols == 0)
    throw std::invalid_argument("incremental_svd: empty dataset dims");

  EntryStream es(data);

  // Factor initialization is identical to incremental_svd (same rng
  // stream), so the sharded path differs only in training dynamics.
  common::Rng rng(config.seed);
  SvdModel model;
  model.row_factors = Matrix(data.rows, config.rank);
  model.col_factors = Matrix(data.cols, config.rank);
  for (std::size_t r = 0; r < data.rows; ++r)
    for (std::size_t d = 0; d < config.rank; ++d)
      model.row_factors(r, d) = config.init_scale * (rng.uniform() - 0.5);
  for (std::size_t c = 0; c < data.cols; ++c)
    for (std::size_t d = 0; d < config.rank; ++d)
      model.col_factors(c, d) = config.init_scale * (rng.uniform() - 0.5);
  if (es.count == 0) return model;

  if (config.use_biases) {
    double sum = 0.0;
    for (std::size_t i = 0; i < es.count; ++i) sum += es.vals[i];
    model.global_mean = sum / static_cast<double>(es.count);
    model.row_bias.assign(data.rows, 0.0);
    model.col_bias.assign(data.cols, 0.0);
  }

  const double lr = config.learning_rate;
  const double reg = config.regularization;
  const std::size_t rank = config.rank;
  const bool biases = config.use_biases;
  const std::size_t cols = data.cols;

  std::vector<double> resid(es.vals, es.vals + es.count);

  // Node partition: contiguous entry-balanced row ranges, one per group
  // (rows own their factors, so only column factors are shared across
  // nodes). Each node further sub-shards its range across its workers for
  // intra-node hogwild.
  const std::size_t groups =
      std::max<std::size_t>(1, std::min(exec.num_groups(), es.num_rows));
  const std::vector<std::size_t> node_bounds = es.shard_bounds(groups);
  std::vector<std::vector<std::size_t>> sub(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    sub[g] = es.sub_bounds(node_bounds[g], node_bounds[g + 1],
                           exec.group_size(g));
  }

  // Per-node working sets for the training dimension's column factors (and
  // column biases): allocated from the node's arena INSIDE a group task,
  // so their pages are first-touched on the owning node. Refreshed from
  // the global factors at every epoch start and merged back (as deltas) at
  // every epoch boundary — the only per-epoch cross-node traffic.
  std::vector<double*> node_q(groups, nullptr);
  std::vector<double*> node_bc(groups, nullptr);
  std::vector<double> node_sq(exec.num_groups(), 0.0);
  std::vector<common::NodeArena::Checkpoint> arena_marks(groups);
  exec.for_each_group([&](std::size_t g) {
    if (g >= groups) return;
    // Checkpoint + allocate: the working sets are training-scoped scratch,
    // rolled back below so repeated rebuilds on a long-lived executor
    // reuse (never grow) the node arenas.
    arena_marks[g] = exec.arena(g).mark();
    node_q[g] = exec.arena(g).allocate_array<double>(cols);
    if (biases) node_bc[g] = exec.arena(g).allocate_array<double>(cols);
  });

  for (std::size_t d = 0; d < rank; ++d) {
    double prev_rmse = -1.0;
    for (std::size_t epoch = 0; epoch < config.epochs_per_dim; ++epoch) {
      exec.for_each_group([&](std::size_t g) {
        if (g >= groups) {
          node_sq[g] = 0.0;
          return;
        }
        double* wq = node_q[g];
        for (std::size_t c = 0; c < cols; ++c) wq[c] = model.col_factors(c, d);
        if (biases) {
          for (std::size_t c = 0; c < cols; ++c)
            node_bc[g][c] = model.col_bias[c];
        }

        SweepCtx ctx;
        ctx.row_ptr = es.row_ptr;
        ctx.cols = es.cols;
        ctx.resid = resid.data();
        ctx.row_factors = &model.row_factors;
        ctx.colf = wq;
        ctx.colf_stride = 1;
        if (biases) {
          ctx.row_bias = model.row_bias.data();
          ctx.col_bias = node_bc[g];
        }
        ctx.global_mean = model.global_mean;
        ctx.lr = lr;
        ctx.reg = reg;
        ctx.d = d;

        const std::vector<std::size_t>& sb = sub[g];
        const std::size_t shards = sb.size() - 1;
        double sq = 0.0;
        if (shards <= 1) {
          sq = sweep_rows<false>(ctx, sb.front(), sb.back());
        } else {
          // Intra-node hogwild on the node's own pinned pool (this task
          // already runs on it; parallel_for helps while waiting, so the
          // nesting is safe even for one-worker groups).
          std::vector<double> shard_sq(shards, 0.0);
          exec.group(g).parallel_for(shards, [&](std::size_t s) {
            shard_sq[s] = sweep_rows<true>(ctx, sb[s], sb[s + 1]);
          });
          for (double v : shard_sq) sq += v;
        }
        node_sq[g] = sq;

        // Turn the working set into deltas against the (still unmerged)
        // global snapshot; the merge below runs after the barrier.
        for (std::size_t c = 0; c < cols; ++c) wq[c] -= model.col_factors(c, d);
        if (biases) {
          for (std::size_t c = 0; c < cols; ++c)
            node_bc[g][c] -= model.col_bias[c];
        }
      });

      // Epoch boundary: fold every node's factor movement into the global
      // model (delta sum, deterministic group order). Each node trained on
      // its own rows only, so summing deltas is the parameter-server-style
      // consolidation of their independent contributions.
      for (std::size_t g = 0; g < groups; ++g) {
        const double* wq = node_q[g];
        for (std::size_t c = 0; c < cols; ++c)
          model.col_factors(c, d) += wq[c];
        if (biases) {
          for (std::size_t c = 0; c < cols; ++c)
            model.col_bias[c] += node_bc[g][c];
        }
      }

      double sq = 0.0;
      for (double s : node_sq) sq += s;
      const double rmse = std::sqrt(sq / static_cast<double>(es.count));
      if (config.min_improvement > 0.0 && prev_rmse >= 0.0 &&
          prev_rmse - rmse < config.min_improvement) {
        break;
      }
      prev_rmse = rmse;
    }

    // Retire dimension d into the cached residuals, each node over its own
    // rows against the merged global factors.
    const double* col_base = model.col_factors.row(0);
    exec.for_each_group([&](std::size_t g) {
      if (g >= groups) return;
      const std::vector<std::size_t>& sb = sub[g];
      const std::size_t shards = sb.size() - 1;
      auto retire = [&](std::size_t s) {
        for (std::size_t r = sb[s]; r < sb[s + 1]; ++r) {
          const std::size_t lo = es.row_ptr[r];
          simd::retire_axpy(resid.data() + lo, es.cols + lo,
                            es.row_ptr[r + 1] - lo, col_base, rank, d,
                            model.row_factors(r, d));
        }
      };
      if (shards <= 1) {
        retire(0);
      } else {
        exec.group(g).parallel_for(shards, retire);
      }
    });
  }
  exec.for_each_group([&](std::size_t g) {
    if (g < groups) exec.arena(g).release(arena_marks[g]);
  });
  model.train_rmse = reconstruction_rmse(model, data);
  return model;
}

double reconstruction_rmse(const SvdModel& model, const SparseDataset& data) {
  if (data.has_csr()) {
    if (data.col_idx.empty()) return 0.0;
    double sq = 0.0;
    for (std::size_t r = 0; r < data.rows; ++r) {
      for (std::size_t i = data.row_ptr[r]; i < data.row_ptr[r + 1]; ++i) {
        const double err =
            data.values[i] - model.predict(r, data.col_idx[i]);
        sq += err * err;
      }
    }
    return std::sqrt(sq / static_cast<double>(data.col_idx.size()));
  }
  if (data.entries.empty()) return 0.0;
  double sq = 0.0;
  for (const auto& e : data.entries) {
    const double err = e.value - model.predict(e.row, e.col);
    sq += err * err;
  }
  return std::sqrt(sq / static_cast<double>(data.entries.size()));
}

void retrain_row_factors(SvdModel& model, std::size_t row,
                         const std::uint32_t* cols, const double* vals,
                         std::size_t n, const SvdConfig& config) {
  const std::size_t rank = model.row_factors.cols();
  if (rank == 0)
    throw std::invalid_argument("retrain_row_factors: untrained model");
  double* p = model.row_factors.row(row);
  const double lr = config.learning_rate;
  const double reg = config.regularization;
  const bool biases = model.has_biases();

  // Per-row residual cache (column factors are frozen, and dimensions
  // below d are frozen while d trains, so the residual moves only when a
  // dimension is retired). thread_local so pool-parallel fold-in does not
  // allocate per row.
  thread_local std::vector<double> resid;
  resid.assign(vals, vals + n);

  // The row factor for the training dimension (and the row bias) live in
  // registers across the entire epoch loop; column factors are frozen.
  double br = biases ? model.row_bias[row] : 0.0;
  for (std::size_t d = 0; d < rank; ++d) {
    double pd = p[d];
    for (std::size_t epoch = 0; epoch < config.epochs_per_dim; ++epoch) {
      for (std::size_t i = 0; i < n; ++i) {
        const double qd = model.col_factors(cols[i], d);
        double err = resid[i] - pd * qd;
        if (biases) {
          err -= model.global_mean + br + model.col_bias[cols[i]];
          br += lr * (err - reg * br);
        }
        pd += lr * (err * qd - reg * pd);
      }
    }
    p[d] = pd;
    simd::retire_axpy(resid.data(), cols, n, model.col_factors.row(0), rank,
                      d, pd);
  }
  if (biases) model.row_bias[row] = br;
}

void fold_in_rows(SvdModel& model, const SparseDataset& new_rows,
                  const SvdConfig& config, common::ThreadPool* pool) {
  const std::size_t rank = model.row_factors.cols();
  if (rank == 0) throw std::invalid_argument("fold_in_rows: untrained model");
  if (new_rows.cols != model.col_factors.rows())
    throw std::invalid_argument("fold_in_rows: column dimension mismatch");

  const std::size_t old_rows = model.row_factors.rows();
  common::Rng rng(config.seed ^ 0xf01dULL);

  if (model.has_biases()) {
    model.row_bias.resize(old_rows + new_rows.rows, 0.0);
  }

  Matrix grown(old_rows + new_rows.rows, rank);
  for (std::size_t r = 0; r < old_rows; ++r)
    for (std::size_t d = 0; d < rank; ++d)
      grown(r, d) = model.row_factors(r, d);
  for (std::size_t r = old_rows; r < grown.rows(); ++r)
    for (std::size_t d = 0; d < rank; ++d)
      grown(r, d) = config.init_scale * (rng.uniform() - 0.5);
  model.row_factors = std::move(grown);

  // Train only the new rows (and their bias terms); column factors and
  // column biases stay frozen so existing reduced coordinates remain
  // valid. Rows are mutually independent, so the pool-parallel path is
  // bit-identical to the sequential one.
  const SparseDataset* d = &new_rows;
  SparseDataset local;
  if (!new_rows.has_csr()) {
    local.rows = new_rows.rows;
    local.cols = new_rows.cols;
    local.entries = new_rows.entries;
    local.build_csr();
    d = &local;
  }
  auto train_row = [&](std::size_t r) {
    const std::size_t lo = d->row_ptr[r];
    const std::size_t hi = d->row_ptr[r + 1];
    retrain_row_factors(model, old_rows + r, d->col_idx.data() + lo,
                        d->values.data() + lo, hi - lo, config);
  };
  if (pool != nullptr && new_rows.rows > 1) {
    pool->parallel_for(new_rows.rows, train_row);
  } else {
    for (std::size_t r = 0; r < new_rows.rows; ++r) train_row(r);
  }
}

void save(std::ostream& os, const SvdModel& model, common::Codec codec) {
  common::ArtifactWriter w(os, "SVDM", 1);
  common::ChunkWriter meta;
  meta.f64(model.train_rmse);
  meta.f64(model.global_mean);
  meta.vec_f64(model.row_bias, codec);
  meta.vec_f64(model.col_bias, codec);
  w.chunk("META", meta);
  save(os, model.row_factors, codec);
  save(os, model.col_factors, codec);
  w.finish();
}

SvdModel load_svd_model(std::istream& is) {
  if (!common::next_is_artifact(is)) {
    // Legacy "ATSV" v1: scalars + raw bias vectors, then legacy matrices.
    common::BinaryReader r(is);
    if (r.magic("ATSV") != 1)
      throw std::runtime_error("load_svd_model: unsupported legacy version");
    SvdModel model;
    model.train_rmse = r.f64();
    model.global_mean = r.f64();
    model.row_bias = r.vec_f64();
    model.col_bias = r.vec_f64();
    model.row_factors = load_matrix(is);
    model.col_factors = load_matrix(is);
    return model;
  }
  common::ArtifactReader r(is, "SVDM");
  if (r.version() != 1)
    throw common::ArtifactError("load_svd_model: unsupported version");
  common::ChunkReader meta = r.chunk("META");
  SvdModel model;
  model.train_rmse = meta.f64();
  model.global_mean = meta.f64();
  model.row_bias = meta.vec_f64();
  model.col_bias = meta.vec_f64();
  meta.expect_consumed();
  model.row_factors = load_matrix(is);
  model.col_factors = load_matrix(is);
  r.finish();
  return model;
}

}  // namespace at::linalg
