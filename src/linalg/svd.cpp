#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/artifact.h"
#include "common/binary_io.h"
#include "common/simd.h"

namespace at::linalg {

double SvdModel::predict(std::size_t r, std::size_t c) const {
  double pred = dot(row_factors.row(r), col_factors.row(c),
                    row_factors.cols());
  if (has_biases()) {
    pred += global_mean + row_bias[r] + col_bias[c];
  }
  return pred;
}

namespace {

/// SoA view of a dataset's entries in CSR (row-major) order. Borrows the
/// dataset's CSR arrays when present; otherwise owns a locally built copy.
struct EntryStream {
  const std::size_t* row_ptr = nullptr;
  const std::uint32_t* cols = nullptr;
  const double* vals = nullptr;
  std::size_t num_rows = 0;
  std::size_t count = 0;
  SparseDataset local;  // storage when the input had no CSR form

  explicit EntryStream(const SparseDataset& data) {
    const SparseDataset* d = &data;
    if (!data.has_csr()) {
      local.rows = data.rows;
      local.cols = data.cols;
      local.entries = data.entries;
      local.build_csr();
      d = &local;
    } else {
      for (std::size_t i = 0; i < d->col_idx.size(); ++i) {
        if (d->col_idx[i] >= d->cols)
          throw std::out_of_range("incremental_svd: entry outside dims");
      }
    }
    row_ptr = d->row_ptr.data();
    cols = d->col_idx.data();
    vals = d->values.data();
    num_rows = d->rows;
    count = d->col_idx.size();
  }

  /// Row-range boundaries splitting the entries into `shards` roughly
  /// entry-balanced contiguous chunks (hogwild shards own whole rows, so
  /// row-factor updates never race — only column factors do).
  std::vector<std::size_t> shard_bounds(std::size_t shards) const {
    std::vector<std::size_t> bounds(shards + 1, num_rows);
    bounds[0] = 0;
    std::size_t r = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      const std::size_t target = s * count / shards;
      while (r < num_rows && row_ptr[r] < target) ++r;
      bounds[s] = r;
    }
    return bounds;
  }
};

}  // namespace

SvdModel incremental_svd(const SparseDataset& data, const SvdConfig& config,
                         common::ThreadPool* pool) {
  if (config.rank == 0)
    throw std::invalid_argument("incremental_svd: rank must be >= 1");
  if (data.rows == 0 || data.cols == 0)
    throw std::invalid_argument("incremental_svd: empty dataset dims");

  // Contiguous SoA entry arrays: one O(#entries) layout pass buys every
  // epoch a straight scan over three flat arrays.
  EntryStream es(data);

  common::Rng rng(config.seed);
  SvdModel model;
  model.row_factors = Matrix(data.rows, config.rank);
  model.col_factors = Matrix(data.cols, config.rank);
  for (std::size_t r = 0; r < data.rows; ++r)
    for (std::size_t d = 0; d < config.rank; ++d)
      model.row_factors(r, d) = config.init_scale * (rng.uniform() - 0.5);
  for (std::size_t c = 0; c < data.cols; ++c)
    for (std::size_t d = 0; d < config.rank; ++d)
      model.col_factors(c, d) = config.init_scale * (rng.uniform() - 0.5);

  if (es.count == 0) return model;

  if (config.use_biases) {
    double sum = 0.0;
    for (std::size_t i = 0; i < es.count; ++i) sum += es.vals[i];
    model.global_mean = sum / static_cast<double>(es.count);
    model.row_bias.assign(data.rows, 0.0);
    model.col_bias.assign(data.cols, 0.0);
  }

  const double lr = config.learning_rate;
  const double reg = config.regularization;
  const std::size_t rank = config.rank;
  const bool biases = config.use_biases;

  // Residual of each entry under the *finished* dimensions (biases
  // excluded — they keep moving). Updated once per dimension, so each SGD
  // step is O(1) instead of re-deriving a d-term dot product.
  std::vector<double> resid(es.vals, es.vals + es.count);

  const std::size_t shards =
      (!config.deterministic && pool != nullptr)
          ? std::max<std::size_t>(1, std::min(pool->size(), es.num_rows))
          : 1;
  const std::vector<std::size_t> bounds = es.shard_bounds(shards);
  std::vector<double> shard_sq(shards, 0.0);

  // One shard's SGD sweep over its contiguous row range for dimension d.
  // Iterating row-by-row keeps the row factor (and row bias) in registers
  // across the row's entries — the arithmetic sequence is identical to the
  // per-entry formulation, just without the redundant loads/stores.
  auto sweep = [&](std::size_t s, std::size_t d) {
    double sq_err = 0.0;
    for (std::size_t r = bounds[s]; r < bounds[s + 1]; ++r) {
      double p = model.row_factors(r, d);
      double br = biases ? model.row_bias[r] : 0.0;
      for (std::size_t i = es.row_ptr[r]; i < es.row_ptr[r + 1]; ++i) {
        const std::uint32_t c = es.cols[i];
        double& q = model.col_factors(c, d);
        double err = resid[i] - p * q;
        if (biases) {
          err -= model.global_mean + br + model.col_bias[c];
        }
        sq_err += err * err;
        if (biases) {
          double& bc = model.col_bias[c];
          br += lr * (err - reg * br);
          bc += lr * (err - reg * bc);
        }
        const double p_old = p;
        p += lr * (err * q - reg * p);
        q += lr * (err * p_old - reg * q);
      }
      model.row_factors(r, d) = p;
      if (biases) model.row_bias[r] = br;
    }
    shard_sq[s] = sq_err;
  };

  // Funk-style training: one latent dimension at a time against the cached
  // residual of the previously trained dimensions (biases, when enabled,
  // keep adapting throughout).
  for (std::size_t d = 0; d < rank; ++d) {
    double prev_rmse = -1.0;
    for (std::size_t epoch = 0; epoch < config.epochs_per_dim; ++epoch) {
      if (shards == 1) {
        sweep(0, d);
      } else {
        pool->parallel_for(shards, [&](std::size_t s) { sweep(s, d); });
      }
      double sq = 0.0;
      for (double s : shard_sq) sq += s;
      const double rmse = std::sqrt(sq / static_cast<double>(es.count));
      if (config.min_improvement > 0.0 && prev_rmse >= 0.0 &&
          prev_rmse - rmse < config.min_improvement) {
        break;
      }
      prev_rmse = rmse;
    }
    // Retire dimension d into the cached residuals. Element-wise (no
    // reduction), so the SIMD gather kernel is bit-identical to the scalar
    // loop in every dispatch tier.
    const double* col_base = model.col_factors.row(0);
    auto retire = [&](std::size_t s) {
      for (std::size_t r = bounds[s]; r < bounds[s + 1]; ++r) {
        const std::size_t lo = es.row_ptr[r];
        simd::retire_axpy(resid.data() + lo, es.cols + lo,
                          es.row_ptr[r + 1] - lo, col_base, rank, d,
                          model.row_factors(r, d));
      }
    };
    if (shards == 1) {
      retire(0);
    } else {
      pool->parallel_for(shards, retire);
    }
  }
  model.train_rmse = reconstruction_rmse(model, data);
  return model;
}

double reconstruction_rmse(const SvdModel& model, const SparseDataset& data) {
  if (data.has_csr()) {
    if (data.col_idx.empty()) return 0.0;
    double sq = 0.0;
    for (std::size_t r = 0; r < data.rows; ++r) {
      for (std::size_t i = data.row_ptr[r]; i < data.row_ptr[r + 1]; ++i) {
        const double err =
            data.values[i] - model.predict(r, data.col_idx[i]);
        sq += err * err;
      }
    }
    return std::sqrt(sq / static_cast<double>(data.col_idx.size()));
  }
  if (data.entries.empty()) return 0.0;
  double sq = 0.0;
  for (const auto& e : data.entries) {
    const double err = e.value - model.predict(e.row, e.col);
    sq += err * err;
  }
  return std::sqrt(sq / static_cast<double>(data.entries.size()));
}

void retrain_row_factors(SvdModel& model, std::size_t row,
                         const std::uint32_t* cols, const double* vals,
                         std::size_t n, const SvdConfig& config) {
  const std::size_t rank = model.row_factors.cols();
  if (rank == 0)
    throw std::invalid_argument("retrain_row_factors: untrained model");
  double* p = model.row_factors.row(row);
  const double lr = config.learning_rate;
  const double reg = config.regularization;
  const bool biases = model.has_biases();

  // Per-row residual cache (column factors are frozen, and dimensions
  // below d are frozen while d trains, so the residual moves only when a
  // dimension is retired). thread_local so pool-parallel fold-in does not
  // allocate per row.
  thread_local std::vector<double> resid;
  resid.assign(vals, vals + n);

  // The row factor for the training dimension (and the row bias) live in
  // registers across the entire epoch loop; column factors are frozen.
  double br = biases ? model.row_bias[row] : 0.0;
  for (std::size_t d = 0; d < rank; ++d) {
    double pd = p[d];
    for (std::size_t epoch = 0; epoch < config.epochs_per_dim; ++epoch) {
      for (std::size_t i = 0; i < n; ++i) {
        const double qd = model.col_factors(cols[i], d);
        double err = resid[i] - pd * qd;
        if (biases) {
          err -= model.global_mean + br + model.col_bias[cols[i]];
          br += lr * (err - reg * br);
        }
        pd += lr * (err * qd - reg * pd);
      }
    }
    p[d] = pd;
    simd::retire_axpy(resid.data(), cols, n, model.col_factors.row(0), rank,
                      d, pd);
  }
  if (biases) model.row_bias[row] = br;
}

void fold_in_rows(SvdModel& model, const SparseDataset& new_rows,
                  const SvdConfig& config, common::ThreadPool* pool) {
  const std::size_t rank = model.row_factors.cols();
  if (rank == 0) throw std::invalid_argument("fold_in_rows: untrained model");
  if (new_rows.cols != model.col_factors.rows())
    throw std::invalid_argument("fold_in_rows: column dimension mismatch");

  const std::size_t old_rows = model.row_factors.rows();
  common::Rng rng(config.seed ^ 0xf01dULL);

  if (model.has_biases()) {
    model.row_bias.resize(old_rows + new_rows.rows, 0.0);
  }

  Matrix grown(old_rows + new_rows.rows, rank);
  for (std::size_t r = 0; r < old_rows; ++r)
    for (std::size_t d = 0; d < rank; ++d)
      grown(r, d) = model.row_factors(r, d);
  for (std::size_t r = old_rows; r < grown.rows(); ++r)
    for (std::size_t d = 0; d < rank; ++d)
      grown(r, d) = config.init_scale * (rng.uniform() - 0.5);
  model.row_factors = std::move(grown);

  // Train only the new rows (and their bias terms); column factors and
  // column biases stay frozen so existing reduced coordinates remain
  // valid. Rows are mutually independent, so the pool-parallel path is
  // bit-identical to the sequential one.
  const SparseDataset* d = &new_rows;
  SparseDataset local;
  if (!new_rows.has_csr()) {
    local.rows = new_rows.rows;
    local.cols = new_rows.cols;
    local.entries = new_rows.entries;
    local.build_csr();
    d = &local;
  }
  auto train_row = [&](std::size_t r) {
    const std::size_t lo = d->row_ptr[r];
    const std::size_t hi = d->row_ptr[r + 1];
    retrain_row_factors(model, old_rows + r, d->col_idx.data() + lo,
                        d->values.data() + lo, hi - lo, config);
  };
  if (pool != nullptr && new_rows.rows > 1) {
    pool->parallel_for(new_rows.rows, train_row);
  } else {
    for (std::size_t r = 0; r < new_rows.rows; ++r) train_row(r);
  }
}

void save(std::ostream& os, const SvdModel& model, common::Codec codec) {
  common::ArtifactWriter w(os, "SVDM", 1);
  common::ChunkWriter meta;
  meta.f64(model.train_rmse);
  meta.f64(model.global_mean);
  meta.vec_f64(model.row_bias, codec);
  meta.vec_f64(model.col_bias, codec);
  w.chunk("META", meta);
  save(os, model.row_factors, codec);
  save(os, model.col_factors, codec);
  w.finish();
}

SvdModel load_svd_model(std::istream& is) {
  if (!common::next_is_artifact(is)) {
    // Legacy "ATSV" v1: scalars + raw bias vectors, then legacy matrices.
    common::BinaryReader r(is);
    if (r.magic("ATSV") != 1)
      throw std::runtime_error("load_svd_model: unsupported legacy version");
    SvdModel model;
    model.train_rmse = r.f64();
    model.global_mean = r.f64();
    model.row_bias = r.vec_f64();
    model.col_bias = r.vec_f64();
    model.row_factors = load_matrix(is);
    model.col_factors = load_matrix(is);
    return model;
  }
  common::ArtifactReader r(is, "SVDM");
  if (r.version() != 1)
    throw common::ArtifactError("load_svd_model: unsupported version");
  common::ChunkReader meta = r.chunk("META");
  SvdModel model;
  model.train_rmse = meta.f64();
  model.global_mean = meta.f64();
  model.row_bias = meta.vec_f64();
  model.col_bias = meta.vec_f64();
  meta.expect_consumed();
  model.row_factors = load_matrix(is);
  model.col_factors = load_matrix(is);
  r.finish();
  return model;
}

}  // namespace at::linalg
