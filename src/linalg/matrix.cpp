#include "linalg/matrix.h"

#include <cmath>

namespace at::linalg {

void Matrix::append_row(const std::vector<double>& values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = values.size();
  } else if (values.size() != cols_) {
    throw std::invalid_argument("Matrix::append_row: width mismatch");
  }
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

double dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const double* a, std::size_t n) {
  return std::sqrt(dot(a, a, n));
}

double distance(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace at::linalg
