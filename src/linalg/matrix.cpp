#include "linalg/matrix.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/artifact.h"
#include "common/binary_io.h"
#include "common/simd.h"

namespace at::linalg {

void Matrix::append_row(const std::vector<double>& values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = values.size();
  } else if (values.size() != cols_) {
    throw std::invalid_argument("Matrix::append_row: width mismatch");
  }
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void SparseDataset::build_csr() {
  for (const auto& e : entries) {
    if (e.row >= rows || e.col >= cols)
      throw std::out_of_range(
          "SparseDataset::build_csr: entry outside dataset dims");
  }
  row_ptr.assign(rows + 1, 0);
  for (const auto& e : entries) ++row_ptr[e.row + 1];
  for (std::size_t r = 0; r < rows; ++r) row_ptr[r + 1] += row_ptr[r];
  col_idx.resize(entries.size());
  values.resize(entries.size());
  std::vector<std::size_t> fill(row_ptr.begin(), row_ptr.end() - 1);
  for (const auto& e : entries) {
    const std::size_t slot = fill[e.row]++;
    col_idx[slot] = e.col;
    values[slot] = e.value;
  }
}

namespace {
/// Untrusted-dimension guard: rows * cols must not wrap (a wrapped
/// product would pass the element-count check and then index out of
/// bounds of the undersized storage).
void check_loaded_dims(std::size_t rows, std::size_t cols) {
  if (cols != 0 && rows > std::numeric_limits<std::size_t>::max() / cols)
    throw std::runtime_error("load_matrix: dimensions overflow");
}
}  // namespace

void save(std::ostream& os, const Matrix& m, common::Codec codec) {
  common::ArtifactWriter w(os, "MATX", 1);
  common::ChunkWriter meta;
  meta.u64(m.rows());
  meta.u64(m.cols());
  w.chunk("META", meta);
  common::ChunkWriter data;
  data.f64_column(m.data().data(), m.data().size(), codec);
  w.chunk("DATA", data);
  w.finish();
}

Matrix load_matrix(std::istream& is) {
  if (!common::next_is_artifact(is)) {
    // Legacy "ATMX" v1: raw row-major doubles.
    common::BinaryReader r(is);
    if (r.magic("ATMX") != 1)
      throw std::runtime_error("load_matrix: unsupported legacy version");
    const auto rows = r.u64();
    const auto cols = r.u64();
    check_loaded_dims(rows, cols);
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) m(i, j) = r.f64();
    }
    return m;
  }
  common::ArtifactReader r(is, "MATX");
  if (r.version() != 1)
    throw common::ArtifactError("load_matrix: unsupported version");
  common::ChunkReader meta = r.chunk("META");
  const auto rows = static_cast<std::size_t>(meta.u64());
  const auto cols = static_cast<std::size_t>(meta.u64());
  meta.expect_consumed();
  check_loaded_dims(rows, cols);
  common::ChunkReader data = r.chunk("DATA");
  const std::vector<double> values = data.vec_f64();
  data.expect_consumed();
  r.finish();
  if (values.size() != rows * cols)
    throw common::ArtifactError("load_matrix: element count mismatch");
  Matrix m(rows, cols);
  if (!values.empty())
    std::memcpy(m.row(0), values.data(), values.size() * sizeof(double));
  return m;
}

double dot(const double* a, const double* b, std::size_t n) {
  return simd::dot(a, b, n);
}

double norm2(const double* a, std::size_t n) {
  return std::sqrt(dot(a, a, n));
}

double distance(const double* a, const double* b, std::size_t n) {
  return std::sqrt(simd::distance_sq(a, b, n));
}

}  // namespace at::linalg
