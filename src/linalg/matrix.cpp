#include "linalg/matrix.h"

#include <cmath>

#include "common/simd.h"

namespace at::linalg {

void Matrix::append_row(const std::vector<double>& values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = values.size();
  } else if (values.size() != cols_) {
    throw std::invalid_argument("Matrix::append_row: width mismatch");
  }
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void SparseDataset::build_csr() {
  for (const auto& e : entries) {
    if (e.row >= rows || e.col >= cols)
      throw std::out_of_range(
          "SparseDataset::build_csr: entry outside dataset dims");
  }
  row_ptr.assign(rows + 1, 0);
  for (const auto& e : entries) ++row_ptr[e.row + 1];
  for (std::size_t r = 0; r < rows; ++r) row_ptr[r + 1] += row_ptr[r];
  col_idx.resize(entries.size());
  values.resize(entries.size());
  std::vector<std::size_t> fill(row_ptr.begin(), row_ptr.end() - 1);
  for (const auto& e : entries) {
    const std::size_t slot = fill[e.row]++;
    col_idx[slot] = e.col;
    values[slot] = e.value;
  }
}

double dot(const double* a, const double* b, std::size_t n) {
  return simd::dot(a, b, n);
}

double norm2(const double* a, std::size_t n) {
  return std::sqrt(dot(a, a, n));
}

double distance(const double* a, const double* b, std::size_t n) {
  return std::sqrt(simd::distance_sq(a, b, n));
}

}  // namespace at::linalg
