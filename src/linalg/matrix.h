// Small dense/sparse linear-algebra types backing the SVD dimensionality
// reduction (synopsis creation step 1).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <vector>

#include "common/artifact.h"

namespace at::linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  double& at(std::size_t r, std::size_t c) {
    check(r, c);
    return (*this)(r, c);
  }
  double at(std::size_t r, std::size_t c) const {
    check(r, c);
    return (*this)(r, c);
  }

  /// Pointer to the start of row r (contiguous, cols() doubles).
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }

  /// Appends a row (must have cols() elements; sets cols on first append).
  void append_row(const std::vector<double>& values);

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_)
      throw std::out_of_range("Matrix index out of range");
  }

  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// One observed cell of a sparse dataset (rating, term count, ...).
struct SparseEntry {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

/// Sparse dataset with explicit dimensions. This is the input format of the
/// incremental SVD: only observed entries are trained.
///
/// Two interchangeable representations:
///  * `entries` — coordinate format, the hand-construction format;
///  * CSR companions `row_ptr`/`col_idx`/`values` — contiguous row-major
///    arrays that the numeric kernels iterate (cache-friendly, SoA).
/// SparseRows::to_dataset fills both; datasets built by hand from `entries`
/// get their CSR form on demand via build_csr().
struct SparseDataset {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<SparseEntry> entries;

  /// CSR form: row r's entries live at [row_ptr[r], row_ptr[r+1]) in
  /// col_idx/values. Present iff row_ptr.size() == rows + 1.
  std::vector<std::size_t> row_ptr;
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;

  bool has_csr() const { return row_ptr.size() == rows + 1; }
  std::size_t num_entries() const {
    return has_csr() ? col_idx.size() : entries.size();
  }

  /// Builds the CSR companions from `entries` (stable counting sort by
  /// row: within a row, entry order is preserved). Throws std::out_of_range
  /// on entries outside the declared dimensions.
  void build_csr();

  double density() const {
    const double total = static_cast<double>(rows) * static_cast<double>(cols);
    return total > 0 ? static_cast<double>(num_entries()) / total : 0.0;
  }
};

/// Artifact-store persistence (kind "MATX"): chunked + checksummed, the
/// element column through any of the exact f64 codecs. The loader also
/// accepts the legacy "ATMX" v1 raw-double stream.
void save(std::ostream& os, const Matrix& m,
          common::Codec codec = common::default_codec());
Matrix load_matrix(std::istream& is);

/// Dot product via the dispatched SIMD kernels (common/simd.h). The
/// reduction uses a fixed 4-lane decomposition so results are identical in
/// every dispatch tier; for n < 4 it degenerates to the sequential sum.
double dot(const double* a, const double* b, std::size_t n);
double norm2(const double* a, std::size_t n);
/// Euclidean distance between two n-vectors.
double distance(const double* a, const double* b, std::size_t n);

}  // namespace at::linalg
