#include "core/technique.h"

namespace at::core {

std::string to_string(Technique t) {
  switch (t) {
    case Technique::kBasic:
      return "Basic";
    case Technique::kRequestReissue:
      return "Request reissue";
    case Technique::kPartialExecution:
      return "Partial execution";
    case Technique::kAccuracyTrader:
      return "AccuracyTrader";
  }
  return "?";
}

bool is_approximate(Technique t) {
  return t == Technique::kPartialExecution ||
         t == Technique::kAccuracyTrader;
}

}  // namespace at::core
