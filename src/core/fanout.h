// In-process fan-out service coordination: the deployment topology of the
// paper (one component for accepting/partitioning requests, n parallel
// processing components, one merger) realized with one ComponentRuntime
// per component and a completion latch per request.
//
// The coordinator is service-agnostic: a request is dispatched as one
// (stage1, improve) closure pair per component; the merger callback fires
// on the last component's completion with every component's Algorithm 1
// trace. Components whose queue rejected the sub-operation are reported as
// not-accepted (the merger decides how to degrade, e.g. partial results).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/runtime.h"

namespace at::core {

/// Per-request, per-component outcome as observed by the merger.
struct FanOutComponentResult {
  bool accepted = false;  // queue admitted the sub-operation
  JobResult job;          // valid when accepted
};

struct FanOutResult {
  std::vector<FanOutComponentResult> components;
  /// Dispatch-to-last-completion time.
  double latency_ms = 0.0;

  std::size_t accepted_count() const {
    std::size_t n = 0;
    for (const auto& c : components) n += c.accepted;
    return n;
  }
};

class FanOutCoordinator {
 public:
  /// stage1(component) -> correlations; improve(component, group).
  using Stage1Fn = std::function<std::vector<double>(std::size_t)>;
  using ImproveFn = std::function<void(std::size_t, std::size_t)>;
  using MergerFn = std::function<void(const FanOutResult&)>;

  /// Spawns `num_components` runtimes, each with the same configuration.
  FanOutCoordinator(RuntimeConfig per_component, std::size_t num_components);
  ~FanOutCoordinator();

  FanOutCoordinator(const FanOutCoordinator&) = delete;
  FanOutCoordinator& operator=(const FanOutCoordinator&) = delete;

  std::size_t num_components() const { return runtimes_.size(); }
  ComponentRuntime& component(std::size_t c) { return *runtimes_.at(c); }

  /// Fans one request out to every component. `merger` runs exactly once,
  /// on the thread of the last finishing component (or inline if every
  /// component rejected). Returns the number of components that accepted.
  std::size_t dispatch(const Stage1Fn& stage1, const ImproveFn& improve,
                       MergerFn merger);

  /// Stops every component runtime (drains queues).
  void shutdown();

 private:
  std::vector<std::unique_ptr<ComponentRuntime>> runtimes_;
};

}  // namespace at::core
