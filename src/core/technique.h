// The four request-processing techniques compared in the paper's
// evaluation (§4.1 "Compared techniques").
#pragma once

#include <string>

namespace at::core {

enum class Technique {
  /// No tail-latency mitigation: every component performs the full exact
  /// computation and the merger waits for all of them.
  kBasic,
  /// Request reissue [Dean & Barroso; Jalaparti et al.; Suresh et al.]:
  /// a sub-operation outstanding longer than a high percentile (95th) of
  /// its class's expected latency is duplicated on a replica; the quicker
  /// copy wins.
  kRequestReissue,
  /// Partial execution [He et al. Zeta; Jalaparti et al.]: components
  /// compute exact results, but the merger only uses those that finish
  /// before the deadline; late components are skipped.
  kPartialExecution,
  /// This paper: every component first answers from its synopsis, then
  /// improves the result with the most accuracy-correlated parts of its
  /// input data until the deadline.
  kAccuracyTrader,
};

std::string to_string(Technique t);

/// True for techniques that return approximate results (and therefore have
/// a defined accuracy loss); Basic and Reissue always produce exact results.
bool is_approximate(Technique t);

}  // namespace at::core
