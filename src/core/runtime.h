// A live service component running the online module for real: a worker
// thread drains a bounded FIFO of requests, processing each with
// Algorithm 1 under a wall-clock deadline measured from *enqueue* time —
// queueing delay counts against the deadline exactly as l_ela does in the
// paper, which is what makes the component's latency self-regulating: the
// longer a request waited, the less improvement work it performs.
//
// This is the piece a real deployment embeds into each component process;
// the discrete-event simulator mirrors its behaviour in virtual time for
// the large-scale experiments.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/thread_annotations.h"
#include "common/stopwatch.h"
#include "core/algorithm1.h"

namespace at::core {

struct RuntimeConfig {
  Algorithm1Config algorithm;
  /// Requests queued beyond this are rejected at submit (load shedding).
  std::size_t queue_capacity = 1024;
};

/// Per-request outcome delivered to the completion callback.
struct JobResult {
  Algorithm1Trace trace;
  double queue_wait_ms = 0.0;
  double total_latency_ms = 0.0;
};

struct RuntimeStats {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;
};

class ComponentRuntime {
 public:
  /// stage1: process the synopsis, return correlations (Algorithm 1 line 1).
  using Stage1Fn = std::function<std::vector<double>()>;
  /// improve(group): process one ranked member set (line 7).
  using ImproveFn = std::function<void(std::size_t)>;
  /// Called on the worker thread when the request finishes.
  using CompletionFn = std::function<void(const JobResult&)>;

  explicit ComponentRuntime(RuntimeConfig config);
  /// Drains outstanding requests, then joins the worker.
  ~ComponentRuntime();

  ComponentRuntime(const ComponentRuntime&) = delete;
  ComponentRuntime& operator=(const ComponentRuntime&) = delete;

  /// Enqueues a request. Returns false (and drops it) when the queue is
  /// full or the runtime is shutting down.
  bool submit(Stage1Fn stage1, ImproveFn improve, CompletionFn done = {});

  /// Requests currently queued (excluding the one in service).
  std::size_t pending() const;

  RuntimeStats stats() const;

  /// Copy of the completed-request latency distribution.
  common::PercentileTracker latency_snapshot() const;

  /// Stops accepting new requests, finishes the queue, joins the worker.
  /// Idempotent and safe to call from several threads at once: exactly one
  /// caller joins, the others block until the worker is down.
  void shutdown();

 private:
  struct Job {
    Stage1Fn stage1;
    ImproveFn improve;
    CompletionFn done;
    common::Stopwatch enqueue_time;
  };

  void worker_loop();

  RuntimeConfig config_;
  mutable common::Mutex mutex_;
  common::CondVar cv_;
  std::deque<Job> queue_ AT_GUARDED_BY(mutex_);
  bool stopping_ AT_GUARDED_BY(mutex_) = false;
  // Shutdown handshake: the caller that flips join_started_ owns the
  // worker_.join(); everyone else waits for join_done_.
  bool join_started_ AT_GUARDED_BY(mutex_) = false;
  bool join_done_ AT_GUARDED_BY(mutex_) = false;
  RuntimeStats stats_ AT_GUARDED_BY(mutex_);
  common::PercentileTracker latency_ms_ AT_GUARDED_BY(mutex_);
  std::thread worker_;
};

}  // namespace at::core
