// The per-(request, component) outcome the cluster simulator hands to the
// services for post-hoc result assembly and accuracy scoring.
#pragma once

#include <cstdint>

namespace at::core {

struct ComponentOutcome {
  /// Partial execution: did this component's sub-operation finish before
  /// the request's deadline (i.e. was its result included in the merge)?
  bool included = true;
  /// AccuracyTrader: how many ranked member sets stage 2 processed.
  std::uint32_t sets = 0;
};

}  // namespace at::core
