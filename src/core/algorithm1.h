// Algorithm 1 of the paper: accuracy-aware approximate processing on a
// component.
//
// The algorithm is generic over the service: stage 1 processes the synopsis
// (producing an initial approximate result plus one correlation score per
// aggregated data point) and stage 2 repeatedly improves the result with
// the member set of the next most-correlated aggregated point, until the
// deadline expires or imax sets have been processed.
//
// Two clocks are supported through the Clock interface:
//  * WallClock     — real-time execution inside a live service component
//                    (used by the examples and the real-time tests);
//  * VirtualClock  — externally advanced time, used by the discrete-event
//    cluster simulator so that the deadline logic under test is *this*
//    code, not a re-implementation inside the simulator.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "common/stopwatch.h"

namespace at::core {

/// Time source for deadline checks. elapsed_ms() is measured from the
/// request's submission (so queueing delay counts against the deadline,
/// exactly as in the paper where l_ela is "the elapsed service time since
/// the request submitting time").
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double elapsed_ms() const = 0;
};

/// Real-time clock starting at construction.
class WallClock final : public Clock {
 public:
  double elapsed_ms() const override { return watch_.elapsed_ms(); }

 private:
  common::Stopwatch watch_;
};

/// Simulation clock: the caller advances it as virtual work is "performed".
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double start_ms = 0.0) : now_ms_(start_ms) {}
  double elapsed_ms() const override { return now_ms_; }
  void advance(double ms) { now_ms_ += ms; }
  void set(double ms) { now_ms_ = ms; }

 private:
  double now_ms_;
};

struct Algorithm1Config {
  /// l_spe: the specified service-latency deadline in milliseconds.
  double deadline_ms = 100.0;
  /// i_max: maximum number of ranked member sets to process. The paper sets
  /// this from the observed correlation decay (e.g. top 40% of the ranked
  /// aggregated pages hold >98% of the actual top-10 pages in the search
  /// service); "unlimited" reproduces the recommender setting where every
  /// point potentially contributes.
  std::size_t imax = std::numeric_limits<std::size_t>::max();
};

struct Algorithm1Trace {
  /// Number of ranked member sets processed in stage 2.
  std::size_t sets_processed = 0;
  /// Elapsed time (per the clock) when the algorithm returned.
  double elapsed_ms = 0.0;
  /// True if stage 2 stopped because of the deadline (as opposed to imax
  /// or set exhaustion).
  bool stopped_by_deadline = false;
};

/// Ranks correlation scores in descending order; returns group indices.
/// Ties broken by lower index for determinism.
std::vector<std::size_t> rank_by_correlation(
    const std::vector<double>& correlations);

/// Runs Algorithm 1.
///
/// `stage1` processes the synopsis: it must produce the initial result (into
/// whatever state the callable captures) and return the correlation scores,
/// one per aggregated data point.
/// `improve(set_index)` processes the original data points of the ranked
/// set (stage 2, line 7); it receives the *original* group index.
Algorithm1Trace run_algorithm1(
    const Algorithm1Config& config, const Clock& clock,
    const std::function<std::vector<double>()>& stage1,
    const std::function<void(std::size_t)>& improve);

}  // namespace at::core
