#include "core/fanout.h"

#include <atomic>

#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace at::core {

namespace {

/// Shared per-request state: filled in by component completions, handed to
/// the merger by whichever completion is last.
struct RequestState {
  explicit RequestState(std::size_t n) : results(n) {}

  common::Mutex merge_mutex;
  std::vector<FanOutComponentResult> results AT_GUARDED_BY(merge_mutex);
  std::atomic<std::size_t> outstanding{0};
  common::Stopwatch dispatch_time;
  FanOutCoordinator::MergerFn merger;

  void finish_one() {
    if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      FanOutResult out;
      {
        common::MutexLock lock(merge_mutex);
        out.components = std::move(results);
      }
      out.latency_ms = dispatch_time.elapsed_ms();
      if (merger) merger(out);
    }
  }
};

}  // namespace

FanOutCoordinator::FanOutCoordinator(RuntimeConfig per_component,
                                     std::size_t num_components) {
  runtimes_.reserve(num_components);
  for (std::size_t c = 0; c < num_components; ++c) {
    runtimes_.push_back(std::make_unique<ComponentRuntime>(per_component));
  }
}

FanOutCoordinator::~FanOutCoordinator() { shutdown(); }

void FanOutCoordinator::shutdown() {
  for (auto& r : runtimes_) r->shutdown();
}

std::size_t FanOutCoordinator::dispatch(const Stage1Fn& stage1,
                                        const ImproveFn& improve,
                                        MergerFn merger) {
  const std::size_t n = runtimes_.size();
  auto state = std::make_shared<RequestState>(n);
  state->merger = std::move(merger);
  // Pre-claim every slot so a fast completion cannot fire the merger
  // before all submissions happened.
  state->outstanding.store(n, std::memory_order_relaxed);

  std::size_t accepted = 0;
  for (std::size_t c = 0; c < n; ++c) {
    const bool ok = runtimes_[c]->submit(
        [stage1, c] { return stage1(c); },
        [improve, c](std::size_t group) { improve(c, group); },
        [state, c](const JobResult& job) {
          {
            common::MutexLock lock(state->merge_mutex);
            state->results[c].accepted = true;
            state->results[c].job = job;
          }
          state->finish_one();
        });
    if (ok) {
      ++accepted;
    } else {
      // Shed: the slot stays not-accepted; release its latch share now.
      state->finish_one();
    }
  }
  return accepted;
}

}  // namespace at::core
