#include "core/algorithm1.h"

#include <algorithm>
#include <numeric>

namespace at::core {

std::vector<std::size_t> rank_by_correlation(
    const std::vector<double>& correlations) {
  std::vector<std::size_t> order(correlations.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return correlations[a] > correlations[b];
                   });
  return order;
}

Algorithm1Trace run_algorithm1(
    const Algorithm1Config& config, const Clock& clock,
    const std::function<std::vector<double>()>& stage1,
    const std::function<void(std::size_t)>& improve) {
  Algorithm1Trace trace;

  // Line 1: process the synopsis — initial result + correlations. This is
  // unconditional: every component always answers at least from its
  // synopsis, which is what bounds AccuracyTrader's tail latency.
  const std::vector<double> correlations = stage1();

  // Lines 2–3: rank the aggregated data points, then their member sets.
  const std::vector<std::size_t> ranked = rank_by_correlation(correlations);

  // Lines 4–10: iterative improvement within the deadline and imax.
  std::size_t i = 0;
  while (i < ranked.size()) {
    if (clock.elapsed_ms() >= config.deadline_ms) {
      trace.stopped_by_deadline = true;
      break;
    }
    if (i + 1 > config.imax) break;  // "i <= imax" with 1-based i
    improve(ranked[i]);
    ++i;
  }
  trace.sets_processed = i;
  trace.elapsed_ms = clock.elapsed_ms();
  return trace;
}

}  // namespace at::core
