#include "core/runtime.h"

namespace at::core {

namespace {
/// Clock adapter: elapsed time since a job was enqueued.
class SinceEnqueueClock final : public Clock {
 public:
  explicit SinceEnqueueClock(const common::Stopwatch& enqueue_time)
      : enqueue_time_(enqueue_time) {}
  double elapsed_ms() const override { return enqueue_time_.elapsed_ms(); }

 private:
  const common::Stopwatch& enqueue_time_;
};
}  // namespace

ComponentRuntime::ComponentRuntime(RuntimeConfig config)
    : config_(config), worker_([this] { worker_loop(); }) {}

ComponentRuntime::~ComponentRuntime() { shutdown(); }

bool ComponentRuntime::submit(Stage1Fn stage1, ImproveFn improve,
                              CompletionFn done) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= config_.queue_capacity) {
      ++stats_.rejected;
      return false;
    }
    queue_.push_back(Job{std::move(stage1), std::move(improve),
                         std::move(done), common::Stopwatch()});
    ++stats_.accepted;
  }
  cv_.notify_one();
  return true;
}

std::size_t ComponentRuntime::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

RuntimeStats ComponentRuntime::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

common::PercentileTracker ComponentRuntime::latency_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latency_ms_;
}

void ComponentRuntime::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void ComponentRuntime::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }

    JobResult result;
    result.queue_wait_ms = job.enqueue_time.elapsed_ms();
    const SinceEnqueueClock clock(job.enqueue_time);
    result.trace =
        run_algorithm1(config_.algorithm, clock, job.stage1, job.improve);
    result.total_latency_ms = job.enqueue_time.elapsed_ms();

    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.completed;
      latency_ms_.add(result.total_latency_ms);
    }
    if (job.done) job.done(result);
  }
}

}  // namespace at::core
