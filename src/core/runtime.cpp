#include "core/runtime.h"

#include <utility>

namespace at::core {

namespace {
/// Clock adapter: elapsed time since a job was enqueued.
class SinceEnqueueClock final : public Clock {
 public:
  explicit SinceEnqueueClock(const common::Stopwatch& enqueue_time)
      : enqueue_time_(enqueue_time) {}
  double elapsed_ms() const override { return enqueue_time_.elapsed_ms(); }

 private:
  const common::Stopwatch& enqueue_time_;
};
}  // namespace

ComponentRuntime::ComponentRuntime(RuntimeConfig config)
    : config_(config), worker_([this] { worker_loop(); }) {}

ComponentRuntime::~ComponentRuntime() { shutdown(); }

bool ComponentRuntime::submit(Stage1Fn stage1, ImproveFn improve,
                              CompletionFn done) {
  {
    common::MutexLock lock(mutex_);
    if (stopping_ || queue_.size() >= config_.queue_capacity) {
      ++stats_.rejected;
      return false;
    }
    queue_.push_back(Job{std::move(stage1), std::move(improve),
                         std::move(done), common::Stopwatch()});
    ++stats_.accepted;
  }
  cv_.notify_one();
  return true;
}

std::size_t ComponentRuntime::pending() const {
  common::MutexLock lock(mutex_);
  return queue_.size();
}

RuntimeStats ComponentRuntime::stats() const {
  common::MutexLock lock(mutex_);
  return stats_;
}

common::PercentileTracker ComponentRuntime::latency_snapshot() const {
  common::MutexLock lock(mutex_);
  return latency_ms_;
}

void ComponentRuntime::shutdown() {
  // Exactly one caller may execute worker_.join(): joining the same
  // std::thread from two threads is undefined behavior (the destructor and
  // an explicit shutdown() used to race here). The first caller to flip
  // join_started_ owns the join; everyone else waits for join_done_ so all
  // callers still observe "worker is down" on return.
  bool do_join = false;
  {
    common::MutexLock lock(mutex_);
    stopping_ = true;
    if (!join_started_) {
      join_started_ = true;
      do_join = true;
    }
  }
  cv_.notify_all();
  if (do_join) {
    worker_.join();
    common::MutexLock lock(mutex_);
    join_done_ = true;
    cv_.notify_all();
  } else {
    common::MutexLock lock(mutex_);
    while (!join_done_) cv_.wait(mutex_);
  }
}

void ComponentRuntime::worker_loop() {
  for (;;) {
    Job job;
    {
      common::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }

    JobResult result;
    result.queue_wait_ms = job.enqueue_time.elapsed_ms();
    const SinceEnqueueClock clock(job.enqueue_time);
    result.trace =
        run_algorithm1(config_.algorithm, clock, job.stage1, job.improve);
    result.total_latency_ms = job.enqueue_time.elapsed_ms();

    {
      common::MutexLock lock(mutex_);
      ++stats_.completed;
      latency_ms_.add(result.total_latency_ms);
    }
    if (job.done) job.done(result);
  }
}

}  // namespace at::core
