// Axis-aligned d-dimensional rectangles (minimum bounding rectangles) for
// the R-tree. Dimensionality is a runtime parameter: the synopsis pipeline
// reduces data to j ~ 3 dimensions, but nothing in the tree assumes 3.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace at::rtree {

class Rect {
 public:
  Rect() = default;
  Rect(std::vector<double> lo, std::vector<double> hi);

  /// Degenerate rectangle covering a single point.
  static Rect point(std::span<const double> coords);

  std::size_t dims() const { return lo_.size(); }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }
  double lo(std::size_t d) const { return lo_[d]; }
  double hi(std::size_t d) const { return hi_[d]; }
  double center(std::size_t d) const { return 0.5 * (lo_[d] + hi_[d]); }

  bool contains(const Rect& other) const;
  bool intersects(const Rect& other) const;

  /// Product of side lengths.
  double area() const;
  /// Sum of side lengths (the R*-tree margin metric).
  double margin() const;

  /// Grows this rectangle to cover `other`.
  void expand(const Rect& other);

  /// Area increase required to cover `other` (>= 0).
  double enlargement(const Rect& other) const;

  /// Smallest rectangle covering both.
  static Rect join(const Rect& a, const Rect& b);

  /// Area of the overlap region (0 when disjoint).
  double overlap_area(const Rect& other) const;

  /// Squared minimum Euclidean distance from a point to this rectangle
  /// (0 when the point lies inside). Used by nearest-neighbour search.
  double min_dist2(std::span<const double> point) const;

  bool operator==(const Rect& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

 private:
  std::vector<double> lo_, hi_;
};

}  // namespace at::rtree
