// Guttman R-tree with quadratic split, dynamic insert/delete, and STR bulk
// loading — synopsis creation step 2 and the substrate for incremental
// synopsis updating.
//
// Properties the synopsis pipeline relies on (paper §2.2):
//  * Points close in feature space land in the same node (quadratic split
//    minimizes MBR area growth).
//  * The tree is depth-balanced: all leaves sit at the same level, so the
//    nodes at one level partition the dataset into similarly sized groups
//    with a uniform "approximation level".
//  * Leaf entries can be inserted and deleted dynamically, enabling
//    incremental updates of an existing synopsis.
//
// Extra machinery for the updater: every node has a stable id and a version
// counter that is bumped whenever anything in its subtree changes, so the
// synopsis updater can re-aggregate only the dirty groups.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rtree/rect.h"

namespace at::rtree {

/// Node-split algorithm.
enum class SplitPolicy {
  /// Guttman's quadratic split: seeds by maximum dead area, distribution
  /// by maximum preference difference.
  kQuadratic,
  /// R*-tree split (Beckmann et al.): axis by minimum margin sum,
  /// distribution by minimum overlap (area as tie-break). Produces more
  /// square, less overlapping nodes — tighter synopsis groups.
  kRStar,
};

struct RTreeParams {
  std::size_t max_entries = 8;  // node capacity M
  std::size_t min_entries = 3;  // fill floor m (<= M/2)
  SplitPolicy split = SplitPolicy::kQuadratic;
};

struct RTreeStats {
  std::size_t data_entries = 0;
  std::size_t nodes = 0;
  std::size_t height = 0;  // number of levels; 1 = root is a leaf
};

class RTree {
 public:
  /// A stable reference to an internal node, exposed for synopsis building.
  struct NodeRef {
    std::uint64_t node_id = 0;
    std::uint64_t version = 0;  // bumped on any subtree modification
    std::size_t level = 0;      // 0 = leaf
    Rect mbr;
    std::size_t subtree_size = 0;  // number of data entries beneath
  };

  explicit RTree(std::size_t dims, RTreeParams params = {});
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Deep copy preserving node ids, versions and the id allocator, so the
  /// clone continues incremental updates exactly like the original. This
  /// is what lets an epoch snapshot carry its own tree while the shadow
  /// copy keeps mutating (copying is explicit — the copy ctor stays
  /// deleted so a tree is never duplicated by accident).
  RTree clone() const;

  std::size_t dims() const { return dims_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of levels (1 when the root is a leaf).
  std::size_t height() const;

  /// Inserts a data entry. data_id need not be unique, but erase() removes
  /// one matching (id, rect) pair at a time.
  void insert(std::uint64_t data_id, const Rect& rect);
  void insert_point(std::uint64_t data_id, std::span<const double> coords) {
    insert(data_id, Rect::point(coords));
  }

  /// Removes one entry matching (data_id, rect). Returns false if absent.
  bool erase(std::uint64_t data_id, const Rect& rect);

  /// Sort-Tile-Recursive bulk load; O(k log k) and produces well-packed
  /// nodes. `items` are (data_id, point/rect) pairs.
  static RTree bulk_load(std::size_t dims,
                         std::vector<std::pair<std::uint64_t, Rect>> items,
                         RTreeParams params = {});

  /// All data ids whose rect intersects `query`.
  std::vector<std::uint64_t> range_query(const Rect& query) const;

  /// The k data entries nearest to `point` (squared Euclidean distance to
  /// their rectangles), best first. Ties broken by lower data id.
  struct Neighbor {
    std::uint64_t data_id = 0;
    double dist2 = 0.0;
  };
  std::vector<Neighbor> nearest(std::span<const double> point,
                                std::size_t k) const;

  /// References to every node at the given level (0 = leaves).
  std::vector<NodeRef> nodes_at_level(std::size_t level) const;
  std::size_t node_count_at_level(std::size_t level) const;

  /// Highest-resolution level whose node count does not exceed max_nodes:
  /// scans levels from the leaves upward and returns the first (deepest)
  /// one that fits. This implements the paper's depth-selection rule
  /// ("sufficient number of nodes for fine-grained differentiation, yet
  /// much smaller than the number of data points").
  std::size_t select_level(std::size_t max_nodes) const;

  /// Data ids of every entry in the subtree rooted at node_id.
  std::vector<std::uint64_t> subtree_data_ids(std::uint64_t node_id) const;

  /// Current version of a node (throws if unknown).
  std::uint64_t node_version(std::uint64_t node_id) const;

  RTreeStats stats() const;

  /// Serializes the full tree — structure, data entries, stable node ids
  /// and versions — so incremental synopsis updating can resume after a
  /// reload (paper §3.1 stores the R-tree and index file for exactly this).
  void save(std::ostream& os) const;
  static RTree load(std::istream& is);

  /// Validates structural invariants; throws std::logic_error on violation.
  ///  - all leaves at level 0, consistent levels per node
  ///  - every child MBR is contained in its parent entry MBR
  ///  - entry counts within [min_entries, max_entries] except the root
  ///  - size() equals the number of reachable data entries
  void check_invariants() const;

 private:
  struct Node;
  struct Entry;

  Node* choose_subtree(Node* node, const Rect& rect, std::size_t target_level);
  void split_node(Node* node, std::unique_ptr<Node>& sibling_out);
  void split_quadratic(Node* node, std::unique_ptr<Node>& sibling_out);
  void split_rstar(Node* node, std::unique_ptr<Node>& sibling_out);
  void adjust_after_insert(std::vector<Node*>& path);
  Node* find_leaf(Node* node, std::uint64_t data_id, const Rect& rect,
                  std::vector<Node*>& path);
  void condense_tree(std::vector<Node*>& path);
  void bump_versions(const std::vector<Node*>& path);
  void register_node(Node* node);
  void unregister_subtree(Node* node);
  void collect_ids(const Node* node, std::vector<std::uint64_t>& out) const;
  void insert_at_level(std::uint64_t data_id, const Rect& rect,
                       std::unique_ptr<Node> subtree, std::size_t level);
  static void gather_entries_recursive(
      Node* node, std::vector<std::pair<std::uint64_t, Rect>>& out);
  static void unregister_subtree_shallow_reregister(Node* node);

  std::size_t dims_;
  RTreeParams params_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::uint64_t next_node_id_ = 1;
  std::unordered_map<std::uint64_t, Node*> registry_;
};

}  // namespace at::rtree
