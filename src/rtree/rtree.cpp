#include "rtree/rtree.h"

#include <algorithm>

#include "common/binary_io.h"
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace at::rtree {

struct RTree::Entry {
  Rect rect;
  std::uint64_t data_id = 0;    // meaningful when child == nullptr
  std::unique_ptr<Node> child;  // non-null for internal entries

  bool is_data() const { return child == nullptr; }
};

struct RTree::Node {
  std::uint64_t id = 0;
  std::uint64_t version = 0;
  std::size_t level = 0;  // 0 = leaf
  std::vector<Entry> entries;

  bool is_leaf() const { return level == 0; }

  Rect compute_mbr() const {
    Rect mbr;
    for (const auto& e : entries) mbr.expand(e.rect);
    return mbr;
  }

  std::size_t subtree_size() const {
    if (is_leaf()) return entries.size();
    std::size_t n = 0;
    for (const auto& e : entries) n += e.child->subtree_size();
    return n;
  }
};

RTree::RTree(std::size_t dims, RTreeParams params)
    : dims_(dims), params_(params) {
  if (dims_ == 0) throw std::invalid_argument("RTree: dims must be >= 1");
  if (params_.min_entries < 1 ||
      params_.min_entries > params_.max_entries / 2 ||
      params_.max_entries < 2) {
    throw std::invalid_argument(
        "RTree: need max_entries >= 2 and 1 <= min_entries <= max_entries/2");
  }
  root_ = std::make_unique<Node>();
  root_->id = next_node_id_++;
  root_->level = 0;
  register_node(root_.get());
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

RTree RTree::clone() const {
  RTree copy(dims_, params_);
  std::function<std::unique_ptr<Node>(const Node*)> clone_node =
      [&](const Node* node) -> std::unique_ptr<Node> {
    auto out = std::make_unique<Node>();
    out->id = node->id;
    out->version = node->version;
    out->level = node->level;
    out->entries.reserve(node->entries.size());
    for (const auto& e : node->entries) {
      Entry ce;
      ce.rect = e.rect;
      if (e.is_data()) {
        ce.data_id = e.data_id;
      } else {
        ce.child = clone_node(e.child.get());
      }
      out->entries.push_back(std::move(ce));
    }
    copy.register_node(out.get());
    return out;
  };
  copy.registry_.clear();
  copy.root_ = clone_node(root_.get());
  copy.size_ = size_;
  copy.next_node_id_ = next_node_id_;
  return copy;
}

std::size_t RTree::height() const { return root_->level + 1; }

void RTree::register_node(Node* node) { registry_[node->id] = node; }

void RTree::unregister_subtree(Node* node) {
  registry_.erase(node->id);
  if (!node->is_leaf()) {
    for (auto& e : node->entries) unregister_subtree(e.child.get());
  }
}

void RTree::bump_versions(const std::vector<Node*>& path) {
  for (Node* n : path) ++n->version;
}

RTree::Node* RTree::choose_subtree(Node* node, const Rect& rect,
                                   std::size_t target_level) {
  // Descends one step toward target_level by least area enlargement,
  // breaking ties by smaller area (Guttman's ChooseLeaf).
  (void)target_level;
  Entry* best = nullptr;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (auto& e : node->entries) {
    const double enl = e.rect.enlargement(rect);
    const double area = e.rect.area();
    if (enl < best_enlargement ||
        (enl == best_enlargement && area < best_area)) {
      best = &e;
      best_enlargement = enl;
      best_area = area;
    }
  }
  if (best == nullptr)
    throw std::logic_error("RTree::choose_subtree: internal node is empty");
  return best->child.get();
}

void RTree::split_node(Node* node, std::unique_ptr<Node>& sibling_out) {
  if (params_.split == SplitPolicy::kRStar) {
    split_rstar(node, sibling_out);
  } else {
    split_quadratic(node, sibling_out);
  }
}

void RTree::split_rstar(Node* node, std::unique_ptr<Node>& sibling_out) {
  // R*-tree split (Beckmann et al. 1990): choose the split axis by the
  // minimum sum of margins over all candidate distributions, then the
  // distribution on that axis by minimum overlap (minimum total area as
  // tie-break). Candidates come from sorting by both lower and upper
  // rectangle bounds.
  std::vector<Entry> all;
  all.swap(node->entries);
  const std::size_t total = all.size();
  const std::size_t m = params_.min_entries;

  struct Candidate {
    std::vector<std::size_t> order;  // permutation of entry indices
    std::size_t split_pos = 0;       // first `split_pos` go left
    double overlap = 0.0;
    double area = 0.0;
  };

  auto evaluate_axis = [&](std::size_t axis, bool by_upper, double& margin_sum,
                           Candidate& best_candidate) {
    std::vector<std::size_t> order(total);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double ka = by_upper ? all[a].rect.hi(axis) : all[a].rect.lo(axis);
      const double kb = by_upper ? all[b].rect.hi(axis) : all[b].rect.lo(axis);
      return ka < kb;
    });
    // Prefix/suffix MBRs for O(n) distribution evaluation.
    std::vector<Rect> prefix(total), suffix(total);
    Rect acc;
    for (std::size_t i = 0; i < total; ++i) {
      acc.expand(all[order[i]].rect);
      prefix[i] = acc;
    }
    acc = Rect();
    for (std::size_t i = total; i-- > 0;) {
      acc.expand(all[order[i]].rect);
      suffix[i] = acc;
    }
    for (std::size_t split = m; split + m <= total; ++split) {
      const Rect& left = prefix[split - 1];
      const Rect& right = suffix[split];
      margin_sum += left.margin() + right.margin();
      const double overlap = left.overlap_area(right);
      const double area = left.area() + right.area();
      if (best_candidate.order.empty() || overlap < best_candidate.overlap ||
          (overlap == best_candidate.overlap &&
           area < best_candidate.area)) {
        best_candidate = Candidate{order, split, overlap, area};
      }
    }
  };

  const std::size_t dims = dims_;
  double best_margin = std::numeric_limits<double>::infinity();
  Candidate chosen;
  for (std::size_t axis = 0; axis < dims; ++axis) {
    double margin_sum = 0.0;
    Candidate axis_best;
    evaluate_axis(axis, false, margin_sum, axis_best);
    evaluate_axis(axis, true, margin_sum, axis_best);
    if (margin_sum < best_margin) {
      best_margin = margin_sum;
      chosen = std::move(axis_best);
    }
  }

  sibling_out = std::make_unique<Node>();
  sibling_out->id = next_node_id_++;
  sibling_out->level = node->level;
  register_node(sibling_out.get());

  for (std::size_t i = 0; i < total; ++i) {
    Entry& e = all[chosen.order[i]];
    if (i < chosen.split_pos) {
      node->entries.push_back(std::move(e));
    } else {
      sibling_out->entries.push_back(std::move(e));
    }
  }
  ++node->version;
  ++sibling_out->version;
}

void RTree::split_quadratic(Node* node, std::unique_ptr<Node>& sibling_out) {
  // Guttman quadratic split.
  std::vector<Entry> all;
  all.swap(node->entries);

  // Pick seeds: the pair wasting the most area if grouped together.
  std::size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const double waste = Rect::join(all[i].rect, all[j].rect).area() -
                           all[i].rect.area() - all[j].rect.area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  sibling_out = std::make_unique<Node>();
  sibling_out->id = next_node_id_++;
  sibling_out->level = node->level;
  register_node(sibling_out.get());

  Rect mbr_a = all[seed_a].rect;
  Rect mbr_b = all[seed_b].rect;
  node->entries.push_back(std::move(all[seed_a]));
  sibling_out->entries.push_back(std::move(all[seed_b]));

  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(i);
  }

  while (!rest.empty()) {
    // If one side must take all remaining entries to reach the minimum,
    // give it everything.
    const std::size_t remaining = rest.size();
    if (node->entries.size() + remaining == params_.min_entries) {
      for (auto idx : rest) {
        mbr_a.expand(all[idx].rect);
        node->entries.push_back(std::move(all[idx]));
      }
      break;
    }
    if (sibling_out->entries.size() + remaining == params_.min_entries) {
      for (auto idx : rest) {
        mbr_b.expand(all[idx].rect);
        sibling_out->entries.push_back(std::move(all[idx]));
      }
      break;
    }

    // PickNext: entry with the greatest preference for one group.
    std::size_t pick_pos = 0;
    double best_diff = -1.0;
    double d_a_pick = 0.0, d_b_pick = 0.0;
    for (std::size_t p = 0; p < rest.size(); ++p) {
      const Rect& r = all[rest[p]].rect;
      const double da = Rect::join(mbr_a, r).area() - mbr_a.area();
      const double db = Rect::join(mbr_b, r).area() - mbr_b.area();
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick_pos = p;
        d_a_pick = da;
        d_b_pick = db;
      }
    }
    const std::size_t idx = rest[pick_pos];
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(pick_pos));

    bool to_a;
    if (d_a_pick != d_b_pick) {
      to_a = d_a_pick < d_b_pick;
    } else if (mbr_a.area() != mbr_b.area()) {
      to_a = mbr_a.area() < mbr_b.area();
    } else {
      to_a = node->entries.size() <= sibling_out->entries.size();
    }
    if (to_a) {
      mbr_a.expand(all[idx].rect);
      node->entries.push_back(std::move(all[idx]));
    } else {
      mbr_b.expand(all[idx].rect);
      sibling_out->entries.push_back(std::move(all[idx]));
    }
  }
  ++node->version;
  ++sibling_out->version;
}

void RTree::insert(std::uint64_t data_id, const Rect& rect) {
  if (rect.dims() != dims_)
    throw std::invalid_argument("RTree::insert: rect dimension mismatch");
  insert_at_level(data_id, rect, nullptr, 0);
  ++size_;
}

void RTree::insert_at_level(std::uint64_t data_id, const Rect& rect,
                            std::unique_ptr<Node> subtree,
                            std::size_t level) {
  // Descend to a node at `level` (data entries go into leaves, level 0;
  // orphaned subtrees from deletion re-enter at their original height).
  std::vector<Node*> path;
  Node* node = root_.get();
  path.push_back(node);
  while (node->level > level) {
    node = choose_subtree(node, rect, level);
    path.push_back(node);
  }

  Entry entry;
  entry.rect = rect;
  entry.data_id = data_id;
  entry.child = std::move(subtree);
  node->entries.push_back(std::move(entry));
  bump_versions(path);
  adjust_after_insert(path);
}

void RTree::adjust_after_insert(std::vector<Node*>& path) {
  // Walk from the modified node back to the root, splitting overflowing
  // nodes and keeping parent entry rectangles tight.
  for (std::size_t i = path.size(); i-- > 0;) {
    Node* node = path[i];
    std::unique_ptr<Node> sibling;
    if (node->entries.size() > params_.max_entries) {
      split_node(node, sibling);
    }

    if (i == 0) {
      if (sibling) {
        // Root split: grow the tree by one level.
        auto new_root = std::make_unique<Node>();
        new_root->id = next_node_id_++;
        new_root->level = node->level + 1;

        Entry left;
        left.rect = node->compute_mbr();
        left.child = std::move(root_);
        Entry right;
        right.rect = sibling->compute_mbr();
        right.child = std::move(sibling);
        new_root->entries.push_back(std::move(left));
        new_root->entries.push_back(std::move(right));
        root_ = std::move(new_root);
        register_node(root_.get());
      }
      return;
    }

    // Refresh this node's rectangle in its parent.
    Node* parent = path[i - 1];
    for (auto& e : parent->entries) {
      if (e.child.get() == node) {
        e.rect = node->compute_mbr();
        break;
      }
    }
    if (sibling) {
      Entry e;
      e.rect = sibling->compute_mbr();
      e.child = std::move(sibling);
      parent->entries.push_back(std::move(e));
      // Parent may now overflow; handled on the next loop iteration.
    }
  }
}

RTree::Node* RTree::find_leaf(Node* node, std::uint64_t data_id,
                              const Rect& rect, std::vector<Node*>& path) {
  path.push_back(node);
  if (node->is_leaf()) {
    for (const auto& e : node->entries) {
      if (e.data_id == data_id && e.rect == rect) return node;
    }
    path.pop_back();
    return nullptr;
  }
  for (auto& e : node->entries) {
    if (e.rect.contains(rect)) {
      Node* found = find_leaf(e.child.get(), data_id, rect, path);
      if (found) return found;
    }
  }
  path.pop_back();
  return nullptr;
}

bool RTree::erase(std::uint64_t data_id, const Rect& rect) {
  if (rect.dims() != dims_)
    throw std::invalid_argument("RTree::erase: rect dimension mismatch");
  std::vector<Node*> path;
  Node* leaf = find_leaf(root_.get(), data_id, rect, path);
  if (leaf == nullptr) return false;

  auto it = std::find_if(leaf->entries.begin(), leaf->entries.end(),
                         [&](const Entry& e) {
                           return e.is_data() && e.data_id == data_id &&
                                  e.rect == rect;
                         });
  leaf->entries.erase(it);
  --size_;
  bump_versions(path);
  condense_tree(path);
  return true;
}

void RTree::condense_tree(std::vector<Node*>& path) {
  // Nodes that underflow are removed; their surviving entries re-enter the
  // tree at the height they came from (Guttman's CondenseTree).
  struct Orphan {
    std::unique_ptr<Node> node;
  };
  std::vector<Orphan> orphans;

  for (std::size_t i = path.size(); i-- > 1;) {
    Node* node = path[i];
    Node* parent = path[i - 1];
    auto it = std::find_if(
        parent->entries.begin(), parent->entries.end(),
        [&](const Entry& e) { return e.child.get() == node; });
    if (it == parent->entries.end())
      throw std::logic_error("RTree::condense_tree: broken parent link");

    if (node->entries.size() < params_.min_entries) {
      orphans.push_back(Orphan{std::move(it->child)});
      parent->entries.erase(it);
    } else {
      it->rect = node->compute_mbr();
    }
  }

  // Shrink the root while it is internal with a single child.
  while (!root_->is_leaf() && root_->entries.size() == 1) {
    registry_.erase(root_->id);
    std::unique_ptr<Node> child = std::move(root_->entries.front().child);
    root_ = std::move(child);
  }
  if (!root_->is_leaf() && root_->entries.empty()) {
    // All children were orphaned; reset to an empty leaf.
    registry_.erase(root_->id);
    root_ = std::make_unique<Node>();
    root_->id = next_node_id_++;
    root_->level = 0;
    register_node(root_.get());
  }

  // Reinsert orphans' contents.
  for (auto& orphan : orphans) {
    Node* q = orphan.node.get();
    registry_.erase(q->id);
    if (q->is_leaf()) {
      for (auto& e : q->entries) {
        insert_at_level(e.data_id, e.rect, nullptr, 0);
      }
    } else {
      for (auto& e : q->entries) {
        // Children of a level-l node live at level l-1; they must re-enter
        // as entries of a node at level l.
        const std::size_t child_level = e.child->level;
        Rect r = e.rect;
        if (child_level + 1 > root_->level) {
          // The tree shrank below the orphan's height; dissolve the child
          // into its own data entries.
          std::vector<std::pair<std::uint64_t, Rect>> pending;
          gather_entries_recursive(e.child.get(), pending);
          unregister_subtree(e.child.get());
          for (auto& [id, rect] : pending) insert_at_level(id, rect, nullptr, 0);
          continue;
        }
        unregister_subtree_shallow_reregister(e.child.get());
        insert_at_level(0, r, std::move(e.child), child_level + 1);
      }
    }
  }
}

void RTree::collect_ids(const Node* node,
                        std::vector<std::uint64_t>& out) const {
  if (node->is_leaf()) {
    for (const auto& e : node->entries) out.push_back(e.data_id);
    return;
  }
  for (const auto& e : node->entries) collect_ids(e.child.get(), out);
}

std::vector<std::uint64_t> RTree::range_query(const Rect& query) const {
  std::vector<std::uint64_t> out;
  std::deque<const Node*> frontier{root_.get()};
  while (!frontier.empty()) {
    const Node* node = frontier.front();
    frontier.pop_front();
    for (const auto& e : node->entries) {
      if (!e.rect.intersects(query)) continue;
      if (e.is_data()) {
        out.push_back(e.data_id);
      } else {
        frontier.push_back(e.child.get());
      }
    }
  }
  return out;
}

std::vector<RTree::Neighbor> RTree::nearest(std::span<const double> point,
                                            std::size_t k) const {
  if (point.size() != dims_)
    throw std::invalid_argument("RTree::nearest: point dimension mismatch");
  std::vector<Neighbor> out;
  if (k == 0 || empty()) return out;

  // Best-first search: a frontier of (node or data entry) ordered by
  // minimum possible distance; pop data entries in true distance order.
  struct Item {
    double dist2;
    bool is_data;
    std::uint64_t data_id;
    const Node* node;
  };
  struct Worse {
    bool operator()(const Item& a, const Item& b) const {
      if (a.dist2 != b.dist2) return a.dist2 > b.dist2;
      return a.data_id > b.data_id;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Worse> frontier;
  frontier.push(Item{0.0, false, 0, root_.get()});
  while (!frontier.empty() && out.size() < k) {
    const Item item = frontier.top();
    frontier.pop();
    if (item.is_data) {
      out.push_back(Neighbor{item.data_id, item.dist2});
      continue;
    }
    for (const auto& e : item.node->entries) {
      const double d2 = e.rect.min_dist2(point);
      if (e.is_data()) {
        frontier.push(Item{d2, true, e.data_id, nullptr});
      } else {
        frontier.push(Item{d2, false, 0, e.child.get()});
      }
    }
  }
  return out;
}

std::vector<RTree::NodeRef> RTree::nodes_at_level(std::size_t level) const {
  std::vector<NodeRef> out;
  std::deque<const Node*> frontier{root_.get()};
  while (!frontier.empty()) {
    const Node* node = frontier.front();
    frontier.pop_front();
    if (node->level == level) {
      NodeRef ref;
      ref.node_id = node->id;
      ref.version = node->version;
      ref.level = node->level;
      ref.mbr = node->compute_mbr();
      ref.subtree_size = node->subtree_size();
      out.push_back(std::move(ref));
      continue;
    }
    if (node->level > level) {
      for (const auto& e : node->entries) frontier.push_back(e.child.get());
    }
  }
  return out;
}

std::size_t RTree::node_count_at_level(std::size_t level) const {
  return nodes_at_level(level).size();
}

std::size_t RTree::select_level(std::size_t max_nodes) const {
  for (std::size_t level = 0; level <= root_->level; ++level) {
    if (node_count_at_level(level) <= max_nodes) return level;
  }
  return root_->level;
}

std::vector<std::uint64_t> RTree::subtree_data_ids(
    std::uint64_t node_id) const {
  auto it = registry_.find(node_id);
  if (it == registry_.end())
    throw std::out_of_range("RTree::subtree_data_ids: unknown node id");
  std::vector<std::uint64_t> out;
  collect_ids(it->second, out);
  return out;
}

std::uint64_t RTree::node_version(std::uint64_t node_id) const {
  auto it = registry_.find(node_id);
  if (it == registry_.end())
    throw std::out_of_range("RTree::node_version: unknown node id");
  return it->second->version;
}

RTreeStats RTree::stats() const {
  RTreeStats s;
  s.data_entries = size_;
  s.height = height();
  std::deque<const Node*> frontier{root_.get()};
  while (!frontier.empty()) {
    const Node* node = frontier.front();
    frontier.pop_front();
    ++s.nodes;
    if (!node->is_leaf()) {
      for (const auto& e : node->entries) frontier.push_back(e.child.get());
    }
  }
  return s;
}

void RTree::check_invariants() const {
  std::size_t counted = 0;
  std::function<void(const Node*, bool)> walk = [&](const Node* node,
                                                    bool is_root) {
    if (!is_root) {
      if (node->entries.size() < params_.min_entries ||
          node->entries.size() > params_.max_entries) {
        throw std::logic_error("RTree invariant: entry count out of bounds");
      }
    } else if (node->entries.size() > params_.max_entries) {
      throw std::logic_error("RTree invariant: root overflow");
    }
    auto reg = registry_.find(node->id);
    if (reg == registry_.end() || reg->second != node)
      throw std::logic_error("RTree invariant: registry desync");
    for (const auto& e : node->entries) {
      if (node->is_leaf()) {
        if (!e.is_data())
          throw std::logic_error("RTree invariant: child entry in leaf");
        ++counted;
      } else {
        if (e.is_data())
          throw std::logic_error("RTree invariant: data entry in internal");
        if (e.child->level + 1 != node->level)
          throw std::logic_error("RTree invariant: level discontinuity");
        const Rect child_mbr = e.child->compute_mbr();
        if (!(e.rect == child_mbr) && !e.rect.contains(child_mbr))
          throw std::logic_error("RTree invariant: loose parent rectangle");
        walk(e.child.get(), false);
      }
    }
  };
  walk(root_.get(), true);
  if (counted != size_)
    throw std::logic_error("RTree invariant: size mismatch");
}

RTree RTree::bulk_load(std::size_t dims,
                       std::vector<std::pair<std::uint64_t, Rect>> items,
                       RTreeParams params) {
  RTree tree(dims, params);
  if (items.empty()) return tree;

  // Sort-Tile-Recursive: recursively slab-sort by successive dimensions to
  // produce a spatially coherent ordering, then chunk sequentially into
  // nodes. The tail chunk is rebalanced against its predecessor so that no
  // non-root node underflows min_entries.
  const std::size_t cap = params.max_entries;
  const std::size_t min_e = params.min_entries;
  using Item = std::pair<std::uint64_t, Rect>;

  // Chunk [0, n) into ranges of <= cap entries, each >= min_e when more
  // than one range exists. Requires min_e <= cap/2 (enforced in the ctor).
  auto chunk_ranges = [&](std::size_t n) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    for (std::size_t i = 0; i < n; i += cap) {
      ranges.emplace_back(i, std::min(n, i + cap));
    }
    if (ranges.size() > 1) {
      auto& last = ranges.back();
      auto& prev = ranges[ranges.size() - 2];
      if (last.second - last.first < min_e) {
        const std::size_t total = last.second - prev.first;
        const std::size_t first_half = (total + 1) / 2;
        prev.second = prev.first + first_half;
        last.first = prev.second;
      }
    }
    return ranges;
  };

  // Leaf chunks are emitted *within* slabs (a chunk never straddles a slab
  // boundary — straddling would splice together points that are far apart
  // in the last-sorted dimension). Undersized tail chunks are rebalanced
  // against their predecessor afterwards.
  std::vector<std::pair<std::size_t, std::size_t>> leaf_ranges;
  std::function<void(std::size_t, std::size_t, std::size_t)> str_emit =
      [&](std::size_t lo, std::size_t hi, std::size_t dim) {
        const std::size_t n = hi - lo;
        if (n <= cap) {
          leaf_ranges.emplace_back(lo, hi);
          return;
        }
        std::sort(items.begin() + static_cast<std::ptrdiff_t>(lo),
                  items.begin() + static_cast<std::ptrdiff_t>(hi),
                  [dim](const Item& a, const Item& b) {
                    return a.second.center(dim) < b.second.center(dim);
                  });
        if (dim + 1 == dims) {
          for (std::size_t i = lo; i < hi; i += cap) {
            leaf_ranges.emplace_back(i, std::min(hi, i + cap));
          }
          return;
        }
        const double leaves =
            std::ceil(static_cast<double>(n) / static_cast<double>(cap));
        const std::size_t slabs = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::ceil(std::pow(
                   leaves, 1.0 / static_cast<double>(dims - dim)))));
        const std::size_t slab_size = (n + slabs - 1) / slabs;
        for (std::size_t i = lo; i < hi; i += slab_size) {
          str_emit(i, std::min(hi, i + slab_size), dim + 1);
        }
      };
  str_emit(0, items.size(), 0);

  // Fix undersized chunks against an adjacent neighbour: merge when the
  // union fits a node, otherwise split the union evenly (both halves land
  // in [min_entries, max_entries] because min_entries <= max_entries / 2).
  for (std::size_t k = 0; k < leaf_ranges.size() && leaf_ranges.size() > 1;) {
    if (leaf_ranges[k].second - leaf_ranges[k].first >= min_e) {
      ++k;
      continue;
    }
    const std::size_t nb = (k == 0) ? 1 : k - 1;
    const std::size_t left = std::min(k, nb);
    const std::size_t right = std::max(k, nb);
    const std::size_t span_lo = leaf_ranges[left].first;
    const std::size_t span_hi = leaf_ranges[right].second;
    const std::size_t total_span = span_hi - span_lo;
    if (total_span <= cap) {
      leaf_ranges[left] = {span_lo, span_hi};
      leaf_ranges.erase(leaf_ranges.begin() +
                        static_cast<std::ptrdiff_t>(right));
      k = left;
    } else {
      const std::size_t mid = span_lo + (total_span + 1) / 2;
      leaf_ranges[left] = {span_lo, mid};
      leaf_ranges[right] = {mid, span_hi};
      ++k;
    }
  }

  // Build leaf nodes.
  std::vector<std::unique_ptr<Node>> level_nodes;
  std::size_t total = 0;
  for (const auto& [lo, hi] : leaf_ranges) {
    auto node = std::make_unique<Node>();
    node->id = tree.next_node_id_++;
    node->level = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      Entry e;
      e.rect = items[i].second;
      e.data_id = items[i].first;
      node->entries.push_back(std::move(e));
      ++total;
    }
    level_nodes.push_back(std::move(node));
  }

  // Pack upward until a single root remains; the leaf order is spatially
  // coherent, so sequential chunking keeps siblings coherent too.
  std::size_t level = 0;
  while (level_nodes.size() > 1) {
    ++level;
    std::vector<std::unique_ptr<Node>> parents;
    for (const auto& [lo, hi] : chunk_ranges(level_nodes.size())) {
      auto parent = std::make_unique<Node>();
      parent->id = tree.next_node_id_++;
      parent->level = level;
      for (std::size_t j = lo; j < hi; ++j) {
        Entry e;
        e.rect = level_nodes[j]->compute_mbr();
        e.child = std::move(level_nodes[j]);
        parent->entries.push_back(std::move(e));
      }
      parents.push_back(std::move(parent));
    }
    level_nodes = std::move(parents);
  }

  tree.registry_.clear();
  tree.root_ = std::move(level_nodes.front());
  std::function<void(Node*)> reg = [&](Node* node) {
    tree.register_node(node);
    if (!node->is_leaf()) {
      for (auto& e : node->entries) reg(e.child.get());
    }
  };
  reg(tree.root_.get());
  tree.size_ = total;
  return tree;
}

namespace {
constexpr char kRTreeMagic[4] = {'A', 'T', 'R', 'T'};
constexpr std::uint32_t kRTreeVersion = 1;
}  // namespace

void RTree::save(std::ostream& os) const {
  common::BinaryWriter w(os);
  w.magic(kRTreeMagic, kRTreeVersion);
  w.u64(dims_);
  w.u64(params_.max_entries);
  w.u64(params_.min_entries);
  w.u8(params_.split == SplitPolicy::kRStar ? 1 : 0);
  w.u64(size_);
  w.u64(next_node_id_);

  std::function<void(const Node*)> write_node = [&](const Node* node) {
    w.u64(node->id);
    w.u64(node->version);
    w.u64(node->level);
    w.u64(node->entries.size());
    for (const auto& e : node->entries) {
      w.vec_f64(e.rect.lo());
      w.vec_f64(e.rect.hi());
      w.boolean(e.is_data());
      if (e.is_data()) {
        w.u64(e.data_id);
      } else {
        write_node(e.child.get());
      }
    }
  };
  write_node(root_.get());
}

RTree RTree::load(std::istream& is) {
  common::BinaryReader r(is);
  const auto version = r.magic(kRTreeMagic);
  if (version != kRTreeVersion)
    throw std::runtime_error("RTree::load: unsupported format version");
  const auto dims = r.u64();
  RTreeParams params;
  params.max_entries = r.u64();
  params.min_entries = r.u64();
  params.split = r.u8() != 0 ? SplitPolicy::kRStar : SplitPolicy::kQuadratic;
  RTree tree(dims, params);
  const auto size = r.u64();
  const auto next_id = r.u64();

  std::function<std::unique_ptr<Node>()> read_node =
      [&]() -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>();
    node->id = r.u64();
    node->version = r.u64();
    node->level = r.u64();
    const auto n_entries = r.u64();
    node->entries.reserve(n_entries);
    for (std::uint64_t i = 0; i < n_entries; ++i) {
      Entry e;
      auto lo = r.vec_f64();
      auto hi = r.vec_f64();
      e.rect = Rect(std::move(lo), std::move(hi));
      const bool is_data = r.boolean();
      if (is_data) {
        e.data_id = r.u64();
      } else {
        e.child = read_node();
      }
      node->entries.push_back(std::move(e));
    }
    return node;
  };

  tree.registry_.clear();
  tree.root_ = read_node();
  tree.size_ = size;
  tree.next_node_id_ = next_id;
  std::function<void(Node*)> reg = [&](Node* node) {
    tree.register_node(node);
    if (!node->is_leaf()) {
      for (auto& e : node->entries) reg(e.child.get());
    }
  };
  reg(tree.root_.get());
  tree.check_invariants();
  return tree;
}

void RTree::gather_entries_recursive(
    Node* node, std::vector<std::pair<std::uint64_t, Rect>>& out) {
  if (node->is_leaf()) {
    for (auto& e : node->entries) out.emplace_back(e.data_id, e.rect);
    return;
  }
  for (auto& e : node->entries) gather_entries_recursive(e.child.get(), out);
}

void RTree::unregister_subtree_shallow_reregister(Node*) {
  // Subtree nodes stay registered: the subtree is moved, not destroyed.
}

}  // namespace at::rtree
