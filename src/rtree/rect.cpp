#include "rtree/rect.h"

#include <algorithm>
#include <stdexcept>

namespace at::rtree {

Rect::Rect(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  if (lo_.size() != hi_.size())
    throw std::invalid_argument("Rect: lo/hi dimension mismatch");
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    if (lo_[d] > hi_[d])
      throw std::invalid_argument("Rect: lo > hi in some dimension");
  }
}

Rect Rect::point(std::span<const double> coords) {
  std::vector<double> v(coords.begin(), coords.end());
  return Rect(v, v);
}

bool Rect::contains(const Rect& other) const {
  for (std::size_t d = 0; d < dims(); ++d) {
    if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
  }
  return true;
}

bool Rect::intersects(const Rect& other) const {
  for (std::size_t d = 0; d < dims(); ++d) {
    if (other.hi_[d] < lo_[d] || other.lo_[d] > hi_[d]) return false;
  }
  return true;
}

double Rect::area() const {
  double a = 1.0;
  for (std::size_t d = 0; d < dims(); ++d) a *= hi_[d] - lo_[d];
  return a;
}

double Rect::margin() const {
  double m = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) m += hi_[d] - lo_[d];
  return m;
}

void Rect::expand(const Rect& other) {
  if (lo_.empty()) {
    *this = other;
    return;
  }
  for (std::size_t d = 0; d < dims(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

double Rect::enlargement(const Rect& other) const {
  Rect joined = join(*this, other);
  return joined.area() - area();
}

Rect Rect::join(const Rect& a, const Rect& b) {
  Rect out = a;
  out.expand(b);
  return out;
}

double Rect::min_dist2(std::span<const double> point) const {
  double acc = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    double gap = 0.0;
    if (point[d] < lo_[d]) {
      gap = lo_[d] - point[d];
    } else if (point[d] > hi_[d]) {
      gap = point[d] - hi_[d];
    }
    acc += gap * gap;
  }
  return acc;
}

double Rect::overlap_area(const Rect& other) const {
  double a = 1.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    const double lo = std::max(lo_[d], other.lo_[d]);
    const double hi = std::min(hi_[d], other.hi_[d]);
    if (hi <= lo) return 0.0;
    a *= hi - lo;
  }
  return a;
}

}  // namespace at::rtree
