#include "synopsis/builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

namespace at::synopsis {

IndexFile SynopsisBuilder::derive_index(const rtree::RTree& tree,
                                        std::size_t level) {
  std::vector<IndexGroup> groups;
  for (const auto& node : tree.nodes_at_level(level)) {
    IndexGroup g;
    g.node_id = node.node_id;
    g.version = node.version;
    auto ids = tree.subtree_data_ids(node.node_id);
    g.members.reserve(ids.size());
    for (auto id : ids) g.members.push_back(static_cast<std::uint32_t>(id));
    std::sort(g.members.begin(), g.members.end());
    groups.push_back(std::move(g));
  }
  // Deterministic group order: by smallest member id. Node enumeration
  // order depends on tree internals; experiments want stable output.
  std::sort(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
    const std::uint32_t ma = a.members.empty() ? 0 : a.members.front();
    const std::uint32_t mb = b.members.empty() ? 0 : b.members.front();
    return ma < mb;
  });
  return IndexFile(std::move(groups));
}

std::size_t SynopsisBuilder::pick_level(const rtree::RTree& tree,
                                        std::size_t n, double size_ratio,
                                        std::size_t min_groups) {
  if (size_ratio < 1.0)
    throw std::invalid_argument("pick_level: size_ratio must be >= 1");
  const double target = std::max(static_cast<double>(min_groups),
                                 std::ceil(static_cast<double>(n) / size_ratio));
  // Pick the level whose node count is closest to the target in ratio
  // terms: fine enough to differentiate data ("a sufficient number of
  // R-tree nodes"), coarse enough that processing the synopsis stays cheap
  // ("much smaller than the number of data points"). With discrete tree
  // levels an exact match rarely exists, so closest-in-log-ratio is the
  // faithful reading of the paper's depth-selection rule.
  std::size_t best_level = 0;
  double best_gap = std::numeric_limits<double>::infinity();
  const std::size_t height = tree.height();
  for (std::size_t level = 0; level < height; ++level) {
    const std::size_t count = tree.node_count_at_level(level);
    if (count < min_groups && level > 0) continue;
    const double gap =
        std::abs(std::log(static_cast<double>(count) / target));
    if (gap < best_gap) {
      best_gap = gap;
      best_level = level;
    }
  }
  return best_level;
}

namespace {

/// Steps 2a–2b shared by the pool and executor build paths.
SynopsisStructure organize(linalg::SvdModel svd, const SparseRows& data,
                           const BuildConfig& config) {
  // Step 2a: organize the reduced points with an R-tree (bulk-loaded; the
  // paper builds the initial tree offline in O(k log k)).
  const std::size_t j = config.svd.rank;
  std::vector<std::pair<std::uint64_t, rtree::Rect>> items;
  items.reserve(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    items.emplace_back(
        r, rtree::Rect::point(std::span<const double>(svd.row_factors.row(r),
                                                      j)));
  }
  rtree::RTree tree = rtree::RTree::bulk_load(j, std::move(items),
                                              config.rtree_params);

  // Step 2b: select the synopsis level and emit the index file.
  const std::size_t level = SynopsisBuilder::pick_level(
      tree, data.rows(), config.size_ratio, config.min_groups);
  IndexFile index = SynopsisBuilder::derive_index(tree, level);
  index.validate_partition(data.rows());

  SynopsisStructure s{std::move(svd), {}, std::move(tree), level,
                      std::move(index)};
  s.reduced = s.svd.row_factors;  // row-aligned copy used for erase/reinsert
  return s;
}

}  // namespace

SynopsisStructure SynopsisBuilder::build(const SparseRows& data,
                                         common::ThreadPool* pool) const {
  if (data.rows() == 0)
    throw std::invalid_argument("SynopsisBuilder::build: empty dataset");

  // Step 1: dimensionality reduction. The reduced dataset preserves
  // proximity: rows similar in the original space stay close in R^j.
  linalg::SvdModel svd =
      linalg::incremental_svd(data.to_dataset(), config_.svd, pool);
  return organize(std::move(svd), data, config_);
}

SynopsisStructure SynopsisBuilder::build_sharded(
    const SparseRows& data, common::ShardedExecutor& exec) const {
  if (data.rows() == 0)
    throw std::invalid_argument("SynopsisBuilder::build: empty dataset");
  linalg::SvdModel svd =
      linalg::incremental_svd_sharded(data.to_dataset(), config_.svd, exec);
  return organize(std::move(svd), data, config_);
}

}  // namespace at::synopsis
