#include "synopsis/multiresolution.h"

#include <algorithm>
#include <stdexcept>

namespace at::synopsis {

MultiResolutionSynopsis::MultiResolutionSynopsis(
    const SynopsisStructure& structure, const SparseRows& data,
    AggregationKind kind, std::size_t min_groups, common::ThreadPool* pool) {
  const std::size_t height = structure.tree.height();
  for (std::size_t tree_level = 0; tree_level < height; ++tree_level) {
    if (structure.tree.node_count_at_level(tree_level) < min_groups &&
        tree_level > 0) {
      break;  // coarser levels only get smaller
    }
    ResolutionLevel level;
    level.tree_level = tree_level;
    level.index = SynopsisBuilder::derive_index(structure.tree, tree_level);
    level.index.validate_partition(data.rows());
    level.synopsis = aggregate_all(data, level.index, kind, pool);
    levels_.push_back(std::move(level));
  }
  if (levels_.empty())
    throw std::logic_error("MultiResolutionSynopsis: no usable level");
}

std::size_t MultiResolutionSynopsis::pick_for_budget(
    std::size_t budget_groups) const {
  for (std::size_t r = 0; r < levels_.size(); ++r) {
    if (levels_[r].groups() <= budget_groups) return r;
  }
  return levels_.size() - 1;  // coarsest available
}

std::size_t MultiResolutionSynopsis::pick_for_deadline(
    double remaining_ms, double ms_per_group, double improve_fraction) const {
  if (ms_per_group <= 0.0)
    throw std::invalid_argument(
        "MultiResolutionSynopsis: ms_per_group must be > 0");
  improve_fraction = std::clamp(improve_fraction, 0.0, 1.0);
  const double stage1_budget_ms =
      std::max(0.0, remaining_ms) * (1.0 - improve_fraction);
  const auto budget_groups =
      static_cast<std::size_t>(stage1_budget_ms / ms_per_group);
  return pick_for_budget(std::max<std::size_t>(budget_groups, 1));
}

}  // namespace at::synopsis
