// Load-adaptive synopsis selection — the extension the paper points to in
// §2.3: "applying a load-adaptive approach that dynamically selects a
// synopsis of a different size according to the current load is possible
// and it is studied in our previous work [SARP], but it is beyond the
// scope of this paper."
//
// The R-tree already contains every candidate granularity: the nodes at
// each level are a complete synopsis of the subset at a different
// approximation ratio. This module materializes aggregated synopses for a
// range of levels and answers the online question "given the time budget
// this request has left, which resolution should stage 1 use?" — under
// light load a fine synopsis (more groups, better ranking and initial
// result), under heavy load a coarse one (cheaper mandatory pass).
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"

namespace at::synopsis {

/// One granularity: the index and aggregation of a single tree level.
struct ResolutionLevel {
  std::size_t tree_level = 0;
  IndexFile index;
  Synopsis synopsis;

  std::size_t groups() const { return index.size(); }
};

class MultiResolutionSynopsis {
 public:
  /// Materializes every tree level of `structure` from the finest (leaf
  /// level, resolution 0) to the coarsest that still has at least
  /// `min_groups` groups. Each level's index partitions the data.
  MultiResolutionSynopsis(const SynopsisStructure& structure,
                          const SparseRows& data, AggregationKind kind,
                          std::size_t min_groups = 2,
                          common::ThreadPool* pool = nullptr);

  std::size_t levels() const { return levels_.size(); }
  /// resolution 0 = finest.
  const ResolutionLevel& level(std::size_t resolution) const {
    return levels_.at(resolution);
  }

  /// Finest resolution whose group count does not exceed `budget_groups`
  /// (i.e. whose mandatory stage-1 cost fits the budget). Falls back to
  /// the coarsest level when even that exceeds the budget.
  std::size_t pick_for_budget(std::size_t budget_groups) const;

  /// Convenience policy: translate a remaining-time budget into a group
  /// budget given the per-group stage-1 processing cost, reserving
  /// `improve_fraction` of the budget for stage 2.
  std::size_t pick_for_deadline(double remaining_ms, double ms_per_group,
                                double improve_fraction = 0.6) const;

 private:
  std::vector<ResolutionLevel> levels_;  // [0] = finest
};

}  // namespace at::synopsis
