// Synopsis creation (paper §2.2, steps 1–2): dimensionality reduction via
// incremental SVD, similar-point organization via an R-tree, and selection
// of the tree level whose nodes become the aggregated data points.
//
// Step 3 (information aggregation) lives in aggregate.h; it is split out
// because the aggregation payload is service-specific (attribute means for
// numeric data, merged contents for text) while steps 1–2 are generic.
#pragma once

#include <cstdint>

#include "common/sharded_executor.h"
#include "common/thread_pool.h"
#include "linalg/svd.h"
#include "rtree/rtree.h"
#include "synopsis/index_file.h"
#include "synopsis/sparse_rows.h"

namespace at::synopsis {

struct BuildConfig {
  /// SVD settings for step 1 (rank j = 3 and 100 epochs/dim in the paper).
  linalg::SvdConfig svd;
  /// R-tree fan-out for step 2.
  rtree::RTreeParams rtree_params;
  /// Target compression: #original points / #aggregated points (the paper
  /// uses "e.g. 100 times smaller").
  double size_ratio = 100.0;
  /// Never collapse below this many aggregated points (keeps ranking
  /// meaningful for tiny test datasets).
  std::size_t min_groups = 2;
};

/// The structural half of a synopsis: everything needed to (a) derive the
/// index file and (b) update it incrementally later. The aggregated
/// payloads built from it are owned by the service (see aggregate.h).
struct SynopsisStructure {
  linalg::SvdModel svd;      // column factors are reused for fold-in
  linalg::Matrix reduced;    // n x j reduced coordinates, row-aligned
  rtree::RTree tree;         // built over the reduced coordinates
  std::size_t level = 0;     // selected synopsis level (0 = leaves)
  IndexFile index;           // aggregated point -> member rows

  std::size_t num_points() const { return reduced.rows(); }
  std::size_t num_groups() const { return index.size(); }

  /// Deep copy (the R-tree member makes the implicit copy deleted); the
  /// clone updates incrementally exactly like the original.
  SynopsisStructure clone() const {
    return SynopsisStructure{svd, reduced, tree.clone(), level, index};
  }
};

class SynopsisBuilder {
 public:
  explicit SynopsisBuilder(BuildConfig config) : config_(config) {}

  const BuildConfig& config() const { return config_; }

  /// Runs steps 1–2 on a subset of input data. The returned structure's
  /// index file is guaranteed to partition the rows of `data`. When `pool`
  /// is given it parallelizes the SVD (hogwild, only if the SVD config has
  /// deterministic = false).
  SynopsisStructure build(const SparseRows& data,
                          common::ThreadPool* pool = nullptr) const;

  /// Topology-aware build: step 1 runs the node-partitioned SVD
  /// (linalg::incremental_svd_sharded) across the executor's groups —
  /// per-node factor working sets, epoch-boundary merges. Steps 2–3 are
  /// unchanged. With deterministic SVD config or a one-group executor this
  /// produces exactly what build(data, pool) would.
  SynopsisStructure build_sharded(const SparseRows& data,
                                  common::ShardedExecutor& exec) const;

  /// Derives the index file for the structure's current tree/level.
  /// Exposed for the updater, which re-derives groups after mutations.
  static IndexFile derive_index(const rtree::RTree& tree, std::size_t level);

  /// Picks the synopsis level for a tree over n points given the target
  /// compression ratio.
  static std::size_t pick_level(const rtree::RTree& tree, std::size_t n,
                                double size_ratio, std::size_t min_groups);

 private:
  BuildConfig config_;
};

}  // namespace at::synopsis
