#include "synopsis/delta.h"

#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "common/failpoint.h"

namespace at::synopsis {

namespace {

/// Columnar encoding shared by DADD and DCHG: per-row entry counts, then
/// all term ids concatenated, then all values as one codec'd f64 column.
void write_rows_columnar(common::ChunkWriter& w,
                         const std::vector<const SparseVector*>& rows,
                         common::Codec codec) {
  std::vector<std::uint32_t> lengths;
  std::vector<std::uint32_t> terms;
  std::vector<double> values;
  lengths.reserve(rows.size());
  for (const SparseVector* row : rows) {
    lengths.push_back(static_cast<std::uint32_t>(row->size()));
    for (const auto& [term, value] : *row) {
      terms.push_back(term);
      values.push_back(value);
    }
  }
  w.vec_u32(lengths);
  w.vec_u32(terms);
  w.vec_f64(values, codec);
}

std::vector<SparseVector> read_rows_columnar(common::ChunkReader& r,
                                             std::uint64_t expected_rows) {
  const std::vector<std::uint32_t> lengths = r.vec_u32();
  const std::vector<std::uint32_t> terms = r.vec_u32();
  const std::vector<double> values = r.vec_f64();
  if (lengths.size() != expected_rows)
    throw common::ArtifactError("delta artifact: row count mismatch");
  std::uint64_t total = 0;
  for (const std::uint32_t len : lengths) total += len;
  if (terms.size() != total || values.size() != total)
    throw common::ArtifactError("delta artifact: entry count mismatch");
  std::vector<SparseVector> rows(lengths.size());
  std::size_t at = 0;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    rows[i].reserve(lengths[i]);
    for (std::uint32_t j = 0; j < lengths[i]; ++j, ++at) {
      if (j > 0 && terms[at] <= rows[i].back().first)
        throw common::ArtifactError("delta artifact: unsorted row terms");
      rows[i].emplace_back(terms[at], values[at]);
    }
  }
  return rows;
}

}  // namespace

void save_delta(std::ostream& os, const DeltaArtifact& delta,
                common::Codec codec) {
  // Standby-stream fault injection: an armed error aborts before any
  // bytes are written, so a consumer never sees a half-framed container.
  if (common::failpoint::check("artifact.delta_write").action ==
      common::failpoint::Action::kError)
    throw common::ArtifactError("save_delta: injected fault");

  common::ArtifactWriter w(os, "DLTA", 1);

  common::ChunkWriter meta;
  meta.u32(delta.component);
  meta.u64(delta.from_version);
  meta.u64(delta.to_version);
  meta.u64(delta.batch.added.size());
  meta.u64(delta.batch.changed.size());
  w.chunk("META", meta);

  common::ChunkWriter dadd;
  std::vector<const SparseVector*> added;
  added.reserve(delta.batch.added.size());
  for (const SparseVector& row : delta.batch.added) added.push_back(&row);
  write_rows_columnar(dadd, added, codec);
  w.chunk("DADD", dadd);

  common::ChunkWriter dchg;
  std::vector<std::uint32_t> row_ids;
  std::vector<const SparseVector*> changed;
  row_ids.reserve(delta.batch.changed.size());
  changed.reserve(delta.batch.changed.size());
  for (const auto& [row, content] : delta.batch.changed) {
    row_ids.push_back(row);
    changed.push_back(&content);
  }
  dchg.vec_u32(row_ids);
  write_rows_columnar(dchg, changed, codec);
  w.chunk("DCHG", dchg);

  w.finish();
}

DeltaArtifact load_delta(std::istream& is) try {
  common::ArtifactReader r(is, "DLTA");
  if (r.version() != 1)
    throw common::ArtifactError("load_delta: unsupported version");

  common::ChunkReader meta = r.chunk("META");
  DeltaArtifact delta;
  delta.component = meta.u32();
  delta.from_version = meta.u64();
  delta.to_version = meta.u64();
  const std::uint64_t n_added = meta.u64();
  const std::uint64_t n_changed = meta.u64();
  meta.expect_consumed();
  if (delta.to_version <= delta.from_version)
    throw common::ArtifactError("load_delta: non-advancing epoch interval");
  // A batch row costs >= 4 payload bytes (its length entry), so forged
  // counts are bounded before any allocation sized by them.
  constexpr std::uint64_t kMaxRows = std::uint64_t{1} << 26;
  if (n_added > kMaxRows || n_changed > kMaxRows)
    throw common::ArtifactError("load_delta: implausible row count");

  common::ChunkReader dadd = r.chunk("DADD");
  delta.batch.added = read_rows_columnar(dadd, n_added);
  dadd.expect_consumed();

  common::ChunkReader dchg = r.chunk("DCHG");
  const std::vector<std::uint32_t> row_ids = dchg.vec_u32();
  std::vector<SparseVector> contents = read_rows_columnar(dchg, n_changed);
  dchg.expect_consumed();
  if (row_ids.size() != contents.size())
    throw common::ArtifactError("load_delta: changed-row id mismatch");
  delta.batch.changed.reserve(row_ids.size());
  for (std::size_t i = 0; i < row_ids.size(); ++i)
    delta.batch.changed.emplace_back(row_ids[i], std::move(contents[i]));

  r.finish();
  return delta;
} catch (const common::ArtifactError&) {
  throw;
} catch (const std::exception& e) {
  throw common::ArtifactError(std::string("load_delta: ") + e.what());
}

// ---------------------------------------------------------------------------
// Replication-stream file naming
// ---------------------------------------------------------------------------

namespace {

std::string padded_version(std::uint64_t version) {
  std::string digits = std::to_string(version);
  if (digits.size() < static_cast<std::size_t>(kVersionPadWidth))
    digits.insert(0, static_cast<std::size_t>(kVersionPadWidth) - digits.size(),
                  '0');
  return digits;
}

std::string stream_filename(const char* prefix, char kind,
                            std::uint32_t component, std::uint64_t version) {
  return std::string(prefix) + "_" + kind + std::to_string(component) + "_" +
         padded_version(version) + ".atac";
}

/// Parses a decimal run of [first, last); rejects empty and overflow.
bool parse_decimal(const std::string& s, std::size_t first, std::size_t last,
                   std::uint64_t* out) {
  if (first >= last) return false;
  std::uint64_t v = 0;
  for (std::size_t i = first; i < last; ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace

std::string delta_filename(char kind, std::uint32_t component,
                           std::uint64_t to_version) {
  return stream_filename("delta", kind, component, to_version);
}

std::string checkpoint_filename(char kind, std::uint32_t component,
                                std::uint64_t version) {
  return stream_filename("ckpt", kind, component, version);
}

bool parse_stream_filename(const std::string& name, const std::string& prefix,
                           char* kind, std::uint32_t* component,
                           std::uint64_t* version) {
  const std::string head = prefix + "_";
  const std::string tail = ".atac";
  if (name.size() <= head.size() + tail.size()) return false;
  if (name.compare(0, head.size(), head) != 0) return false;
  if (name.compare(name.size() - tail.size(), tail.size(), tail) != 0)
    return false;
  const std::size_t body_end = name.size() - tail.size();
  std::size_t at = head.size();
  const char k = name[at++];
  if (k != 'c' && k != 'r') return false;
  const std::size_t sep = name.find('_', at);
  if (sep == std::string::npos || sep >= body_end) return false;
  std::uint64_t comp = 0;
  if (!parse_decimal(name, at, sep, &comp) ||
      comp > std::numeric_limits<std::uint32_t>::max())
    return false;
  std::uint64_t ver = 0;
  if (!parse_decimal(name, sep + 1, body_end, &ver)) return false;
  if (kind != nullptr) *kind = k;
  if (component != nullptr) *component = static_cast<std::uint32_t>(comp);
  if (version != nullptr) *version = ver;
  return true;
}

}  // namespace at::synopsis
