// The index file (paper §2.2): the mapping between each aggregated data
// point and the original data points it aggregates, derived from the nodes
// at the selected R-tree level.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace at::synopsis {

struct IndexGroup {
  /// Stable R-tree node id backing this aggregated data point.
  std::uint64_t node_id = 0;
  /// Node version at the time the group's aggregation was computed.
  std::uint64_t version = 0;
  /// Row ids of the original data points aggregated by this group.
  std::vector<std::uint32_t> members;
};

class IndexFile {
 public:
  IndexFile() = default;
  explicit IndexFile(std::vector<IndexGroup> groups)
      : groups_(std::move(groups)) {}

  const std::vector<IndexGroup>& groups() const { return groups_; }
  std::vector<IndexGroup>& groups() { return groups_; }
  std::size_t size() const { return groups_.size(); }
  bool empty() const { return groups_.empty(); }

  /// Total member count across groups.
  std::size_t total_members() const;

  /// Average members per group (the paper reports 133.01 users and 42.55
  /// pages per aggregated point for its two services).
  double mean_group_size() const;

  /// True iff the groups' member sets exactly partition {0..n-1}.
  bool is_partition_of(std::size_t n) const;

  /// Throws std::logic_error with a diagnostic if not a partition of n.
  void validate_partition(std::size_t n) const;

  std::string summary() const;

  /// Artifact-store persistence (kind "INDX", one CRC-checked chunk for
  /// the whole group table). The loader also accepts the legacy "ATIX" v1
  /// stream.
  void save(std::ostream& os) const;
  static IndexFile load(std::istream& is);

 private:
  std::vector<IndexGroup> groups_;
};

}  // namespace at::synopsis
