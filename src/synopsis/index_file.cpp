#include "synopsis/index_file.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/artifact.h"
#include "common/binary_io.h"

namespace at::synopsis {

std::size_t IndexFile::total_members() const {
  std::size_t n = 0;
  for (const auto& g : groups_) n += g.members.size();
  return n;
}

double IndexFile::mean_group_size() const {
  if (groups_.empty()) return 0.0;
  return static_cast<double>(total_members()) /
         static_cast<double>(groups_.size());
}

bool IndexFile::is_partition_of(std::size_t n) const {
  std::vector<bool> seen(n, false);
  std::size_t count = 0;
  for (const auto& g : groups_) {
    for (auto m : g.members) {
      if (m >= n || seen[m]) return false;
      seen[m] = true;
      ++count;
    }
  }
  return count == n;
}

void IndexFile::validate_partition(std::size_t n) const {
  std::vector<std::int32_t> owner(n, -1);
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    for (auto m : groups_[gi].members) {
      if (m >= n) {
        std::ostringstream os;
        os << "IndexFile: member " << m << " out of range (n=" << n << ")";
        throw std::logic_error(os.str());
      }
      if (owner[m] >= 0) {
        std::ostringstream os;
        os << "IndexFile: member " << m << " in groups " << owner[m]
           << " and " << gi;
        throw std::logic_error(os.str());
      }
      owner[m] = static_cast<std::int32_t>(gi);
    }
  }
  const std::size_t covered = total_members();
  if (covered != n) {
    std::ostringstream os;
    os << "IndexFile: covers " << covered << " of " << n << " points";
    throw std::logic_error(os.str());
  }
}

void IndexFile::save(std::ostream& os) const {
  common::ArtifactWriter w(os, "INDX", 1);
  common::ChunkWriter groups;
  groups.u64(groups_.size());
  for (const auto& g : groups_) {
    groups.u64(g.node_id);
    groups.u64(g.version);
    groups.vec_u32(g.members);
  }
  w.chunk("GRPS", groups);
  w.finish();
}

IndexFile IndexFile::load(std::istream& is) {
  if (!common::next_is_artifact(is)) {
    // Legacy "ATIX" v1.
    common::BinaryReader r(is);
    if (r.magic("ATIX") != 1)
      throw std::runtime_error("IndexFile::load: unsupported legacy version");
    const auto n = r.u64();
    std::vector<IndexGroup> groups;
    groups.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      IndexGroup g;
      g.node_id = r.u64();
      g.version = r.u64();
      g.members = r.vec_u32();
      groups.push_back(std::move(g));
    }
    return IndexFile(std::move(groups));
  }
  common::ArtifactReader r(is, "INDX");
  if (r.version() != 1)
    throw common::ArtifactError("IndexFile::load: unsupported version");
  common::ChunkReader c = r.chunk("GRPS");
  const auto n = c.u64();
  // A group costs >= 24 payload bytes, so this rejects a forged count
  // before reserving for it.
  if (n > c.remaining() / 24)
    throw common::ArtifactError("IndexFile::load: group count overruns chunk");
  std::vector<IndexGroup> groups;
  groups.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    IndexGroup g;
    g.node_id = c.u64();
    g.version = c.u64();
    g.members = c.vec_u32();
    groups.push_back(std::move(g));
  }
  c.expect_consumed();
  r.finish();
  return IndexFile(std::move(groups));
}

std::string IndexFile::summary() const {
  std::size_t min_size = 0, max_size = 0;
  if (!groups_.empty()) {
    min_size = groups_.front().members.size();
    max_size = min_size;
    for (const auto& g : groups_) {
      min_size = std::min(min_size, g.members.size());
      max_size = std::max(max_size, g.members.size());
    }
  }
  std::ostringstream os;
  os << "IndexFile{groups=" << groups_.size()
     << ", members=" << total_members() << ", mean=" << mean_group_size()
     << ", min=" << min_size << ", max=" << max_size << "}";
  return os.str();
}

}  // namespace at::synopsis
