// Row-oriented sparse data: the common representation of a component's
// input-data subset.
//
// Both services map naturally onto sparse rows:
//  * recommender: row = user, column = item, value = rating;
//  * search engine: row = web page, column = term id, value = occurrence
//    count (the paper's step 1 explicitly converts text to exactly this
//    numeric form before dimensionality reduction).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace at::synopsis {

/// One sparse feature vector: (column index, value) pairs sorted by column.
using SparseVector = std::vector<std::pair<std::uint32_t, double>>;

/// Sorts by column index and merges duplicate columns (values summed).
void normalize(SparseVector& v);

/// Value at column c, or 0 if absent (binary search).
double value_at(const SparseVector& v, std::uint32_t c);

/// Dot product of two normalized sparse vectors.
double dot(const SparseVector& a, const SparseVector& b);

/// Euclidean norm.
double norm(const SparseVector& v);

/// Cosine similarity (0 when either vector is empty/zero).
double cosine(const SparseVector& a, const SparseVector& b);

/// A dynamic collection of sparse rows with a fixed column universe.
class SparseRows {
 public:
  explicit SparseRows(std::size_t cols) : cols_(cols) {}

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return cols_; }

  /// Appends a row (normalized on insert); returns its row id.
  std::uint32_t add_row(SparseVector v);

  /// Replaces row content in place (used for "changed data points").
  void replace_row(std::uint32_t row, SparseVector v);

  const SparseVector& row(std::uint32_t r) const { return rows_.at(r); }

  std::size_t total_entries() const;

  /// Converts to the COO form consumed by the incremental SVD.
  linalg::SparseDataset to_dataset() const;

  /// COO form of a contiguous row span [first, rows()), re-indexed so the
  /// first row becomes row 0 (used for SVD fold-in of appended rows).
  linalg::SparseDataset tail_dataset(std::uint32_t first) const;

 private:
  std::size_t cols_;
  std::vector<SparseVector> rows_;
};

}  // namespace at::synopsis
