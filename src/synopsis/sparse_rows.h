// Row-oriented sparse data: the common representation of a component's
// input-data subset.
//
// Both services map naturally onto sparse rows:
//  * recommender: row = user, column = item, value = rating;
//  * search engine: row = web page, column = term id, value = occurrence
//    count (the paper's step 1 explicitly converts text to exactly this
//    numeric form before dimensionality reduction).
//
// Storage is CSR-style: one contiguous column-index pool and one value
// pool shared by every row, with a per-row (offset, length) extent. Rows
// appended in order are laid out back to back, so the synopsis build path
// (SVD over all entries, inverted-index construction, aggregation) scans
// two flat arrays instead of chasing per-row pair vectors.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace at::synopsis {

/// One sparse feature vector: (column index, value) pairs sorted by column.
/// Still the mutation/interchange format (requests, update batches, text
/// conversion); row storage itself is pooled inside SparseRows.
using SparseVector = std::vector<std::pair<std::uint32_t, double>>;

/// Non-owning view of one stored row: parallel column/value arrays.
/// Iteration yields (column, value) pairs by value, so range-for with
/// structured bindings works exactly as it did over SparseVector.
/// Views are invalidated by any mutation of the owning SparseRows.
class SparseRowView {
 public:
  using value_type = std::pair<std::uint32_t, double>;

  class const_iterator {
   public:
    using value_type = SparseRowView::value_type;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const std::uint32_t* c, const double* v) : c_(c), v_(v) {}

    value_type operator*() const { return {*c_, *v_}; }
    const_iterator& operator++() {
      ++c_;
      ++v_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const { return c_ == o.c_; }
    bool operator!=(const const_iterator& o) const { return c_ != o.c_; }

   private:
    const std::uint32_t* c_ = nullptr;
    const double* v_ = nullptr;
  };

  SparseRowView() = default;
  SparseRowView(const std::uint32_t* cols, const double* vals, std::size_t n)
      : cols_(cols), vals_(vals), size_(n) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  value_type operator[](std::size_t i) const { return {cols_[i], vals_[i]}; }

  /// Raw CSR slices (sorted by column, no duplicates).
  const std::uint32_t* cols() const { return cols_; }
  const double* vals() const { return vals_; }

  const_iterator begin() const { return {cols_, vals_}; }
  const_iterator end() const { return {cols_ + size_, vals_ + size_}; }

  /// Materializes a pair-vector copy (serialization, update batches).
  SparseVector to_vector() const {
    SparseVector v;
    v.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) v.emplace_back(cols_[i], vals_[i]);
    return v;
  }

 private:
  const std::uint32_t* cols_ = nullptr;
  const double* vals_ = nullptr;
  std::size_t size_ = 0;
};

bool operator==(const SparseRowView& a, const SparseRowView& b);
bool operator==(const SparseRowView& a, const SparseVector& b);
inline bool operator==(const SparseVector& a, const SparseRowView& b) {
  return b == a;
}
inline bool operator!=(const SparseRowView& a, const SparseRowView& b) {
  return !(a == b);
}

/// Sorts by column index and merges duplicate columns (values summed).
void normalize(SparseVector& v);

namespace detail {

/// Row concept: r.size(), r[i].first (column), r[i].second (value), columns
/// sorted ascending. Satisfied by both SparseVector and SparseRowView.
template <typename Row>
double row_value_at(const Row& v, std::uint32_t c) {
  std::size_t lo = 0, hi = v.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (v[mid].first < c) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < v.size() && v[lo].first == c) return v[lo].second;
  return 0.0;
}

template <typename RowA, typename RowB>
double row_dot(const RowA& a, const RowB& b) {
  double acc = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint32_t ca = a[i].first;
    const std::uint32_t cb = b[j].first;
    if (ca < cb) {
      ++i;
    } else if (ca > cb) {
      ++j;
    } else {
      acc += a[i].second * b[j].second;
      ++i;
      ++j;
    }
  }
  return acc;
}

template <typename Row>
double row_norm(const Row& v) {
  double acc = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double val = v[i].second;
    acc += val * val;
  }
  return std::sqrt(acc);
}

template <typename RowA, typename RowB>
double row_cosine(const RowA& a, const RowB& b) {
  const double na = row_norm(a);
  const double nb = row_norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return row_dot(a, b) / (na * nb);
}

}  // namespace detail

/// Value at column c, or 0 if absent (binary search).
template <typename Row>
double value_at(const Row& v, std::uint32_t c) {
  return detail::row_value_at(v, c);
}
inline double value_at(const SparseVector& v, std::uint32_t c) {
  return detail::row_value_at(v, c);
}

/// Dot product of two normalized sparse vectors/rows.
template <typename RowA, typename RowB>
double dot(const RowA& a, const RowB& b) {
  return detail::row_dot(a, b);
}
inline double dot(const SparseVector& a, const SparseVector& b) {
  return detail::row_dot(a, b);
}

/// Euclidean norm.
template <typename Row>
double norm(const Row& v) {
  return detail::row_norm(v);
}
inline double norm(const SparseVector& v) { return detail::row_norm(v); }

/// Cosine similarity (0 when either vector is empty/zero).
template <typename RowA, typename RowB>
double cosine(const RowA& a, const RowB& b) {
  return detail::row_cosine(a, b);
}
inline double cosine(const SparseVector& a, const SparseVector& b) {
  return detail::row_cosine(a, b);
}

/// A dynamic collection of sparse rows with a fixed column universe,
/// stored as one CSR pool.
class SparseRows {
 public:
  explicit SparseRows(std::size_t cols) : cols_(cols) {}

  std::size_t rows() const { return extents_.size(); }
  std::size_t cols() const { return cols_; }

  /// Appends a row (normalized on insert); returns its row id.
  std::uint32_t add_row(SparseVector v);

  /// Replaces row content in place (used for "changed data points").
  /// Shrinking replacements reuse the row's pool slot; growing ones
  /// relocate the row to the end of the pool (the old slot becomes a hole
  /// that to_dataset/iteration skip naturally). When dead entries exceed
  /// 25% of live entries the pools are compacted in place.
  void replace_row(std::uint32_t row, SparseVector v);

  /// View of row r.
  ///
  /// LIFETIME CONTRACT: a SparseRowView borrows raw pool pointers and is
  /// invalidated by ANY mutation — add_row (pool reallocation),
  /// replace_row (slot rewrite/relocation, and it may trigger compact()
  /// once holes exceed 25% of live entries), or an explicit compact()
  /// (every extent is rewritten). Callers that interleave mutation with
  /// iteration must re-acquire views after each mutation — the
  /// SynopsisUpdater does all replace_row calls in a sequential phase and
  /// only then takes the views its parallel retraining reads. generation()
  /// observes this: it ticks on every potentially invalidating mutation,
  /// and tests assert stale views are never read across a tick.
  SparseRowView row(std::uint32_t r) const;

  /// Mutation counter for the view-lifetime contract: incremented by
  /// add_row, replace_row and compact. A view taken at generation g must
  /// not be dereferenced once generation() != g.
  std::uint64_t generation() const { return generation_; }

  /// Number of live entries (holes from grown replacements excluded).
  std::size_t total_entries() const { return live_entries_; }

  /// Pool slots currently orphaned by shrinking/relocating replacements.
  std::size_t dead_entries() const { return dead_entries_; }
  /// Total pool slots (live + dead); bounded at 1.25x live by compaction.
  std::size_t pool_entries() const { return col_pool_.size(); }

  /// Rewrites the pools row-contiguously, dropping every hole. All row
  /// extents are rebuilt; outstanding views are invalidated.
  void compact();

  /// Reserves pool capacity for approximately `entries` more entries.
  void reserve_entries(std::size_t entries);

  /// Converts to the CSR/COO form consumed by the incremental SVD.
  linalg::SparseDataset to_dataset() const;

  /// Dataset of a contiguous row span [first, rows()), re-indexed so the
  /// first row becomes row 0 (used for SVD fold-in of appended rows).
  linalg::SparseDataset tail_dataset(std::uint32_t first) const;

 private:
  struct Extent {
    std::size_t off = 0;
    std::uint32_t len = 0;
  };

  linalg::SparseDataset span_dataset(std::uint32_t first) const;

  std::size_t cols_;
  std::vector<std::uint32_t> col_pool_;
  std::vector<double> val_pool_;
  std::vector<Extent> extents_;
  std::size_t live_entries_ = 0;
  std::size_t dead_entries_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace at::synopsis
