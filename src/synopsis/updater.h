// Incremental synopsis updating (paper §2.2): periodically reconcile an
// existing synopsis with changes in the input data without rebuilding it.
//
// Two change categories, matching the paper's Fig. 3 evaluation:
//  * additions — new data points arrive; new R-tree leaf entries are
//    inserted and the new rows are folded into the SVD against frozen
//    column factors;
//  * changes — existing points' contents change; their reduced coordinates
//    are retrained, and the corresponding leaf entries are deleted and
//    re-inserted.
// Afterwards the index file is re-derived and only the groups whose R-tree
// node version changed ("dirty" groups) are re-aggregated.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"

namespace at::synopsis {

struct UpdateBatch {
  /// New data points to append.
  std::vector<SparseVector> added;
  /// (row id, new content) pairs for existing points whose content changed.
  std::vector<std::pair<std::uint32_t, SparseVector>> changed;

  bool empty() const { return added.empty() && changed.empty(); }
};

struct UpdateReport {
  std::size_t points_added = 0;
  std::size_t points_changed = 0;
  std::size_t groups_before = 0;
  std::size_t groups_after = 0;
  /// Groups re-aggregated (indices into the new index file / synopsis).
  std::size_t dirty_groups = 0;
  /// Groups whose cached aggregation was reused.
  std::size_t clean_groups = 0;
  /// Wall-clock cost of the whole update.
  double seconds = 0.0;
};

class SynopsisUpdater {
 public:
  explicit SynopsisUpdater(BuildConfig config) : config_(config) {}

  /// Applies the batch, mutating the data rows, the synopsis structure and
  /// the aggregated synopsis in place. When `pool` is given, the SVD
  /// fold-in of added rows, the changed rows' coordinate retraining and
  /// the dirty-group re-aggregation all run pool-parallel (each is
  /// per-row/per-group independent, so results match the sequential path).
  UpdateReport apply(SynopsisStructure& s, SparseRows& data,
                     Synopsis& synopsis, const UpdateBatch& batch,
                     AggregationKind kind,
                     common::ThreadPool* pool = nullptr) const;

 private:
  BuildConfig config_;
};

}  // namespace at::synopsis
