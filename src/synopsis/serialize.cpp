#include "synopsis/serialize.h"

#include <istream>
#include <ostream>

#include "common/binary_io.h"
#include "rtree/rtree.h"
#include "services/search/postings_codec.h"

namespace at::synopsis {

namespace {
constexpr char kRowsMagic[4] = {'A', 'T', 'S', 'R'};
constexpr char kMatrixMagic[4] = {'A', 'T', 'M', 'X'};
constexpr char kSvdMagic[4] = {'A', 'T', 'S', 'V'};
constexpr char kIndexMagic[4] = {'A', 'T', 'I', 'X'};
constexpr char kSynMagic[4] = {'A', 'T', 'S', 'Y'};
constexpr char kStructMagic[4] = {'A', 'T', 'S', 'S'};
constexpr std::uint32_t kVersion = 1;
// SparseRows format versions: v1 stored each row as raw (u32 col, f64 val)
// pairs; v2 stores each row as one block-compressed list (delta-varint
// columns, u8-quantized values with an exact-double exception table —
// services/search/postings_codec.h); v3 is byte-identical in structure
// but its blocks may carry the kTagU8Delta delta layout, which a v2-era
// reader would reject as a bad block tag — the bump turns that into a
// clean version error instead. Values round-trip bit-exactly in all
// three. Writers emit v3; the loader accepts every version (v2 and v3
// share one decode path).
constexpr std::uint32_t kRowsVersionRaw = 1;
constexpr std::uint32_t kRowsVersionCompressed = 2;
constexpr std::uint32_t kRowsVersionCompressedU8 = 3;

/// Works for SparseVector and SparseRowView alike.
template <typename Row>
void write_sparse_vector(common::BinaryWriter& w, const Row& v) {
  w.u64(v.size());
  for (const auto& [c, val] : v) {
    w.u32(c);
    w.f64(val);
  }
}

SparseVector read_sparse_vector(common::BinaryReader& r) {
  const auto n = r.u64();
  SparseVector v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto c = r.u32();
    const double val = r.f64();
    v.emplace_back(c, val);
  }
  return v;
}
}  // namespace

void save(std::ostream& os, const SparseRows& rows) {
  common::BinaryWriter w(os);
  w.magic(kRowsMagic, kRowsVersionCompressedU8);
  w.u64(rows.cols());
  w.u64(rows.rows());
  std::vector<std::uint8_t> buf;
  for (std::uint32_t r = 0; r < rows.rows(); ++r) {
    const SparseRowView row = rows.row(r);
    buf.clear();
    search::codec::encode_list(buf, row.cols(), row.vals(), row.size());
    w.u64(row.size());
    w.blob(buf);
  }
}

SparseRows load_sparse_rows(std::istream& is) {
  common::BinaryReader r(is);
  const std::uint32_t version = r.magic(kRowsMagic);
  const auto cols = r.u64();
  const auto n = r.u64();
  SparseRows rows(cols);
  if (version == kRowsVersionRaw) {
    for (std::uint64_t i = 0; i < n; ++i) {
      rows.add_row(read_sparse_vector(r));
    }
  } else if (version == kRowsVersionCompressed ||
             version == kRowsVersionCompressedU8) {
    std::vector<std::uint32_t> ids;
    std::vector<double> vals;
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto entries = r.u64();
      const auto buf = r.blob();
      ids.clear();
      vals.clear();
      search::codec::decode_list(buf.data(), buf.size(), entries, ids, vals);
      SparseVector v;
      v.reserve(ids.size());
      for (std::size_t j = 0; j < ids.size(); ++j)
        v.emplace_back(ids[j], vals[j]);
      rows.add_row(std::move(v));
    }
  } else {
    throw std::runtime_error("load_sparse_rows: unsupported format version");
  }
  return rows;
}

void save(std::ostream& os, const linalg::Matrix& m) {
  common::BinaryWriter w(os);
  w.magic(kMatrixMagic, kVersion);
  w.u64(m.rows());
  w.u64(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) w.f64(m(r, c));
  }
}

linalg::Matrix load_matrix(std::istream& is) {
  common::BinaryReader r(is);
  r.magic(kMatrixMagic);
  const auto rows = r.u64();
  const auto cols = r.u64();
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = r.f64();
  }
  return m;
}

void save(std::ostream& os, const linalg::SvdModel& model) {
  common::BinaryWriter w(os);
  w.magic(kSvdMagic, kVersion);
  w.f64(model.train_rmse);
  w.f64(model.global_mean);
  w.vec_f64(model.row_bias);
  w.vec_f64(model.col_bias);
  save(os, model.row_factors);
  save(os, model.col_factors);
}

linalg::SvdModel load_svd_model(std::istream& is) {
  common::BinaryReader r(is);
  r.magic(kSvdMagic);
  linalg::SvdModel model;
  model.train_rmse = r.f64();
  model.global_mean = r.f64();
  model.row_bias = r.vec_f64();
  model.col_bias = r.vec_f64();
  model.row_factors = load_matrix(is);
  model.col_factors = load_matrix(is);
  return model;
}

void save(std::ostream& os, const IndexFile& index) {
  common::BinaryWriter w(os);
  w.magic(kIndexMagic, kVersion);
  w.u64(index.size());
  for (const auto& g : index.groups()) {
    w.u64(g.node_id);
    w.u64(g.version);
    w.vec_u32(g.members);
  }
}

IndexFile load_index_file(std::istream& is) {
  common::BinaryReader r(is);
  r.magic(kIndexMagic);
  const auto n = r.u64();
  std::vector<IndexGroup> groups;
  groups.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    IndexGroup g;
    g.node_id = r.u64();
    g.version = r.u64();
    g.members = r.vec_u32();
    groups.push_back(std::move(g));
  }
  return IndexFile(std::move(groups));
}

void save(std::ostream& os, const Synopsis& synopsis) {
  common::BinaryWriter w(os);
  w.magic(kSynMagic, kVersion);
  w.u64(synopsis.points.size());
  for (const auto& p : synopsis.points) {
    w.u64(p.node_id);
    w.u32(p.member_count);
    write_sparse_vector(w, p.features);
    w.vec_u32(p.support);
  }
}

Synopsis load_synopsis(std::istream& is) {
  common::BinaryReader r(is);
  r.magic(kSynMagic);
  const auto n = r.u64();
  Synopsis synopsis;
  synopsis.points.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    AggregatedPoint p;
    p.node_id = r.u64();
    p.member_count = r.u32();
    p.features = read_sparse_vector(r);
    p.support = r.vec_u32();
    synopsis.points.push_back(std::move(p));
  }
  return synopsis;
}

void save(std::ostream& os, const SynopsisStructure& s) {
  common::BinaryWriter w(os);
  w.magic(kStructMagic, kVersion);
  w.u64(s.level);
  save(os, s.svd);
  save(os, s.reduced);
  s.tree.save(os);
  save(os, s.index);
}

SynopsisStructure load_structure(std::istream& is) {
  common::BinaryReader r(is);
  r.magic(kStructMagic);
  const auto level = r.u64();
  linalg::SvdModel svd = load_svd_model(is);
  linalg::Matrix reduced = load_matrix(is);
  rtree::RTree tree = rtree::RTree::load(is);
  IndexFile index = load_index_file(is);
  return SynopsisStructure{std::move(svd), std::move(reduced),
                           std::move(tree), level, std::move(index)};
}

}  // namespace at::synopsis
