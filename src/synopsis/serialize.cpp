#include "synopsis/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/artifact.h"
#include "common/binary_io.h"
#include "rtree/rtree.h"
#include "services/search/postings_codec.h"

namespace at::synopsis {

namespace {

// Legacy (pre-artifact-container) magics. Writers no longer emit these;
// the loaders below keep accepting them so every on-disk file from
// earlier releases still loads (golden fixtures: tests/data/golden/).
constexpr char kLegacyRowsMagic[4] = {'A', 'T', 'S', 'R'};
constexpr char kLegacySynMagic[4] = {'A', 'T', 'S', 'Y'};
constexpr char kLegacyStructMagic[4] = {'A', 'T', 'S', 'S'};
// Legacy SparseRows versions: v1 raw (u32 col, f64 val) pairs; v2
// block-compressed (varint/group-varint delta blocks + quantized values);
// v3 structurally identical to v2 but blocks may carry the u8-delta tag.
constexpr std::uint32_t kLegacyRowsRaw = 1;
constexpr std::uint32_t kLegacyRowsCompressed = 2;
constexpr std::uint32_t kLegacyRowsCompressedU8 = 3;

/// Forged-count guard for codec-encoded lists: every encoding spends at
/// least one payload byte per entry (the tf/value code byte), so a count
/// beyond the blob size is corrupt — reject it before decode_list
/// reserves for it.
void check_row_entries(std::uint64_t entries, std::size_t blob_bytes) {
  if (entries > blob_bytes)
    throw common::ArtifactError(
        "sparse list: entry count overruns encoded bytes");
}

SparseVector read_legacy_sparse_vector(common::BinaryReader& r) {
  const auto n = r.u64();
  SparseVector v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto c = r.u32();
    const double val = r.f64();
    v.emplace_back(c, val);
  }
  return v;
}

SparseRows load_legacy_sparse_rows(std::istream& is) {
  common::BinaryReader r(is);
  const std::uint32_t version = r.magic(kLegacyRowsMagic);
  const auto cols = r.u64();
  const auto n = r.u64();
  SparseRows rows(cols);
  if (version == kLegacyRowsRaw) {
    for (std::uint64_t i = 0; i < n; ++i) {
      rows.add_row(read_legacy_sparse_vector(r));
    }
  } else if (version == kLegacyRowsCompressed ||
             version == kLegacyRowsCompressedU8) {
    std::vector<std::uint32_t> ids;
    std::vector<double> vals;
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto entries = r.u64();
      const auto buf = r.blob();
      check_row_entries(entries, buf.size());
      ids.clear();
      vals.clear();
      search::codec::decode_list(buf.data(), buf.size(), entries, ids, vals);
      SparseVector v;
      v.reserve(ids.size());
      for (std::size_t j = 0; j < ids.size(); ++j)
        v.emplace_back(ids[j], vals[j]);
      rows.add_row(std::move(v));
    }
  } else {
    throw std::runtime_error("load_sparse_rows: unsupported format version");
  }
  return rows;
}

Synopsis load_legacy_synopsis(std::istream& is) {
  common::BinaryReader r(is);
  if (r.magic(kLegacySynMagic) != 1)
    throw std::runtime_error("load_synopsis: unsupported legacy version");
  const auto n = r.u64();
  Synopsis synopsis;
  synopsis.points.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    AggregatedPoint p;
    p.node_id = r.u64();
    p.member_count = r.u32();
    p.features = read_legacy_sparse_vector(r);
    p.support = r.vec_u32();
    synopsis.points.push_back(std::move(p));
  }
  return synopsis;
}

SynopsisStructure load_legacy_structure(std::istream& is) {
  common::BinaryReader r(is);
  if (r.magic(kLegacyStructMagic) != 1)
    throw std::runtime_error("load_structure: unsupported legacy version");
  const auto level = r.u64();
  linalg::SvdModel svd = load_svd_model(is);
  linalg::Matrix reduced = load_matrix(is);
  rtree::RTree tree = rtree::RTree::load(is);
  IndexFile index = load_index_file(is);
  return SynopsisStructure{std::move(svd), std::move(reduced),
                           std::move(tree), level, std::move(index)};
}

}  // namespace

void save(std::ostream& os, const SparseRows& rows) {
  common::ArtifactWriter w(os, "SROW", 1);
  common::ChunkWriter meta;
  meta.u64(rows.cols());
  meta.u64(rows.rows());
  w.chunk("META", meta);
  // All rows in one CRC-checked chunk, each as its entry count plus one
  // postings-codec blob (delta-encoded columns, quantized values with an
  // exact-double exception table — bit-exact round-trip).
  common::ChunkWriter body;
  std::vector<std::uint8_t> buf;
  for (std::uint32_t r = 0; r < rows.rows(); ++r) {
    const SparseRowView row = rows.row(r);
    buf.clear();
    search::codec::encode_list(buf, row.cols(), row.vals(), row.size());
    body.u64(row.size());
    body.blob(buf);
  }
  w.chunk("ROWS", body);
  w.finish();
}

SparseRows load_sparse_rows(std::istream& is) {
  if (!common::next_is_artifact(is)) return load_legacy_sparse_rows(is);
  common::ArtifactReader r(is, "SROW");
  if (r.version() != 1)
    throw common::ArtifactError("load_sparse_rows: unsupported version");
  common::ChunkReader meta = r.chunk("META");
  const auto cols = meta.u64();
  const auto n = meta.u64();
  meta.expect_consumed();
  common::ChunkReader body = r.chunk("ROWS");
  if (n > body.remaining() / 16)
    throw common::ArtifactError("load_sparse_rows: row count overruns chunk");
  SparseRows rows(cols);
  std::vector<std::uint32_t> ids;
  std::vector<double> vals;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto entries = body.u64();
    const auto buf = body.blob();
    check_row_entries(entries, buf.size());
    ids.clear();
    vals.clear();
    search::codec::decode_list(buf.data(), buf.size(), entries, ids, vals);
    SparseVector v;
    v.reserve(ids.size());
    for (std::size_t j = 0; j < ids.size(); ++j) v.emplace_back(ids[j], vals[j]);
    rows.add_row(std::move(v));
  }
  body.expect_consumed();
  r.finish();
  return rows;
}

linalg::Matrix load_matrix(std::istream& is) {
  return linalg::load_matrix(is);
}

linalg::SvdModel load_svd_model(std::istream& is) {
  return linalg::load_svd_model(is);
}

void save(std::ostream& os, const IndexFile& index) { index.save(os); }

IndexFile load_index_file(std::istream& is) { return IndexFile::load(is); }

void save(std::ostream& os, const Synopsis& synopsis) {
  common::ArtifactWriter w(os, "SYNO", 1);
  common::ChunkWriter body;
  body.u64(synopsis.points.size());
  std::vector<std::uint8_t> buf;
  for (const auto& p : synopsis.points) {
    body.u64(p.node_id);
    body.u32(p.member_count);
    body.u64(p.features.size());
    buf.clear();
    if (!p.features.empty()) {
      // Feature vectors ride the same exact list codec as SparseRows
      // (columns ascending and duplicate-free by SparseVector contract).
      std::vector<std::uint32_t> ids;
      std::vector<double> vals;
      ids.reserve(p.features.size());
      vals.reserve(p.features.size());
      for (const auto& [c, val] : p.features) {
        ids.push_back(c);
        vals.push_back(val);
      }
      search::codec::encode_list(buf, ids.data(), vals.data(), ids.size());
    }
    body.blob(buf);
    body.vec_u32(p.support);
  }
  w.chunk("PNTS", body);
  w.finish();
}

Synopsis load_synopsis(std::istream& is) {
  if (!common::next_is_artifact(is)) return load_legacy_synopsis(is);
  common::ArtifactReader r(is, "SYNO");
  if (r.version() != 1)
    throw common::ArtifactError("load_synopsis: unsupported version");
  common::ChunkReader body = r.chunk("PNTS");
  const auto n = body.u64();
  if (n > body.remaining() / 36)
    throw common::ArtifactError("load_synopsis: point count overruns chunk");
  Synopsis synopsis;
  synopsis.points.reserve(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> ids;
  std::vector<double> vals;
  for (std::uint64_t i = 0; i < n; ++i) {
    AggregatedPoint p;
    p.node_id = body.u64();
    p.member_count = body.u32();
    const auto entries = body.u64();
    const auto buf = body.blob();
    check_row_entries(entries, buf.size());
    ids.clear();
    vals.clear();
    search::codec::decode_list(buf.data(), buf.size(), entries, ids, vals);
    p.features.reserve(ids.size());
    for (std::size_t j = 0; j < ids.size(); ++j)
      p.features.emplace_back(ids[j], vals[j]);
    p.support = body.vec_u32();
    synopsis.points.push_back(std::move(p));
  }
  body.expect_consumed();
  r.finish();
  return synopsis;
}

void save(std::ostream& os, const SynopsisStructure& s, common::Codec codec) {
  common::ArtifactWriter w(os, "SSTR", 1);
  common::ChunkWriter meta;
  meta.u64(s.level);
  w.chunk("META", meta);
  linalg::save(os, s.svd, codec);
  linalg::save(os, s.reduced, codec);
  // The R-tree keeps its own format; wrapping the bytes in a chunk adds
  // the CRC and framing the raw stream lacked.
  std::ostringstream tree_bytes;
  s.tree.save(tree_bytes);
  common::ChunkWriter tree;
  tree.blob(std::move(tree_bytes).str());
  w.chunk("TREE", tree);
  save(os, s.index);
  w.finish();
}

SynopsisStructure load_structure(std::istream& is) {
  if (!common::next_is_artifact(is)) return load_legacy_structure(is);
  common::ArtifactReader r(is, "SSTR");
  if (r.version() != 1)
    throw common::ArtifactError("load_structure: unsupported version");
  common::ChunkReader meta = r.chunk("META");
  const auto level = meta.u64();
  meta.expect_consumed();
  linalg::SvdModel svd = load_svd_model(is);
  linalg::Matrix reduced = load_matrix(is);
  common::ChunkReader tree_chunk = r.chunk("TREE");
  const auto tree_blob = tree_chunk.blob();
  tree_chunk.expect_consumed();
  // Move the image into the stream (C++20 rvalue ctor) — one transient
  // copy instead of two for large trees.
  std::istringstream tree_bytes(
      std::string(tree_blob.begin(), tree_blob.end()), std::ios::in);
  rtree::RTree tree = rtree::RTree::load(tree_bytes);
  IndexFile index = load_index_file(is);
  r.finish();
  return SynopsisStructure{std::move(svd), std::move(reduced),
                           std::move(tree), level, std::move(index)};
}

}  // namespace at::synopsis
