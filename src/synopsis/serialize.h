// Persistence for the offline artifacts (paper §3.1: "once the synopsis is
// generated, the R-tree and the index file are stored and they can be used
// as the starting point of synopsis updating").
//
// A saved SynopsisStructure round-trips everything needed to (a) serve
// stage-1 queries and (b) continue incremental updates: the SVD model,
// the reduced coordinates, the R-tree (with stable node ids/versions so
// dirty-tracking survives the reload), the selected level and index file.
#pragma once

#include <iosfwd>

#include "linalg/svd.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"

namespace at::synopsis {

/// SparseRows are written in the v3 block-compressed format (delta
/// columns — u8/varint/group-varint per block — + quantized values, see
/// services/search/postings_codec.h); the loader also accepts the v2
/// layout (same structure, no u8-delta blocks) and the v1 raw pair
/// layout. All round-trip values bit-exactly.
void save(std::ostream& os, const SparseRows& rows);
SparseRows load_sparse_rows(std::istream& is);

void save(std::ostream& os, const linalg::Matrix& m);
linalg::Matrix load_matrix(std::istream& is);

void save(std::ostream& os, const linalg::SvdModel& model);
linalg::SvdModel load_svd_model(std::istream& is);

void save(std::ostream& os, const IndexFile& index);
IndexFile load_index_file(std::istream& is);

void save(std::ostream& os, const Synopsis& synopsis);
Synopsis load_synopsis(std::istream& is);

void save(std::ostream& os, const SynopsisStructure& s);
SynopsisStructure load_structure(std::istream& is);

}  // namespace at::synopsis
