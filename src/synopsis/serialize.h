// Persistence for the offline artifacts (paper §3.1: "once the synopsis is
// generated, the R-tree and the index file are stored and they can be used
// as the starting point of synopsis updating").
//
// Every artifact is written through the unified artifact store
// (common/artifact.h): a chunked container with a kind/version header and
// CRC32C-checked chunks, f64 columns going through a pluggable exact codec
// (raw / shuffle / q8). A saved SynopsisStructure round-trips everything
// needed to (a) serve stage-1 queries and (b) continue incremental
// updates: the SVD model, the reduced coordinates, the R-tree (with stable
// node ids/versions so dirty-tracking survives the reload), the selected
// level and index file.
//
// Compat: every loader also accepts the pre-container legacy formats —
// SparseRows "ATSR" v1 (raw pairs), v2 (block-compressed), v3 (v2 plus the
// u8-delta block tag), and the "ATMX"/"ATSV"/"ATIX"/"ATSY"/"ATSS" v1
// streams — so all existing on-disk files keep loading (golden fixtures:
// tests/data/golden/). All values round-trip bit-exactly in every format
// and codec.
#pragma once

#include <iosfwd>

#include "common/artifact.h"
#include "linalg/svd.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"

namespace at::synopsis {

/// SparseRows persist as one checksummed chunk of block-compressed rows
/// (delta columns + quantized values with an exact-double exception table,
/// see services/search/postings_codec.h).
void save(std::ostream& os, const SparseRows& rows);
SparseRows load_sparse_rows(std::istream& is);

// Matrix/SVD-model persistence lives with its types (linalg::save /
// linalg::load_matrix / linalg::load_svd_model; unqualified save() calls
// resolve there via ADL). The istream-only loaders are re-exposed here
// because argument-dependent lookup cannot find them from this namespace.
linalg::Matrix load_matrix(std::istream& is);
linalg::SvdModel load_svd_model(std::istream& is);

void save(std::ostream& os, const IndexFile& index);
IndexFile load_index_file(std::istream& is);

void save(std::ostream& os, const Synopsis& synopsis);
Synopsis load_synopsis(std::istream& is);

void save(std::ostream& os, const SynopsisStructure& s,
          common::Codec codec = common::default_codec());
SynopsisStructure load_structure(std::istream& is);

}  // namespace at::synopsis
