#include "synopsis/aggregate.h"

#include <map>

namespace at::synopsis {

std::size_t Synopsis::total_features() const {
  std::size_t n = 0;
  for (const auto& p : points) n += p.features.size();
  return n;
}

AggregatedPoint aggregate_group(const SparseRows& data,
                                const IndexGroup& group,
                                AggregationKind kind) {
  AggregatedPoint out;
  out.node_id = group.node_id;
  out.member_count = static_cast<std::uint32_t>(group.members.size());

  // Accumulate (sum, count) per attribute across members. std::map keeps
  // attributes sorted so the output SparseVector is normalized by
  // construction.
  std::map<std::uint32_t, std::pair<double, std::uint32_t>> acc;
  for (auto row_id : group.members) {
    for (const auto& [c, val] : data.row(row_id)) {
      auto& slot = acc[c];
      slot.first += val;
      slot.second += 1;
    }
  }

  out.features.reserve(acc.size());
  if (kind == AggregationKind::kMean) {
    out.support.reserve(acc.size());
    for (const auto& [c, sum_count] : acc) {
      out.features.emplace_back(
          c, sum_count.first / static_cast<double>(sum_count.second));
      out.support.push_back(sum_count.second);
    }
  } else {
    for (const auto& [c, sum_count] : acc) {
      out.features.emplace_back(c, sum_count.first);
    }
  }
  return out;
}

Synopsis aggregate_all(const SparseRows& data, const IndexFile& index,
                       AggregationKind kind, common::ThreadPool* pool) {
  Synopsis synopsis;
  synopsis.points.resize(index.size());
  auto task = [&](std::size_t gi) {
    synopsis.points[gi] = aggregate_group(data, index.groups()[gi], kind);
  };
  if (pool != nullptr) {
    pool->parallel_for(index.size(), task);
  } else {
    for (std::size_t gi = 0; gi < index.size(); ++gi) task(gi);
  }
  return synopsis;
}

}  // namespace at::synopsis
