#include "synopsis/aggregate.h"

#include <algorithm>

namespace at::synopsis {

std::size_t Synopsis::total_features() const {
  std::size_t n = 0;
  for (const auto& p : points) n += p.features.size();
  return n;
}

AggregatedPoint aggregate_group(const SparseRows& data,
                                const IndexGroup& group,
                                AggregationKind kind) {
  AggregatedPoint out;
  out.node_id = group.node_id;
  out.member_count = static_cast<std::uint32_t>(group.members.size());

  // Accumulate (sum, count) per attribute across members into a dense
  // per-column scratch (thread_local: aggregation fans out per group on
  // the pool). A zero count marks an untouched column, so resetting after
  // use costs O(#touched) — the same accumulator idiom as query scoring.
  thread_local std::vector<double> sums;
  thread_local std::vector<std::uint32_t> counts;
  thread_local std::vector<std::uint32_t> touched;
  if (sums.size() < data.cols()) {
    sums.resize(data.cols(), 0.0);
    counts.resize(data.cols(), 0);
  }
  touched.clear();
  for (auto row_id : group.members) {
    for (const auto& [c, val] : data.row(row_id)) {
      if (counts[c] == 0) touched.push_back(c);
      sums[c] += val;
      counts[c] += 1;
    }
  }
  std::sort(touched.begin(), touched.end());

  out.features.reserve(touched.size());
  if (kind == AggregationKind::kMean) {
    out.support.reserve(touched.size());
    for (auto c : touched) {
      out.features.emplace_back(c, sums[c] / static_cast<double>(counts[c]));
      out.support.push_back(counts[c]);
    }
  } else {
    for (auto c : touched) {
      out.features.emplace_back(c, sums[c]);
    }
  }
  for (auto c : touched) {
    sums[c] = 0.0;
    counts[c] = 0;
  }
  return out;
}

Synopsis aggregate_all(const SparseRows& data, const IndexFile& index,
                       AggregationKind kind, common::ThreadPool* pool) {
  Synopsis synopsis;
  synopsis.points.resize(index.size());
  auto task = [&](std::size_t gi) {
    synopsis.points[gi] = aggregate_group(data, index.groups()[gi], kind);
  };
  if (pool != nullptr) {
    pool->parallel_for(index.size(), task);
  } else {
    for (std::size_t gi = 0; gi < index.size(); ++gi) task(gi);
  }
  return synopsis;
}

}  // namespace at::synopsis
