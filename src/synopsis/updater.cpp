#include "synopsis/updater.h"

#include <cassert>
#include <cmath>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "common/stopwatch.h"

namespace at::synopsis {

UpdateReport SynopsisUpdater::apply(SynopsisStructure& s, SparseRows& data,
                                    Synopsis& synopsis,
                                    const UpdateBatch& batch,
                                    AggregationKind kind,
                                    common::ThreadPool* pool) const {
  common::Stopwatch timer;
  UpdateReport report;
  report.groups_before = s.index.size();

  const std::size_t rank = s.svd.row_factors.cols();

  // --- additions -----------------------------------------------------------
  if (!batch.added.empty()) {
    const auto first_new = static_cast<std::uint32_t>(data.rows());
    std::size_t new_entries = 0;
    for (const auto& v : batch.added) new_entries += v.size();
    data.reserve_entries(new_entries);
    for (const auto& v : batch.added) {
      SparseVector copy = v;
      data.add_row(std::move(copy));
    }
    // Fold the appended rows into the SVD (column factors frozen; rows are
    // independent, so the pool-parallel path matches the sequential one).
    linalg::SparseDataset tail = data.tail_dataset(first_new);
    linalg::fold_in_rows(s.svd, tail, config_.svd, pool);

    // Mirror the new coordinates into `reduced` and insert leaf entries.
    linalg::Matrix grown(data.rows(), rank);
    for (std::size_t r = 0; r < s.reduced.rows(); ++r)
      for (std::size_t d = 0; d < rank; ++d) grown(r, d) = s.reduced(r, d);
    for (std::size_t r = first_new; r < data.rows(); ++r)
      for (std::size_t d = 0; d < rank; ++d)
        grown(r, d) = s.svd.row_factors(r, d);
    s.reduced = std::move(grown);

    for (std::uint32_t r = first_new; r < data.rows(); ++r) {
      s.tree.insert_point(r,
                          std::span<const double>(s.reduced.row(r), rank));
    }
    report.points_added = batch.added.size();
  }

  // --- changes --------------------------------------------------------------
  // Phase 1 (sequential): replace row contents and delete the stale leaf
  // entries. A row changed twice in one batch keeps its last content and is
  // erased/retrained/re-inserted once.
  std::vector<std::uint32_t> retrain_rows;  // unique, first-encounter order
  if (!batch.changed.empty()) {
    std::vector<char> seen(data.rows(), 0);
    retrain_rows.reserve(batch.changed.size());
    for (const auto& [row, content] : batch.changed) {
      if (row >= data.rows())
        throw std::out_of_range("SynopsisUpdater: changed row out of range");
      if (!seen[row]) {
        const rtree::Rect old_rect = rtree::Rect::point(
            std::span<const double>(s.reduced.row(row), rank));
        if (!s.tree.erase(row, old_rect))
          throw std::logic_error("SynopsisUpdater: stale point missing in tree");
        seen[row] = 1;
        retrain_rows.push_back(row);
      }
      SparseVector normalized = content;
      normalize(normalized);
      data.replace_row(row, normalized);
    }

    // Phase 2 (parallel): retrain each changed row's reduced coordinates
    // against frozen column factors. Rows are disjoint, so this is exact.
    //
    // View-lifetime contract (SparseRows::row): every replace_row above —
    // including any 25%-dead compaction it triggered — completed before
    // this phase, and phase 2 performs no mutation, so the views acquired
    // inside the tasks cannot be invalidated mid-retrain. The generation
    // snapshot asserts that no stale extent is ever read.
    const std::uint64_t gen = data.generation();
    (void)gen;  // referenced only by the assert in release builds
    auto retrain = [&](std::size_t k) {
      const std::uint32_t row = retrain_rows[k];
      assert(data.generation() == gen &&
             "SparseRows mutated while retraining holds row views");
      const SparseRowView rv = data.row(row);
      linalg::retrain_row_factors(s.svd, row, rv.cols(), rv.vals(), rv.size(),
                                  config_.svd);
    };
    if (pool != nullptr && retrain_rows.size() > 1) {
      pool->parallel_for(retrain_rows.size(), retrain);
    } else {
      for (std::size_t k = 0; k < retrain_rows.size(); ++k) retrain(k);
    }

    // Phase 3 (sequential): mirror coordinates and re-insert leaf entries.
    for (const auto row : retrain_rows) {
      for (std::size_t d = 0; d < rank; ++d)
        s.reduced(row, d) = s.svd.row_factors(row, d);
      s.tree.insert_point(row,
                          std::span<const double>(s.reduced.row(row), rank));
    }
  }
  report.points_changed = batch.changed.size();

  // --- re-derive the index file and re-aggregate dirty groups ---------------
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::size_t>>
      old_groups;  // node_id -> (version, old group index)
  for (std::size_t gi = 0; gi < s.index.size(); ++gi) {
    const auto& g = s.index.groups()[gi];
    old_groups[g.node_id] = {g.version, gi};
  }

  // Level selection with hysteresis: re-deriving the index at a different
  // tree level invalidates every cached aggregation, so the update keeps
  // the current level unless the freshly picked one is decisively closer
  // to the target group count (0.5 in log-ratio, i.e. ~1.65x).
  std::size_t level = SynopsisBuilder::pick_level(
      s.tree, data.rows(), config_.size_ratio, config_.min_groups);
  if (level != s.level && s.level < s.tree.height()) {
    const double target =
        std::max(static_cast<double>(config_.min_groups),
                 std::ceil(static_cast<double>(data.rows()) /
                           config_.size_ratio));
    auto gap = [&](std::size_t lv) {
      const auto count = s.tree.node_count_at_level(lv);
      if (count < config_.min_groups) return 1e18;
      return std::abs(std::log(static_cast<double>(count) / target));
    };
    if (gap(s.level) <= gap(level) + 0.5) level = s.level;
  }
  IndexFile new_index = SynopsisBuilder::derive_index(s.tree, level);
  new_index.validate_partition(data.rows());

  Synopsis new_synopsis;
  new_synopsis.points.resize(new_index.size());
  std::vector<std::size_t> dirty;
  for (std::size_t gi = 0; gi < new_index.size(); ++gi) {
    const auto& g = new_index.groups()[gi];
    auto it = old_groups.find(g.node_id);
    if (it != old_groups.end() && it->second.first == g.version) {
      new_synopsis.points[gi] = synopsis.points[it->second.second];
      ++report.clean_groups;
    } else {
      dirty.push_back(gi);
    }
  }
  auto re_aggregate = [&](std::size_t k) {
    const std::size_t gi = dirty[k];
    new_synopsis.points[gi] =
        aggregate_group(data, new_index.groups()[gi], kind);
  };
  if (pool != nullptr) {
    pool->parallel_for(dirty.size(), re_aggregate);
  } else {
    for (std::size_t k = 0; k < dirty.size(); ++k) re_aggregate(k);
  }
  report.dirty_groups = dirty.size();

  s.level = level;
  s.index = std::move(new_index);
  synopsis = std::move(new_synopsis);
  report.groups_after = s.index.size();
  report.seconds = timer.elapsed_seconds();
  return report;
}

}  // namespace at::synopsis
