#include "synopsis/updater.h"

#include <cmath>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "common/stopwatch.h"

namespace at::synopsis {

void SynopsisUpdater::retrain_row(linalg::SvdModel& svd, std::uint32_t row,
                                  const SparseVector& content) const {
  const std::size_t rank = svd.row_factors.cols();
  double* p = svd.row_factors.row(row);
  // Warm start from the current coordinates; train dimension-by-dimension
  // against frozen column factors, exactly like fold-in.
  for (std::size_t d = 0; d < rank; ++d) {
    for (std::size_t epoch = 0; epoch < config_.svd.epochs_per_dim; ++epoch) {
      for (const auto& [c, val] : content) {
        const double* q = svd.col_factors.row(c);
        double pred = 0.0;
        if (svd.has_biases()) {
          pred = svd.global_mean + svd.row_bias[row] + svd.col_bias[c];
        }
        for (std::size_t k = 0; k <= d; ++k) pred += p[k] * q[k];
        const double err = val - pred;
        if (svd.has_biases()) {
          double& br = svd.row_bias[row];
          br += config_.svd.learning_rate *
                (err - config_.svd.regularization * br);
        }
        p[d] += config_.svd.learning_rate *
                (err * q[d] - config_.svd.regularization * p[d]);
      }
    }
  }
}

UpdateReport SynopsisUpdater::apply(SynopsisStructure& s, SparseRows& data,
                                    Synopsis& synopsis,
                                    const UpdateBatch& batch,
                                    AggregationKind kind,
                                    common::ThreadPool* pool) const {
  common::Stopwatch timer;
  UpdateReport report;
  report.groups_before = s.index.size();

  const std::size_t rank = s.svd.row_factors.cols();

  // --- additions -----------------------------------------------------------
  if (!batch.added.empty()) {
    const auto first_new = static_cast<std::uint32_t>(data.rows());
    for (const auto& v : batch.added) {
      SparseVector copy = v;
      data.add_row(std::move(copy));
    }
    // Fold the appended rows into the SVD (column factors frozen).
    linalg::SparseDataset tail = data.tail_dataset(first_new);
    linalg::fold_in_rows(s.svd, tail, config_.svd);

    // Mirror the new coordinates into `reduced` and insert leaf entries.
    linalg::Matrix grown(data.rows(), rank);
    for (std::size_t r = 0; r < s.reduced.rows(); ++r)
      for (std::size_t d = 0; d < rank; ++d) grown(r, d) = s.reduced(r, d);
    for (std::size_t r = first_new; r < data.rows(); ++r)
      for (std::size_t d = 0; d < rank; ++d)
        grown(r, d) = s.svd.row_factors(r, d);
    s.reduced = std::move(grown);

    for (std::uint32_t r = first_new; r < data.rows(); ++r) {
      s.tree.insert_point(r,
                          std::span<const double>(s.reduced.row(r), rank));
    }
    report.points_added = batch.added.size();
  }

  // --- changes --------------------------------------------------------------
  for (const auto& [row, content] : batch.changed) {
    if (row >= data.rows())
      throw std::out_of_range("SynopsisUpdater: changed row out of range");
    SparseVector normalized = content;
    normalize(normalized);
    data.replace_row(row, normalized);

    // Delete the stale leaf entry, retrain the row's coordinates, re-insert.
    const rtree::Rect old_rect =
        rtree::Rect::point(std::span<const double>(s.reduced.row(row), rank));
    if (!s.tree.erase(row, old_rect))
      throw std::logic_error("SynopsisUpdater: stale point missing in tree");

    retrain_row(s.svd, row, normalized);
    for (std::size_t d = 0; d < rank; ++d)
      s.reduced(row, d) = s.svd.row_factors(row, d);
    s.tree.insert_point(row,
                        std::span<const double>(s.reduced.row(row), rank));
  }
  report.points_changed = batch.changed.size();

  // --- re-derive the index file and re-aggregate dirty groups ---------------
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::size_t>>
      old_groups;  // node_id -> (version, old group index)
  for (std::size_t gi = 0; gi < s.index.size(); ++gi) {
    const auto& g = s.index.groups()[gi];
    old_groups[g.node_id] = {g.version, gi};
  }

  // Level selection with hysteresis: re-deriving the index at a different
  // tree level invalidates every cached aggregation, so the update keeps
  // the current level unless the freshly picked one is decisively closer
  // to the target group count (0.5 in log-ratio, i.e. ~1.65x).
  std::size_t level = SynopsisBuilder::pick_level(
      s.tree, data.rows(), config_.size_ratio, config_.min_groups);
  if (level != s.level && s.level < s.tree.height()) {
    const double target =
        std::max(static_cast<double>(config_.min_groups),
                 std::ceil(static_cast<double>(data.rows()) /
                           config_.size_ratio));
    auto gap = [&](std::size_t lv) {
      const auto count = s.tree.node_count_at_level(lv);
      if (count < config_.min_groups) return 1e18;
      return std::abs(std::log(static_cast<double>(count) / target));
    };
    if (gap(s.level) <= gap(level) + 0.5) level = s.level;
  }
  IndexFile new_index = SynopsisBuilder::derive_index(s.tree, level);
  new_index.validate_partition(data.rows());

  Synopsis new_synopsis;
  new_synopsis.points.resize(new_index.size());
  std::vector<std::size_t> dirty;
  for (std::size_t gi = 0; gi < new_index.size(); ++gi) {
    const auto& g = new_index.groups()[gi];
    auto it = old_groups.find(g.node_id);
    if (it != old_groups.end() && it->second.first == g.version) {
      new_synopsis.points[gi] = synopsis.points[it->second.second];
      ++report.clean_groups;
    } else {
      dirty.push_back(gi);
    }
  }
  auto re_aggregate = [&](std::size_t k) {
    const std::size_t gi = dirty[k];
    new_synopsis.points[gi] =
        aggregate_group(data, new_index.groups()[gi], kind);
  };
  if (pool != nullptr) {
    pool->parallel_for(dirty.size(), re_aggregate);
  } else {
    for (std::size_t k = 0; k < dirty.size(); ++k) re_aggregate(k);
  }
  report.dirty_groups = dirty.size();

  s.level = level;
  s.index = std::move(new_index);
  synopsis = std::move(new_synopsis);
  report.groups_after = s.index.size();
  report.seconds = timer.elapsed_seconds();
  return report;
}

}  // namespace at::synopsis
