// Delta artifacts (ATAC kind "DLTA"): the changed rows of ONE epoch
// publish, in the same CRC-framed chunk container as full snapshots.
//
// Every successful component publish can emit one delta — the applied
// UpdateBatch plus the (from_version, to_version] epoch interval it moved
// the component across. Because SynopsisUpdater::apply is deterministic, a
// warm standby that loaded a full snapshot at epoch V can tail the delta
// stream and replay each batch with V == delta.from_version to arrive at
// byte-identical component state — the building block for shard takeover
// without full-snapshot transfer (ROADMAP: replicated multi-node serving).
//
// Wire format (kind "DLTA", version 1):
//
//   META  u32 component | u64 from_version | u64 to_version |
//         u64 n_added | u64 n_changed
//   DADD  lengths vec_u32 | terms vec_u32 | values vec_f64(codec)
//         (added rows, columnar: row i owns lengths[i] consecutive
//          term/value pairs; terms strictly ascending within a row)
//   DCHG  row_ids vec_u32 | lengths vec_u32 | terms vec_u32 |
//         values vec_f64(codec)   (changed rows, same columnar layout)
//
// Loaders are bounds-checked end to end: inconsistent lengths, unsorted
// terms, truncation and bit flips all throw ArtifactError (fuzz coverage
// in tests/epoch_test.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/artifact.h"
#include "synopsis/updater.h"

namespace at::synopsis {

/// One publish's worth of change: apply `batch` to a replica at epoch
/// `from_version` of component `component` to reach `to_version`.
struct DeltaArtifact {
  std::uint32_t component = 0;
  std::uint64_t from_version = 0;
  std::uint64_t to_version = 0;
  UpdateBatch batch;
};

/// Writes one delta as an ATAC "DLTA" v1 container. Failpoint
/// "artifact.delta_write" (error action) aborts the write with
/// ArtifactError — serving must survive a standby stream that fails
/// mid-publish (the epoch itself is already live; only the delta is lost).
void save_delta(std::ostream& os, const DeltaArtifact& delta,
                common::Codec codec = common::default_codec());

/// Reads one delta; throws common::ArtifactError on any corruption.
DeltaArtifact load_delta(std::istream& is);

// ---------------------------------------------------------------------------
// Replication-stream file naming
// ---------------------------------------------------------------------------
//
// Both the delta writer (the serving front end) and the tailer (the warm
// standby) agree on one on-disk convention:
//
//   delta_<kind><component>_<to_version>.atac   one publish's delta
//   ckpt_<kind><component>_<version>.atac       full snapshot at `version`
//
// where <kind> is 'c' (search component) or 'r' (recommender component)
// and versions are zero-padded to a fixed width so a plain lexicographic
// directory sort is also the numeric version sort (the tailer still parses
// and sorts numerically; the padding is for humans and shell globs).
// Writers must create files under a temporary name and atomically
// std::rename them into place — a tailer may list the directory at any
// instant and must never observe a half-framed container under a final
// name. Anything that does not parse (".tmp" leftovers, foreign files) is
// skipped by the tailer.

/// Width every version number is zero-padded to in stream filenames.
inline constexpr int kVersionPadWidth = 12;

/// "delta_c3_000000000017.atac" for kind 'c', component 3, to_version 17.
std::string delta_filename(char kind, std::uint32_t component,
                           std::uint64_t to_version);

/// "ckpt_c3_000000000015.atac": full snapshot of component 3 at version 15.
std::string checkpoint_filename(char kind, std::uint32_t component,
                                std::uint64_t version);

/// Parses `name` (no directory part) against the given prefix convention
/// ("delta" or "ckpt"). Returns false for anything that is not a
/// well-formed "<prefix>_<kind><component>_<version>.atac" — the tailer's
/// skip condition. On success fills kind ('c'/'r'), component and version.
bool parse_stream_filename(const std::string& name, const std::string& prefix,
                           char* kind, std::uint32_t* component,
                           std::uint64_t* version);

}  // namespace at::synopsis
