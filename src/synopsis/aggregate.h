// Synopsis creation step 3: information aggregation of original data points.
//
// For numeric data (ratings) the aggregated value of an attribute is the
// mean over the members that *have* the attribute — e.g. an aggregated
// user's rating on item i is the average rating of the member users who
// rated i. For text data the aggregated page simply merges the members'
// contents, i.e. term counts are summed.
//
// The paper runs this step on Spark because it is the most expensive one
// (O(k*v)); here the per-group tasks run on a shared-memory thread pool.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "synopsis/index_file.h"
#include "synopsis/sparse_rows.h"

namespace at::synopsis {

enum class AggregationKind {
  kMean,   // numeric datasets: per-attribute mean over members having it
  kMerge,  // text datasets: merged contents (term counts summed)
};

/// One aggregated data point of the synopsis.
struct AggregatedPoint {
  std::uint64_t node_id = 0;   // backing R-tree node (links to IndexGroup)
  std::uint32_t member_count = 0;
  SparseVector features;       // aggregated attribute values
  /// For kMean: per-attribute member counts aligned with `features`
  /// (attribute c was present in support[k] members, features[k] is their
  /// mean). Empty for kMerge.
  std::vector<std::uint32_t> support;
};

/// The synopsis proper: one aggregated point per index group, in index
/// group order.
struct Synopsis {
  std::vector<AggregatedPoint> points;

  std::size_t size() const { return points.size(); }
  bool empty() const { return points.empty(); }

  /// Sum of sparse feature entries across points — the synopsis "size"
  /// that must stay ~ratio× smaller than the input data.
  std::size_t total_features() const;
};

/// Aggregates one group of rows.
AggregatedPoint aggregate_group(const SparseRows& data, const IndexGroup& group,
                                AggregationKind kind);

/// Aggregates every group of the index file. When `pool` is non-null the
/// groups are processed in parallel.
Synopsis aggregate_all(const SparseRows& data, const IndexFile& index,
                       AggregationKind kind,
                       common::ThreadPool* pool = nullptr);

}  // namespace at::synopsis
