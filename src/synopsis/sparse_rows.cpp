#include "synopsis/sparse_rows.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace at::synopsis {

bool operator==(const SparseRowView& a, const SparseRowView& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.cols()[i] != b.cols()[i] || a.vals()[i] != b.vals()[i]) return false;
  }
  return true;
}

bool operator==(const SparseRowView& a, const SparseVector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.cols()[i] != b[i].first || a.vals()[i] != b[i].second) return false;
  }
  return true;
}

void normalize(SparseVector& v) {
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SparseVector merged;
  merged.reserve(v.size());
  for (const auto& [c, val] : v) {
    if (!merged.empty() && merged.back().first == c) {
      merged.back().second += val;
    } else {
      merged.emplace_back(c, val);
    }
  }
  v = std::move(merged);
}

std::uint32_t SparseRows::add_row(SparseVector v) {
  normalize(v);
  if (!v.empty() && v.back().first >= cols_)
    throw std::out_of_range("SparseRows::add_row: column out of range");
  // No exact-size reserve here: push_back's geometric growth keeps a long
  // sequence of add_row calls amortized O(1) per entry. Bulk callers that
  // know their size use reserve_entries() up front.
  Extent e{col_pool_.size(), static_cast<std::uint32_t>(v.size())};
  for (const auto& [c, val] : v) {
    col_pool_.push_back(c);
    val_pool_.push_back(val);
  }
  extents_.push_back(e);
  live_entries_ += v.size();
  ++generation_;  // pool may have reallocated: outstanding views are stale
  return static_cast<std::uint32_t>(extents_.size() - 1);
}

void SparseRows::replace_row(std::uint32_t row, SparseVector v) {
  normalize(v);
  if (!v.empty() && v.back().first >= cols_)
    throw std::out_of_range("SparseRows::replace_row: column out of range");
  if (row >= extents_.size())
    throw std::out_of_range("SparseRows::replace_row: row out of range");
  Extent& e = extents_[row];
  live_entries_ -= e.len;
  if (v.size() <= e.len) {
    // In-place shrink: the unused slot tail is dead for good (slot
    // capacity is not tracked, so a later grow relocates anyway).
    dead_entries_ += e.len - v.size();
    for (std::size_t i = 0; i < v.size(); ++i) {
      col_pool_[e.off + i] = v[i].first;
      val_pool_[e.off + i] = v[i].second;
    }
    e.len = static_cast<std::uint32_t>(v.size());
  } else {
    dead_entries_ += e.len;  // the whole old slot becomes a hole
    e.off = col_pool_.size();
    e.len = static_cast<std::uint32_t>(v.size());
    for (const auto& [c, val] : v) {
      col_pool_.push_back(c);
      val_pool_.push_back(val);
    }
  }
  live_entries_ += v.size();
  ++generation_;  // slot rewritten or relocated: outstanding views are stale
  // ROADMAP "Hole compaction": reclaim once holes exceed 25% of the live
  // payload, so repeated grown replacements can't leak the pool unbounded.
  // Note this makes replace_row a potential whole-pool rewrite: views of
  // *other* rows do not survive it either (see the row() contract).
  if (dead_entries_ * 4 > live_entries_) compact();
}

void SparseRows::compact() {
  if (dead_entries_ == 0) return;
  ++generation_;  // every extent is about to move
  std::vector<std::uint32_t> cols;
  std::vector<double> vals;
  cols.reserve(live_entries_);
  vals.reserve(live_entries_);
  for (Extent& e : extents_) {
    const std::size_t off = cols.size();
    cols.insert(cols.end(), col_pool_.begin() + e.off,
                col_pool_.begin() + e.off + e.len);
    vals.insert(vals.end(), val_pool_.begin() + e.off,
                val_pool_.begin() + e.off + e.len);
    e.off = off;
  }
  col_pool_ = std::move(cols);
  val_pool_ = std::move(vals);
  dead_entries_ = 0;
  // Every extent was rewritten above; any stale one would now read past
  // the shrunken pool.
  assert(col_pool_.size() == live_entries_);
}

SparseRowView SparseRows::row(std::uint32_t r) const {
  const Extent& e = extents_.at(r);
  return SparseRowView(col_pool_.data() + e.off, val_pool_.data() + e.off,
                       e.len);
}

void SparseRows::reserve_entries(std::size_t entries) {
  col_pool_.reserve(col_pool_.size() + entries);
  val_pool_.reserve(val_pool_.size() + entries);
}

linalg::SparseDataset SparseRows::span_dataset(std::uint32_t first) const {
  linalg::SparseDataset ds;
  ds.rows = extents_.size() - first;
  ds.cols = cols_;
  std::size_t n = 0;
  for (std::size_t r = first; r < extents_.size(); ++r) n += extents_[r].len;
  ds.entries.reserve(n);
  ds.row_ptr.reserve(ds.rows + 1);
  ds.col_idx.reserve(n);
  ds.values.reserve(n);
  ds.row_ptr.push_back(0);
  for (std::size_t r = first; r < extents_.size(); ++r) {
    const Extent& e = extents_[r];
    const auto local = static_cast<std::uint32_t>(r - first);
    for (std::uint32_t i = 0; i < e.len; ++i) {
      ds.entries.push_back(
          {local, col_pool_[e.off + i], val_pool_[e.off + i]});
    }
    ds.col_idx.insert(ds.col_idx.end(), col_pool_.begin() + e.off,
                      col_pool_.begin() + e.off + e.len);
    ds.values.insert(ds.values.end(), val_pool_.begin() + e.off,
                     val_pool_.begin() + e.off + e.len);
    ds.row_ptr.push_back(ds.col_idx.size());
  }
  return ds;
}

linalg::SparseDataset SparseRows::to_dataset() const {
  return span_dataset(0);
}

linalg::SparseDataset SparseRows::tail_dataset(std::uint32_t first) const {
  if (first > extents_.size())
    throw std::out_of_range("SparseRows::tail_dataset: first out of range");
  return span_dataset(first);
}

}  // namespace at::synopsis
