#include "synopsis/sparse_rows.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace at::synopsis {

void normalize(SparseVector& v) {
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SparseVector merged;
  merged.reserve(v.size());
  for (const auto& [c, val] : v) {
    if (!merged.empty() && merged.back().first == c) {
      merged.back().second += val;
    } else {
      merged.emplace_back(c, val);
    }
  }
  v = std::move(merged);
}

double value_at(const SparseVector& v, std::uint32_t c) {
  auto it = std::lower_bound(
      v.begin(), v.end(), c,
      [](const auto& entry, std::uint32_t col) { return entry.first < col; });
  if (it != v.end() && it->first == c) return it->second;
  return 0.0;
}

double dot(const SparseVector& a, const SparseVector& b) {
  double acc = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      ++i;
    } else if (a[i].first > b[j].first) {
      ++j;
    } else {
      acc += a[i].second * b[j].second;
      ++i;
      ++j;
    }
  }
  return acc;
}

double norm(const SparseVector& v) {
  double acc = 0.0;
  for (const auto& [c, val] : v) acc += val * val;
  return std::sqrt(acc);
}

double cosine(const SparseVector& a, const SparseVector& b) {
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

std::uint32_t SparseRows::add_row(SparseVector v) {
  normalize(v);
  if (!v.empty() && v.back().first >= cols_)
    throw std::out_of_range("SparseRows::add_row: column out of range");
  rows_.push_back(std::move(v));
  return static_cast<std::uint32_t>(rows_.size() - 1);
}

void SparseRows::replace_row(std::uint32_t row, SparseVector v) {
  normalize(v);
  if (!v.empty() && v.back().first >= cols_)
    throw std::out_of_range("SparseRows::replace_row: column out of range");
  rows_.at(row) = std::move(v);
}

std::size_t SparseRows::total_entries() const {
  std::size_t n = 0;
  for (const auto& r : rows_) n += r.size();
  return n;
}

linalg::SparseDataset SparseRows::to_dataset() const {
  linalg::SparseDataset ds;
  ds.rows = rows_.size();
  ds.cols = cols_;
  ds.entries.reserve(total_entries());
  for (std::uint32_t r = 0; r < rows_.size(); ++r) {
    for (const auto& [c, val] : rows_[r]) {
      ds.entries.push_back({r, c, val});
    }
  }
  return ds;
}

linalg::SparseDataset SparseRows::tail_dataset(std::uint32_t first) const {
  if (first > rows_.size())
    throw std::out_of_range("SparseRows::tail_dataset: first out of range");
  linalg::SparseDataset ds;
  ds.rows = rows_.size() - first;
  ds.cols = cols_;
  for (std::uint32_t r = first; r < rows_.size(); ++r) {
    for (const auto& [c, val] : rows_[r]) {
      ds.entries.push_back({r - first, c, val});
    }
  }
  return ds;
}

}  // namespace at::synopsis
