// Machine-topology discovery for the sharded execution layer (ROADMAP
// "NUMA-aware sharding").
//
// A Topology is the list of memory nodes the process may run on, each with
// the logical CPUs it owns (filtered through the process affinity mask).
// The physical layout comes from /sys/devices/system/node/node*/cpulist;
// machines without that hierarchy (or non-Linux builds) collapse to one
// node holding every schedulable CPU.
//
// Like the SIMD kernel layer's AT_SIMD, the AT_TOPOLOGY environment
// variable overrides discovery so any box can exercise multi-node code
// paths:
//
//   AT_TOPOLOGY=auto     physical discovery (the default)
//   AT_TOPOLOGY=flat     one node over every schedulable CPU
//   AT_TOPOLOGY=<N>      simulate N nodes by dealing the schedulable CPUs
//                        round-robin (a CPU may serve several simulated
//                        nodes when N exceeds the CPU count, so 2/4-node
//                        layouts are testable even on a 1-CPU container)
//   AT_TOPOLOGY=0-3;4-7  explicit nodes: ';'-separated sysfs-style cpulists
//                        (comma-separated ids and inclusive ranges)
//
// The resolved topology is what ShardedExecutor (sharded_executor.h) builds
// its pinned per-node worker groups from.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace at::common {

struct Topology {
  /// Logical CPU ids per node, sorted ascending within a node. Never
  /// contains an empty node; never empty itself for a valid topology.
  std::vector<std::vector<int>> node_cpus;
  /// True when the layout was simulated/overridden rather than discovered.
  bool simulated = false;

  std::size_t num_nodes() const { return node_cpus.size(); }
  std::size_t total_cpus() const {
    std::size_t n = 0;
    for (const auto& cpus : node_cpus) n += cpus.size();
    return n;
  }
  /// "2 nodes: [0-1][2-3]" — for logs and bench JSON.
  std::string describe() const;
};

/// Logical CPUs the process may be scheduled on (sched_getaffinity),
/// sorted. Falls back to 0..hardware_concurrency-1 when the mask cannot be
/// read.
std::vector<int> schedulable_cpus();

/// Reads the physical node layout from sysfs, filtered through the
/// affinity mask; single-node fallback when sysfs is absent or every
/// discovered node was masked out. Never returns an empty topology.
Topology physical_topology();

/// Simulated `nodes`-node layout over `cpus` dealt round-robin. When
/// `nodes` exceeds the CPU count, CPUs are reused so every node stays
/// non-empty. `nodes` must be >= 1 and `cpus` non-empty.
Topology simulated_topology(std::size_t nodes, std::vector<int> cpus);
/// Convenience: simulated layout over the schedulable CPUs.
Topology simulated_topology(std::size_t nodes);

/// Parses a sysfs-style cpulist ("0-3,8,10-11"). Returns false on
/// malformed input; duplicates collapse and the result is sorted.
bool parse_cpulist(const std::string& spec, std::vector<int>* out);

/// Parses an AT_TOPOLOGY spec (see header comment). `schedulable` supplies
/// the CPU pool for "auto"/"flat"/<N>; explicit cpulists are taken
/// verbatim (they may name CPUs outside the mask — pinning degrades
/// gracefully). Returns false on an unknown/malformed spec.
bool parse_topology(const char* spec, const std::vector<int>& schedulable,
                    Topology* out);

/// The process-wide topology: AT_TOPOLOGY when set and valid (an invalid
/// spec is ignored with a warning to stderr), else physical discovery.
/// Resolved once and cached.
const Topology& active_topology();

}  // namespace at::common
