// SSE4.2 kernel tier. Compiled with -msse4.2 (CMake sets the flag on this
// file only); when the compiler cannot target SSE4.2 the table falls back
// to the scalar kernels so the build stays portable.
//
// 128-bit doubles cover the element-wise kernels; the dot reduction keeps
// two 2-lane accumulators so its rounding matches the canonical 4-lane
// order (see simd.h). The group-varint decoder is the classic pshufb
// shuffle-table expansion: one 256-entry table maps each control byte to a
// 16-byte shuffle that scatters the 4..16 data bytes into four zero-padded
// u32 lanes, then an in-register prefix sum turns deltas into doc ids.
#include "common/simd_internal.h"

#if AT_SIMD_X86 && defined(__SSE4_2__)

#include <nmmintrin.h>

#include <cmath>
#include <cstring>

namespace at::simd::detail {
namespace {

constexpr bool kHaveSse42 = true;

struct GroupTables {
  alignas(16) std::uint8_t shuf[256][16];
  std::uint8_t len[256];
};

constexpr GroupTables make_group_tables() {
  GroupTables t{};
  for (int c = 0; c < 256; ++c) {
    int off = 0;
    for (int v = 0; v < 4; ++v) {
      const int len = ((c >> (2 * v)) & 0x3) + 1;
      for (int b = 0; b < 4; ++b) {
        // 0x80 in a pshufb control lane writes a zero byte.
        t.shuf[c][4 * v + b] =
            b < len ? static_cast<std::uint8_t>(off + b) : 0x80;
      }
      off += len;
    }
    t.len[c] = static_cast<std::uint8_t>(off);
  }
  return t;
}

constexpr GroupTables kGroupTables = make_group_tables();

double dot(const double* a, const double* b, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  __m128d acc01 = _mm_setzero_pd();  // lanes {s0, s1}
  __m128d acc23 = _mm_setzero_pd();  // lanes {s2, s3}
  for (std::size_t i = 0; i < n4; i += 4) {
    acc01 = _mm_add_pd(acc01,
                       _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  // {s0+s2, s1+s3} then low+high == (s0+s2)+(s1+s3): the canonical order.
  const __m128d folded = _mm_add_pd(acc01, acc23);
  double acc = _mm_cvtsd_f64(folded) +
               _mm_cvtsd_f64(_mm_unpackhi_pd(folded, folded));
  for (std::size_t i = n4; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double distance_sq(const double* a, const double* b, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d23 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
  }
  const __m128d folded = _mm_add_pd(acc01, acc23);
  double acc = _mm_cvtsd_f64(folded) +
               _mm_cvtsd_f64(_mm_unpackhi_pd(folded, folded));
  for (std::size_t i = n4; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void score_tfidf(double* out, const double* sqrt_tf,
                 const std::uint32_t* docs, const double* len_norm, double w,
                 std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const __m128d vw = _mm_set1_pd(w);
  for (std::size_t i = 0; i < n2; i += 2) {
    // No hardware gather below AVX2: scalar-load the two norms.
    const __m128d ln =
        _mm_set_pd(len_norm[docs[i + 1]], len_norm[docs[i]]);
    const __m128d s = _mm_mul_pd(_mm_loadu_pd(sqrt_tf + i), vw);
    _mm_storeu_pd(out + i, _mm_mul_pd(s, ln));
  }
  for (std::size_t i = n2; i < n; ++i) {
    out[i] = (sqrt_tf[i] * w) * len_norm[docs[i]];
  }
}

void score_bm25(double* out, const double* tf, const std::uint32_t* docs,
                const double* bm25_norm, double w, double k1p1,
                std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const __m128d vw = _mm_set1_pd(w);
  const __m128d vk = _mm_set1_pd(k1p1);
  for (std::size_t i = 0; i < n2; i += 2) {
    const __m128d vtf = _mm_loadu_pd(tf + i);
    const __m128d norm =
        _mm_set_pd(bm25_norm[docs[i + 1]], bm25_norm[docs[i]]);
    const __m128d num = _mm_mul_pd(vw, _mm_mul_pd(vtf, vk));
    _mm_storeu_pd(out + i, _mm_div_pd(num, _mm_add_pd(vtf, norm)));
  }
  for (std::size_t i = n2; i < n; ++i) {
    out[i] = (w * (tf[i] * k1p1)) / (tf[i] + bm25_norm[docs[i]]);
  }
}

void inv_sqrt_or_zero(double* out, const double* in, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d zero = _mm_setzero_pd();
  for (std::size_t i = 0; i < n2; i += 2) {
    const __m128d v = _mm_loadu_pd(in + i);
    const __m128d r = _mm_div_pd(one, _mm_sqrt_pd(v));
    // cmpgt is an ordered compare: NaN inputs take the zero branch, like
    // the scalar `v > 0.0 ? ... : 0.0`.
    _mm_storeu_pd(out + i, _mm_blendv_pd(zero, r, _mm_cmpgt_pd(v, zero)));
  }
  for (std::size_t i = n2; i < n; ++i) {
    out[i] = in[i] > 0.0 ? 1.0 / std::sqrt(in[i]) : 0.0;
  }
}

void bm25_doc_norms(double* out, const double* dl, double k1, double b,
                    double avg, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const __m128d vk1 = _mm_set1_pd(k1);
  const __m128d vb = _mm_set1_pd(b);
  const __m128d vavg = _mm_set1_pd(avg);
  const __m128d one_minus_b = _mm_set1_pd(1.0 - b);
  for (std::size_t i = 0; i < n2; i += 2) {
    const __m128d v = _mm_loadu_pd(dl + i);
    const __m128d t =
        _mm_add_pd(one_minus_b, _mm_div_pd(_mm_mul_pd(vb, v), vavg));
    _mm_storeu_pd(out + i, _mm_mul_pd(vk1, t));
  }
  for (std::size_t i = n2; i < n; ++i) {
    out[i] = k1 * (1.0 - b + b * dl[i] / avg);
  }
}

}  // namespace

const std::uint8_t* sse42_decode_group_deltas(const std::uint8_t* p,
                                              std::uint32_t* ids,
                                              std::uint32_t* prev,
                                              std::size_t n) {
  __m128i pv = _mm_set1_epi32(static_cast<int>(*prev));
  for (std::size_t i = 0; i < n; i += 4) {
    const std::uint8_t control = *p++;
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    __m128i d = _mm_shuffle_epi8(
        raw, _mm_load_si128(
                 reinterpret_cast<const __m128i*>(kGroupTables.shuf[control])));
    // In-register inclusive prefix sum of the four u32 deltas.
    d = _mm_add_epi32(d, _mm_slli_si128(d, 4));
    d = _mm_add_epi32(d, _mm_slli_si128(d, 8));
    const __m128i vals = _mm_add_epi32(d, pv);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ids + i), vals);
    pv = _mm_shuffle_epi32(vals, _MM_SHUFFLE(3, 3, 3, 3));
    p += kGroupTables.len[control];
  }
  *prev = static_cast<std::uint32_t>(_mm_cvtsi128_si32(pv));
  return p;
}

const std::uint8_t* sse42_decode_u8_deltas(const std::uint8_t* p,
                                           std::uint32_t* ids,
                                           std::uint32_t* prev,
                                           std::size_t n) {
  __m128i pv = _mm_set1_epi32(static_cast<int>(*prev));
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < n4; i += 4) {
    std::uint32_t packed;
    std::memcpy(&packed, p + i, sizeof packed);
    __m128i d =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed)));
    d = _mm_add_epi32(d, _mm_slli_si128(d, 4));
    d = _mm_add_epi32(d, _mm_slli_si128(d, 8));
    const __m128i vals = _mm_add_epi32(d, pv);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ids + i), vals);
    pv = _mm_shuffle_epi32(vals, _MM_SHUFFLE(3, 3, 3, 3));
  }
  if (i < n) {
    // Tail quad: bytes past the block's deltas belong to the next block
    // (or the pool pad), so mask them out of the prefix sum before the
    // full-quad store (the ids buffer always has room for a rounded-up
    // quad — see the Kernels contract).
    static constexpr std::uint32_t kTailMask[4] = {0, 0xFFu, 0xFFFFu,
                                                   0xFFFFFFu};
    std::uint32_t packed;
    std::memcpy(&packed, p + i, sizeof packed);  // pool pad keeps this safe
    packed &= kTailMask[n - i];
    __m128i d =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed)));
    d = _mm_add_epi32(d, _mm_slli_si128(d, 4));
    d = _mm_add_epi32(d, _mm_slli_si128(d, 8));
    const __m128i vals = _mm_add_epi32(d, pv);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ids + i), vals);
    pv = _mm_shuffle_epi32(vals, _MM_SHUFFLE(3, 3, 3, 3));
  }
  *prev = static_cast<std::uint32_t>(_mm_cvtsi128_si32(pv));
  return p + n;
}

std::uint32_t sse42_crc32c_update(std::uint32_t crc, const std::uint8_t* p,
                                  std::size_t n) {
  // The crc32 instruction implements the Castagnoli polynomial directly;
  // widening to u64 steps just feeds it 8 input bytes per issue.
  std::uint64_t c = crc;
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t i = 0; i < n8; i += 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p + i, sizeof chunk);
    c = _mm_crc32_u64(c, chunk);
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  for (std::size_t i = n8; i < n; ++i) {
    c32 = _mm_crc32_u8(c32, p[i]);
  }
  return c32;
}

// 8x8 byte transpose of one element group: doubles d0..d7 in four 16-byte
// registers ([d0,d1], [d2,d3], [d4,d5], [d6,d7]) to four registers of two
// 8-byte planes each ([p0,p1], [p2,p3], [p4,p5], [p6,p7]). Three unpack
// stages; the network is an involution on the 8x8 byte matrix, so
// unshuffle runs the identical network with planes as input rows.
inline void transpose8x8(__m128i r0, __m128i r1, __m128i r2, __m128i r3,
                         __m128i& w0, __m128i& w1, __m128i& w2, __m128i& w3) {
  const __m128i t0 = _mm_unpacklo_epi8(r0, r1);  // rows 0,2 interleaved
  const __m128i t1 = _mm_unpackhi_epi8(r0, r1);  // rows 1,3 interleaved
  const __m128i t2 = _mm_unpacklo_epi8(r2, r3);  // rows 4,6
  const __m128i t3 = _mm_unpackhi_epi8(r2, r3);  // rows 5,7
  const __m128i u0 = _mm_unpacklo_epi8(t0, t1);  // cols 0..3 of rows 0..3
  const __m128i u1 = _mm_unpackhi_epi8(t0, t1);  // cols 4..7 of rows 0..3
  const __m128i u2 = _mm_unpacklo_epi8(t2, t3);  // cols 0..3 of rows 4..7
  const __m128i u3 = _mm_unpackhi_epi8(t2, t3);  // cols 4..7 of rows 4..7
  w0 = _mm_unpacklo_epi32(u0, u2);
  w1 = _mm_unpackhi_epi32(u0, u2);
  w2 = _mm_unpacklo_epi32(u1, u3);
  w3 = _mm_unpackhi_epi32(u1, u3);
}

void sse42_shuffle_u64(std::uint8_t* out, const std::uint64_t* in,
                       std::size_t n) {
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t i = 0; i < n8; i += 8) {
    const __m128i* src = reinterpret_cast<const __m128i*>(in + i);
    __m128i w0, w1, w2, w3;
    transpose8x8(_mm_loadu_si128(src), _mm_loadu_si128(src + 1),
                 _mm_loadu_si128(src + 2), _mm_loadu_si128(src + 3), w0, w1,
                 w2, w3);
    const __m128i w[4] = {w0, w1, w2, w3};
    for (int k = 0; k < 4; ++k) {
      _mm_storel_epi64(reinterpret_cast<__m128i*>(out + (2 * k) * n + i),
                       w[k]);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(out + (2 * k + 1) * n + i),
                       _mm_srli_si128(w[k], 8));
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    const std::uint64_t x = in[i];
    for (std::size_t plane = 0; plane < 8; ++plane) {
      out[plane * n + i] = static_cast<std::uint8_t>(x >> (8 * plane));
    }
  }
}

void sse42_unshuffle_u64(std::uint64_t* out, const std::uint8_t* in,
                         std::size_t n) {
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t i = 0; i < n8; i += 8) {
    __m128i r[4];
    for (int k = 0; k < 4; ++k) {
      const __m128i lo = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(in + (2 * k) * n + i));
      const __m128i hi = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(in + (2 * k + 1) * n + i));
      r[k] = _mm_unpacklo_epi64(lo, hi);
    }
    __m128i w0, w1, w2, w3;
    transpose8x8(r[0], r[1], r[2], r[3], w0, w1, w2, w3);
    __m128i* dst = reinterpret_cast<__m128i*>(out + i);
    _mm_storeu_si128(dst, w0);
    _mm_storeu_si128(dst + 1, w1);
    _mm_storeu_si128(dst + 2, w2);
    _mm_storeu_si128(dst + 3, w3);
  }
  for (std::size_t i = n8; i < n; ++i) {
    std::uint64_t x = 0;
    for (std::size_t plane = 0; plane < 8; ++plane) {
      x |= static_cast<std::uint64_t>(in[plane * n + i]) << (8 * plane);
    }
    out[i] = x;
  }
}

namespace {

const Kernels kSse42Kernels = {
    &dot,
    &distance_sq,
    &scalar_retire_axpy,  // gathers need AVX2; the loop itself is scalar
    &score_tfidf,
    &score_bm25,
    &inv_sqrt_or_zero,
    &bm25_doc_norms,
    &scalar_score_tfidf_codes,  // fused paths lean on gathers too
    &scalar_score_bm25_codes,
    &scalar_expand_lut_u8,
    &scalar_u8_to_f64,
    &sse42_decode_group_deltas,
    &sse42_decode_u8_deltas,
    &sse42_crc32c_update,
    &sse42_shuffle_u64,
    &sse42_unshuffle_u64,
};

}  // namespace

const Kernels& sse42_kernels() { return kSse42Kernels; }
bool sse42_compiled() { return kHaveSse42; }

}  // namespace at::simd::detail

#else  // !(AT_SIMD_X86 && __SSE4_2__)

namespace at::simd::detail {

namespace {
const Kernels kSse42Fallback = {
    &scalar_dot,
    &scalar_distance_sq,
    &scalar_retire_axpy,
    &scalar_score_tfidf,
    &scalar_score_bm25,
    &scalar_inv_sqrt_or_zero,
    &scalar_bm25_doc_norms,
    &scalar_score_tfidf_codes,
    &scalar_score_bm25_codes,
    &scalar_expand_lut_u8,
    &scalar_u8_to_f64,
    &scalar_decode_group_deltas,
    &scalar_decode_u8_deltas,
    &scalar_crc32c_update,
    &scalar_shuffle_u64,
    &scalar_unshuffle_u64,
};
}  // namespace

const Kernels& sse42_kernels() { return kSse42Fallback; }
bool sse42_compiled() { return false; }
const std::uint8_t* sse42_decode_group_deltas(const std::uint8_t* p,
                                              std::uint32_t* ids,
                                              std::uint32_t* prev,
                                              std::size_t n) {
  return scalar_decode_group_deltas(p, ids, prev, n);
}
const std::uint8_t* sse42_decode_u8_deltas(const std::uint8_t* p,
                                           std::uint32_t* ids,
                                           std::uint32_t* prev,
                                           std::size_t n) {
  return scalar_decode_u8_deltas(p, ids, prev, n);
}
std::uint32_t sse42_crc32c_update(std::uint32_t crc, const std::uint8_t* p,
                                  std::size_t n) {
  return scalar_crc32c_update(crc, p, n);
}
void sse42_shuffle_u64(std::uint8_t* out, const std::uint64_t* in,
                       std::size_t n) {
  scalar_shuffle_u64(out, in, n);
}
void sse42_unshuffle_u64(std::uint64_t* out, const std::uint8_t* in,
                         std::size_t n) {
  scalar_unshuffle_u64(out, in, n);
}

}  // namespace at::simd::detail

#endif
