#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace at::common::failpoint {

namespace detail {
std::atomic<int> g_armed_count{0};
}

namespace {

struct Entry {
  Action action = Action::kOff;
  double delay_ms = 0.0;
  // Remaining hits before auto-disarm; SIZE_MAX = unlimited.
  std::uint64_t budget = ~std::uint64_t{0};
  std::uint64_t hits = 0;
};

struct Registry {
  Mutex mutex;
  std::unordered_map<std::string, Entry> sites AT_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

Entry parse_spec(const std::string& spec) {
  Entry e;
  // Split on ':' into at most 3 fields: kind[:arg][:xN].
  std::string fields[3];
  std::size_t nf = 0, start = 0;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ':') {
      if (nf >= 3) throw std::invalid_argument("failpoint: too many fields");
      fields[nf++] = spec.substr(start, i - start);
      start = i + 1;
    }
  }
  std::size_t next = 1;
  if (fields[0] == "delay") {
    if (nf < 2)
      throw std::invalid_argument("failpoint: delay needs :<ms>");
    char* endp = nullptr;
    e.delay_ms = std::strtod(fields[1].c_str(), &endp);
    if (endp == fields[1].c_str() || *endp != '\0' || e.delay_ms < 0.0)
      throw std::invalid_argument("failpoint: bad delay ms");
    e.action = Action::kDelay;
    next = 2;
  } else if (fields[0] == "error") {
    e.action = Action::kError;
  } else if (fields[0] == "short_write") {
    e.action = Action::kShortWrite;
  } else if (fields[0] == "off") {
    e.action = Action::kOff;
  } else {
    throw std::invalid_argument("failpoint: unknown action '" + fields[0] +
                                "'");
  }
  if (next < nf) {
    const std::string& f = fields[next];
    if (f.size() < 2 || f[0] != 'x')
      throw std::invalid_argument("failpoint: bad budget '" + f + "'");
    char* endp = nullptr;
    const unsigned long long n = std::strtoull(f.c_str() + 1, &endp, 10);
    if (endp == f.c_str() + 1 || *endp != '\0' || n == 0)
      throw std::invalid_argument("failpoint: bad budget '" + f + "'");
    e.budget = n;
  }
  return e;
}

// Arms AT_FAILPOINTS before main() runs. A malformed env spec aborts with
// a clear message: silently ignoring it would "pass" a fault-injection run
// that injected nothing.
const bool g_env_armed = [] {
  if (const char* env = std::getenv("AT_FAILPOINTS")) {
    set_many(env);
  }
  return true;
}();

}  // namespace

void set(const std::string& site, const std::string& spec) {
  if (site.empty()) throw std::invalid_argument("failpoint: empty site");
  Entry e = parse_spec(spec);
  Registry& r = registry();
  MutexLock lock(r.mutex);
  auto it = r.sites.find(site);
  const bool was_armed = it != r.sites.end();
  if (e.action == Action::kOff) {
    if (was_armed) {
      r.sites.erase(it);
      detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  if (was_armed) {
    e.hits = it->second.hits;
    it->second = e;
  } else {
    r.sites.emplace(site, e);
    detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t set_many(const std::string& multi_spec) {
  // Validate every entry before arming any, so a bad multi-spec arms
  // nothing instead of half of the list.
  std::vector<std::pair<std::string, std::string>> entries;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= multi_spec.size(); ++i) {
    if (i != multi_spec.size() && multi_spec[i] != ';') continue;
    const std::string part = multi_spec.substr(start, i - start);
    start = i + 1;
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("failpoint: expected site=action in '" +
                                  part + "'");
    entries.emplace_back(part.substr(0, eq), part.substr(eq + 1));
  }
  for (const auto& [site, spec] : entries) (void)parse_spec(spec);
  for (const auto& [site, spec] : entries) set(site, spec);
  return entries.size();
}

void clear(const std::string& site) { set(site, "off"); }

void clear_all() {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  detail::g_armed_count.fetch_sub(static_cast<int>(r.sites.size()),
                                  std::memory_order_relaxed);
  r.sites.clear();
}

std::uint64_t hits(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

Decision check(const char* site) {
  Decision d;
  {
    Registry& r = registry();
    MutexLock lock(r.mutex);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) return d;
    Entry& e = it->second;
    if (e.budget == 0) return d;  // exhausted; stays visible to hits()
    --e.budget;
    ++e.hits;
    d.action = e.action;
    d.delay_ms = e.delay_ms;
  }
  if (d.action == Action::kDelay && d.delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(d.delay_ms));
  }
  return d;
}

bool check_throw(const char* site) {
  const Decision d = check(site);
  if (d.action == Action::kError)
    throw FailpointError(std::string("failpoint fired: ") + site);
  return d.action == Action::kShortWrite;
}

}  // namespace at::common::failpoint
