#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace at::common {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double StreamingStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void PercentileTracker::merge(const PercentileTracker& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double PercentileTracker::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p <= 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p must be in (0, 100]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double n = static_cast<double>(samples_.size());
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  if (rank > samples_.size()) rank = samples_.size();
  return samples_[rank - 1];
}

double PercentileTracker::mean() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples_) acc += s;
  return acc / static_cast<double>(samples_.size());
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (q <= 0.0 || q >= 1.0)
    throw std::invalid_argument("P2Quantile: q must be in (0, 1)");
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  ++count_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) interpolation of the marker height.
      const double qi = heights_[i];
      const double np = positions_[i] + sign;
      const double parabolic =
          qi + sign / (positions_[i + 1] - positions_[i - 1]) *
                   ((positions_[i] - positions_[i - 1] + sign) *
                        (heights_[i + 1] - qi) /
                        (positions_[i + 1] - positions_[i]) +
                    (positions_[i + 1] - positions_[i] - sign) *
                        (qi - heights_[i - 1]) /
                        (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        // Fall back to linear interpolation toward the neighbor.
        const int j = sign > 0 ? i + 1 : i - 1;
        heights_[i] = qi + sign * (heights_[j] - qi) /
                               (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact nearest-rank on the few samples seen so far.
    std::vector<double> v(heights_, heights_ + count_);
    std::sort(v.begin(), v.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q_ * static_cast<double>(count_)));
    if (rank == 0) rank = 1;
    return v[rank - 1];
  }
  return heights_[2];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  counts_.resize(bins, 0);
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak ? counts_[i] * width / peak : 0;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace at::common
