#include "common/topology.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace at::common {

std::string Topology::describe() const {
  std::ostringstream os;
  os << num_nodes() << (num_nodes() == 1 ? " node" : " nodes");
  if (simulated) os << " (simulated)";
  os << ":";
  for (const auto& cpus : node_cpus) {
    os << " [";
    // Render as collapsed ranges, mirroring the cpulist input syntax.
    for (std::size_t i = 0; i < cpus.size();) {
      std::size_t j = i;
      while (j + 1 < cpus.size() && cpus[j + 1] == cpus[j] + 1) ++j;
      if (i > 0) os << ",";
      os << cpus[i];
      if (j > i) os << "-" << cpus[j];
      i = j + 1;
    }
    os << "]";
  }
  return os.str();
}

std::vector<int> schedulable_cpus() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &mask)) cpus.push_back(c);
    }
  }
#endif
  if (cpus.empty()) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < hw; ++c) cpus.push_back(static_cast<int>(c));
  }
  return cpus;
}

bool parse_cpulist(const std::string& spec, std::vector<int>* out) {
  std::vector<int> cpus;
  std::size_t i = 0;
  const auto read_int = [&](int* v) {
    if (i >= spec.size() || !std::isdigit(static_cast<unsigned char>(spec[i])))
      return false;
    long n = 0;
    while (i < spec.size() &&
           std::isdigit(static_cast<unsigned char>(spec[i]))) {
      n = n * 10 + (spec[i] - '0');
      if (n > 1 << 20) return false;  // no machine has a million CPUs
      ++i;
    }
    *v = static_cast<int>(n);
    return true;
  };
  while (i < spec.size()) {
    int lo = 0;
    if (!read_int(&lo)) return false;
    int hi = lo;
    if (i < spec.size() && spec[i] == '-') {
      ++i;
      if (!read_int(&hi) || hi < lo) return false;
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    if (i < spec.size()) {
      if (spec[i] != ',') return false;
      ++i;
      if (i == spec.size()) return false;  // trailing comma
    }
  }
  if (cpus.empty()) return false;
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  *out = std::move(cpus);
  return true;
}

Topology physical_topology() {
  Topology topo;
  const std::vector<int> allowed = schedulable_cpus();
#if defined(__linux__)
  for (int node = 0; node < 1 << 12; ++node) {
    std::ifstream is("/sys/devices/system/node/node" + std::to_string(node) +
                     "/cpulist");
    if (!is.good()) {
      // Node ids are not guaranteed dense, but a long gap means the end of
      // the hierarchy; 64 covers sparse ids on any real machine.
      if (node - static_cast<int>(topo.node_cpus.size()) > 64) break;
      continue;
    }
    std::string line;
    std::getline(is, line);
    std::vector<int> cpus;
    if (!parse_cpulist(line, &cpus)) continue;  // memory-only node: ""
    // Keep only CPUs the process may actually run on.
    std::vector<int> usable;
    for (int c : cpus) {
      if (std::binary_search(allowed.begin(), allowed.end(), c))
        usable.push_back(c);
    }
    if (!usable.empty()) topo.node_cpus.push_back(std::move(usable));
  }
#endif
  if (topo.node_cpus.empty()) {
    topo.node_cpus.push_back(allowed);
  }
  return topo;
}

Topology simulated_topology(std::size_t nodes, std::vector<int> cpus) {
  Topology topo;
  topo.simulated = true;
  if (nodes == 0 || cpus.empty()) return topo;  // invalid; caller checks
  topo.node_cpus.resize(nodes);
  if (cpus.size() >= nodes) {
    for (std::size_t i = 0; i < cpus.size(); ++i)
      topo.node_cpus[i % nodes].push_back(cpus[i]);
  } else {
    // Fewer CPUs than simulated nodes: reuse CPUs so every node stays
    // non-empty (the point is exercising multi-node code paths, not
    // exclusive placement).
    for (std::size_t n = 0; n < nodes; ++n)
      topo.node_cpus[n].push_back(cpus[n % cpus.size()]);
  }
  for (auto& node : topo.node_cpus) std::sort(node.begin(), node.end());
  return topo;
}

Topology simulated_topology(std::size_t nodes) {
  return simulated_topology(nodes, schedulable_cpus());
}

bool parse_topology(const char* spec, const std::vector<int>& schedulable,
                    Topology* out) {
  if (spec == nullptr || *spec == '\0' || schedulable.empty()) return false;
  std::string s(spec);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "auto") {
    *out = physical_topology();
    return true;
  }
  if (s == "flat" || s == "1") {
    Topology topo;
    topo.simulated = true;
    topo.node_cpus.push_back(schedulable);
    *out = std::move(topo);
    return true;
  }
  if (std::all_of(s.begin(), s.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      })) {
    const long n = std::strtol(s.c_str(), nullptr, 10);
    if (n < 1 || n > 1 << 10) return false;
    *out = simulated_topology(static_cast<std::size_t>(n), schedulable);
    return true;
  }
  // Explicit ';'-separated cpulists, one per node.
  Topology topo;
  topo.simulated = true;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t sep = s.find(';', start);
    const std::string part =
        s.substr(start, sep == std::string::npos ? sep : sep - start);
    std::vector<int> cpus;
    if (!parse_cpulist(part, &cpus)) return false;
    topo.node_cpus.push_back(std::move(cpus));
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  if (topo.node_cpus.empty()) return false;
  *out = std::move(topo);
  return true;
}

const Topology& active_topology() {
  static const Topology topo = [] {
    const std::vector<int> cpus = schedulable_cpus();
    if (const char* spec = std::getenv("AT_TOPOLOGY")) {
      Topology parsed;
      if (parse_topology(spec, cpus, &parsed)) return parsed;
      std::cerr << "warning: ignoring invalid AT_TOPOLOGY spec \"" << spec
                << "\"\n";
    }
    return physical_topology();
  }();
  return topo;
}

}  // namespace at::common
