// Topology-aware sharded execution (ROADMAP "NUMA-aware sharding").
//
// A ShardedExecutor owns one pinned worker group (ThreadPool) and one
// memory arena per topology node. Shards — service components, SVD entry
// partitions — are assigned a *home group* and all their work is dispatched
// to that group's pool, so a shard's hot state (CSR pools, factor working
// sets, accumulators) is touched only by threads running on its node:
// first-touch page placement then keeps the pages node-local and the
// interconnect out of the steady-state path. On a single-node machine the
// executor degrades to exactly one group over every schedulable CPU, which
// behaves like the one global ThreadPool it replaces.
//
// The per-node NodeArena is a bump allocator whose blocks are zero-touched
// at grab time by the allocating thread; allocations made from inside a
// group task (the intended pattern — e.g. the node-partitioned SVD's
// per-node factor working sets) are therefore first-touched on the node
// that will use them. Arena memory is recycled with reset(), never freed
// piecemeal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/topology.h"

namespace at::common {

/// Per-node bump allocator. Thread-safe; allocate from inside a task on
/// the owning node's group so new blocks are first-touched node-locally.
class NodeArena {
 public:
  explicit NodeArena(std::size_t block_bytes = std::size_t{1} << 20)
      : block_bytes_(block_bytes) {}

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// 64-byte-aligned storage (cache-line aligned, so per-node working sets
  /// never false-share across groups). Lives until reset()/destruction.
  void* allocate(std::size_t bytes);

  template <typename T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without destructors");
    return static_cast<T*>(allocate(n * sizeof(T)));
  }

  /// Recycles every block (capacity and page placement are retained, which
  /// is the point: the next epoch's working sets land on the same pages).
  void reset();

  /// LIFO scratch rollback: `release(mark())` returns the arena to its
  /// pre-mark fill, keeping blocks (and their page placement) for reuse.
  /// Valid only when every allocation made after mark() is dead — the
  /// node-scratch pattern of one algorithm's working sets at a time. The
  /// sharded SVD brackets its per-node factor working sets this way so
  /// repeated rebuilds on a long-lived executor cannot grow the arena.
  struct Checkpoint {
    std::vector<std::size_t> used;  // per-block fill at mark time
  };
  Checkpoint mark() const;
  void release(const Checkpoint& cp);

  std::size_t bytes_reserved() const;
  std::size_t bytes_used() const;

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t skip = 0;  // bytes to the 64-byte-aligned base
    std::size_t size = 0;  // usable bytes past the skip
    std::size_t used = 0;  // consumed bytes, counted from the aligned base
  };

  std::size_t block_bytes_;
  mutable Mutex mutex_;
  std::vector<Block> blocks_ AT_GUARDED_BY(mutex_);
};

class ShardedExecutor {
 public:
  /// One pinned worker group + arena per node of `topo` (defaults to the
  /// AT_TOPOLOGY-resolved machine layout). Each group spawns one worker
  /// per node CPU, pinned to it.
  explicit ShardedExecutor(const Topology& topo = active_topology());

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  const Topology& topology() const { return topo_; }
  std::size_t num_groups() const { return groups_.size(); }
  std::size_t group_size(std::size_t g) const {
    return groups_[g].pool->size();
  }
  std::size_t total_workers() const;

  ThreadPool& group(std::size_t g) { return *groups_[g].pool; }
  NodeArena& arena(std::size_t g) { return *groups_[g].arena; }

  /// Home group of a shard id: round-robin, so any contiguous shard range
  /// spreads evenly across nodes.
  std::size_t home_group(std::size_t shard) const {
    return shard % groups_.size();
  }

  /// Group the calling thread belongs to, or kNoGroup off the executor's
  /// workers. Lets shard code assert (and tests prove) node-local driving.
  static constexpr std::size_t kNoGroup = ~std::size_t{0};
  static std::size_t current_group();

  /// Runs fn(shard) for shard in [0, n), each dispatched to its home
  /// group; blocks until all complete (first exception rethrown after all
  /// finish, mirroring ThreadPool::parallel_for). One task per shard —
  /// right for heavy shard work (construction, updates, SVD partitions).
  void for_each_shard(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

  /// Same contract, but dispatches ONE task per group which runs (or fans
  /// out on the group's own pool) every shard homed there. O(groups)
  /// dispatch overhead instead of O(n) — right for per-query fan-out,
  /// where task bookkeeping would otherwise rival the scan itself; on a
  /// one-group machine it degrades to a single task over all shards,
  /// matching the plain pool's chunking.
  void for_each_shard_grouped(std::size_t n,
                              const std::function<void(std::size_t)>& fn);

  /// Runs fn(g) once per group, on that group; blocks. Used for per-node
  /// merge/setup phases.
  void for_each_group(const std::function<void(std::size_t)>& fn);

  /// Enqueues fn on group g's pool.
  template <typename F>
  std::future<void> submit(std::size_t g, F&& fn) {
    return groups_[g].pool->submit(std::forward<F>(fn));
  }

 private:
  struct Group {
    // Destruction order matters: members destroy in reverse declaration,
    // so the pool (declared last) joins its workers BEFORE the arena is
    // freed — a fire-and-forget task touching the arena can still finish.
    std::unique_ptr<NodeArena> arena;
    std::unique_ptr<ThreadPool> pool;
  };

  static void wait_all(std::vector<std::future<void>>& futs);

  Topology topo_;
  std::vector<Group> groups_;
};

}  // namespace at::common
