// RCU-style epoch slot: the component-ownership primitive behind
// zero-downtime online retraining (ISSUE 8 tentpole).
//
// One EpochSlot<T> owns the *published* immutable state of a component.
// Readers pin the current epoch with acquire() — an O(1) shared_ptr copy
// under a mutex whose critical section never grows with data size — and
// keep scanning that snapshot for as long as they hold the pin, entirely
// unaffected by concurrent retraining. Writers build the next epoch
// outside any lock (shadow copy on the home group), then publish() it:
// an O(1) pointer swap. The old epoch is not freed at the swap; it is
// *retired* — destroyed by whichever thread drops the last pin, observable
// through stats().retired. Readers therefore never block on retraining
// and retraining never blocks on readers; the only serialization is the
// pointer swap itself.
//
// Lock discipline (proven by the clang -Wthread-safety -Werror gate, no
// AT_NO_THREAD_SAFETY_ANALYSIS escapes): the published pointer and the
// version counters are AT_GUARDED_BY(mutex_); every access takes the
// mutex. The reference count inside std::shared_ptr does the actual RCU
// grace-period accounting, and the retire counter is a std::atomic bumped
// from the deleter — neither needs the mutex, and the analysis sees both
// as what they are (atomics), not as escapes.
//
// Failpoints: "epoch.publish" fires before the swap (an injected error
// aborts the publish and leaves the previous epoch live); "epoch.retire"
// fires inside the deleter via the non-throwing failpoint::check — a
// deleter runs in whatever thread drops the last pin, possibly during
// stack unwinding, so it must never throw.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/failpoint.h"
#include "common/thread_annotations.h"

namespace at::common {

/// Counters one slot exposes for monitoring and the swap stress tests.
struct EpochStats {
  /// Version of the currently published epoch (increments per publish;
  /// unsigned wrap-around is benign — freshness checks compare equality).
  std::uint64_t version = 0;
  /// publish() calls that succeeded (the swap count).
  std::uint64_t published = 0;
  /// Old epochs fully drained and destroyed. When no pins are in flight,
  /// retired == published - 1 (the current epoch is still live).
  std::uint64_t retired = 0;
  /// Epochs still alive: the published one plus any retired-but-pinned.
  std::uint64_t live = 0;
};

/// Double-buffered epoch holder for an immutable component state T.
/// Non-movable (it is the stable anchor readers synchronize through);
/// embed it behind a unique_ptr when the owner must stay movable.
template <typename T>
class EpochSlot {
 public:
  EpochSlot()
      : retired_(std::make_shared<std::atomic<std::uint64_t>>(0)) {}

  EpochSlot(const EpochSlot&) = delete;
  EpochSlot& operator=(const EpochSlot&) = delete;

  /// Pins the current epoch. The returned pointer stays valid — and the
  /// epoch's memory alive — for as long as the caller holds it, across
  /// any number of concurrent publishes. Null only before the first
  /// publish.
  std::shared_ptr<const T> acquire() const {
    MutexLock lock(mutex_);
    return current_;
  }

  std::uint64_t version() const {
    MutexLock lock(mutex_);
    return version_;
  }

  /// Pins the current epoch together with its version in one critical
  /// section. Checkpoint writers need the pair to be mutually consistent:
  /// acquire() followed by version() could straddle a concurrent publish
  /// and stamp old bytes with a new version.
  std::pair<std::shared_ptr<const T>, std::uint64_t> acquire_versioned()
      const {
    MutexLock lock(mutex_);
    return {current_, version_};
  }

  /// Publishes `next` as the new current epoch: one pointer swap under
  /// the mutex. The outgoing epoch is released *outside* the lock, so
  /// when this writer happens to hold its last reference, the retire
  /// (destruction + counter bump) never runs inside the critical section
  /// readers acquire() through.
  void publish(std::unique_ptr<const T> next) {
    if (next == nullptr)
      throw std::invalid_argument("EpochSlot::publish: null epoch");
    AT_FAILPOINT("epoch.publish");
    std::shared_ptr<const T> incoming = wrap_with_retire(std::move(next));
    std::shared_ptr<const T> outgoing;
    {
      MutexLock lock(mutex_);
      outgoing = std::move(current_);
      current_ = std::move(incoming);
      ++version_;
      ++published_;
    }
    // `outgoing` drops here; readers still pinning the old epoch keep it
    // alive and the last of them performs the retire.
  }

  EpochStats stats() const {
    EpochStats s;
    {
      MutexLock lock(mutex_);
      s.version = version_;
      s.published = published_;
      s.live = published_;
    }
    s.retired = retired_->load(std::memory_order_acquire);
    s.live -= s.retired;
    return s;
  }

  /// Rebases the version counter without publishing. The warm-standby
  /// replay path uses this to align a freshly loaded snapshot's slot with
  /// the version the primary stamped into the checkpoint filename, so
  /// every subsequent publish advances in lockstep with the primary's
  /// delta stream (from_version/to_version match exactly, and the promoted
  /// replica reports the same effective epoch — no epoch gap).
  void rebase_version(std::uint64_t v) {
    MutexLock lock(mutex_);
    version_ = v;
  }

  /// Test hook: forces the version counter (e.g. to UINT64_MAX - 1) so
  /// the wrap-around behavior of epoch-equality freshness checks can be
  /// exercised without 2^64 publishes.
  void set_version_for_test(std::uint64_t v) { rebase_version(v); }

 private:
  /// Wraps the epoch with a deleter that counts its retirement. The
  /// counter is held through a shared_ptr so a pin that outlives this
  /// slot (shutdown mid-swap) still retires into valid memory.
  std::shared_ptr<const T> wrap_with_retire(std::unique_ptr<const T> next) {
    std::shared_ptr<std::atomic<std::uint64_t>> counter = retired_;
    const T* raw = next.release();
    return std::shared_ptr<const T>(raw, [counter](const T* p) {
      delete p;
      // Non-throwing check(): a deleter may run during unwinding, where a
      // throw would terminate. An armed error action is simply recorded
      // by the failpoint hit counter; delays still apply.
      (void)failpoint::check("epoch.retire");
      counter->fetch_add(1, std::memory_order_acq_rel);
    });
  }

  mutable Mutex mutex_;
  std::shared_ptr<const T> current_ AT_GUARDED_BY(mutex_);
  std::uint64_t version_ AT_GUARDED_BY(mutex_) = 0;
  std::uint64_t published_ AT_GUARDED_BY(mutex_) = 0;
  /// Outlives the slot via the deleters that capture it.
  std::shared_ptr<std::atomic<std::uint64_t>> retired_;
};

}  // namespace at::common
