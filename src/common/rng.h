// Deterministic, fast pseudo-random number generation for simulation and
// workload synthesis.
//
// All randomness in the repository flows through at::common::Rng so that
// every experiment is reproducible from a single 64-bit seed. The generator
// is xoshiro256** (Blackman & Vigna), seeded via splitmix64 so that nearby
// seeds produce uncorrelated streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace at::common {

/// splitmix64 step; used for seeding and for cheap hash-style mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcdULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high bits -> double mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded integer method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (cached second value not kept; the
  /// simulator draws normals rarely enough that simplicity wins).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Pareto with scale xm and shape alpha (heavy-tailed job sizes).
  double pareto(double xm, double alpha) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Derives an independent child stream; stable for a given (seed, tag).
  Rng fork(std::uint64_t tag) const {
    std::uint64_t mix = state_[0] ^ rotl(state_[3], 13) ^
                        (tag * 0x9e3779b97f4a7c15ULL) ^ (tag << 1 | 1);
    return Rng(mix);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace at::common
