// Zipf-distributed integer sampling.
//
// Used to synthesize realistic skew: item popularity in the rating-matrix
// generator, term frequency in the corpus generator, and query term choice
// in the query-log generator all follow (truncated) Zipf laws.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace at::common {

/// Samples k in [0, n) with P(k) proportional to 1 / (k+1)^s.
///
/// Implementation: precomputed cumulative distribution + binary search.
/// Construction is O(n); sampling is O(log n). n up to a few million is fine
/// for workload generation (construction happens once per generator).
class ZipfDistribution {
 public:
  /// n: support size (must be >= 1); s: skew exponent (s >= 0; s == 0 is
  /// the uniform distribution).
  ZipfDistribution(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const { return sample(rng); }
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k.
  double pmf(std::size_t k) const;

  std::size_t support_size() const { return cdf_.size(); }
  double skew() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[k] = P(X <= k); cdf_.back() == 1.
};

}  // namespace at::common
