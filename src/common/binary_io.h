// Minimal binary (de)serialization primitives used to persist offline
// artifacts: synopses, index files, SVD models and R-trees. Fixed-width
// little-endian integers and IEEE doubles; every reader call throws on
// truncated input so corrupt files fail loudly instead of producing
// silently wrong synopses.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace at::common {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  template <typename T>
  void vec_u32(const std::vector<T>& v) {
    u64(v.size());
    for (const auto& x : v) u32(static_cast<std::uint32_t>(x));
  }
  void vec_f64(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }

  /// Length-prefixed opaque byte blob (codec payloads).
  void blob(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    if (!v.empty()) raw(v.data(), v.size());
  }

  /// Artifact header: 4-byte magic + format version.
  void magic(const char tag[4], std::uint32_t version) {
    raw(tag, 4);
    u32(version);
  }

 private:
  void raw(const void* p, std::size_t n) {
    os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    if (!os_) throw std::runtime_error("BinaryWriter: write failed");
  }
  std::ostream& os_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(is) {}

  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const auto n = u64();
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }

  std::vector<std::uint32_t> vec_u32() {
    const auto n = u64();
    std::vector<std::uint32_t> v(n);
    for (auto& x : v) x = u32();
    return v;
  }
  std::vector<double> vec_f64() {
    const auto n = u64();
    std::vector<double> v(n);
    for (auto& x : v) x = f64();
    return v;
  }

  std::vector<std::uint8_t> blob() {
    const auto n = u64();
    std::vector<std::uint8_t> v(n);
    if (n > 0) raw(v.data(), n);
    return v;
  }

  /// Verifies the artifact header; throws on mismatch.
  std::uint32_t magic(const char tag[4]) {
    char got[4];
    raw(got, 4);
    if (std::memcmp(got, tag, 4) != 0)
      throw std::runtime_error(std::string("BinaryReader: bad magic, want ") +
                               std::string(tag, 4));
    return u32();
  }

 private:
  void raw(void* p, std::size_t n) {
    is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(is_.gcount()) != n)
      throw std::runtime_error("BinaryReader: truncated input");
  }
  std::istream& is_;
};

}  // namespace at::common
