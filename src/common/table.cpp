#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace at::common {

void TableWriter::set_columns(std::vector<std::string> names) {
  if (!rows_.empty())
    throw std::logic_error("TableWriter: set_columns after add_row");
  columns_ = std::move(names);
}

void TableWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size())
    throw std::invalid_argument("TableWriter: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TableWriter::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TableWriter::fmt_int(long long v) { return std::to_string(v); }

std::string TableWriter::to_ascii() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto hline = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = hline() + render_row(columns_) + hline();
  for (const auto& row : rows_) out += render_row(row);
  out += hline();
  return out;
}

std::string TableWriter::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 < row.size() ? "," : "\n");
  }
  return os.str();
}

void TableWriter::print(std::ostream& os) const {
  os << "== " << title_ << " ==\n" << to_ascii();
}

}  // namespace at::common
