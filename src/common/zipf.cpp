#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace at::common {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  if (s < 0.0) throw std::invalid_argument("ZipfDistribution: s must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  const double total = acc;
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding shortfall
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  if (k == 0) return cdf_[0];
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace at::common
