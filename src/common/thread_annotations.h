// Clang Thread Safety Analysis annotations and the annotated lock types
// every mutex-protected structure in this codebase uses (ISSUE 7
// tentpole). Under Clang with -Wthread-safety the compiler *proves* lock
// discipline at build time: reading or writing an AT_GUARDED_BY(mu) field
// without holding `mu`, or calling an AT_REQUIRES(mu) function unlocked,
// is a compile error in the clang-analysis CI job (-Werror). GCC and
// other compilers see empty macros and identical runtime behavior.
//
// How to annotate a new lock:
//
//   class Widget {
//     void refresh();                       // takes the lock itself
//     void refresh_locked() AT_REQUIRES(mutex_);  // caller holds the lock
//    private:
//     common::Mutex mutex_;
//     std::deque<Item> queue_ AT_GUARDED_BY(mutex_);
//   };
//
//   void Widget::refresh() {
//     common::MutexLock lock(mutex_);
//     queue_.clear();                        // OK: lock is held
//   }
//
// Condition-variable waits re-check their predicate in an explicit loop
// while holding the annotated mutex (lambda predicates are opaque to the
// analysis, so the wait-with-predicate overload does not exist here):
//
//   common::MutexLock lock(mutex_);
//   while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
//
// The escape hatch AT_NO_THREAD_SAFETY_ANALYSIS is for functions whose
// locking is deliberately outside what the analysis can follow; every use
// needs a comment saying why.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define AT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define AT_CAPABILITY(x) AT_THREAD_ANNOTATION(capability(x))
#define AT_SCOPED_CAPABILITY AT_THREAD_ANNOTATION(scoped_lockable)
#define AT_GUARDED_BY(x) AT_THREAD_ANNOTATION(guarded_by(x))
#define AT_PT_GUARDED_BY(x) AT_THREAD_ANNOTATION(pt_guarded_by(x))
#define AT_ACQUIRED_BEFORE(...) \
  AT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define AT_ACQUIRED_AFTER(...) \
  AT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define AT_REQUIRES(...) \
  AT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define AT_REQUIRES_SHARED(...) \
  AT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define AT_ACQUIRE(...) \
  AT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define AT_ACQUIRE_SHARED(...) \
  AT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define AT_RELEASE(...) \
  AT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define AT_RELEASE_SHARED(...) \
  AT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define AT_TRY_ACQUIRE(...) \
  AT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define AT_EXCLUDES(...) AT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define AT_ASSERT_CAPABILITY(x) AT_THREAD_ANNOTATION(assert_capability(x))
#define AT_RETURN_CAPABILITY(x) AT_THREAD_ANNOTATION(lock_returned(x))
#define AT_NO_THREAD_SAFETY_ANALYSIS \
  AT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace at::common {

/// Annotated exclusive mutex. A drop-in std::mutex with the capability
/// attribute the analysis tracks; `native()` exposes the wrapped mutex for
/// CondVar's adopt-lock dance only.
class AT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AT_ACQUIRE() { mu_.lock(); }
  void unlock() AT_RELEASE() { mu_.unlock(); }
  bool try_lock() AT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex (the std::lock_guard shape, annotated).
class AT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. wait() atomically releases the
/// mutex, blocks, and reacquires before returning — callers hold the lock
/// across the call (which is what AT_REQUIRES asserts) and re-check their
/// predicate in an explicit loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) AT_REQUIRES(mu) {
    // Adopt the already-held native mutex so the plain (fast)
    // std::condition_variable can be used; release() hands ownership back
    // without unlocking, so the Mutex is held again on return, exactly as
    // the annotation promises.
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed wait with the same adopt-lock discipline as wait(): the Mutex
  /// is held again on return whether the wait was notified or timed out.
  /// Returns true when notified before the timeout. This is how periodic
  /// background loops (e.g. the standby delta tailer) sleep between
  /// iterations while staying immediately interruptible — a stop flag
  /// checked in the caller's predicate loop plus notify, never a bare
  /// sleep.
  bool wait_for(Mutex& mu, double timeout_ms) AT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    const auto status = cv_.wait_for(
        native, std::chrono::duration<double, std::milli>(timeout_ms));
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Annotated reader/writer mutex over std::shared_mutex.
class AT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() AT_ACQUIRE() { mu_.lock(); }
  void unlock() AT_RELEASE() { mu_.unlock(); }
  void lock_shared() AT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() AT_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over SharedMutex (writers).
class AT_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) AT_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() AT_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over SharedMutex (readers).
class AT_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) AT_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() AT_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace at::common
