#include "common/sharded_executor.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/failpoint.h"

namespace at::common {

namespace {
/// Home-group label of executor worker threads (kNoGroup elsewhere). A
/// plain thread_local: each worker sets its own slot once at start-up.
thread_local std::size_t t_current_group = ShardedExecutor::kNoGroup;
}  // namespace

void* NodeArena::allocate(std::size_t bytes) {
  constexpr std::size_t kAlign = 64;
  const std::size_t need = (bytes + kAlign - 1) / kAlign * kAlign;
  MutexLock lock(mutex_);
  for (auto& b : blocks_) {
    if (b.size - b.used >= need) {
      // `used` counts from the aligned base, so every allocation — also
      // the first after a reset() — stays 64-byte aligned.
      void* p = b.data.get() + b.skip + b.used;
      b.used += need;
      return p;
    }
  }
  Block b;
  b.size = std::max(block_bytes_, need);
  // Over-allocate by an alignment quantum so the base can be rounded up.
  b.data = std::make_unique<std::uint8_t[]>(b.size + kAlign);
  const std::size_t base =
      reinterpret_cast<std::uintptr_t>(b.data.get()) % kAlign;
  b.skip = base == 0 ? 0 : kAlign - base;
  // First touch happens HERE, on the allocating thread: zero-filling the
  // fresh block commits its pages while running on the owning node.
  std::memset(b.data.get(), 0, b.size + kAlign);
  b.used = need;
  void* p = b.data.get() + b.skip;
  blocks_.push_back(std::move(b));
  return p;
}

void NodeArena::reset() {
  MutexLock lock(mutex_);
  for (auto& b : blocks_) b.used = 0;
}

NodeArena::Checkpoint NodeArena::mark() const {
  MutexLock lock(mutex_);
  Checkpoint cp;
  cp.used.reserve(blocks_.size());
  for (const auto& b : blocks_) cp.used.push_back(b.used);
  return cp;
}

void NodeArena::release(const Checkpoint& cp) {
  MutexLock lock(mutex_);
  // Blocks grabbed after the mark roll back to empty but stay owned, so
  // their capacity (and first-touch page placement) is reused.
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    blocks_[i].used = i < cp.used.size() ? cp.used[i] : 0;
  }
}

std::size_t NodeArena::bytes_reserved() const {
  MutexLock lock(mutex_);
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.size;
  return total;
}

std::size_t NodeArena::bytes_used() const {
  MutexLock lock(mutex_);
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.used;
  return total;
}

ShardedExecutor::ShardedExecutor(const Topology& topo) : topo_(topo) {
  if (topo_.node_cpus.empty())
    throw std::invalid_argument("ShardedExecutor: empty topology");
  for (const auto& cpus : topo_.node_cpus) {
    if (cpus.empty())
      throw std::invalid_argument("ShardedExecutor: empty topology node");
  }
  groups_.reserve(topo_.num_nodes());
  for (std::size_t g = 0; g < topo_.num_nodes(); ++g) {
    Group grp;
    grp.pool = std::make_unique<ThreadPool>(
        topo_.node_cpus[g],
        [g](std::size_t /*worker*/) { t_current_group = g; });
    grp.arena = std::make_unique<NodeArena>();
    groups_.push_back(std::move(grp));
  }
}

std::size_t ShardedExecutor::total_workers() const {
  std::size_t n = 0;
  for (const auto& g : groups_) n += g.pool->size();
  return n;
}

std::size_t ShardedExecutor::current_group() { return t_current_group; }

void ShardedExecutor::wait_all(std::vector<std::future<void>>& futs) {
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

void ShardedExecutor::for_each_shard(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Callers drive this from OFF the executor (services, benches, the
  // sharded SVD's coordinator thread). A group worker calling it and
  // targeting its own fully-busy group would wait on work queued behind
  // itself; nested fan-out belongs on the group's own pool, whose
  // parallel_for helps while waiting.
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t shard = 0; shard < n; ++shard) {
    futs.push_back(
        groups_[home_group(shard)].pool->submit([shard, &fn] { fn(shard); }));
  }
  wait_all(futs);
}

void ShardedExecutor::for_each_shard_grouped(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Fault-injection site: a delay here inflates every grouped fan-out
  // (the serving front end's query path), an error makes dispatch itself
  // fail — both must surface as degraded-tier answers, never crashes.
  AT_FAILPOINT("executor.dispatch");
  const std::size_t G = groups_.size();
  std::vector<std::future<void>> futs;
  futs.reserve(std::min(G, n));
  for (std::size_t g = 0; g < G && g < n; ++g) {
    futs.push_back(groups_[g].pool->submit([this, g, n, G, &fn] {
      // Shards homed on g: g, g + G, g + 2G, ...
      const std::size_t count = (n - g + G - 1) / G;
      if (count > 1 && groups_[g].pool->size() > 1) {
        groups_[g].pool->parallel_for(
            count, [&](std::size_t i) { fn(g + i * G); });
      } else {
        for (std::size_t s = g; s < n; s += G) fn(s);
      }
    }));
  }
  wait_all(futs);
}

void ShardedExecutor::for_each_group(
    const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    futs.push_back(groups_[g].pool->submit([g, &fn] { fn(g); }));
  }
  wait_all(futs);
}

}  // namespace at::common
