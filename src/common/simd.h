// Runtime-dispatched SIMD kernel layer (ROADMAP "SIMD dot kernels" /
// "SIMD block decode").
//
// One set of flat-array kernels backs the numeric hot loops — linalg
// dot/norm/distance, the SVD residual-retire gather, the fused
// decode-and-score scan over compressed postings, and the doc-norm pass in
// index construction — with three implementation tiers selected once at
// startup:
//
//   tier      requires        notes
//   scalar    nothing         portable reference, always available
//   sse42     SSE4.2 (x86)    128-bit doubles + pshufb group-varint decode
//   avx2      AVX2 (x86)      256-bit doubles + gathers (no FMA: kernels
//                             must round exactly like the scalar tier)
//
// Every tier computes BIT-IDENTICAL results: element-wise kernels perform
// the same IEEE operations in the same per-element order, and the one
// reduction (dot) uses a fixed 4-lane decomposition in *all* tiers — four
// stride-4 partial sums combined as (s0+s2)+(s1+s3), then the scalar tail
// in sequence — so scalar, SSE (2x2 lanes) and AVX2 (4 lanes) round
// identically. FMA is deliberately never used. The parity suites
// (tests/simd_test.cpp) pin tf-idf/BM25 top-k and deterministic-SVD
// factors across tiers bit for bit.
//
// Selection: the highest tier the CPU supports, overridable with the
// AT_SIMD environment variable ("scalar", "sse42", "avx2", "auto") and
// from tests via set_tier(); requests above hardware support clamp down.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace at::simd {

enum class Tier : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// Highest tier the running CPU supports (compile-target permitting).
Tier max_supported_tier();

/// Tier whose kernels are currently dispatched.
Tier active_tier();

/// Forces a tier (clamped to max_supported_tier()); returns the tier that
/// was actually applied. Used by the parity tests and the scalar-vs-SIMD
/// benches; thread-safe but not meant to race with in-flight kernels.
Tier set_tier(Tier t);

const char* tier_name(Tier t);

/// Parses an AT_SIMD-style spec ("scalar", "sse42"/"sse4.2", "avx2",
/// "auto"; case-insensitive). Returns false on an unknown spec. "auto"
/// parses to max_supported_tier().
bool parse_tier(const char* spec, Tier* out);

/// True when the named tier's kernels were actually compiled with the
/// matching ISA (the build falls back to scalar code for tiers the
/// compiler/arch cannot target — results stay identical, speed does not).
bool tier_compiled(Tier t);

namespace detail {

/// Per-tier kernel table. Consumers go through the free functions below.
struct Kernels {
  double (*dot)(const double* a, const double* b, std::size_t n);
  double (*distance_sq)(const double* a, const double* b, std::size_t n);
  /// resid[i] -= scale * factors[cols[i] * stride + dim] for i in [0, n).
  void (*retire_axpy)(double* resid, const std::uint32_t* cols,
                      std::size_t n, const double* factors,
                      std::size_t stride, std::size_t dim, double scale);
  /// out[i] = (sqrt_tf[i] * w) * len_norm[docs[i]].
  void (*score_tfidf)(double* out, const double* sqrt_tf,
                      const std::uint32_t* docs, const double* len_norm,
                      double w, std::size_t n);
  /// out[i] = (w * (tf[i] * k1p1)) / (tf[i] + bm25_norm[docs[i]]).
  void (*score_bm25)(double* out, const double* tf,
                     const std::uint32_t* docs, const double* bm25_norm,
                     double w, double k1p1, std::size_t n);
  /// out[i] = in[i] > 0 ? 1.0 / sqrt(in[i]) : 0.0.
  void (*inv_sqrt_or_zero)(double* out, const double* in, std::size_t n);
  /// out[i] = k1 * (1.0 - b + b * dl[i] / avg), scalar operation order.
  void (*bm25_doc_norms)(double* out, const double* dl, double k1, double b,
                         double avg, std::size_t n);
  /// out[i] = (lut256[codes[i]] * w) * len_norm[docs[i]] — fuses the LUT
  /// expansion into the tf-idf score for exception-free blocks, skipping
  /// the tf staging round-trip. Bit-identical to expand_lut_u8 followed by
  /// score_tfidf.
  void (*score_tfidf_codes)(double* out, const std::uint8_t* codes,
                            const double* lut256, const std::uint32_t* docs,
                            const double* len_norm, double w, std::size_t n);
  /// out[i] = (w * (double(codes[i]) * k1p1)) /
  ///          (double(codes[i]) + bm25_norm[docs[i]]) — the BM25 analogue.
  void (*score_bm25_codes)(double* out, const std::uint8_t* codes,
                           const std::uint32_t* docs,
                           const double* bm25_norm, double w, double k1p1,
                           std::size_t n);
  /// out[i] = lut256[codes[i]] (e.g. the codec sqrt LUT).
  void (*expand_lut_u8)(double* out, const std::uint8_t* codes,
                        const double* lut256, std::size_t n);
  /// out[i] = double(codes[i]).
  void (*u8_to_f64)(double* out, const std::uint8_t* codes, std::size_t n);
  /// Decodes ceil(n/4) groups of group-varint deltas from p, writing
  /// prefix-summed ids (ids[i] = *prev + d0 + ... + di). Pads of the tail
  /// group are added into the running prev (encoders emit zero pads).
  /// Returns the new read cursor and updates *prev.
  ///
  /// CONTRACT: `ids` must have room for n rounded up to a multiple of 4,
  /// and at least 16 bytes beyond each group's data must be readable (the
  /// SSE tier loads full 16-byte windows). CompressedPostings pads its
  /// pool accordingly; hand-built buffers in tests must do the same.
  const std::uint8_t* (*decode_group_deltas)(const std::uint8_t* p,
                                             std::uint32_t* ids,
                                             std::uint32_t* prev,
                                             std::size_t n);
  /// Decodes n raw u8 deltas from p into prefix-summed ids (same id/prev
  /// semantics and the same ids/overread contract as decode_group_deltas;
  /// consumes exactly n bytes).
  const std::uint8_t* (*decode_u8_deltas)(const std::uint8_t* p,
                                          std::uint32_t* ids,
                                          std::uint32_t* prev, std::size_t n);
  /// Running CRC32C (Castagnoli, reflected). Callers seed with ~0u and
  /// finalize with ~crc; the SSE4.2 tier uses the hardware crc32
  /// instruction, which computes the exact same polynomial as the scalar
  /// table walk.
  std::uint32_t (*crc32c_update)(std::uint32_t crc, const std::uint8_t* p,
                                 std::size_t n);
  /// Byte-plane transpose (Blosc-style "shuffle") of n 8-byte elements:
  /// out[plane * n + i] = byte `plane` of in[i]. `out` holds 8*n bytes.
  void (*shuffle_u64)(std::uint8_t* out, const std::uint64_t* in,
                      std::size_t n);
  /// Inverse transpose: out[i] reassembled from the 8 planes of `in`.
  void (*unshuffle_u64)(std::uint64_t* out, const std::uint8_t* in,
                        std::size_t n);
};

extern std::atomic<const Kernels*> g_active;
const Kernels* init_from_env();

inline const Kernels& active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) k = init_from_env();
  return *k;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatched kernel entry points
// ---------------------------------------------------------------------------

inline double dot(const double* a, const double* b, std::size_t n) {
  return detail::active().dot(a, b, n);
}

inline double distance_sq(const double* a, const double* b, std::size_t n) {
  return detail::active().distance_sq(a, b, n);
}

inline void retire_axpy(double* resid, const std::uint32_t* cols,
                        std::size_t n, const double* factors,
                        std::size_t stride, std::size_t dim, double scale) {
  detail::active().retire_axpy(resid, cols, n, factors, stride, dim, scale);
}

inline void score_tfidf(double* out, const double* sqrt_tf,
                        const std::uint32_t* docs, const double* len_norm,
                        double w, std::size_t n) {
  detail::active().score_tfidf(out, sqrt_tf, docs, len_norm, w, n);
}

inline void score_bm25(double* out, const double* tf,
                       const std::uint32_t* docs, const double* bm25_norm,
                       double w, double k1p1, std::size_t n) {
  detail::active().score_bm25(out, tf, docs, bm25_norm, w, k1p1, n);
}

inline void inv_sqrt_or_zero(double* out, const double* in, std::size_t n) {
  detail::active().inv_sqrt_or_zero(out, in, n);
}

inline void bm25_doc_norms(double* out, const double* dl, double k1, double b,
                           double avg, std::size_t n) {
  detail::active().bm25_doc_norms(out, dl, k1, b, avg, n);
}

inline void score_tfidf_codes(double* out, const std::uint8_t* codes,
                              const double* lut256,
                              const std::uint32_t* docs,
                              const double* len_norm, double w,
                              std::size_t n) {
  detail::active().score_tfidf_codes(out, codes, lut256, docs, len_norm, w,
                                     n);
}

inline void score_bm25_codes(double* out, const std::uint8_t* codes,
                             const std::uint32_t* docs,
                             const double* bm25_norm, double w, double k1p1,
                             std::size_t n) {
  detail::active().score_bm25_codes(out, codes, docs, bm25_norm, w, k1p1, n);
}

inline void expand_lut_u8(double* out, const std::uint8_t* codes,
                          const double* lut256, std::size_t n) {
  detail::active().expand_lut_u8(out, codes, lut256, n);
}

inline void u8_to_f64(double* out, const std::uint8_t* codes, std::size_t n) {
  detail::active().u8_to_f64(out, codes, n);
}

inline const std::uint8_t* decode_group_deltas(const std::uint8_t* p,
                                               std::uint32_t* ids,
                                               std::uint32_t* prev,
                                               std::size_t n) {
  return detail::active().decode_group_deltas(p, ids, prev, n);
}

inline const std::uint8_t* decode_u8_deltas(const std::uint8_t* p,
                                            std::uint32_t* ids,
                                            std::uint32_t* prev,
                                            std::size_t n) {
  return detail::active().decode_u8_deltas(p, ids, prev, n);
}

inline std::uint32_t crc32c_update(std::uint32_t crc, const std::uint8_t* p,
                                   std::size_t n) {
  return detail::active().crc32c_update(crc, p, n);
}

inline void shuffle_u64(std::uint8_t* out, const std::uint64_t* in,
                        std::size_t n) {
  detail::active().shuffle_u64(out, in, n);
}

inline void unshuffle_u64(std::uint64_t* out, const std::uint8_t* in,
                          std::size_t n) {
  detail::active().unshuffle_u64(out, in, n);
}

/// Slack the group-varint SIMD decoder may read past the last encoded
/// byte; byte pools that feed decode_group_deltas must keep this many
/// readable (zero) bytes after the payload.
inline constexpr std::size_t kDecodePadBytes = 16;

}  // namespace at::simd
