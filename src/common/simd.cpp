// SIMD dispatch core: scalar reference kernels, cpuid tier detection and
// the AT_SIMD override. The scalar kernels double as the portable fallback
// and as the bit-exactness reference the ISA tiers are tested against.
#include "common/simd_internal.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace at::simd {
namespace detail {

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------

// Canonical reduction order shared by every tier: four stride-4 partial
// sums over the vectorizable prefix, combined as (s0+s2)+(s1+s3) — exactly
// how a 256-bit accumulator folds its lanes (extract high 128, add, then
// low+high) — followed by the tail elements in sequence.
double scalar_dot(const double* a, const double* b, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (std::size_t i = 0; i < n4; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double acc = (s0 + s2) + (s1 + s3);
  for (std::size_t i = n4; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double scalar_distance_sq(const double* a, const double* b, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (std::size_t i = 0; i < n4; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double acc = (s0 + s2) + (s1 + s3);
  for (std::size_t i = n4; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void scalar_retire_axpy(double* resid, const std::uint32_t* cols,
                        std::size_t n, const double* factors,
                        std::size_t stride, std::size_t dim, double scale) {
  for (std::size_t i = 0; i < n; ++i) {
    resid[i] -= scale * factors[cols[i] * stride + dim];
  }
}

void scalar_score_tfidf(double* out, const double* sqrt_tf,
                        const std::uint32_t* docs, const double* len_norm,
                        double w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (sqrt_tf[i] * w) * len_norm[docs[i]];
  }
}

void scalar_score_bm25(double* out, const double* tf,
                       const std::uint32_t* docs, const double* bm25_norm,
                       double w, double k1p1, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (w * (tf[i] * k1p1)) / (tf[i] + bm25_norm[docs[i]]);
  }
}

void scalar_inv_sqrt_or_zero(double* out, const double* in, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = in[i] > 0.0 ? 1.0 / std::sqrt(in[i]) : 0.0;
  }
}

void scalar_bm25_doc_norms(double* out, const double* dl, double k1, double b,
                           double avg, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = k1 * (1.0 - b + b * dl[i] / avg);
  }
}

void scalar_score_tfidf_codes(double* out, const std::uint8_t* codes,
                              const double* lut256,
                              const std::uint32_t* docs,
                              const double* len_norm, double w,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (lut256[codes[i]] * w) * len_norm[docs[i]];
  }
}

void scalar_score_bm25_codes(double* out, const std::uint8_t* codes,
                             const std::uint32_t* docs,
                             const double* bm25_norm, double w, double k1p1,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double tf = static_cast<double>(codes[i]);
    out[i] = (w * (tf * k1p1)) / (tf + bm25_norm[docs[i]]);
  }
}

void scalar_expand_lut_u8(double* out, const std::uint8_t* codes,
                          const double* lut256, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = lut256[codes[i]];
}

void scalar_u8_to_f64(double* out, const std::uint8_t* codes, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(codes[i]);
}

// Mirrors the SSE shuffle decoder exactly: every group contributes all
// four deltas (tail pads are zero by the encoder's contract) to the
// running prev, and only real entries are stored.
const std::uint8_t* scalar_decode_group_deltas(const std::uint8_t* p,
                                               std::uint32_t* ids,
                                               std::uint32_t* prev,
                                               std::size_t n) {
  std::uint32_t pv = *prev;
  for (std::size_t i = 0; i < n; i += 4) {
    const std::uint8_t control = *p++;
    for (int j = 0; j < 4; ++j) {
      const std::size_t len = ((control >> (2 * j)) & 0x3) + 1;
      std::uint32_t x = 0;
      for (std::size_t byte = 0; byte < len; ++byte) {
        x |= static_cast<std::uint32_t>(*p++) << (8 * byte);
      }
      pv += x;
      if (i + static_cast<std::size_t>(j) < n) {
        ids[i + static_cast<std::size_t>(j)] = pv;
      }
    }
  }
  *prev = pv;
  return p;
}

const std::uint8_t* scalar_decode_u8_deltas(const std::uint8_t* p,
                                            std::uint32_t* ids,
                                            std::uint32_t* prev,
                                            std::size_t n) {
  std::uint32_t pv = *prev;
  for (std::size_t i = 0; i < n; ++i) {
    pv += p[i];
    ids[i] = pv;
  }
  *prev = pv;
  return p + n;
}

namespace {

// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected to 0x82F63B78) —
// the polynomial the SSE4.2 crc32 instruction implements, so the table
// walk and the hardware tier agree bit for bit.
struct Crc32cTable {
  std::uint32_t t[256];
};

constexpr Crc32cTable make_crc32c_table() {
  Crc32cTable tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    tb.t[i] = c;
  }
  return tb;
}

constexpr Crc32cTable kCrc32cTable = make_crc32c_table();

}  // namespace

std::uint32_t scalar_crc32c_update(std::uint32_t crc, const std::uint8_t* p,
                                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    crc = kCrc32cTable.t[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

void scalar_shuffle_u64(std::uint8_t* out, const std::uint64_t* in,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = in[i];
    for (std::size_t plane = 0; plane < 8; ++plane) {
      out[plane * n + i] = static_cast<std::uint8_t>(x >> (8 * plane));
    }
  }
}

void scalar_unshuffle_u64(std::uint64_t* out, const std::uint8_t* in,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t x = 0;
    for (std::size_t plane = 0; plane < 8; ++plane) {
      x |= static_cast<std::uint64_t>(in[plane * n + i]) << (8 * plane);
    }
    out[i] = x;
  }
}

namespace {

const Kernels kScalarKernels = {
    &scalar_dot,
    &scalar_distance_sq,
    &scalar_retire_axpy,
    &scalar_score_tfidf,
    &scalar_score_bm25,
    &scalar_inv_sqrt_or_zero,
    &scalar_bm25_doc_norms,
    &scalar_score_tfidf_codes,
    &scalar_score_bm25_codes,
    &scalar_expand_lut_u8,
    &scalar_u8_to_f64,
    &scalar_decode_group_deltas,
    &scalar_decode_u8_deltas,
    &scalar_crc32c_update,
    &scalar_shuffle_u64,
    &scalar_unshuffle_u64,
};

const Kernels& table_for(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      return avx2_kernels();
    case Tier::kSse42:
      return sse42_kernels();
    case Tier::kScalar:
      break;
  }
  return kScalarKernels;
}

std::atomic<int> g_tier{-1};  // -1: not yet resolved

}  // namespace

std::atomic<const Kernels*> g_active{nullptr};

const Kernels* init_from_env() {
  Tier t = max_supported_tier();
  if (const char* spec = std::getenv("AT_SIMD")) {
    Tier parsed;
    if (parse_tier(spec, &parsed)) {
      if (parsed < t) t = parsed;
    } else {
      // A typo'd override must not silently run at full tier — CI steps
      // that force a tier rely on this warning to stay honest.
      std::fprintf(stderr,
                   "warning: unrecognized AT_SIMD value \"%s\" "
                   "(expected scalar|sse42|avx2|auto); using %s\n",
                   spec, tier_name(t));
    }
  }
  const Kernels* k = &table_for(t);
  // Publish tier before table so active_tier() never runs ahead of the
  // kernels a racing first caller observes.
  g_tier.store(static_cast<int>(t), std::memory_order_release);
  g_active.store(k, std::memory_order_release);
  return k;
}

}  // namespace detail

Tier max_supported_tier() {
#if AT_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Tier::kSse42;
#endif
  return Tier::kScalar;
}

Tier active_tier() {
  if (detail::g_active.load(std::memory_order_acquire) == nullptr) {
    detail::init_from_env();
  }
  return static_cast<Tier>(detail::g_tier.load(std::memory_order_acquire));
}

Tier set_tier(Tier t) {
  const Tier max = max_supported_tier();
  if (t > max) t = max;
  detail::g_tier.store(static_cast<int>(t), std::memory_order_release);
  detail::g_active.store(&detail::table_for(t), std::memory_order_release);
  return t;
}

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kSse42:
      return "sse42";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

bool parse_tier(const char* spec, Tier* out) {
  if (spec == nullptr) return false;
  std::string s(spec);
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "scalar") {
    *out = Tier::kScalar;
  } else if (s == "sse42" || s == "sse4.2" || s == "sse") {
    *out = Tier::kSse42;
  } else if (s == "avx2" || s == "avx") {
    *out = Tier::kAvx2;
  } else if (s == "auto" || s.empty()) {
    *out = max_supported_tier();
  } else {
    return false;
  }
  return true;
}

bool tier_compiled(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      return detail::avx2_compiled();
    case Tier::kSse42:
      return detail::sse42_compiled();
    case Tier::kScalar:
      break;
  }
  return true;
}

}  // namespace at::simd
