// Named failpoints: deterministic fault injection for the robustness
// suites (ISSUE 6 "failpoint fault-injection layer").
//
// A failpoint is a named site compiled into a production code path (server
// frame I/O, artifact chunk reads, executor dispatch, component scans).
// Unarmed sites cost one relaxed atomic load — a global armed counter — so
// the hooks stay in release builds. Arming happens either through the
// AT_FAILPOINTS environment variable at process start or through the
// runtime API (tests arm/clear failpoints mid-run to prove recovery).
//
// Spec grammar (environment variable or set_many()):
//
//   AT_FAILPOINTS="site=action[;site=action...]"
//   action := delay:<ms>        sleep that many milliseconds, then proceed
//           | error             fail the site (FailpointError / the site's
//                               own structured error)
//           | short_write       I/O sites only: truncate the write
//   any action may append :x<N> — disarm automatically after N hits,
//   e.g. "artifact.chunk=error:x3;server.scan=delay:20"
//
// Sites wired in (see README "Fault injection"):
//   server.accept        server.read         server.write
//   server.dispatch      server.scan         server.scan.c<C>
//   server.synopsis      artifact.chunk      executor.dispatch
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace at::common::failpoint {

/// Thrown by check_throw() when an armed `error` action fires. Layers with
/// their own structured error (artifact loads -> ArtifactError) translate
/// the action instead of letting this type escape.
class FailpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Action : std::uint8_t { kOff, kDelay, kError, kShortWrite };

struct Decision {
  Action action = Action::kOff;
  double delay_ms = 0.0;
};

namespace detail {
extern std::atomic<int> g_armed_count;
}

/// True when at least one failpoint is armed. The fast path every
/// AT_FAILPOINT() guard takes; relaxed is enough (arming happens-before
/// the traffic that should observe it in every test and in env init).
inline bool any_armed() {
  return detail::g_armed_count.load(std::memory_order_relaxed) > 0;
}

/// Arms one site. Throws std::invalid_argument on a malformed spec.
void set(const std::string& site, const std::string& spec);

/// Arms every `site=action` pair of a ;-separated multi-spec (the
/// AT_FAILPOINTS format). Returns the number of sites armed; throws
/// std::invalid_argument on any malformed entry (nothing is armed then).
std::size_t set_many(const std::string& multi_spec);

void clear(const std::string& site);
void clear_all();

/// Total times `site` fired since it was last armed (0 when never armed).
std::uint64_t hits(const std::string& site);

/// Evaluates `site`: returns the armed action (performing the sleep of a
/// kDelay inline before returning it), or kOff when unarmed or the x<N>
/// budget is exhausted. Thread-safe.
Decision check(const char* site);

/// Convenience wrapper: sleeps on delay, throws FailpointError on error,
/// returns true when the caller should short-write.
bool check_throw(const char* site);

}  // namespace at::common::failpoint

/// Zero-cost-when-unarmed site guard: evaluates the site only when some
/// failpoint is armed anywhere. Yields true when the site should
/// short-write; throws FailpointError on an armed error action.
#define AT_FAILPOINT(site)                       \
  (::at::common::failpoint::any_armed()          \
       ? ::at::common::failpoint::check_throw(site) \
       : false)
