// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used by the synopsis builder (the paper runs information aggregation on
// Spark; we run the same per-aggregated-point tasks on a shared-memory
// pool) and by benchmark drivers that evaluate many requests concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace at::common {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future observes its completion/exception.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool; blocks until all complete.
  /// Work is divided into contiguous chunks (one per worker) to preserve
  /// cache locality on scans.
  ///
  /// Edge behavior (pinned by tests/common_test.cpp): n == 0 returns
  /// without touching the queue; n < workers submits exactly n
  /// single-index tasks (never an empty-range task); chunk math divides by
  /// min(n, workers), which the constructor's >= 1 worker guarantee keeps
  /// nonzero for every n > 0.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace at::common
