// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used by the synopsis builder (the paper runs information aggregation on
// Spark; we run the same per-aggregated-point tasks on a shared-memory
// pool) and by benchmark drivers that evaluate many requests concurrently.
// The sharded execution layer (sharded_executor.h) builds one pinned pool
// per topology node from the pinning constructor.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace at::common {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Spawns one worker per entry of `pin_cpus`, each pinned (best effort —
  /// a failed sched_setaffinity is ignored, non-Linux builds never pin) to
  /// that logical CPU. The same CPU may appear repeatedly (simulated
  /// multi-node layouts on small machines). When `on_worker_start` is set
  /// it runs first inside each new worker thread, with the worker's index;
  /// the executor uses it to label workers with their home node.
  explicit ThreadPool(const std::vector<int>& pin_cpus,
                      std::function<void(std::size_t)> on_worker_start = {});

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future observes its completion/exception.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool; blocks until all complete.
  /// Work is divided into contiguous chunks (one per worker) to preserve
  /// cache locality on scans.
  ///
  /// Reentrant: while waiting for its chunks, the calling thread executes
  /// queued tasks. A task running ON the pool may therefore call
  /// parallel_for on the same pool without deadlocking, even on a
  /// one-worker pool — the sharded fan-out paths rely on this (a per-node
  /// dispatch task fans its component work out on its own node group).
  ///
  /// Edge behavior (pinned by tests/common_test.cpp): n == 0 returns
  /// without touching the queue; n < workers submits exactly n
  /// single-index tasks (never an empty-range task); chunk math divides by
  /// min(n, workers), which the constructor's >= 1 worker guarantee keeps
  /// nonzero for every n > 0.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::function<void(std::size_t)> on_start,
                   std::size_t index);
  /// Pops and runs one queued task if any is pending. Used by waiting
  /// parallel_for callers to help drain the queue.
  bool run_one_queued_task();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ AT_GUARDED_BY(mutex_);
  bool stopping_ AT_GUARDED_BY(mutex_) = false;
};

}  // namespace at::common
