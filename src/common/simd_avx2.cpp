// AVX2 kernel tier. Compiled with -mavx2 (CMake sets the flag on this file
// only). FMA is deliberately NOT enabled: fused multiply-adds round once
// where the scalar reference rounds twice, and the layer's contract is
// bit-identical results in every tier. The group-varint decoder reuses the
// SSE 128-bit shuffle path — 4-id groups do not widen usefully to 256 bits.
#include "common/simd_internal.h"

#if AT_SIMD_X86 && defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace at::simd::detail {
namespace {

constexpr bool kHaveAvx2 = true;

/// Full-width gather via the masked form: the plain _mm256_i32gather_pd
/// leaves its pass-through operand formally uninitialized, which trips
/// -Wmaybe-uninitialized inside GCC's intrinsic header.
inline __m256d gather_pd(const double* base, __m128i idx) {
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, idx, all, 8);
}

inline double fold_lanes(__m256d acc) {
  // {s0+s2, s1+s3} then low+high == (s0+s2)+(s1+s3): the canonical order
  // the scalar tier mirrors.
  const __m128d folded =
      _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  return _mm_cvtsd_f64(folded) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(folded, folded));
}

double dot(const double* a, const double* b, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double r = fold_lanes(acc);
  for (std::size_t i = n4; i < n; ++i) r += a[i] * b[i];
  return r;
}

double distance_sq(const double* a, const double* b, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double r = fold_lanes(acc);
  for (std::size_t i = n4; i < n; ++i) {
    const double d = a[i] - b[i];
    r += d * d;
  }
  return r;
}

/// Loads cols[i..i+3] and turns them into factor-array element indices
/// cols[j] * stride + dim (32-bit math: factor matrices stay well under
/// 2^31 elements — vocab/item counts times a rank of ~3).
inline __m128i factor_indices(const std::uint32_t* cols, std::size_t i,
                              __m128i vstride, __m128i vdim) {
  const __m128i c =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + i));
  return _mm_add_epi32(_mm_mullo_epi32(c, vstride), vdim);
}

void retire_axpy(double* resid, const std::uint32_t* cols, std::size_t n,
                 const double* factors, std::size_t stride, std::size_t dim,
                 double scale) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m128i vstride = _mm_set1_epi32(static_cast<int>(stride));
  const __m128i vdim = _mm_set1_epi32(static_cast<int>(dim));
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128i idx = factor_indices(cols, i, vstride, vdim);
    const __m256d q = gather_pd(factors, idx);
    const __m256d r = _mm256_loadu_pd(resid + i);
    _mm256_storeu_pd(resid + i, _mm256_sub_pd(r, _mm256_mul_pd(vscale, q)));
  }
  for (std::size_t i = n4; i < n; ++i) {
    resid[i] -= scale * factors[cols[i] * stride + dim];
  }
}

void score_tfidf(double* out, const double* sqrt_tf,
                 const std::uint32_t* docs, const double* len_norm, double w,
                 std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vw = _mm256_set1_pd(w);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(docs + i));
    const __m256d ln = gather_pd(len_norm, idx);
    const __m256d s = _mm256_mul_pd(_mm256_loadu_pd(sqrt_tf + i), vw);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(s, ln));
  }
  for (std::size_t i = n4; i < n; ++i) {
    out[i] = (sqrt_tf[i] * w) * len_norm[docs[i]];
  }
}

void score_bm25(double* out, const double* tf, const std::uint32_t* docs,
                const double* bm25_norm, double w, double k1p1,
                std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vw = _mm256_set1_pd(w);
  const __m256d vk = _mm256_set1_pd(k1p1);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(docs + i));
    const __m256d norm = gather_pd(bm25_norm, idx);
    const __m256d vtf = _mm256_loadu_pd(tf + i);
    const __m256d num = _mm256_mul_pd(vw, _mm256_mul_pd(vtf, vk));
    _mm256_storeu_pd(out + i,
                     _mm256_div_pd(num, _mm256_add_pd(vtf, norm)));
  }
  for (std::size_t i = n4; i < n; ++i) {
    out[i] = (w * (tf[i] * k1p1)) / (tf[i] + bm25_norm[docs[i]]);
  }
}

void inv_sqrt_or_zero(double* out, const double* in, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d v = _mm256_loadu_pd(in + i);
    const __m256d r = _mm256_div_pd(one, _mm256_sqrt_pd(v));
    // GT_OQ: ordered greater-than, so NaN lengths produce 0 exactly like
    // the scalar ternary.
    const __m256d mask = _mm256_cmp_pd(v, zero, _CMP_GT_OQ);
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(zero, r, mask));
  }
  for (std::size_t i = n4; i < n; ++i) {
    out[i] = in[i] > 0.0 ? 1.0 / std::sqrt(in[i]) : 0.0;
  }
}

void bm25_doc_norms(double* out, const double* dl, double k1, double b,
                    double avg, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vk1 = _mm256_set1_pd(k1);
  const __m256d vb = _mm256_set1_pd(b);
  const __m256d vavg = _mm256_set1_pd(avg);
  const __m256d one_minus_b = _mm256_set1_pd(1.0 - b);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d v = _mm256_loadu_pd(dl + i);
    const __m256d t = _mm256_add_pd(
        one_minus_b, _mm256_div_pd(_mm256_mul_pd(vb, v), vavg));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(vk1, t));
  }
  for (std::size_t i = n4; i < n; ++i) {
    out[i] = k1 * (1.0 - b + b * dl[i] / avg);
  }
}

void score_tfidf_codes(double* out, const std::uint8_t* codes,
                       const double* lut256, const std::uint32_t* docs,
                       const double* len_norm, double w, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vw = _mm256_set1_pd(w);
  for (std::size_t i = 0; i < n4; i += 4) {
    std::uint32_t packed;
    __builtin_memcpy(&packed, codes + i, sizeof packed);
    const __m128i code_idx =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed)));
    const __m256d sqrt_tf = gather_pd(lut256, code_idx);
    const __m128i doc_idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(docs + i));
    const __m256d ln = gather_pd(len_norm, doc_idx);
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(_mm256_mul_pd(sqrt_tf, vw), ln));
  }
  for (std::size_t i = n4; i < n; ++i) {
    out[i] = (lut256[codes[i]] * w) * len_norm[docs[i]];
  }
}

void score_bm25_codes(double* out, const std::uint8_t* codes,
                      const std::uint32_t* docs, const double* bm25_norm,
                      double w, double k1p1, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vw = _mm256_set1_pd(w);
  const __m256d vk = _mm256_set1_pd(k1p1);
  for (std::size_t i = 0; i < n4; i += 4) {
    std::uint32_t packed;
    __builtin_memcpy(&packed, codes + i, sizeof packed);
    const __m256d vtf = _mm256_cvtepi32_pd(
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed))));
    const __m128i doc_idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(docs + i));
    const __m256d norm = gather_pd(bm25_norm, doc_idx);
    const __m256d num = _mm256_mul_pd(vw, _mm256_mul_pd(vtf, vk));
    _mm256_storeu_pd(out + i,
                     _mm256_div_pd(num, _mm256_add_pd(vtf, norm)));
  }
  for (std::size_t i = n4; i < n; ++i) {
    const double tf = static_cast<double>(codes[i]);
    out[i] = (w * (tf * k1p1)) / (tf + bm25_norm[docs[i]]);
  }
}

void expand_lut_u8(double* out, const std::uint8_t* codes,
                   const double* lut256, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    // 4 bytes -> 4 u32 lane indices -> gathered LUT doubles.
    std::uint32_t packed;
    __builtin_memcpy(&packed, codes + i, sizeof packed);
    const __m128i idx =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed)));
    _mm256_storeu_pd(out + i, gather_pd(lut256, idx));
  }
  for (std::size_t i = n4; i < n; ++i) out[i] = lut256[codes[i]];
}

void u8_to_f64(double* out, const std::uint8_t* codes, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    std::uint32_t packed;
    __builtin_memcpy(&packed, codes + i, sizeof packed);
    const __m128i idx =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed)));
    _mm256_storeu_pd(out + i, _mm256_cvtepi32_pd(idx));
  }
  for (std::size_t i = n4; i < n; ++i) out[i] = static_cast<double>(codes[i]);
}

const Kernels kAvx2Kernels = {
    &dot,
    &distance_sq,
    &retire_axpy,
    &score_tfidf,
    &score_bm25,
    &inv_sqrt_or_zero,
    &bm25_doc_norms,
    &score_tfidf_codes,
    &score_bm25_codes,
    &expand_lut_u8,
    &u8_to_f64,
    &sse42_decode_group_deltas,
    &sse42_decode_u8_deltas,
    &sse42_crc32c_update,
    &sse42_shuffle_u64,
    &sse42_unshuffle_u64,
};

}  // namespace

const Kernels& avx2_kernels() { return kAvx2Kernels; }
bool avx2_compiled() { return kHaveAvx2; }

}  // namespace at::simd::detail

#else  // !(AT_SIMD_X86 && __AVX2__)

namespace at::simd::detail {

namespace {
const Kernels kAvx2Fallback = {
    &scalar_dot,
    &scalar_distance_sq,
    &scalar_retire_axpy,
    &scalar_score_tfidf,
    &scalar_score_bm25,
    &scalar_inv_sqrt_or_zero,
    &scalar_bm25_doc_norms,
    &scalar_score_tfidf_codes,
    &scalar_score_bm25_codes,
    &scalar_expand_lut_u8,
    &scalar_u8_to_f64,
    &scalar_decode_group_deltas,
    &scalar_decode_u8_deltas,
    &scalar_crc32c_update,
    &scalar_shuffle_u64,
    &scalar_unshuffle_u64,
};
}  // namespace

const Kernels& avx2_kernels() { return kAvx2Fallback; }
bool avx2_compiled() { return false; }

}  // namespace at::simd::detail

#endif
