// Statistics utilities used across the simulator and benchmarks:
//  - StreamingStats: Welford mean/variance/min/max without storing samples.
//  - PercentileTracker: exact percentiles over stored samples (the paper's
//    headline metric is the 99.9th percentile component latency, which
//    requires exact tail resolution at the sample counts we run).
//  - P2Quantile: constant-space quantile estimate (Jain & Chlamtac's P²),
//    used where sample storage would be too large (long interference runs).
//  - Histogram: fixed-width binning for distribution dumps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace at::common {

/// Welford online mean/variance plus min/max.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when n < 2).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples; answers arbitrary percentiles exactly.
///
/// percentile(p) uses the nearest-rank method on the sorted samples:
/// the ceil(p/100 * n)-th smallest value. This matches how tail latency
/// SLOs are typically reported and keeps p = 99.9 meaningful with n >= 1000.
class PercentileTracker {
 public:
  PercentileTracker() = default;
  explicit PercentileTracker(std::size_t reserve) { samples_.reserve(reserve); }

  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void merge(const PercentileTracker& other);
  void clear() {
    samples_.clear();
    sorted_ = true;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// p in (0, 100]. Returns 0 for an empty tracker.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }
  double max() const { return percentile(100.0); }
  double mean() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// P² single-quantile estimator (Jain & Chlamtac, 1985). O(1) space.
class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.999.
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate; exact while fewer than 5 samples were seen.
  double value() const;
  std::size_t count() const { return count_; }

 private:
  double q_;
  std::size_t count_ = 0;
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Multi-line ASCII rendering (for example programs).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace at::common
