// Unified versioned artifact store: the one persistence layer every
// serialized component state goes through — synopsis feature vectors,
// linalg::Matrix, the incremental-SVD model, index files and the service
// snapshots (ROADMAP "Compress remaining artifacts").
//
// Container wire format (all integers little-endian):
//
//   header   "ATAC" | u32 container_version (=1) | kind[4] | u32 kind_version
//   chunk*   tag[4] | u64 payload_len | u32 crc32c(payload) | payload
//   end      "ATND" | u64 0 | u32 0
//
// `kind` names the artifact type ("MATX", "SVDM", "SROW", ...) and
// kind_version its schema, so a reader can reject the wrong artifact or an
// unknown schema *before* touching the payload. Every chunk is framed
// (typed tag + length) and checksummed with CRC32C — hardware-accelerated
// through the at::simd dispatch layer — so truncation, bit rot and
// mis-spliced streams fail loudly instead of deserializing garbage.
// Nested artifacts (a structure embeds an SVD model, matrices and an index
// file) are written sequentially between the parent's chunks; each nested
// container carries its own header and checksums.
//
// Value codecs for f64 columns — all three round-trip bit-exactly:
//
//   raw      the IEEE bytes verbatim. The reference for verification.
//   shuffle  sign bit rotated to the mantissa end, then the smaller of
//            two exact layouts per column: (a) Blosc-style byte-plane
//            transpose through the dispatched SIMD 8x8 byte-transpose
//            kernel, each plane stored as the smallest of raw / RLE /
//            dict-packed (<=128 distinct bytes -> 1..7-bit indices) —
//            wins on regular data; (b) an exponent/mantissa bit-split —
//            the 11 exponent bits escape-coded against a frequency-sorted
//            dictionary, the 53 mantissa+sign bits packed verbatim —
//            wins on continuous data (SVD factors), whose mantissa noise
//            caps any byte-granular scheme near 0.91x.
//   q8       one byte per value for exactly-integral 1..255 values plus an
//            exact-double exception side table — the postings tf codec's
//            scheme applied to feature columns. Wins on count-like data
//            (synopsis features), degenerates (but stays exact) on
//            continuous data.
//
// Corrupt input throws ArtifactError (a std::runtime_error); decoders are
// bounds-checked end to end so malformed bytes can never read out of
// bounds (fuzz suite: tests/artifact_test.cpp).
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace at::common {

class ArtifactError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC32C (Castagnoli) of a buffer, via the dispatched kernel (SSE4.2
/// hardware crc32 when available; identical results in every tier).
std::uint32_t crc32c(const void* data, std::size_t n);

// ---------------------------------------------------------------------------
// Value codecs
// ---------------------------------------------------------------------------

enum class Codec : std::uint8_t { kRaw = 0, kShuffle = 1, kQ8 = 2 };
inline constexpr Codec kAllCodecs[] = {Codec::kRaw, Codec::kShuffle,
                                       Codec::kQ8};

const char* codec_name(Codec c);

/// Parses "raw" / "shuffle" / "q8" (case-insensitive). False on unknown.
bool parse_codec(const char* spec, Codec* out);

/// Process-wide default codec for f64 columns: the AT_ARTIFACT_CODEC
/// environment variable when set and valid, else kShuffle (every codec
/// decodes to the exact source doubles, so the default optimizes size;
/// kRaw stays the byte-identity reference the parity tests verify
/// against).
Codec default_codec();

/// Appends the self-describing encoding (1 codec byte + payload) of n
/// doubles to `out`.
void encode_f64(std::vector<std::uint8_t>& out, const double* v,
                std::size_t n, Codec codec);

/// Decodes exactly n doubles from [p, end); returns the new cursor.
/// Throws ArtifactError on any malformed byte.
const std::uint8_t* decode_f64(const std::uint8_t* p, const std::uint8_t* end,
                               double* out, std::size_t n);

// ---------------------------------------------------------------------------
// Chunk payload primitives
// ---------------------------------------------------------------------------

/// Builds one chunk's payload in memory (little-endian fixed-width
/// primitives, mirroring BinaryWriter).
class ChunkWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  template <typename T>
  void vec_u32(const std::vector<T>& v) {
    u64(v.size());
    for (const auto& x : v) u32(static_cast<std::uint32_t>(x));
  }

  /// Length-prefixed f64 column through a value codec. Columns are capped
  /// at the reader's forged-count bound (2^26 values) so oversized state
  /// fails loudly at save time instead of persisting unloadably; columns
  /// beyond that need a sharded layout, not a bigger cap.
  void vec_f64(const std::vector<double>& v, Codec codec) {
    f64_column(v.data(), v.size(), codec);
  }
  void f64_column(const double* v, std::size_t n, Codec codec) {
    if (n > (std::size_t{1} << 26))
      throw ArtifactError("artifact chunk: f64 column exceeds format cap");
    u64(n);
    encode_f64(buf_, v, n, codec);
  }

  /// Length-prefixed opaque bytes.
  void blob(const void* p, std::size_t n) {
    u64(n);
    raw(p, n);
  }
  void blob(const std::vector<std::uint8_t>& v) { blob(v.data(), v.size()); }
  void blob(const std::string& s) { blob(s.data(), s.size()); }

  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over one chunk's payload. Every read validates
/// the remaining length and throws ArtifactError on over-read, so corrupt
/// lengths fail cleanly.
class ChunkReader {
 public:
  explicit ChunkReader(std::vector<std::uint8_t> payload)
      : buf_(std::move(payload)) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  double f64() { return fixed<double>(); }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint64_t n = len64();
    std::string s(static_cast<std::size_t>(n), '\0');
    need(s.size());
    std::memcpy(s.data(), buf_.data() + pos_, s.size());
    pos_ += s.size();
    return s;
  }

  std::vector<std::uint32_t> vec_u32() {
    const std::uint64_t n = len64();
    if (n > remaining() / sizeof(std::uint32_t))
      throw ArtifactError("artifact chunk: u32 vector overruns payload");
    std::vector<std::uint32_t> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = u32();
    return v;
  }

  std::vector<double> vec_f64() {
    // Forged-count guards, applied BEFORE allocating n doubles. raw and
    // q8 spend at least 8 / 1 payload bytes per value, so their counts
    // bound against the remaining payload. A shuffle column has no such
    // floor (a constant-valued column encodes to ~90 bytes at any n —
    // eight dict-packed planes with one-entry dicts), so it gets an
    // absolute cap instead: 2^26 values, far above any real column here.
    // Decoding allocates up to ~3.5x the column (v + the decoder's rot
    // and planes staging), so the cap bounds a worst-case forgery at
    // ~1.7 GiB of transient allocation rather than an OOM. The codec
    // decoder bounds-checks every actual read.
    const std::uint64_t n = u64();
    if (n > (std::uint64_t{1} << 26))
      throw ArtifactError("artifact chunk: f64 column implausibly large");
    if (n > 0 && remaining() > 0) {
      const std::uint8_t codec = buf_[pos_];  // decode_f64 re-validates
      if ((codec == static_cast<std::uint8_t>(Codec::kRaw) &&
           n > (remaining() - 1) / sizeof(double)) ||
          (codec == static_cast<std::uint8_t>(Codec::kQ8) &&
           n > remaining() - 1))
        throw ArtifactError("artifact chunk: f64 column overruns payload");
    }
    std::vector<double> v(static_cast<std::size_t>(n));
    const std::uint8_t* next = decode_f64(
        buf_.data() + pos_, buf_.data() + buf_.size(), v.data(), v.size());
    pos_ = static_cast<std::size_t>(next - buf_.data());
    return v;
  }

  std::vector<std::uint8_t> blob() {
    const std::uint64_t n = len64();
    need(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> v(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  std::size_t remaining() const { return buf_.size() - pos_; }

  /// Whole chunks must be consumed: a trailing-garbage chunk is corrupt.
  void expect_consumed() const {
    if (remaining() != 0)
      throw ArtifactError("artifact chunk: trailing bytes");
  }

 private:
  template <typename T>
  T fixed() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }
  std::uint64_t len64() {
    const std::uint64_t n = u64();
    if (n > buf_.size())
      throw ArtifactError("artifact chunk: length overruns payload");
    return n;
  }
  void need(std::size_t n) const {
    if (n > remaining())
      throw ArtifactError("artifact chunk: truncated payload");
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------------

class ArtifactWriter {
 public:
  /// Writes the container header.
  ArtifactWriter(std::ostream& os, const char kind[4], std::uint32_t version);

  /// Writes one framed, checksummed chunk.
  void chunk(const char tag[4], const ChunkWriter& payload);

  /// The underlying stream, for nested artifacts between chunks.
  std::ostream& stream() { return os_; }

  /// Writes the end marker. Must be the final call.
  void finish();

 private:
  std::ostream& os_;
};

class ArtifactReader {
 public:
  /// Reads and validates the container header; throws ArtifactError when
  /// the stream is not an artifact container or is of a different kind.
  ArtifactReader(std::istream& is, const char kind[4]);

  std::uint32_t version() const { return version_; }

  /// Reads the next chunk, which must carry `tag`; verifies its CRC.
  ChunkReader chunk(const char tag[4]);

  std::istream& stream() { return is_; }

  /// Consumes the end marker; throws if the next chunk is not it.
  void finish();

 private:
  std::istream& is_;
  std::uint32_t version_ = 0;
};

/// True when the next four bytes of `is` are the artifact container magic
/// (stream position restored) — the dispatch point between the container
/// readers and the pre-container legacy formats. Requires a seekable
/// stream, which every artifact source (files, string streams) is.
bool next_is_artifact(std::istream& is);

}  // namespace at::common
