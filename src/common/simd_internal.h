// Internal glue for the SIMD tier TUs: per-tier entry points assembled
// into dispatch tables by simd.cpp. Scalar reference kernels are exposed
// here too so the ISA TUs can fall back to them for operations their tier
// does not accelerate (results are bit-identical either way).
#pragma once

#include "common/simd.h"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define AT_SIMD_X86 1
#else
#define AT_SIMD_X86 0
#endif

namespace at::simd::detail {

// Scalar reference kernels (simd.cpp). The dot/distance reductions define
// the canonical 4-lane order every tier must reproduce.
double scalar_dot(const double* a, const double* b, std::size_t n);
double scalar_distance_sq(const double* a, const double* b, std::size_t n);
void scalar_retire_axpy(double* resid, const std::uint32_t* cols,
                        std::size_t n, const double* factors,
                        std::size_t stride, std::size_t dim, double scale);
void scalar_score_tfidf(double* out, const double* sqrt_tf,
                        const std::uint32_t* docs, const double* len_norm,
                        double w, std::size_t n);
void scalar_score_bm25(double* out, const double* tf,
                       const std::uint32_t* docs, const double* bm25_norm,
                       double w, double k1p1, std::size_t n);
void scalar_inv_sqrt_or_zero(double* out, const double* in, std::size_t n);
void scalar_bm25_doc_norms(double* out, const double* dl, double k1, double b,
                           double avg, std::size_t n);
void scalar_score_tfidf_codes(double* out, const std::uint8_t* codes,
                              const double* lut256,
                              const std::uint32_t* docs,
                              const double* len_norm, double w,
                              std::size_t n);
void scalar_score_bm25_codes(double* out, const std::uint8_t* codes,
                             const std::uint32_t* docs,
                             const double* bm25_norm, double w, double k1p1,
                             std::size_t n);
void scalar_expand_lut_u8(double* out, const std::uint8_t* codes,
                          const double* lut256, std::size_t n);
void scalar_u8_to_f64(double* out, const std::uint8_t* codes, std::size_t n);
const std::uint8_t* scalar_decode_group_deltas(const std::uint8_t* p,
                                               std::uint32_t* ids,
                                               std::uint32_t* prev,
                                               std::size_t n);
const std::uint8_t* scalar_decode_u8_deltas(const std::uint8_t* p,
                                            std::uint32_t* ids,
                                            std::uint32_t* prev,
                                            std::size_t n);
std::uint32_t scalar_crc32c_update(std::uint32_t crc, const std::uint8_t* p,
                                   std::size_t n);
void scalar_shuffle_u64(std::uint8_t* out, const std::uint64_t* in,
                        std::size_t n);
void scalar_unshuffle_u64(std::uint64_t* out, const std::uint8_t* in,
                          std::size_t n);

// Tier tables + compile markers (simd_sse42.cpp / simd_avx2.cpp). When the
// TU could not be compiled for its ISA the table holds scalar fallbacks
// and the marker is false.
const Kernels& sse42_kernels();
bool sse42_compiled();
const Kernels& avx2_kernels();
bool avx2_compiled();

// The SSE4.2 group-varint shuffle decode, reused verbatim by the AVX2
// tier (128-bit pshufb is the sweet spot for 4-id groups).
const std::uint8_t* sse42_decode_group_deltas(const std::uint8_t* p,
                                              std::uint32_t* ids,
                                              std::uint32_t* prev,
                                              std::size_t n);
const std::uint8_t* sse42_decode_u8_deltas(const std::uint8_t* p,
                                           std::uint32_t* ids,
                                           std::uint32_t* prev,
                                           std::size_t n);

// The SSE4.2 artifact-store kernels (hardware crc32 + the 8x8 byte
// transpose), reused verbatim by the AVX2 tier — both are 128-bit
// sweet-spot operations.
std::uint32_t sse42_crc32c_update(std::uint32_t crc, const std::uint8_t* p,
                                  std::size_t n);
void sse42_shuffle_u64(std::uint8_t* out, const std::uint64_t* in,
                       std::size_t n);
void sse42_unshuffle_u64(std::uint64_t* out, const std::uint8_t* in,
                         std::size_t n);

}  // namespace at::simd::detail
