#include "common/artifact.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "common/failpoint.h"
#include "common/simd.h"

namespace at::common {

namespace {

constexpr char kContainerMagic[4] = {'A', 'T', 'A', 'C'};
constexpr char kEndTag[4] = {'A', 'T', 'N', 'D'};
constexpr std::uint32_t kContainerVersion = 1;

/// Upper bound on one chunk's payload. Far above any real artifact; its
/// job is turning a corrupted length field into ArtifactError instead of
/// a multi-gigabyte allocation attempt.
constexpr std::uint64_t kMaxChunkBytes = std::uint64_t{1} << 33;

// Shuffle-codec column layouts.
constexpr std::uint8_t kLayoutPlanes = 0;    // 8 byte-plane records
constexpr std::uint8_t kLayoutExpSplit = 1;  // exponent dict + mantissa bits

// Shuffle-codec plane storage modes (kLayoutPlanes).
constexpr std::uint8_t kPlaneRaw = 0;     // n verbatim bytes
constexpr std::uint8_t kPlaneRle = 1;     // (run_len u8 >= 1, value u8) pairs
constexpr std::uint8_t kPlanePacked = 2;  // dict (<=128 bytes) + packed ids

/// Rotate the sign bit to the mantissa end, so the transposed top plane is
/// pure exponent (one or two distinct bytes for data of similar magnitude)
/// and the sign lands in the already-incompressible mantissa-LSB plane.
inline std::uint64_t rotl1(std::uint64_t x) { return (x << 1) | (x >> 63); }
inline std::uint64_t rotr1(std::uint64_t x) { return (x >> 1) | (x << 63); }

/// The postings tf quantization (services/search/postings_codec.h),
/// restated here so the common layer does not depend on the search
/// service: 1..255 for exactly-integral values, 0 = exception. The
/// negated range test sends NaN to the exception path before the
/// float->int cast (UB for unrepresentable values).
inline std::uint8_t quantize_q8(double v) {
  if (!(v >= 1.0 && v <= 255.0)) return 0;
  const auto i = static_cast<std::uint32_t>(v);
  return static_cast<double>(i) == v ? static_cast<std::uint8_t>(i) : 0;
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), b, b + sizeof v);
}

// ---------------------------------------------------------------------------
// Shuffle-codec plane coding
// ---------------------------------------------------------------------------

/// Appends the smallest of the three plane encodings:
///   mode u8 | len u64 | payload
void encode_plane(std::vector<std::uint8_t>& out, const std::uint8_t* plane,
                  std::size_t n) {
  bool seen[256] = {false};
  std::size_t distinct = 0;
  // One pass collects the distinct set and the RLE segmentation
  // (equal-byte stretches capped at 255); the emit below replays `runs`
  // so the sizing and the payload can never diverge.
  std::vector<std::pair<std::uint8_t, std::uint8_t>> runs;  // (len, value)
  for (std::size_t i = 0; i < n;) {
    if (!seen[plane[i]]) {
      seen[plane[i]] = true;
      ++distinct;
    }
    std::size_t j = i + 1;
    while (j < n && plane[j] == plane[i] && j - i < 255) ++j;
    runs.emplace_back(static_cast<std::uint8_t>(j - i), plane[i]);
    i = j;
  }

  const std::size_t raw_size = n;
  const std::size_t rle_size = 2 * runs.size();
  // Index width: ceil(log2(distinct)), dict-packing eligible up to 7 bits
  // (128 distinct values) — at 8 the plane is raw anyway.
  std::size_t packed_bits = 0;
  while (packed_bits < 8 && (std::size_t{1} << packed_bits) < distinct)
    ++packed_bits;
  const std::size_t packed_size =
      packed_bits >= 8 ? raw_size + 1
                       : 1 + distinct + (n * packed_bits + 7) / 8;

  std::uint8_t mode = kPlaneRaw;
  std::size_t best = raw_size;
  if (rle_size < best) {
    mode = kPlaneRle;
    best = rle_size;
  }
  if (packed_bits < 8 && packed_size < best) {
    mode = kPlanePacked;
    best = packed_size;
  }

  out.push_back(mode);
  append_u64(out, best);
  switch (mode) {
    case kPlaneRaw:
      out.insert(out.end(), plane, plane + n);
      break;
    case kPlaneRle:
      for (const auto& [len_, value] : runs) {
        out.push_back(len_);
        out.push_back(value);
      }
      break;
    case kPlanePacked: {
      std::uint8_t index_of[256];
      out.push_back(static_cast<std::uint8_t>(distinct));
      std::uint8_t next = 0;
      for (int v = 0; v < 256; ++v) {
        if (seen[v]) {
          index_of[v] = next++;
          out.push_back(static_cast<std::uint8_t>(v));
        }
      }
      if (packed_bits > 0) {
        // Little-endian bit stream: index j occupies bits
        // [j*bits, (j+1)*bits); widths that do not divide 8 cross byte
        // boundaries through the accumulator.
        std::uint32_t acc = 0;
        std::size_t filled = 0;
        for (std::size_t i = 0; i < n; ++i) {
          acc |= static_cast<std::uint32_t>(index_of[plane[i]]) << filled;
          filled += packed_bits;
          while (filled >= 8) {
            out.push_back(static_cast<std::uint8_t>(acc));
            acc >>= 8;
            filled -= 8;
          }
        }
        if (filled != 0) out.push_back(static_cast<std::uint8_t>(acc));
      }
      break;
    }
  }
}

const std::uint8_t* decode_plane(const std::uint8_t* p,
                                 const std::uint8_t* end, std::uint8_t* plane,
                                 std::size_t n) {
  const auto need = [&](std::size_t k) {
    if (static_cast<std::size_t>(end - p) < k)
      throw ArtifactError("shuffle codec: truncated plane");
  };
  need(1 + sizeof(std::uint64_t));
  const std::uint8_t mode = *p++;
  std::uint64_t len;
  std::memcpy(&len, p, sizeof len);
  p += sizeof len;
  need(static_cast<std::size_t>(len));
  const std::uint8_t* const payload_end = p + len;
  switch (mode) {
    case kPlaneRaw:
      if (len != n) throw ArtifactError("shuffle codec: bad raw plane size");
      std::memcpy(plane, p, n);
      p = payload_end;
      break;
    case kPlaneRle: {
      std::size_t i = 0;
      while (p < payload_end) {
        if (payload_end - p < 2 || p[0] == 0 || i + p[0] > n)
          throw ArtifactError("shuffle codec: bad RLE plane");
        std::memset(plane + i, p[1], p[0]);
        i += p[0];
        p += 2;
      }
      if (i != n) throw ArtifactError("shuffle codec: RLE plane short");
      break;
    }
    case kPlanePacked: {
      if (len < 1) throw ArtifactError("shuffle codec: bad packed plane");
      const std::size_t k = *p++;
      if (k == 0 || k > 128 || len < 1 + k)
        throw ArtifactError("shuffle codec: bad packed dict");
      const std::uint8_t* dict = p;
      p += k;
      std::size_t bits = 0;
      while ((std::size_t{1} << bits) < k) ++bits;
      const std::size_t index_bytes = (n * bits + 7) / 8;
      if (len != 1 + k + index_bytes)
        throw ArtifactError("shuffle codec: bad packed plane size");
      if (bits == 0) {
        std::memset(plane, dict[0], n);
      } else {
        const std::uint32_t mask = (std::uint32_t{1} << bits) - 1;
        // Mirror of the encoder's little-endian bit stream; an index can
        // span two bytes, so widen through a u16 window (the trailing
        // partial byte is zero-padded by the encoder).
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t bit = i * bits;
          std::uint32_t window = p[bit / 8];
          if (bit / 8 + 1 < index_bytes)
            window |= static_cast<std::uint32_t>(p[bit / 8 + 1]) << 8;
          const std::uint32_t idx = (window >> (bit % 8)) & mask;
          if (idx >= k)
            throw ArtifactError("shuffle codec: packed index out of range");
          plane[i] = dict[idx];
        }
        p += index_bytes;
      }
      break;
    }
    default:
      throw ArtifactError("shuffle codec: unknown plane mode");
  }
  return payload_end;
}

// ---------------------------------------------------------------------------
// Shuffle-codec exponent/mantissa bit-split layout
// ---------------------------------------------------------------------------
//
// SGD-trained factor matrices are the artifact store's hard case: the 52
// mantissa bits and the sign are incompressible noise, so byte-granular
// plane coding can never beat ~0.91x on them — the compressible exponent
// bits are smeared across two byte planes. This layout splits each
// rotated value at the bit level instead: the 11 exponent bits are
// escape-coded against a frequency-sorted dictionary (clustered factor
// magnitudes cost ~3-5 bits each), and the 53 mantissa+sign bits are
// bit-packed verbatim — approaching the 53/64 entropy floor.

/// LSB-first bit stream writer (widths <= 32 per put).
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}
  void put(std::uint32_t value, std::size_t width) {
    acc_ |= static_cast<std::uint64_t>(value) << nbits_;
    nbits_ += width;
    while (nbits_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }
  void put53(std::uint64_t value) {
    put(static_cast<std::uint32_t>(value & 0xFFFFFFFFu), 32);
    put(static_cast<std::uint32_t>(value >> 32), 21);
  }
  void flush() {
    if (nbits_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      nbits_ = 0;
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint64_t acc_ = 0;
  std::size_t nbits_ = 0;
};

/// Bounds-checked LSB-first bit stream reader.
class BitReader {
 public:
  BitReader(const std::uint8_t* p, const std::uint8_t* end)
      : p_(p), end_(end) {}
  std::uint32_t get(std::size_t width) {
    while (nbits_ < width) {
      if (p_ == end_)
        throw ArtifactError("shuffle codec: truncated bit stream");
      acc_ |= static_cast<std::uint64_t>(*p_++) << nbits_;
      nbits_ += 8;
    }
    const auto v =
        static_cast<std::uint32_t>(acc_ & ((std::uint64_t{1} << width) - 1));
    acc_ >>= width;
    nbits_ -= width;
    return v;
  }
  std::uint64_t get53() {
    const std::uint64_t lo = get(32);
    return lo | (static_cast<std::uint64_t>(get(21)) << 32);
  }
  /// Byte cursor after the bits consumed so far. Every loaded byte is at
  /// least partially consumed (the buffer never holds >= 8 spare bits),
  /// and the encoder pads the final byte, so the cursor is the load point.
  const std::uint8_t* byte_cursor() const { return p_; }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
  std::uint64_t acc_ = 0;
  std::size_t nbits_ = 0;
};

constexpr std::uint64_t kMant53Mask = (std::uint64_t{1} << 53) - 1;

/// Appends the exp-split encoding of the rotated values:
///   u8 bits | u16 dcount | dcount x u16 dict | bit stream
/// Code semantics: codes 0..dcount-1 index the dict; when dcount <
/// 2^bits, the all-ones code escapes to 11 raw exponent bits. The code
/// stream (one code [+ escape bits] per value) is followed by 53 mantissa
/// +sign bits per value in the same stream.
void encode_expsplit(std::vector<std::uint8_t>& out,
                     const std::uint64_t* rot, std::size_t n) {
  std::vector<std::uint32_t> count(2048, 0);
  for (std::size_t i = 0; i < n; ++i) ++count[rot[i] >> 53];
  std::vector<std::uint16_t> symbols;
  for (std::uint32_t e = 0; e < 2048; ++e) {
    if (count[e] > 0) symbols.push_back(static_cast<std::uint16_t>(e));
  }
  std::sort(symbols.begin(), symbols.end(),
            [&](std::uint16_t a, std::uint16_t b) {
              return count[a] != count[b] ? count[a] > count[b] : a < b;
            });
  const std::size_t k = symbols.size();

  // Pick the code width minimizing total bits (direct codes for the most
  // frequent symbols, 11 raw bits after an escape for the rest).
  std::size_t best_bits = 11;
  std::uint64_t best_cost = ~std::uint64_t{0};
  for (std::size_t bits = (k == 1 ? 0 : 1); bits <= 11; ++bits) {
    const std::size_t capacity = std::size_t{1} << bits;
    const std::size_t direct = k <= capacity ? k : capacity - 1;
    std::uint64_t escaped = 0;
    for (std::size_t s = direct; s < k; ++s) escaped += count[symbols[s]];
    const std::uint64_t cost =
        16 * direct + n * bits + escaped * 11;
    if (cost < best_cost) {
      best_cost = cost;
      best_bits = bits;
    }
    if (k <= capacity) break;  // wider codes only add direct-code bits
  }
  const std::size_t bits = best_bits;
  const std::size_t capacity = std::size_t{1} << bits;
  const std::size_t direct = k <= capacity ? k : capacity - 1;

  out.push_back(static_cast<std::uint8_t>(bits));
  const auto dcount = static_cast<std::uint16_t>(direct);
  out.push_back(static_cast<std::uint8_t>(dcount));
  out.push_back(static_cast<std::uint8_t>(dcount >> 8));
  std::vector<std::uint16_t> rank(2048, 0xFFFF);
  for (std::size_t s = 0; s < direct; ++s) {
    rank[symbols[s]] = static_cast<std::uint16_t>(s);
    out.push_back(static_cast<std::uint8_t>(symbols[s]));
    out.push_back(static_cast<std::uint8_t>(symbols[s] >> 8));
  }
  BitWriter bw(out);
  for (std::size_t i = 0; i < n; ++i) {
    const auto e = static_cast<std::uint32_t>(rot[i] >> 53);
    if (bits == 0) continue;  // k == 1: the dict entry says it all
    const std::uint16_t r = rank[e];
    if (r != 0xFFFF) {
      bw.put(r, bits);
    } else {
      bw.put(static_cast<std::uint32_t>(capacity - 1), bits);
      bw.put(e, 11);
    }
  }
  for (std::size_t i = 0; i < n; ++i) bw.put53(rot[i] & kMant53Mask);
  bw.flush();
}

const std::uint8_t* decode_expsplit(const std::uint8_t* p,
                                    const std::uint8_t* end,
                                    std::uint64_t* rot, std::size_t n) {
  const auto need = [&](std::size_t want) {
    if (static_cast<std::size_t>(end - p) < want)
      throw ArtifactError("shuffle codec: truncated exp-split header");
  };
  need(3);
  const std::size_t bits = *p++;
  std::uint16_t dcount;
  std::memcpy(&dcount, p, sizeof dcount);
  p += sizeof dcount;
  // The encoder always emits at least one direct dict entry (direct =
  // min(k, capacity-1) >= 1), so a zero dcount is corrupt.
  if (bits > 11 || dcount == 0 || dcount > 2048 ||
      (bits == 0 && dcount != 1) ||
      (bits > 0 && dcount > (std::size_t{1} << bits)))
    throw ArtifactError("shuffle codec: bad exp-split header");
  need(2 * static_cast<std::size_t>(dcount));
  std::vector<std::uint16_t> dict(dcount);
  std::memcpy(dict.data(), p, 2 * dict.size());
  p += 2 * dict.size();
  for (const auto e : dict) {
    if (e >= 2048)
      throw ArtifactError("shuffle codec: exp-split dict entry out of range");
  }
  const std::size_t capacity = std::size_t{1} << bits;
  const bool has_escape = bits > 0 && dcount < capacity;
  BitReader br(p, end);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t e;
    if (bits == 0) {
      e = dict[0];
    } else {
      const std::uint32_t code = br.get(bits);
      if (has_escape && code == capacity - 1) {
        e = br.get(11);  // masked to 11 bits, always < 2048
      } else {
        if (code >= dcount)
          throw ArtifactError("shuffle codec: exp-split code out of range");
        e = dict[code];
      }
    }
    rot[i] = static_cast<std::uint64_t>(e) << 53;
  }
  for (std::size_t i = 0; i < n; ++i) rot[i] |= br.get53();
  return br.byte_cursor();
}

void read_exact(std::istream& is, void* p, std::size_t n,
                const char* what) {
  is.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is.gcount()) != n)
    throw ArtifactError(std::string("artifact: truncated ") + what);
}

void write_exact(std::ostream& os, const void* p, std::size_t n) {
  os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!os) throw ArtifactError("artifact: write failed");
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n) {
  return ~simd::crc32c_update(~std::uint32_t{0},
                              static_cast<const std::uint8_t*>(data), n);
}

const char* codec_name(Codec c) {
  switch (c) {
    case Codec::kRaw:
      return "raw";
    case Codec::kShuffle:
      return "shuffle";
    case Codec::kQ8:
      return "q8";
  }
  return "?";
}

bool parse_codec(const char* spec, Codec* out) {
  if (spec == nullptr) return false;
  std::string s(spec);
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "raw") {
    *out = Codec::kRaw;
  } else if (s == "shuffle") {
    *out = Codec::kShuffle;
  } else if (s == "q8") {
    *out = Codec::kQ8;
  } else {
    return false;
  }
  return true;
}

Codec default_codec() {
  static const Codec resolved = [] {
    Codec c = Codec::kShuffle;
    if (const char* spec = std::getenv("AT_ARTIFACT_CODEC")) {
      if (!parse_codec(spec, &c)) {
        std::fprintf(stderr,
                     "warning: unrecognized AT_ARTIFACT_CODEC value \"%s\" "
                     "(expected raw|shuffle|q8); using shuffle\n",
                     spec);
        c = Codec::kShuffle;
      }
    }
    return c;
  }();
  return resolved;
}

void encode_f64(std::vector<std::uint8_t>& out, const double* v,
                std::size_t n, Codec codec) {
  out.push_back(static_cast<std::uint8_t>(codec));
  if (n == 0) return;
  switch (codec) {
    case Codec::kRaw: {
      const auto* b = reinterpret_cast<const std::uint8_t*>(v);
      out.insert(out.end(), b, b + n * sizeof(double));
      break;
    }
    case Codec::kShuffle: {
      std::vector<std::uint64_t> rot(n);
      std::memcpy(rot.data(), v, n * sizeof(double));
      for (auto& x : rot) x = rotl1(x);
      // Two exact layouts; keep whichever is smaller for this column:
      // byte planes win on regular data (repetitive mantissas), the
      // exponent/mantissa bit-split wins on continuous data whose
      // mantissa bits are noise.
      std::vector<std::uint8_t> planes_enc;
      {
        std::vector<std::uint8_t> planes(8 * n);
        simd::shuffle_u64(planes.data(), rot.data(), n);
        for (std::size_t plane = 0; plane < 8; ++plane) {
          encode_plane(planes_enc, planes.data() + plane * n, n);
        }
      }
      std::vector<std::uint8_t> split_enc;
      encode_expsplit(split_enc, rot.data(), n);
      if (planes_enc.size() <= split_enc.size()) {
        out.push_back(kLayoutPlanes);
        out.insert(out.end(), planes_enc.begin(), planes_enc.end());
      } else {
        out.push_back(kLayoutExpSplit);
        out.insert(out.end(), split_enc.begin(), split_enc.end());
      }
      break;
    }
    case Codec::kQ8: {
      const std::size_t code_base = out.size();
      std::size_t exc_count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t code = quantize_q8(v[i]);
        out.push_back(code);
        if (code == 0) ++exc_count;
      }
      append_u64(out, exc_count);
      for (std::size_t i = 0; i < n; ++i) {
        if (out[code_base + i] != 0) continue;
        const auto* b = reinterpret_cast<const std::uint8_t*>(&v[i]);
        out.insert(out.end(), b, b + sizeof(double));
      }
      break;
    }
  }
}

const std::uint8_t* decode_f64(const std::uint8_t* p, const std::uint8_t* end,
                               double* out, std::size_t n) {
  const auto need = [&](std::size_t k) {
    if (static_cast<std::size_t>(end - p) < k)
      throw ArtifactError("f64 codec: truncated column");
  };
  need(1);
  const std::uint8_t codec = *p++;
  if (n == 0) {
    if (codec != static_cast<std::uint8_t>(Codec::kRaw) &&
        codec != static_cast<std::uint8_t>(Codec::kShuffle) &&
        codec != static_cast<std::uint8_t>(Codec::kQ8))
      throw ArtifactError("f64 codec: unknown codec byte");
    return p;
  }
  switch (static_cast<Codec>(codec)) {
    case Codec::kRaw:
      need(n * sizeof(double));
      std::memcpy(out, p, n * sizeof(double));
      return p + n * sizeof(double);
    case Codec::kShuffle: {
      need(1);
      const std::uint8_t layout = *p++;
      std::vector<std::uint64_t> rot(n);
      if (layout == kLayoutPlanes) {
        std::vector<std::uint8_t> planes(8 * n);
        for (std::size_t plane = 0; plane < 8; ++plane) {
          p = decode_plane(p, end, planes.data() + plane * n, n);
        }
        simd::unshuffle_u64(rot.data(), planes.data(), n);
      } else if (layout == kLayoutExpSplit) {
        p = decode_expsplit(p, end, rot.data(), n);
      } else {
        throw ArtifactError("shuffle codec: unknown column layout");
      }
      for (auto& x : rot) x = rotr1(x);
      std::memcpy(out, rot.data(), n * sizeof(double));
      return p;
    }
    case Codec::kQ8: {
      need(n + sizeof(std::uint64_t));
      const std::uint8_t* codes = p;
      p += n;
      std::uint64_t exc_count;
      std::memcpy(&exc_count, p, sizeof exc_count);
      p += sizeof exc_count;
      std::size_t zeros = 0;
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<double>(codes[i]);
        if (codes[i] == 0) ++zeros;
      }
      if (exc_count != zeros)
        throw ArtifactError("q8 codec: exception count mismatch");
      need(static_cast<std::size_t>(exc_count) * sizeof(double));
      for (std::size_t i = 0; i < n; ++i) {
        if (codes[i] != 0) continue;
        std::memcpy(&out[i], p, sizeof(double));
        p += sizeof(double);
      }
      return p;
    }
  }
  throw ArtifactError("f64 codec: unknown codec byte");
}

// ---------------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------------

ArtifactWriter::ArtifactWriter(std::ostream& os, const char kind[4],
                               std::uint32_t version)
    : os_(os) {
  write_exact(os_, kContainerMagic, 4);
  write_exact(os_, &kContainerVersion, sizeof kContainerVersion);
  write_exact(os_, kind, 4);
  write_exact(os_, &version, sizeof version);
}

void ArtifactWriter::chunk(const char tag[4], const ChunkWriter& payload) {
  const auto& bytes = payload.data();
  // Mirror of the reader's cap: refuse to persist a chunk no reader will
  // accept back.
  if (bytes.size() > kMaxChunkBytes)
    throw ArtifactError("artifact: chunk exceeds format cap");
  const std::uint64_t len = bytes.size();
  const std::uint32_t crc = crc32c(bytes.data(), bytes.size());
  write_exact(os_, tag, 4);
  write_exact(os_, &len, sizeof len);
  write_exact(os_, &crc, sizeof crc);
  write_exact(os_, bytes.data(), bytes.size());
}

void ArtifactWriter::finish() {
  const std::uint64_t len = 0;
  const std::uint32_t crc = 0;
  write_exact(os_, kEndTag, 4);
  write_exact(os_, &len, sizeof len);
  write_exact(os_, &crc, sizeof crc);
}

ArtifactReader::ArtifactReader(std::istream& is, const char kind[4])
    : is_(is) {
  char magic[4];
  read_exact(is_, magic, 4, "container magic");
  if (std::memcmp(magic, kContainerMagic, 4) != 0)
    throw ArtifactError("artifact: bad container magic");
  std::uint32_t container_version;
  read_exact(is_, &container_version, sizeof container_version,
             "container version");
  if (container_version != kContainerVersion)
    throw ArtifactError("artifact: unsupported container version");
  char got_kind[4];
  read_exact(is_, got_kind, 4, "artifact kind");
  if (std::memcmp(got_kind, kind, 4) != 0)
    throw ArtifactError(std::string("artifact: kind mismatch, want ") +
                        std::string(kind, 4) + " got " +
                        std::string(got_kind, 4));
  read_exact(is_, &version_, sizeof version_, "artifact version");
}

ChunkReader ArtifactReader::chunk(const char tag[4]) {
  // Fault-injection site: an armed "artifact.chunk" error surfaces as this
  // layer's structured error, exactly like real corruption would.
  if (failpoint::any_armed()) {
    try {
      failpoint::check_throw("artifact.chunk");
    } catch (const failpoint::FailpointError& e) {
      throw ArtifactError(e.what());
    }
  }
  char got[4];
  read_exact(is_, got, 4, "chunk tag");
  if (std::memcmp(got, tag, 4) != 0)
    throw ArtifactError(std::string("artifact: chunk tag mismatch, want ") +
                        std::string(tag, 4) + " got " + std::string(got, 4));
  std::uint64_t len;
  std::uint32_t crc;
  read_exact(is_, &len, sizeof len, "chunk length");
  read_exact(is_, &crc, sizeof crc, "chunk crc");
  if (len > kMaxChunkBytes)
    throw ArtifactError("artifact: chunk length implausibly large");
  // Read in bounded pieces so a forged length fails on the (short) stream
  // instead of attempting one multi-gigabyte allocation up front.
  constexpr std::size_t kReadStep = std::size_t{1} << 26;
  std::vector<std::uint8_t> payload;
  payload.reserve(static_cast<std::size_t>(
      len < kReadStep ? len : std::uint64_t{kReadStep}));
  std::uint64_t left = len;
  while (left > 0) {
    const std::size_t step =
        static_cast<std::size_t>(left < kReadStep ? left : kReadStep);
    const std::size_t base = payload.size();
    payload.resize(base + step);
    read_exact(is_, payload.data() + base, step, "chunk payload");
    left -= step;
  }
  if (crc32c(payload.data(), payload.size()) != crc)
    throw ArtifactError(std::string("artifact: CRC mismatch in chunk ") +
                        std::string(tag, 4));
  return ChunkReader(std::move(payload));
}

void ArtifactReader::finish() {
  char got[4];
  read_exact(is_, got, 4, "end marker");
  if (std::memcmp(got, kEndTag, 4) != 0)
    throw ArtifactError("artifact: missing end marker");
  std::uint64_t len;
  std::uint32_t crc;
  read_exact(is_, &len, sizeof len, "end marker length");
  read_exact(is_, &crc, sizeof crc, "end marker crc");
  if (len != 0 || crc != 0)
    throw ArtifactError("artifact: malformed end marker");
}

bool next_is_artifact(std::istream& is) {
  char magic[4];
  const auto pos = is.tellg();
  if (pos != std::istream::pos_type(-1)) {
    is.read(magic, 4);
    const bool got4 = is.gcount() == 4;
    is.clear();
    is.seekg(pos);
    if (!is)
      throw ArtifactError("artifact: could not rewind stream");
    return got4 && std::memcmp(magic, kContainerMagic, 4) == 0;
  }
  // Non-seekable stream (pipe, filtering buffer): peek by get + putback —
  // buffered stream implementations accept putback of just-read chars.
  is.clear();
  int got = 0;
  while (got < 4) {
    const int c = is.get();
    if (c == std::istream::traits_type::eof()) break;
    magic[got++] = static_cast<char>(c);
  }
  is.clear();
  for (int i = got - 1; i >= 0; --i) {
    is.putback(magic[i]);
    if (!is)
      throw ArtifactError("artifact: could not unread magic bytes");
  }
  return got == 4 && std::memcmp(magic, kContainerMagic, 4) == 0;
}

}  // namespace at::common
