// ASCII table / CSV emission for benchmark harnesses.
//
// Every bench binary reproduces one paper table or figure; TableWriter
// formats the rows both as an aligned console table (for reading) and as
// CSV (for plotting), so bench output is directly comparable to the paper.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace at::common {

class TableWriter {
 public:
  explicit TableWriter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before add_row.
  void set_columns(std::vector<std::string> names);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  /// Aligned, boxed console rendering.
  std::string to_ascii() const;
  /// RFC-4180-ish CSV (no quoting of embedded commas needed for our data).
  std::string to_csv() const;

  /// Prints the ASCII table to the stream, preceded by the title.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace at::common
