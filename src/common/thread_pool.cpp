#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace at::common {

namespace {

void pin_current_thread(int cpu) {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(cpu, &mask);
  // Best effort: an out-of-mask CPU or a restricted environment leaves the
  // worker unpinned, which only costs locality, never correctness.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask);
#else
  (void)cpu;
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop({}, i); });
  }
}

ThreadPool::ThreadPool(const std::vector<int>& pin_cpus,
                       std::function<void(std::size_t)> on_worker_start) {
  const std::size_t threads = std::max<std::size_t>(1, pin_cpus.size());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    const int cpu = pin_cpus.empty() ? -1 : pin_cpus[i];
    workers_.emplace_back([this, i, cpu, on_worker_start] {
      if (cpu >= 0) pin_current_thread(cpu);
      worker_loop(on_worker_start, i);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::function<void(std::size_t)> on_start,
                             std::size_t index) {
  if (on_start) on_start(index);
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::run_one_queued_task() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  return true;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;  // nothing to do; never submit an empty-range task
  // chunks >= 1: the constructor always spawns at least one worker, so the
  // ceil-divide below cannot divide by zero even for n < workers.
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Wait for every task before returning (or rethrowing): tasks capture
  // references to fn and this frame, so unwinding on the first exception
  // while siblings still run would leave them with dangling references.
  //
  // While waiting, HELP: execute queued tasks on this thread. This keeps
  // nested parallel_for calls (a pool task fanning out on its own pool)
  // deadlock-free — the blocked caller drains the work its chunks may be
  // queued behind — and costs nothing on the non-nested path because the
  // queue is empty by the time the last chunks finish.
  std::exception_ptr first;
  for (auto& f : futs) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!run_one_queued_task()) {
        // Queue drained but this chunk is still in flight on another
        // thread; block until it finishes (new tasks queued after this
        // point belong to someone who can still run them).
        f.wait();
        break;
      }
    }
    try {
      f.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

}  // namespace at::common
