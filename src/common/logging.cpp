#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/thread_annotations.h"

namespace at::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
Mutex g_log_mutex;  // serializes whole lines onto stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed))
    return;
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace at::common
