// Tiny leveled logger. Benchmarks and examples log progress at INFO;
// library code logs only at DEBUG so tests stay quiet by default.
#pragma once

#include <sstream>
#include <string>

namespace at::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line to stderr (thread-safe).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace at::common

#define AT_LOG_DEBUG ::at::common::detail::LogStream(::at::common::LogLevel::kDebug)
#define AT_LOG_INFO ::at::common::detail::LogStream(::at::common::LogLevel::kInfo)
#define AT_LOG_WARN ::at::common::detail::LogStream(::at::common::LogLevel::kWarn)
#define AT_LOG_ERROR ::at::common::detail::LogStream(::at::common::LogLevel::kError)
