// Binary length-prefixed request/response protocol of the serving front
// end (ISSUE 6 tentpole; shaped after compact control protocols like
// konCePCja's IPC: fixed framing, versioned header, request ids, a small
// op set — everything a headless scripted driver needs).
//
// Framing (all integers little-endian, as everywhere in this repo):
//
//   frame    u32 payload_len | payload[payload_len]
//
// Request payload:
//
//   u8 version (=1) | u8 op | u16 flags (=0) | u64 request_id
//   u32 deadline_ms | op body
//
//   op body  search:    u32 k | u32 nterms | u32 term[nterms]
//            recommend: u32 target_item | u32 n | (u32 item, f64 rating)[n]
//            update:    u32 component | u32 adds | u32 changes | u64 seed
//            stats/ping: empty
//
// Response payload:
//
//   u8 version (=1) | u8 status | u8 tier | u8 reserved (=0)
//   u64 request_id | f64 est_loss_pct | f64 server_ms | u32 retry_after_ms
//   | body
//
//   body     search ok:    u32 ndocs | (f64 score, u64 doc)[ndocs]
//            recommend ok: f64 prediction
//            stats/update ok: u32 len | bytes (JSON)
//            error:        u32 len | bytes (message)
//            shed:         empty
//
// Every decoder is bounds-checked and returns false on malformed input —
// random bytes, truncated headers, forged lengths and oversized frames
// must produce a clean protocol error, never a crash (fuzzed under
// ASan/UBSan in tests/server_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "services/search/topk.h"

namespace at::server::protocol {

inline constexpr std::uint8_t kVersion = 1;
/// Frames above this are rejected at the length prefix, before any
/// allocation — the cap on what a malformed or hostile peer can make the
/// server buffer.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;
inline constexpr std::uint32_t kMaxTerms = 4096;
inline constexpr std::uint32_t kMaxRatings = 1u << 16;
inline constexpr std::uint32_t kMaxDocs = 1u << 16;
/// Cap on rows a single kUpdate request may synthesize (adds + changes
/// each): bounds the retraining work a hostile frame can demand.
inline constexpr std::uint32_t kMaxUpdateRows = 4096;

enum class Op : std::uint8_t {
  kSearch = 1,
  kRecommend = 2,
  kStats = 3,
  kPing = 4,
  kUpdate = 5,  // online retraining: seeded synthetic batch into one shard
};

enum class Status : std::uint8_t {
  kOk = 0,          // answered (tier says at what fidelity)
  kShed = 1,        // admission control refused; honor retry_after_ms
  kError = 2,       // server-side failure; message in `text`
  kBadRequest = 3,  // malformed or unsupported request; message in `text`
};

/// Degradation-ladder rung an answer was served from, in decreasing cost
/// and fidelity. Recorded in every response together with est_loss_pct so
/// a degraded answer is never unmarked.
enum class Tier : std::uint8_t {
  kFull = 0,      // full block-decode scan (est_loss_pct > 0 when some
                  // components were unavailable and the merge was partial)
  kSynopsis = 1,  // synopsis-only (stage-1) answer
  kCached = 2,    // served from the server's answer cache
  kNone = 3,      // no answer produced (shed / error / ping / stats)
};

const char* to_string(Status s);
const char* to_string(Tier t);

struct Request {
  std::uint64_t request_id = 0;
  Op op = Op::kPing;
  std::uint32_t deadline_ms = 0;  // 0 = server default
  // search
  std::uint32_t k = 10;
  std::vector<std::uint32_t> terms;
  // recommend
  std::uint32_t target_item = 0;
  std::vector<std::pair<std::uint32_t, double>> ratings;
  // update: deterministic batch synthesized server-side from the seed, so
  // the wire cost of driving retraining load stays O(1) per request
  std::uint32_t update_component = 0;
  std::uint32_t update_adds = 0;
  std::uint32_t update_changes = 0;
  std::uint64_t update_seed = 0;
};

struct Response {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  Tier tier = Tier::kNone;
  double est_loss_pct = 0.0;
  double server_ms = 0.0;
  std::uint32_t retry_after_ms = 0;
  // search
  std::vector<search::ScoredDoc> docs;
  // recommend
  double prediction = 0.0;
  // stats JSON / error message
  std::string text;
  Op op = Op::kPing;  // which body layout docs/prediction/text follows
};

/// Encodes a complete frame (length prefix included).
std::vector<std::uint8_t> encode_request(const Request& req);
std::vector<std::uint8_t> encode_response(const Response& resp);

/// Decodes one frame payload (the bytes after the length prefix). On any
/// malformed byte returns false and sets `err`; `out` may be partially
/// filled then and must be discarded.
bool decode_request(const std::uint8_t* p, std::size_t n, Request* out,
                    std::string* err);
/// The response body layout is chosen by the request's op, which the wire
/// does not repeat — set `out->op` to the op of the request this response
/// answers before decoding (the client library does this for you).
bool decode_response(const std::uint8_t* p, std::size_t n, Response* out,
                     std::string* err);

/// Reassembles frames from an arbitrary-chunked byte stream (socket
/// reads). append() what arrives, then pull() until it stops returning
/// kFrame. kBad means the stream is unrecoverable (forged length): close
/// the connection.
class FrameBuffer {
 public:
  enum class Pull { kFrame, kNeedMore, kBad };

  void append(const std::uint8_t* p, std::size_t n) {
    buf_.insert(buf_.end(), p, p + n);
  }
  Pull pull(std::vector<std::uint8_t>* payload);
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
};

}  // namespace at::server::protocol
