// Deadline-aware TCP serving front end (ISSUE 6 tentpole): the live
// request path the paper's accuracy-for-latency trade finally runs
// against.
//
// Threading: one acceptor thread; one frame-I/O thread per connection;
// one serving worker per executor group ("thread-per-group"), each
// draining its own bounded request queue and dispatching query fan-out
// onto the ShardedExecutor. Admission control runs at enqueue time: a
// request whose deadline is already unmeetable given the queue ahead of
// it — or that would overflow the group's queue bound — is shed
// immediately with a retry-after hint instead of rotting in the queue.
//
// Degradation ladder, walked as the remaining deadline budget shrinks
// (each rung's cost is a live EWMA of observed executions, seeded by a
// calibration pass at start()):
//
//   full      full block-decode scan over every component. Components
//             that fail (dead group, injected fault) are skipped and the
//             loss of their doc share is recorded — a partial answer is
//             marked, never silent.
//   synopsis  stage-1-only answer from the aggregated synopsis pages
//             (estimated loss: calibrated mean overlap deficit).
//   cached    the server's bounded answer cache. Fresh entries also serve
//             as the normal fast path; entries from an older data epoch
//             are only used here, as a stale degraded answer, with a
//             staleness penalty added to their recorded loss.
//   shed      structured refusal with retry-after.
//
// Every response records the rung (tier) and estimated accuracy loss;
// per-tier latency and loss aggregate into the stats op / stats_json().
// Failure handling is total: any exception in a rung falls to the next
// rung, any exception outside the ladder becomes a structured error
// response, malformed frames close only their connection — the process
// never crashes (proven by the failpoint suites).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <istream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sharded_executor.h"
#include "common/thread_annotations.h"
#include "common/stats.h"
#include "server/protocol.h"
#include "services/recommender/service.h"
#include "services/search/query_cache.h"
#include "services/search/service.h"

namespace at::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read the bound port from port()
  /// Admission bound: pending requests per serving group.
  std::size_t max_queue_per_group = 64;
  /// Applied when a request carries deadline_ms == 0.
  double default_deadline_ms = 100.0;
  /// Answer cache bounds (entries + bytes; see QueryCache).
  std::size_t cache_capacity = 4096;
  std::size_t cache_max_bytes = std::size_t{4} << 20;
  /// A rung is attempted only when remaining_budget >= est_cost * safety.
  double ladder_safety = 1.3;
  /// Loss penalty recorded on top of a stale (previous-epoch) cached
  /// answer.
  double stale_penalty_pct = 10.0;
  /// Fallback synopsis-tier loss estimate when no calibration queries
  /// were provided.
  double default_synopsis_loss_pct = 20.0;
  /// Queries run at start() to seed the per-rung cost EWMAs and measure
  /// the synopsis tier's actual accuracy loss on this corpus.
  std::vector<search::SearchRequest> calibration_queries;
};

/// One rung's aggregate: request count, latency percentiles and mean
/// recorded loss. Snapshot type returned to tests and rendered into the
/// stats op's JSON.
struct TierSnapshot {
  std::uint64_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_loss_pct = 0.0;
};

struct ServingSnapshot {
  TierSnapshot full, synopsis, cached;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t bad_frames = 0;
  std::uint64_t connections = 0;
  std::uint64_t accepted = 0;  // admitted requests (all ops)
  double est_full_ms = 0.0;
  double est_synopsis_ms = 0.0;
  double synopsis_loss_pct = 0.0;
  std::uint64_t data_epoch = 0;
};

class Server {
 public:
  /// `reco` may be null (recommend requests then get a structured
  /// bad-request response). The caller owns services and executor; they
  /// must outlive the server.
  Server(search::SearchService& search, reco::CfService* reco,
         common::ShardedExecutor& exec, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, calibrates, spawns acceptor + per-group workers. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Stops accepting, drains every queued request, joins all threads.
  /// Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  ServingSnapshot snapshot() const;
  std::string stats_json() const;

  /// Marks every currently cached answer as belonging to an older data
  /// epoch: still servable, but only as the stale-cached degradation rung
  /// with a loss penalty. Called by the update path; exposed so tests can
  /// drive the rung directly.
  void bump_data_epoch();

  /// Strong-guarantee snapshot reload of one search component (see
  /// SearchService::reload_component); serialized against in-flight
  /// queries and bumps the data epoch on success.
  void reload_search_component(std::size_t c, std::istream& is);

 private:
  struct Job;
  struct GroupQueue;

  void acceptor_loop();
  void connection_loop(int fd, std::uint64_t conn_id);
  void worker_loop(std::size_t g);

  /// Admission decision + enqueue; returns false when the request was
  /// shed or refused (then *shed_resp is the response to send), true when
  /// enqueued (then *done observes the eventual response).
  bool admit(protocol::Request req, protocol::Response* shed_resp,
             std::future<protocol::Response>* done);

  protocol::Response serve(const Job& job);
  /// Ladder rungs run with state_mutex_ held shared: a component reload
  /// (exclusive holder) can never swap data out from under a scan.
  protocol::Response serve_search(const protocol::Request& req,
                                  double remaining_ms)
      AT_REQUIRES_SHARED(state_mutex_);
  protocol::Response serve_recommend(const protocol::Request& req,
                                     double remaining_ms)
      AT_REQUIRES_SHARED(state_mutex_);
  void record(const protocol::Response& resp);
  void calibrate();
  void observe_cost(std::atomic<double>& est_ms, double observed_ms);

  search::SearchService& search_;
  reco::CfService* reco_;
  common::ShardedExecutor& exec_;
  ServerConfig config_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::unique_ptr<GroupQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> rr_next_group_{0};

  common::Mutex conn_mutex_;
  struct Connection {
    int fd = -1;
    std::thread thread;
  };
  std::vector<std::unique_ptr<Connection>> connections_
      AT_GUARDED_BY(conn_mutex_);

  // Answer cache: full-tier answers keyed by canonical terms, annotated
  // (QueryCache::ResultMeta) with recorded loss + the data epoch they were
  // computed in. Thread-safe and doubly bounded (entries + bytes).
  std::unique_ptr<search::QueryCache> cache_;
  std::atomic<std::uint64_t> data_epoch_{0};

  // Reloads swap a component while workers may be scanning it: workers
  // hold this shared, reload_search_component holds it exclusively.
  common::SharedMutex state_mutex_;

  // Ladder cost model.
  std::atomic<double> est_full_ms_{0.0};
  std::atomic<double> est_synopsis_ms_{0.0};
  std::atomic<double> est_recommend_full_ms_{0.0};
  std::atomic<double> est_recommend_syn_ms_{0.0};
  double synopsis_loss_pct_ = 0.0;

  // Aggregated serving stats.
  mutable common::Mutex stats_mutex_;
  common::PercentileTracker lat_full_ AT_GUARDED_BY(stats_mutex_),
      lat_synopsis_ AT_GUARDED_BY(stats_mutex_),
      lat_cached_ AT_GUARDED_BY(stats_mutex_);
  common::StreamingStats loss_full_ AT_GUARDED_BY(stats_mutex_),
      loss_synopsis_ AT_GUARDED_BY(stats_mutex_),
      loss_cached_ AT_GUARDED_BY(stats_mutex_);
  std::uint64_t shed_ AT_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t errors_ AT_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t accepted_ AT_GUARDED_BY(stats_mutex_) = 0;
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::uint64_t> connections_seen_{0};
};

}  // namespace at::server
