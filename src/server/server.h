// Deadline-aware TCP serving front end (ISSUE 6 tentpole): the live
// request path the paper's accuracy-for-latency trade finally runs
// against.
//
// Threading: one acceptor thread; one frame-I/O thread per connection;
// one serving worker per executor group ("thread-per-group"), each
// draining its own bounded request queue and dispatching query fan-out
// onto the ShardedExecutor. Admission control runs at enqueue time: a
// request whose deadline is already unmeetable given the queue ahead of
// it — or that would overflow the group's queue bound — is shed
// immediately with a retry-after hint instead of rotting in the queue.
//
// Degradation ladder, walked as the remaining deadline budget shrinks
// (each rung's cost is a live EWMA of observed executions, seeded by a
// calibration pass at start()):
//
//   full      full block-decode scan over every component. Components
//             that fail (dead group, injected fault) are skipped and the
//             loss of their doc share is recorded — a partial answer is
//             marked, never silent.
//   synopsis  stage-1-only answer from the aggregated synopsis pages
//             (estimated loss: calibrated mean overlap deficit).
//   cached    the server's bounded answer cache. Fresh entries also serve
//             as the normal fast path; entries from an older data epoch
//             are only used here, as a stale degraded answer, with a
//             staleness penalty added to their recorded loss.
//   shed      structured refusal with retry-after.
//
// Online retraining (ISSUE 8): queries never block on updates. Every
// component owns an RCU epoch slot; a query pins the current snapshot and
// scans it to completion while kUpdate requests retrain the shadow copy
// and publish a new epoch with a pointer swap. There is no serving-path
// reader/writer lock anywhere — freshness is an epoch token: cached
// answers are stamped with the effective epoch (reload bumps +
// per-component publish versions) they were computed in, and every publish
// re-annotates older cache entries as stale with an accuracy penalty.
// When `delta_dir` is set, each publish also emits an ATAC "DLTA" delta
// artifact a warm standby can tail (see src/synopsis/delta.h).
//
// Every response records the rung (tier) and estimated accuracy loss;
// per-tier latency and loss aggregate into the stats op / stats_json().
// Failure handling is total: any exception in a rung falls to the next
// rung, any exception outside the ladder becomes a structured error
// response, malformed frames close only their connection — the process
// never crashes (proven by the failpoint suites).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <istream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sharded_executor.h"
#include "common/thread_annotations.h"
#include "common/stats.h"
#include "server/protocol.h"
#include "services/recommender/service.h"
#include "services/search/query_cache.h"
#include "services/search/service.h"

namespace at::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read the bound port from port()
  /// Admission bound: pending requests per serving group.
  std::size_t max_queue_per_group = 64;
  /// Applied when a request carries deadline_ms == 0.
  double default_deadline_ms = 100.0;
  /// Answer cache bounds (entries + bytes; see QueryCache).
  std::size_t cache_capacity = 4096;
  std::size_t cache_max_bytes = std::size_t{4} << 20;
  /// A rung is attempted only when remaining_budget >= est_cost * safety.
  double ladder_safety = 1.3;
  /// Loss penalty recorded on top of a stale (previous-epoch) cached
  /// answer.
  double stale_penalty_pct = 10.0;
  /// Fallback synopsis-tier loss estimate when no calibration queries
  /// were provided.
  double default_synopsis_loss_pct = 20.0;
  /// Queries run at start() to seed the per-rung cost EWMAs and measure
  /// the synopsis tier's actual accuracy loss on this corpus.
  std::vector<search::SearchRequest> calibration_queries;
  /// When non-empty, every component publish — search ("c") and
  /// recommender ("r") alike — writes one ATAC "DLTA" delta artifact
  /// (`delta_c<comp>_<ver>.atac` / `delta_r<comp>_<ver>.atac`, version
  /// zero-padded, written to a ".tmp" name and atomically renamed) into
  /// this directory for warm-standby tailing. A failed delta write is
  /// counted, never fatal — the epoch itself is already live.
  std::string delta_dir;
};

/// One rung's aggregate: request count, latency percentiles and mean
/// recorded loss. Snapshot type returned to tests and rendered into the
/// stats op's JSON.
struct TierSnapshot {
  std::uint64_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_loss_pct = 0.0;
};

struct ServingSnapshot {
  TierSnapshot full, synopsis, cached;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t bad_frames = 0;
  std::uint64_t connections = 0;
  std::uint64_t accepted = 0;  // admitted requests (all ops)
  double est_full_ms = 0.0;
  double est_synopsis_ms = 0.0;
  double synopsis_loss_pct = 0.0;
  std::uint64_t data_epoch = 0;   // reload bumps only
  std::uint64_t updates = 0;      // kUpdate requests applied
  std::uint64_t epoch_version = 0;    // effective epoch (freshness token)
  std::uint64_t epoch_published = 0;  // snapshots published across shards
  std::uint64_t epoch_retired = 0;    // snapshots fully drained + freed
  std::uint64_t deltas_written = 0;   // DLTA artifacts emitted
  std::uint64_t delta_failures = 0;   // DLTA writes that failed (injected)
};

class Server {
 public:
  /// `reco` may be null (recommend requests then get a structured
  /// bad-request response). The caller owns services and executor; they
  /// must outlive the server.
  Server(search::SearchService& search, reco::CfService* reco,
         common::ShardedExecutor& exec, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, calibrates, spawns acceptor + per-group workers. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Stops accepting, drains every queued request, joins all threads.
  /// Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  ServingSnapshot snapshot() const;
  std::string stats_json() const;

  /// Marks every currently cached answer as belonging to an older data
  /// epoch: still servable, but only as the stale-cached degradation rung
  /// with a loss penalty. Called by the reload path; exposed so tests can
  /// drive the rung directly.
  void bump_data_epoch();

  /// Strong-guarantee snapshot reload of one search component (see
  /// SearchService::reload_component). In-flight queries keep scanning
  /// their pinned epoch snapshots — the swap is a publish, not a lock —
  /// and the data epoch is bumped on success.
  void reload_search_component(std::size_t c, std::istream& is);

  /// Effective epoch: reload bumps + the sum of every search component's
  /// published version. Monotonic; changes whenever any shard's data does.
  std::uint64_t epoch_now() const;

  /// Writes a full warm-standby checkpoint into `dir`: one SCMP artifact
  /// per search component (`ckpt_c<comp>_<version>.atac`), one RCMP per
  /// recommender component (`ckpt_r<comp>_<version>.atac`), and the
  /// corpus-global idf as a 1xN MATX matrix (`ckpt_idf.atac`). Each
  /// component's (snapshot, version) pair is pinned atomically, and every
  /// file is written to a ".tmp" name then renamed, so a tailing replica
  /// never observes a half-framed artifact. Per-component chains stay
  /// consistent under concurrent updates (deltas at or below the
  /// checkpointed version are simply skipped at replay); do not call
  /// concurrently with reload_search_component (the idf would be torn
  /// across components). Throws on I/O failure.
  void write_checkpoint(const std::string& dir) const;

 private:
  struct Job;
  struct GroupQueue;

  void acceptor_loop();
  void connection_loop(int fd, std::uint64_t conn_id);
  void worker_loop(std::size_t g);

  /// Admission decision + enqueue; returns false when the request was
  /// shed or refused (then *shed_resp is the response to send), true when
  /// enqueued (then *done observes the eventual response).
  bool admit(protocol::Request req, protocol::Response* shed_resp,
             std::future<protocol::Response>* done);

  protocol::Response serve(const Job& job);
  /// Ladder rungs take no lock: each scan pins the epoch snapshots it
  /// needs, so a concurrent update/reload publish never blocks or tears
  /// a query.
  protocol::Response serve_search(const protocol::Request& req,
                                  double remaining_ms);
  protocol::Response serve_recommend(const protocol::Request& req,
                                     double remaining_ms);
  protocol::Response serve_update(const protocol::Request& req);
  /// `kind` is 'c' (search) or 'r' (recommender) — the stream-filename
  /// namespace the delta lands in.
  void write_delta(char kind, std::size_t c, const synopsis::UpdateBatch& batch,
                   std::uint64_t from, std::uint64_t to);
  void record(const protocol::Response& resp);
  void calibrate();
  void observe_cost(std::atomic<double>& est_ms, double observed_ms);

  search::SearchService& search_;
  reco::CfService* reco_;
  common::ShardedExecutor& exec_;
  ServerConfig config_;

  // Atomic: stop() closes and clears the fd while acceptor_loop reads it.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::unique_ptr<GroupQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> rr_next_group_{0};

  common::Mutex conn_mutex_;
  struct Connection {
    int fd = -1;
    std::thread thread;
  };
  std::vector<std::unique_ptr<Connection>> connections_
      AT_GUARDED_BY(conn_mutex_);

  // Answer cache: full-tier answers keyed by canonical terms, annotated
  // (QueryCache::ResultMeta) with recorded loss + the effective epoch they
  // were computed in. Thread-safe and doubly bounded (entries + bytes).
  // Every publish re-annotates entries from retired epochs as stale.
  std::unique_ptr<search::QueryCache> cache_;
  std::atomic<std::uint64_t> data_epoch_{0};  // reload counter

  // Ladder cost model.
  std::atomic<double> est_full_ms_{0.0};
  std::atomic<double> est_synopsis_ms_{0.0};
  std::atomic<double> est_recommend_full_ms_{0.0};
  std::atomic<double> est_recommend_syn_ms_{0.0};
  double synopsis_loss_pct_ = 0.0;

  // Aggregated serving stats.
  mutable common::Mutex stats_mutex_;
  common::PercentileTracker lat_full_ AT_GUARDED_BY(stats_mutex_),
      lat_synopsis_ AT_GUARDED_BY(stats_mutex_),
      lat_cached_ AT_GUARDED_BY(stats_mutex_);
  common::StreamingStats loss_full_ AT_GUARDED_BY(stats_mutex_),
      loss_synopsis_ AT_GUARDED_BY(stats_mutex_),
      loss_cached_ AT_GUARDED_BY(stats_mutex_);
  std::uint64_t shed_ AT_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t errors_ AT_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t accepted_ AT_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t updates_ AT_GUARDED_BY(stats_mutex_) = 0;
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::uint64_t> connections_seen_{0};
  std::atomic<std::uint64_t> deltas_written_{0};
  std::atomic<std::uint64_t> delta_failures_{0};
};

}  // namespace at::server
