#include "server/replay.h"

#include <sstream>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

namespace at::server {

void ReplayReport::merge(const ReplayReport& other) {
  requests += other.requests;
  ok_full += other.ok_full;
  ok_synopsis += other.ok_synopsis;
  ok_cached += other.ok_cached;
  ok_updates += other.ok_updates;
  shed_responses += other.shed_responses;
  server_errors += other.server_errors;
  transport_errors += other.transport_errors;
  retries += other.retries;
  failures += other.failures;
  lat_full_ms.merge(other.lat_full_ms);
  lat_synopsis_ms.merge(other.lat_synopsis_ms);
  lat_cached_ms.merge(other.lat_cached_ms);
  lat_update_ms.merge(other.lat_update_ms);
  loss_full.merge(other.loss_full);
  loss_synopsis.merge(other.loss_synopsis);
  loss_cached.merge(other.loss_cached);
}

std::string ReplayReport::to_json() const {
  std::ostringstream os;
  const auto tier = [&os](const char* name,
                          const common::PercentileTracker& lat,
                          const common::StreamingStats& loss,
                          std::uint64_t count) {
    os << "\"" << name << "\": {\"count\": " << count
       << ", \"p50_ms\": " << lat.median() << ", \"p99_ms\": " << lat.p99()
       << ", \"mean_loss_pct\": " << loss.mean() << "}";
  };
  os << "{";
  tier("full", lat_full_ms, loss_full, ok_full);
  os << ", ";
  tier("synopsis", lat_synopsis_ms, loss_synopsis, ok_synopsis);
  os << ", ";
  tier("cached", lat_cached_ms, loss_cached, ok_cached);
  os << ", \"update\": {\"count\": " << ok_updates
     << ", \"p50_ms\": " << lat_update_ms.median()
     << ", \"p99_ms\": " << lat_update_ms.p99() << "}";
  os << ", \"requests\": " << requests
     << ", \"shed_responses\": " << shed_responses
     << ", \"shed_rate\": " << shed_rate()
     << ", \"server_errors\": " << server_errors
     << ", \"transport_errors\": " << transport_errors
     << ", \"retries\": " << retries << ", \"failures\": " << failures
     << "}";
  return os.str();
}

ReplayReport run_replay(const ReplayConfig& config) {
  const workload::CorpusGen gen(config.corpus);
  ReplayReport total;

  auto client_thread = [&](std::size_t id, ReplayReport* out) {
    ClientConfig ccfg = config.client;
    ccfg.host = config.host;
    ccfg.port = config.port;
    ccfg.jitter_seed = config.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1));
    Client client(ccfg);
    common::Rng rng(config.seed + id * 1000003);

    for (std::size_t i = 0; i < config.requests_per_client; ++i) {
      protocol::Response resp;
      std::string err;
      bool delivered;
      bool is_update = false;
      common::Stopwatch sw;
      if (config.update_fraction > 0.0 &&
          rng.uniform() < config.update_fraction) {
        // Retraining op interleaved with the query stream: the batch is
        // synthesized server-side from this deterministic seed, so a rerun
        // replays the identical update sequence against each component.
        is_update = true;
        const auto comp = static_cast<std::uint32_t>(
            rng.uniform_index(std::max<std::uint32_t>(1,
                                  config.update_components)));
        delivered = client.update(comp, config.update_adds,
                                  config.update_changes, rng(),
                                  config.deadline_ms, &resp, &err);
      } else if (rng.uniform() < config.recommend_fraction) {
        std::vector<std::pair<std::uint32_t, double>> ratings;
        const std::size_t n = 3 + rng.uniform_index(5);
        for (std::size_t r = 0; r < n; ++r)
          ratings.emplace_back(
              static_cast<std::uint32_t>(rng.uniform_index(256)),
              1.0 + rng.uniform(0.0, 4.0));
        delivered = client.recommend(
            static_cast<std::uint32_t>(rng.uniform_index(256)), ratings,
            config.deadline_ms, &resp, &err);
      } else {
        const auto query = gen.sample_query(rng);
        delivered = client.search(query.terms, config.deadline_ms, config.k,
                                  &resp, &err);
      }
      const double ms = sw.elapsed_ms();
      ++out->requests;
      if (!delivered) {
        ++out->failures;
        continue;
      }
      switch (resp.status) {
        case protocol::Status::kOk:
          if (is_update) {
            ++out->ok_updates;
            out->lat_update_ms.add(ms);
            break;
          }
          switch (resp.tier) {
            case protocol::Tier::kFull:
              ++out->ok_full;
              out->lat_full_ms.add(ms);
              out->loss_full.add(resp.est_loss_pct);
              break;
            case protocol::Tier::kSynopsis:
              ++out->ok_synopsis;
              out->lat_synopsis_ms.add(ms);
              out->loss_synopsis.add(resp.est_loss_pct);
              break;
            case protocol::Tier::kCached:
              ++out->ok_cached;
              out->lat_cached_ms.add(ms);
              out->loss_cached.add(resp.est_loss_pct);
              break;
            case protocol::Tier::kNone:
              break;
          }
          break;
        case protocol::Status::kShed:
          break;  // call() retries sheds; counted below from client stats
        case protocol::Status::kError:
        case protocol::Status::kBadRequest:
          ++out->server_errors;
          break;
      }
    }
    out->shed_responses += client.stats_counters().sheds_seen;
    out->transport_errors += client.stats_counters().transport_errors;
    out->retries += client.stats_counters().retries;
  };

  std::vector<std::thread> threads;
  std::vector<ReplayReport> partials(config.num_clients);
  for (std::size_t id = 0; id < config.num_clients; ++id)
    threads.emplace_back(client_thread, id, &partials[id]);
  for (auto& t : threads) t.join();
  for (const auto& p : partials) total.merge(p);
  return total;
}

}  // namespace at::server
