#include "server/protocol.h"

#include <cstring>

namespace at::server::protocol {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kShed:
      return "shed";
    case Status::kError:
      return "error";
    case Status::kBadRequest:
      return "bad_request";
  }
  return "?";
}

const char* to_string(Tier t) {
  switch (t) {
    case Tier::kFull:
      return "full";
    case Tier::kSynopsis:
      return "synopsis";
    case Tier::kCached:
      return "cached";
    case Tier::kNone:
      return "none";
  }
  return "?";
}

namespace {

/// Append-only little-endian writer over a byte vector.
struct Put {
  std::vector<std::uint8_t>& out;
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + n);
  }
  void u8(std::uint8_t v) { out.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
};

/// Bounds-checked non-throwing reader: every get reports failure instead
/// of reading past the payload, so fuzzed bytes cannot crash the decoder.
struct Cur {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool fail = false;

  template <typename T>
  T fixed() {
    if (fail || static_cast<std::size_t>(end - p) < sizeof(T)) {
      fail = true;
      return T{};
    }
    T v;
    std::memcpy(&v, p, sizeof v);
    p += sizeof v;
    return v;
  }
  std::uint8_t u8() { return fixed<std::uint8_t>(); }
  std::uint16_t u16() { return fixed<std::uint16_t>(); }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  double f64() { return fixed<double>(); }
  std::size_t remaining() const { return static_cast<std::size_t>(end - p); }
};

bool fail(std::string* err, const char* what) {
  if (err != nullptr) *err = what;
  return false;
}

void finish_frame(std::vector<std::uint8_t>& frame) {
  const std::uint32_t len =
      static_cast<std::uint32_t>(frame.size() - sizeof(std::uint32_t));
  std::memcpy(frame.data(), &len, sizeof len);
}

}  // namespace

std::vector<std::uint8_t> encode_request(const Request& req) {
  std::vector<std::uint8_t> frame(sizeof(std::uint32_t), 0);
  Put w{frame};
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(req.op));
  w.u16(0);
  w.u64(req.request_id);
  w.u32(req.deadline_ms);
  switch (req.op) {
    case Op::kSearch:
      w.u32(req.k);
      w.u32(static_cast<std::uint32_t>(req.terms.size()));
      for (auto t : req.terms) w.u32(t);
      break;
    case Op::kRecommend:
      w.u32(req.target_item);
      w.u32(static_cast<std::uint32_t>(req.ratings.size()));
      for (const auto& [item, rating] : req.ratings) {
        w.u32(item);
        w.f64(rating);
      }
      break;
    case Op::kUpdate:
      w.u32(req.update_component);
      w.u32(req.update_adds);
      w.u32(req.update_changes);
      w.u64(req.update_seed);
      break;
    case Op::kStats:
    case Op::kPing:
      break;
  }
  finish_frame(frame);
  return frame;
}

std::vector<std::uint8_t> encode_response(const Response& resp) {
  std::vector<std::uint8_t> frame(sizeof(std::uint32_t), 0);
  Put w{frame};
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(resp.status));
  w.u8(static_cast<std::uint8_t>(resp.tier));
  w.u8(0);
  w.u64(resp.request_id);
  w.f64(resp.est_loss_pct);
  w.f64(resp.server_ms);
  w.u32(resp.retry_after_ms);
  if (resp.status == Status::kOk && resp.op == Op::kSearch) {
    w.u32(static_cast<std::uint32_t>(resp.docs.size()));
    for (const auto& d : resp.docs) {
      w.f64(d.score);
      w.u64(d.doc);
    }
  } else if (resp.status == Status::kOk && resp.op == Op::kRecommend) {
    w.f64(resp.prediction);
  } else if ((resp.status == Status::kOk &&
              (resp.op == Op::kStats || resp.op == Op::kUpdate)) ||
             resp.status == Status::kError ||
             resp.status == Status::kBadRequest) {
    w.u32(static_cast<std::uint32_t>(resp.text.size()));
    w.raw(resp.text.data(), resp.text.size());
  }
  // shed / ok-ping: header only.
  finish_frame(frame);
  return frame;
}

bool decode_request(const std::uint8_t* p, std::size_t n, Request* out,
                    std::string* err) {
  Cur c{p, p + n};
  const std::uint8_t version = c.u8();
  const std::uint8_t op = c.u8();
  const std::uint16_t flags = c.u16();
  out->request_id = c.u64();
  out->deadline_ms = c.u32();
  if (c.fail) return fail(err, "truncated request header");
  if (version != kVersion) return fail(err, "unsupported protocol version");
  if (flags != 0) return fail(err, "nonzero reserved flags");
  switch (op) {
    case static_cast<std::uint8_t>(Op::kSearch): {
      out->op = Op::kSearch;
      out->k = c.u32();
      const std::uint32_t nterms = c.u32();
      if (c.fail) return fail(err, "truncated search body");
      if (nterms > kMaxTerms) return fail(err, "too many query terms");
      if (c.remaining() < nterms * sizeof(std::uint32_t))
        return fail(err, "term list overruns frame");
      out->terms.resize(nterms);
      for (auto& t : out->terms) t = c.u32();
      break;
    }
    case static_cast<std::uint8_t>(Op::kRecommend): {
      out->op = Op::kRecommend;
      out->target_item = c.u32();
      const std::uint32_t nr = c.u32();
      if (c.fail) return fail(err, "truncated recommend body");
      if (nr > kMaxRatings) return fail(err, "too many ratings");
      if (c.remaining() < nr * (sizeof(std::uint32_t) + sizeof(double)))
        return fail(err, "rating list overruns frame");
      out->ratings.resize(nr);
      for (auto& [item, rating] : out->ratings) {
        item = c.u32();
        rating = c.f64();
      }
      break;
    }
    case static_cast<std::uint8_t>(Op::kUpdate): {
      out->op = Op::kUpdate;
      out->update_component = c.u32();
      out->update_adds = c.u32();
      out->update_changes = c.u32();
      out->update_seed = c.u64();
      if (c.fail) return fail(err, "truncated update body");
      if (out->update_adds > kMaxUpdateRows ||
          out->update_changes > kMaxUpdateRows)
        return fail(err, "update batch too large");
      break;
    }
    case static_cast<std::uint8_t>(Op::kStats):
      out->op = Op::kStats;
      break;
    case static_cast<std::uint8_t>(Op::kPing):
      out->op = Op::kPing;
      break;
    default:
      return fail(err, "unknown op");
  }
  if (c.fail) return fail(err, "truncated request body");
  if (c.remaining() != 0) return fail(err, "trailing bytes in request");
  return true;
}

bool decode_response(const std::uint8_t* p, std::size_t n, Response* out,
                     std::string* err) {
  Cur c{p, p + n};
  const std::uint8_t version = c.u8();
  const std::uint8_t status = c.u8();
  const std::uint8_t tier = c.u8();
  (void)c.u8();  // reserved
  out->request_id = c.u64();
  out->est_loss_pct = c.f64();
  out->server_ms = c.f64();
  out->retry_after_ms = c.u32();
  if (c.fail) return fail(err, "truncated response header");
  if (version != kVersion) return fail(err, "unsupported protocol version");
  if (status > static_cast<std::uint8_t>(Status::kBadRequest))
    return fail(err, "unknown status");
  if (tier > static_cast<std::uint8_t>(Tier::kNone))
    return fail(err, "unknown tier");
  out->status = static_cast<Status>(status);
  out->tier = static_cast<Tier>(tier);
  // Body layout depends on what the caller asked for; the client knows its
  // own op. Try the layouts that are self-describing.
  if (out->status == Status::kError || out->status == Status::kBadRequest ||
      (out->status == Status::kOk && c.remaining() > 0 &&
       (out->op == Op::kStats || out->op == Op::kUpdate))) {
    const std::uint32_t len = c.u32();
    if (c.fail || len > c.remaining())
      return fail(err, "text overruns frame");
    out->text.assign(reinterpret_cast<const char*>(c.p), len);
    c.p += len;
  } else if (out->status == Status::kOk && out->op == Op::kSearch) {
    const std::uint32_t ndocs = c.u32();
    if (c.fail) return fail(err, "truncated doc list");
    if (ndocs > kMaxDocs) return fail(err, "too many docs");
    if (c.remaining() < ndocs * (sizeof(double) + sizeof(std::uint64_t)))
      return fail(err, "doc list overruns frame");
    out->docs.resize(ndocs);
    for (auto& d : out->docs) {
      d.score = c.f64();
      d.doc = c.u64();
    }
  } else if (out->status == Status::kOk && out->op == Op::kRecommend) {
    out->prediction = c.f64();
  }
  if (c.fail) return fail(err, "truncated response body");
  if (c.remaining() != 0) return fail(err, "trailing bytes in response");
  return true;
}

FrameBuffer::Pull FrameBuffer::pull(std::vector<std::uint8_t>* payload) {
  if (buf_.size() - pos_ < sizeof(std::uint32_t)) {
    if (pos_ > 0) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
    return Pull::kNeedMore;
  }
  std::uint32_t len;
  std::memcpy(&len, buf_.data() + pos_, sizeof len);
  if (len > kMaxFrameBytes) return Pull::kBad;  // forged length: give up
  if (buf_.size() - pos_ - sizeof len < len) return Pull::kNeedMore;
  const std::uint8_t* body = buf_.data() + pos_ + sizeof len;
  payload->assign(body, body + len);
  pos_ += sizeof len + len;
  // Compact once the consumed prefix dominates, keeping append() amortized.
  if (pos_ > (std::size_t{1} << 16) && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return Pull::kFrame;
}

}  // namespace at::server::protocol
