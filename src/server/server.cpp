#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "linalg/matrix.h"
#include "synopsis/delta.h"

namespace at::server {

using protocol::Op;
using protocol::Request;
using protocol::Response;
using protocol::Status;
using protocol::Tier;

namespace {

using SteadyClock = std::chrono::steady_clock;

double ms_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

/// Full write with EINTR/partial handling; MSG_NOSIGNAL so a reset peer
/// yields EPIPE instead of killing the process with SIGPIPE. Returns
/// false on any error (caller closes the connection).
bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Queues and jobs
// ---------------------------------------------------------------------------

struct Server::Job {
  Request req;
  SteadyClock::time_point enqueued;
  std::promise<Response> done;
};

struct Server::GroupQueue {
  common::Mutex mutex;
  common::CondVar cv;
  std::deque<Job> jobs AT_GUARDED_BY(mutex);
  bool open AT_GUARDED_BY(mutex) = true;  // false: worker drains and exits
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Server::Server(search::SearchService& search, reco::CfService* reco,
               common::ShardedExecutor& exec, ServerConfig config)
    : search_(search),
      reco_(reco),
      exec_(exec),
      config_(std::move(config)),
      synopsis_loss_pct_(config_.default_synopsis_loss_pct) {
  cache_ = std::make_unique<search::QueryCache>(config_.cache_capacity,
                                                config_.cache_max_bytes);
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load()) return;
  calibrate();

  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) throw std::runtime_error("server: socket() failed");
  int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(lfd);
    throw std::runtime_error("server: bad host " + config_.host);
  }
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(lfd, 128) < 0) {
    ::close(lfd);
    throw std::runtime_error("server: bind/listen failed on " + config_.host +
                             ":" + std::to_string(config_.port));
  }
  socklen_t alen = sizeof addr;
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(lfd, std::memory_order_release);

  // Standby delta stream: every component publish emits one DLTA artifact.
  // The sink runs under the component's writer mutex, so deltas for one
  // shard are written in version order with no gaps between from/to.
  // Search and recommender shards are wired symmetrically — a standby
  // that replays only half the publishes silently diverges on the other
  // half.
  if (!config_.delta_dir.empty()) {
    for (std::size_t c = 0; c < search_.num_components(); ++c) {
      search_.component(c).set_delta_sink(
          [this, c](const synopsis::UpdateBatch& batch, std::uint64_t from,
                    std::uint64_t to) { write_delta('c', c, batch, from, to); });
    }
    if (reco_ != nullptr) {
      for (std::size_t c = 0; c < reco_->num_components(); ++c) {
        reco_->component(c).set_delta_sink(
            [this, c](const synopsis::UpdateBatch& batch, std::uint64_t from,
                      std::uint64_t to) {
              write_delta('r', c, batch, from, to);
            });
      }
    }
  }

  stopping_.store(false);
  const std::size_t groups = std::max<std::size_t>(1, exec_.num_groups());
  queues_.clear();
  for (std::size_t g = 0; g < groups; ++g)
    queues_.push_back(std::make_unique<GroupQueue>());
  for (std::size_t g = 0; g < groups; ++g)
    workers_.emplace_back([this, g] { worker_loop(g); });
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptor_loop(); });
  AT_LOG_DEBUG << "server: listening on " << config_.host << ":" << port_;
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    // Second caller: wait for the first to have finished is not needed —
    // stop() only runs from the owner thread / destructor.
    return;
  }
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (!running_.load(std::memory_order_acquire) && lfd < 0) return;

  // 1. Stop accepting: closing the listen fd unblocks accept().
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (acceptor_.joinable()) acceptor_.join();

  // 2. Drain the serving queues: workers finish every admitted request
  //    (their promises must be fulfilled — connection threads are waiting
  //    on them), then exit.
  for (auto& q : queues_) {
    common::MutexLock lock(q->mutex);
    q->open = false;
    q->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // The delta sinks capture `this`; the components outlive the server
  // (caller-owned), so they must be detached before we are destroyed —
  // recommender sinks included, symmetric with start().
  if (!config_.delta_dir.empty()) {
    for (std::size_t c = 0; c < search_.num_components(); ++c)
      search_.component(c).set_delta_sink({});
    if (reco_ != nullptr) {
      for (std::size_t c = 0; c < reco_->num_components(); ++c)
        reco_->component(c).set_delta_sink({});
    }
  }

  // 3. Now that no responses are pending, unblock and join the
  //    connection threads.
  {
    common::MutexLock lock(conn_mutex_);
    for (auto& c : connections_) {
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> victim;
    {
      common::MutexLock lock(conn_mutex_);
      if (connections_.empty()) break;
      victim = std::move(connections_.back());
      connections_.pop_back();
    }
    if (victim->thread.joinable()) victim->thread.join();
    if (victim->fd >= 0) ::close(victim->fd);
  }
  queues_.clear();
  running_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Calibration and the cost model
// ---------------------------------------------------------------------------

void Server::calibrate() {
  if (config_.calibration_queries.empty()) return;
  common::StreamingStats full_ms, syn_ms, loss;
  for (const auto& q : config_.calibration_queries) {
    common::Stopwatch sw;
    const auto exact = search_.exact_topk(q);
    full_ms.add(sw.elapsed_ms());
    sw.reset();
    const auto syn = search_.synopsis_topk(q);
    syn_ms.add(sw.elapsed_ms());
    loss.add((1.0 - search::topk_overlap(syn, exact)) * 100.0);
  }
  est_full_ms_.store(full_ms.mean());
  est_synopsis_ms_.store(syn_ms.mean());
  synopsis_loss_pct_ = loss.mean();
  AT_LOG_DEBUG << "server: calibrated full=" << full_ms.mean()
               << "ms synopsis=" << syn_ms.mean()
               << "ms synopsis_loss=" << synopsis_loss_pct_ << "%";
}

void Server::observe_cost(std::atomic<double>& est_ms, double observed_ms) {
  // EWMA, alpha 0.2; lossy racy update is fine (it is an estimate).
  const double prev = est_ms.load(std::memory_order_relaxed);
  const double next =
      prev <= 0.0 ? observed_ms : 0.8 * prev + 0.2 * observed_ms;
  est_ms.store(next, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Accept / connection / frame plumbing
// ---------------------------------------------------------------------------

void Server::acceptor_loop() {
  for (;;) {
    AT_FAILPOINT("server.accept");
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // stop() already closed the socket
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd closed: shutting down
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const std::uint64_t conn_id =
        connections_seen_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    common::MutexLock lock(conn_mutex_);
    connections_.push_back(std::move(conn));
    raw->thread =
        std::thread([this, fd, conn_id] { connection_loop(fd, conn_id); });
  }
}

void Server::connection_loop(int fd, std::uint64_t conn_id) {
  protocol::FrameBuffer frames;
  std::uint8_t buf[16 * 1024];
  std::vector<std::uint8_t> payload;
  bool alive = true;
  while (alive) {
    // Fault-injection site: an armed "server.read" error behaves like a
    // peer reset observed mid-read — drop the connection, nothing else.
    if (common::failpoint::any_armed()) {
      if (common::failpoint::check("server.read").action ==
          common::failpoint::Action::kError)
        break;
    }
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;  // EOF or reset: client went away
    frames.append(buf, static_cast<std::size_t>(r));

    for (;;) {
      const auto pull = frames.pull(&payload);
      if (pull == protocol::FrameBuffer::Pull::kNeedMore) break;
      if (pull == protocol::FrameBuffer::Pull::kBad) {
        // Forged length prefix: the stream cannot be resynchronized.
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        alive = false;
        break;
      }
      Request req;
      std::string err;
      Response resp;
      if (!protocol::decode_request(payload.data(), payload.size(), &req,
                                    &err)) {
        // Malformed frame: answer with a structured bad-request (best
        // effort — the request id may itself be garbage) and close; the
        // next bytes could be mid-frame junk.
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        resp.request_id = req.request_id;
        resp.op = req.op;
        resp.status = Status::kBadRequest;
        resp.text = err;
        const auto frame = protocol::encode_response(resp);
        write_all(fd, frame.data(), frame.size());
        alive = false;
        break;
      }

      if (req.op == Op::kPing) {
        resp.request_id = req.request_id;
        resp.op = req.op;
        resp.status = Status::kOk;
      } else if (req.op == Op::kStats) {
        resp.request_id = req.request_id;
        resp.op = req.op;
        resp.status = Status::kOk;
        resp.text = stats_json();
      } else {
        std::future<Response> done;
        if (admit(std::move(req), &resp, &done)) {
          try {
            resp = done.get();
          } catch (const std::exception& e) {
            // Broken promise (shutdown race) or a worker-side throw that
            // escaped serve(): structured error, connection stays up.
            resp = Response{};
            resp.status = Status::kError;
            resp.text = e.what();
          }
        }
      }

      bool short_write = false;
      try {
        short_write = AT_FAILPOINT("server.write");
      } catch (const common::failpoint::FailpointError&) {
        alive = false;  // injected write error: drop the connection
        break;
      }
      const auto frame = protocol::encode_response(resp);
      const std::size_t n = short_write ? frame.size() / 2 : frame.size();
      if (!write_all(fd, frame.data(), n) || short_write) {
        // A short write leaves the peer mid-frame: the only safe
        // continuation is closing (the client library treats it as a
        // transport error and retries).
        alive = false;
        break;
      }
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  // The fd itself is closed by stop() (which owns the Connection entry) or
  // here when the server keeps running and the entry can be reaped lazily.
  if (!stopping_.load()) {
    common::MutexLock lock(conn_mutex_);
    for (auto& c : connections_) {
      if (c->fd == fd && c->thread.get_id() == std::this_thread::get_id()) {
        ::close(fd);
        c->fd = -1;
        c->thread.detach();  // reaping our own entry; nothing joins it
        break;
      }
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& c) {
                         return c->fd < 0 && !c->thread.joinable();
                       }),
        connections_.end());
  }
  (void)conn_id;
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

bool Server::admit(Request req, Response* shed_resp,
                   std::future<Response>* done) {
  const double deadline_ms = req.deadline_ms > 0
                                 ? static_cast<double>(req.deadline_ms)
                                 : config_.default_deadline_ms;
  shed_resp->request_id = req.request_id;
  shed_resp->op = req.op;

  const std::size_t g =
      static_cast<std::size_t>(rr_next_group_.fetch_add(
          1, std::memory_order_relaxed)) %
      queues_.size();
  GroupQueue& q = *queues_[g];
  // Decide under the queue lock, count under the stats lock — never both
  // at once (the stats lock is hot on the serving path).
  bool enqueued = false;
  {
    common::MutexLock lock(q.mutex);
    if (!q.open) {
      shed_resp->status = Status::kError;
      shed_resp->text = "server shutting down";
      return false;
    }
    const std::size_t depth = q.jobs.size();
    const double est_wait_ms =
        static_cast<double>(depth) * std::max(est_full_ms_.load(), 0.1);
    // Shed when the queue is at its bound, or when the deadline is already
    // unmeetable at enqueue time (the queue ahead alone eats the budget —
    // serving this request would waste work the deadline makes worthless).
    if (depth >= config_.max_queue_per_group || est_wait_ms >= deadline_ms) {
      std::uint32_t retry_ms = static_cast<std::uint32_t>(
          std::clamp(est_wait_ms - deadline_ms + est_full_ms_.load(), 1.0,
                     5000.0));
      shed_resp->status = Status::kShed;
      shed_resp->retry_after_ms = retry_ms;
    } else {
      Job job;
      job.req = std::move(req);
      job.enqueued = SteadyClock::now();
      *done = job.done.get_future();
      q.jobs.push_back(std::move(job));
      q.cv.notify_one();
      enqueued = true;
    }
  }
  {
    common::MutexLock slock(stats_mutex_);
    if (enqueued) {
      ++accepted_;
    } else {
      ++shed_;
    }
  }
  return enqueued;
}

void Server::worker_loop(std::size_t g) {
  GroupQueue& q = *queues_[g];
  for (;;) {
    Job job;
    {
      common::MutexLock lock(q.mutex);
      while (q.jobs.empty() && q.open) q.cv.wait(q.mutex);
      if (q.jobs.empty()) return;  // closed and drained
      job = std::move(q.jobs.front());
      q.jobs.pop_front();
    }
    Response resp;
    try {
      resp = serve(job);
    } catch (const std::exception& e) {
      // Nothing outside the ladder should throw, but a response is owed
      // whatever happens.
      resp = Response{};
      resp.request_id = job.req.request_id;
      resp.op = job.req.op;
      resp.status = Status::kError;
      resp.text = e.what();
    }
    record(resp);
    job.done.set_value(std::move(resp));
  }
}

// ---------------------------------------------------------------------------
// The degradation ladder
// ---------------------------------------------------------------------------

Response Server::serve(const Job& job) {
  const double deadline_ms =
      job.req.deadline_ms > 0 ? static_cast<double>(job.req.deadline_ms)
                              : config_.default_deadline_ms;
  Response resp;
  // Fault-injection site: dispatch-path delay (scheduler hiccup) or error.
  try {
    AT_FAILPOINT("server.dispatch");
    const double remaining = deadline_ms - ms_since(job.enqueued);
    // No serving-path lock: every rung pins the epoch snapshots it scans,
    // and updates/reloads publish new epochs without blocking readers.
    if (job.req.op == Op::kSearch) {
      resp = serve_search(job.req, remaining);
    } else if (job.req.op == Op::kUpdate) {
      resp = serve_update(job.req);
    } else {
      resp = serve_recommend(job.req, remaining);
    }
  } catch (const std::exception& e) {
    resp = Response{};
    resp.status = Status::kError;
    resp.text = e.what();
  }
  resp.request_id = job.req.request_id;
  resp.op = job.req.op;
  resp.server_ms = ms_since(job.enqueued);  // queue wait + service time
  return resp;
}

Response Server::serve_search(const Request& req, double remaining_ms) {
  Response resp;
  resp.op = Op::kSearch;
  const std::uint64_t epoch = epoch_now();
  const double safety = config_.ladder_safety;
  // The service's k is fixed at construction; a client asking for fewer
  // docs gets the answer's prefix (the merge order is score desc, doc asc).
  const auto clip = [&req](std::vector<search::ScoredDoc>& docs) {
    if (req.k > 0 && docs.size() > req.k) docs.resize(req.k);
  };

  // Cache probe: one lookup serves both the fresh fast path and (further
  // down) the stale degraded rung.
  std::vector<search::ScoredDoc> cached;
  search::ResultMeta cached_meta;
  const bool cache_hit = cache_->lookup(req.terms, &cached, &cached_meta);
  if (cache_hit && !cached_meta.stale && cached_meta.epoch == epoch) {
    resp.status = Status::kOk;
    resp.tier = Tier::kCached;
    resp.est_loss_pct = cached_meta.loss_pct;
    resp.docs = cached;
    clip(resp.docs);
    return resp;
  }

  // Rung 1: full block-decode scan, fault-tolerant per component.
  if (remaining_ms >= est_full_ms_.load() * safety) {
    try {
      common::Stopwatch sw;
      std::size_t ok = 0;
      auto docs =
          search_.exact_topk_partial(search::SearchRequest{req.terms}, &ok);
      observe_cost(est_full_ms_, sw.elapsed_ms());
      const std::size_t total = search_.num_components();
      if (ok > 0) {
        resp.status = Status::kOk;
        resp.tier = Tier::kFull;
        resp.est_loss_pct =
            total > 0 ? 100.0 * static_cast<double>(total - ok) /
                            static_cast<double>(total)
                      : 0.0;
        // Only cache when no epoch was published mid-scan: a fan-out that
        // straddled a publish may merge rows from two epochs, and such an
        // answer must not be stamped fresh.
        if (ok == total && epoch_now() == epoch) {
          cache_->insert(req.terms, docs, search::ResultMeta{0.0, epoch});
        }
        resp.docs = std::move(docs);
        clip(resp.docs);
        return resp;
      }
      // ok == 0: every component failed; fall through the ladder.
    } catch (...) {
      // Fan-out itself failed (executor fault): degrade, don't die.
    }
  }

  // Rung 2: synopsis-only answer.
  if (remaining_ms >= 0.0 &&
      remaining_ms >= est_synopsis_ms_.load() * safety) {
    try {
      AT_FAILPOINT("server.synopsis");
      common::Stopwatch sw;
      auto docs =
          search_.synopsis_topk(search::SearchRequest{req.terms});
      observe_cost(est_synopsis_ms_, sw.elapsed_ms());
      resp.status = Status::kOk;
      resp.tier = Tier::kSynopsis;
      resp.est_loss_pct = synopsis_loss_pct_;
      resp.docs = std::move(docs);
      clip(resp.docs);
      return resp;
    } catch (...) {
      // fall through
    }
  }

  // Rung 3: stale cached answer — degraded but real. An entry already
  // re-annotated at publish time carries the penalty in its recorded
  // loss; one merely from a mismatched epoch gets it added here.
  if (cache_hit) {
    resp.status = Status::kOk;
    resp.tier = Tier::kCached;
    resp.est_loss_pct =
        cached_meta.loss_pct +
        (cached_meta.stale ? 0.0 : config_.stale_penalty_pct);
    resp.docs = std::move(cached);
    clip(resp.docs);
    return resp;
  }

  // Rung 4: shed.
  resp.status = Status::kShed;
  resp.tier = Tier::kNone;
  resp.retry_after_ms = static_cast<std::uint32_t>(
      std::clamp(est_full_ms_.load() * 2.0, 1.0, 5000.0));
  return resp;
}

Response Server::serve_recommend(const Request& req, double remaining_ms) {
  Response resp;
  resp.op = Op::kRecommend;
  if (reco_ == nullptr) {
    resp.status = Status::kBadRequest;
    resp.text = "recommend service not configured";
    return resp;
  }
  synopsis::SparseVector ratings;
  for (const auto& [item, rating] : req.ratings)
    ratings.push_back({item, rating});
  std::sort(ratings.begin(), ratings.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const auto cf_req = reco::CfRequest::make(std::move(ratings),
                                            req.target_item);
  const double safety = config_.ladder_safety;

  if (remaining_ms >= est_recommend_full_ms_.load() * safety) {
    try {
      common::Stopwatch sw;
      const double pred = reco_->predict_exact(cf_req);
      observe_cost(est_recommend_full_ms_, sw.elapsed_ms());
      resp.status = Status::kOk;
      resp.tier = Tier::kFull;
      resp.prediction = pred;
      return resp;
    } catch (...) {
    }
  }
  if (remaining_ms >= 0.0 &&
      remaining_ms >= est_recommend_syn_ms_.load() * safety) {
    try {
      common::Stopwatch sw;
      // Synopsis-only: AccuracyTrader with zero improvement sets — every
      // component answers from its aggregated points alone.
      const std::vector<core::ComponentOutcome> outcomes(
          reco_->num_components(), core::ComponentOutcome{true, 0});
      const double pred =
          reco_->predict(cf_req, core::Technique::kAccuracyTrader, outcomes);
      observe_cost(est_recommend_syn_ms_, sw.elapsed_ms());
      resp.status = Status::kOk;
      resp.tier = Tier::kSynopsis;
      resp.est_loss_pct = config_.default_synopsis_loss_pct;
      resp.prediction = pred;
      return resp;
    } catch (...) {
    }
  }
  resp.status = Status::kShed;
  resp.retry_after_ms = static_cast<std::uint32_t>(
      std::clamp(est_recommend_full_ms_.load() * 2.0, 1.0, 5000.0));
  return resp;
}

// ---------------------------------------------------------------------------
// Online retraining
// ---------------------------------------------------------------------------

Response Server::serve_update(const Request& req) {
  Response resp;
  resp.op = Op::kUpdate;
  if (req.update_component >= search_.num_components()) {
    resp.status = Status::kBadRequest;
    resp.text = "update component out of range";
    return resp;
  }
  if (req.update_adds == 0 && req.update_changes == 0) {
    resp.status = Status::kBadRequest;
    resp.text = "empty update batch";
    return resp;
  }

  // Synthesize the batch deterministically from the wire seed against the
  // component's current shape — the same (seed, adds, changes) triple
  // replayed against the same state produces the same rows, which is what
  // lets at_replay interleave a reproducible retraining mix.
  const auto snap = search_.component(req.update_component).snapshot();
  const std::size_t rows = snap->num_docs();
  const std::size_t cols = snap->docs().cols();
  if (rows == 0 || cols == 0) {
    resp.status = Status::kBadRequest;
    resp.text = "update component is empty";
    return resp;
  }
  common::Rng rng(req.update_seed);
  const auto make_row = [&rng, cols]() {
    synopsis::SparseVector row;
    std::set<std::uint32_t> terms;
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.uniform_index(8));
    while (terms.size() < n)
      terms.insert(static_cast<std::uint32_t>(rng.uniform_index(cols)));
    for (const std::uint32_t t : terms)
      row.emplace_back(t, 1.0 + static_cast<double>(rng.uniform_index(5)));
    return row;
  };
  synopsis::UpdateBatch batch;
  batch.added.reserve(req.update_adds);
  for (std::uint32_t i = 0; i < req.update_adds; ++i)
    batch.added.push_back(make_row());
  batch.changed.reserve(req.update_changes);
  for (std::uint32_t i = 0; i < req.update_changes; ++i)
    batch.changed.emplace_back(
        static_cast<std::uint32_t>(rng.uniform_index(rows)), make_row());

  const std::uint64_t from = epoch_now();
  common::Stopwatch sw;
  const synopsis::UpdateReport report =
      search_.update_component(req.update_component, batch);
  const double update_ms = sw.elapsed_ms();
  const std::uint64_t to = epoch_now();
  // Satellite of the publish: answers computed against the retired epoch
  // stay servable, but only as the stale rung, with the penalty folded in.
  cache_->mark_stale_epochs(to, config_.stale_penalty_pct);

  std::ostringstream os;
  os << "{\"component\": " << req.update_component
     << ", \"points_added\": " << report.points_added
     << ", \"points_changed\": " << report.points_changed
     << ", \"dirty_groups\": " << report.dirty_groups
     << ", \"from_epoch\": " << from << ", \"to_epoch\": " << to
     << ", \"update_ms\": " << update_ms << "}";
  resp.status = Status::kOk;
  resp.tier = Tier::kNone;
  resp.text = os.str();
  return resp;
}

void Server::write_delta(char kind, std::size_t c,
                         const synopsis::UpdateBatch& batch,
                         std::uint64_t from, std::uint64_t to) {
  const std::string path =
      config_.delta_dir + "/" +
      synopsis::delta_filename(kind, static_cast<std::uint32_t>(c), to);
  // Write under a ".tmp" name and rename into place: a tailing standby
  // lists the directory at arbitrary instants and must never see a
  // truncated container under a final name (it skips non-".atac" entries).
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os)
        throw common::ArtifactError("delta stream: cannot open " + tmp);
      synopsis::DeltaArtifact delta;
      delta.component = static_cast<std::uint32_t>(c);
      delta.from_version = from;
      delta.to_version = to;
      delta.batch = batch;
      synopsis::save_delta(os, delta);
      if (!os.flush())
        throw common::ArtifactError("delta stream: short write " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
      throw common::ArtifactError("delta stream: rename failed for " + path);
    deltas_written_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    // Standby stream only: the epoch is already live, serving goes on.
    std::remove(tmp.c_str());
    delta_failures_.fetch_add(1, std::memory_order_relaxed);
    AT_LOG_DEBUG << "server: delta write failed: " << e.what();
  }
}

void Server::write_checkpoint(const std::string& dir) const {
  // Each artifact is fully written to a ".tmp" name, flushed, then
  // renamed — the same atomic-visibility contract as the delta stream.
  const auto commit = [&dir](const std::string& name,
                             const std::function<void(std::ostream&)>& fill) {
    const std::string path = dir + "/" + name;
    const std::string tmp = path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os)
        throw common::ArtifactError("checkpoint: cannot open " + tmp);
      fill(os);
      if (!os.flush())
        throw common::ArtifactError("checkpoint: short write " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw common::ArtifactError("checkpoint: rename failed for " + path);
    }
  };

  std::shared_ptr<const std::vector<double>> idf;
  for (std::size_t c = 0; c < search_.num_components(); ++c) {
    // Atomic (snapshot, version) pin: the version stamped into the
    // filename is the version of the bytes even while updates publish
    // concurrently.
    const auto [snap, version] = search_.component(c).snapshot_versioned();
    if (idf == nullptr) idf = snap->global_idf();
    commit(synopsis::checkpoint_filename('c', static_cast<std::uint32_t>(c),
                                         version),
           [&snap](std::ostream& os) { snap->save(os); });
  }
  if (reco_ != nullptr) {
    for (std::size_t c = 0; c < reco_->num_components(); ++c) {
      const auto [snap, version] = reco_->component(c).snapshot_versioned();
      commit(synopsis::checkpoint_filename('r', static_cast<std::uint32_t>(c),
                                           version),
             [&snap](std::ostream& os) { snap->save(os); });
    }
  }
  // The corpus-global idf, persisted as a 1xN MATX matrix. Scores are a
  // function of it and it is NOT rebuilt by online updates, so a replica
  // must install this table verbatim (rebuilding from replayed contents
  // would diverge from the primary the moment any update landed).
  if (idf != nullptr) {
    linalg::Matrix m(1, idf->size());
    for (std::size_t i = 0; i < idf->size(); ++i) m.at(0, i) = (*idf)[i];
    commit("ckpt_idf.atac", [&m](std::ostream& os) { linalg::save(os, m); });
  }
}

// ---------------------------------------------------------------------------
// Stats, epochs, reload
// ---------------------------------------------------------------------------

void Server::record(const Response& resp) {
  common::MutexLock lock(stats_mutex_);
  switch (resp.status) {
    case Status::kOk:
      if (resp.op == Op::kUpdate) {
        ++updates_;
        return;
      }
      break;
    case Status::kShed:
      // Ladder sheds land here; admission sheds were already counted.
      ++shed_;
      return;
    case Status::kError:
    case Status::kBadRequest:
      ++errors_;
      return;
  }
  switch (resp.tier) {
    case Tier::kFull:
      lat_full_.add(resp.server_ms);
      loss_full_.add(resp.est_loss_pct);
      break;
    case Tier::kSynopsis:
      lat_synopsis_.add(resp.server_ms);
      loss_synopsis_.add(resp.est_loss_pct);
      break;
    case Tier::kCached:
      lat_cached_.add(resp.server_ms);
      loss_cached_.add(resp.est_loss_pct);
      break;
    case Tier::kNone:
      break;  // ping/stats
  }
}

ServingSnapshot Server::snapshot() const {
  common::MutexLock lock(stats_mutex_);
  ServingSnapshot s;
  auto fill = [](const common::PercentileTracker& lat,
                 const common::StreamingStats& loss) {
    TierSnapshot t;
    t.count = lat.count();
    t.p50_ms = lat.median();
    t.p99_ms = lat.p99();
    t.mean_loss_pct = loss.mean();
    return t;
  };
  s.full = fill(lat_full_, loss_full_);
  s.synopsis = fill(lat_synopsis_, loss_synopsis_);
  s.cached = fill(lat_cached_, loss_cached_);
  s.shed = shed_;
  s.errors = errors_;
  s.accepted = accepted_;
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.connections = connections_seen_.load(std::memory_order_relaxed);
  s.est_full_ms = est_full_ms_.load(std::memory_order_relaxed);
  s.est_synopsis_ms = est_synopsis_ms_.load(std::memory_order_relaxed);
  s.synopsis_loss_pct = synopsis_loss_pct_;
  s.data_epoch = data_epoch_.load(std::memory_order_relaxed);
  s.updates = updates_;
  s.epoch_version = epoch_now();
  const common::EpochStats es = search_.epoch_stats();
  s.epoch_published = es.published;
  s.epoch_retired = es.retired;
  s.deltas_written = deltas_written_.load(std::memory_order_relaxed);
  s.delta_failures = delta_failures_.load(std::memory_order_relaxed);
  return s;
}

std::string Server::stats_json() const {
  const ServingSnapshot s = snapshot();
  std::ostringstream os;
  auto tier = [&os](const char* name, const TierSnapshot& t, bool comma) {
    os << "\"" << name << "\": {\"count\": " << t.count
       << ", \"p50_ms\": " << t.p50_ms << ", \"p99_ms\": " << t.p99_ms
       << ", \"mean_loss_pct\": " << t.mean_loss_pct << "}"
       << (comma ? ", " : "");
  };
  os << "{";
  tier("full", s.full, true);
  tier("synopsis", s.synopsis, true);
  tier("cached", s.cached, true);
  os << "\"shed\": " << s.shed << ", \"errors\": " << s.errors
     << ", \"bad_frames\": " << s.bad_frames
     << ", \"accepted\": " << s.accepted
     << ", \"connections\": " << s.connections
     << ", \"est_full_ms\": " << s.est_full_ms
     << ", \"est_synopsis_ms\": " << s.est_synopsis_ms
     << ", \"synopsis_loss_pct\": " << s.synopsis_loss_pct
     << ", \"data_epoch\": " << s.data_epoch
     << ", \"updates\": " << s.updates
     << ", \"epoch_version\": " << s.epoch_version
     << ", \"epoch_published\": " << s.epoch_published
     << ", \"epoch_retired\": " << s.epoch_retired
     << ", \"deltas_written\": " << s.deltas_written
     << ", \"delta_failures\": " << s.delta_failures
     << ", \"num_components\": " << search_.num_components()
     << ", \"k\": " << search_.k() << "}";
  return os.str();
}

std::uint64_t Server::epoch_now() const {
  return data_epoch_.load(std::memory_order_acquire) +
         search_.data_version();
}

void Server::bump_data_epoch() {
  data_epoch_.fetch_add(1, std::memory_order_acq_rel);
  cache_->mark_stale_epochs(epoch_now(), config_.stale_penalty_pct);
}

void Server::reload_search_component(std::size_t c, std::istream& is) {
  // No serving-path lock: the fully loaded replacement is published as a
  // new epoch while in-flight queries finish on their pinned snapshots.
  // The load itself (the slow part) throws before anything mutates —
  // SearchService::reload_component gives the strong guarantee.
  search_.reload_component(c, is);
  bump_data_epoch();
}

}  // namespace at::server
