#include "server/standby.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/artifact.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "linalg/matrix.h"
#include "synopsis/delta.h"

namespace at::server {

namespace fs = std::filesystem;

const char* to_string(StandbyState s) {
  switch (s) {
    case StandbyState::kCreated: return "created";
    case StandbyState::kTailing: return "tailing";
    case StandbyState::kResyncRequired: return "resync_required";
    case StandbyState::kPromoted: return "promoted";
    case StandbyState::kStopped: return "stopped";
  }
  return "unknown";
}

StandbyReplica::StandbyReplica(StandbyConfig config)
    : config_(std::move(config)) {}

StandbyReplica::~StandbyReplica() { stop(); }

// ---------------------------------------------------------------------------
// Checkpoint load
// ---------------------------------------------------------------------------

void StandbyReplica::load() {
  common::MutexLock lock(mutex_);
  if (state_ != StandbyState::kCreated)
    throw std::runtime_error("standby: load() called twice");

  // Scan the checkpoint directory; versions live in the filenames.
  std::map<std::uint32_t, std::pair<std::uint64_t, std::string>> search_files;
  std::map<std::uint32_t, std::pair<std::uint64_t, std::string>> reco_files;
  std::string idf_path;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(config_.checkpoint_dir, ec)) {
    const std::string name = de.path().filename().string();
    if (name == "ckpt_idf.atac") {
      idf_path = de.path().string();
      continue;
    }
    char kind = 0;
    std::uint32_t comp = 0;
    std::uint64_t version = 0;
    if (!synopsis::parse_stream_filename(name, "ckpt", &kind, &comp,
                                         &version))
      continue;  // ".tmp" leftovers, foreign files
    auto& files = (kind == 'c') ? search_files : reco_files;
    // Several checkpoints may coexist; the newest version wins.
    auto [it, inserted] = files.emplace(comp, std::pair{version, de.path().string()});
    if (!inserted && version > it->second.first)
      it->second = {version, de.path().string()};
  }
  if (ec)
    throw common::ArtifactError("standby: cannot list checkpoint dir " +
                                config_.checkpoint_dir + ": " + ec.message());
  if (search_files.empty())
    throw common::ArtifactError("standby: no search checkpoint in " +
                                config_.checkpoint_dir);
  // Component ids must be contiguous 0..n-1 — a hole means a lost shard.
  const auto check_contiguous = [](const auto& files, const char* what) {
    std::uint32_t expect = 0;
    for (const auto& kv : files) {
      if (kv.first != expect++)
        throw common::ArtifactError(
            std::string("standby: non-contiguous ") + what +
            " checkpoint components (missing component " +
            std::to_string(expect - 1) + ")");
    }
  };
  check_contiguous(search_files, "search");
  check_contiguous(reco_files, "recommender");

  // The primary's corpus-global idf, installed verbatim (never rebuilt
  // from replayed contents — scores would diverge after the first update).
  std::shared_ptr<const std::vector<double>> idf;
  if (!idf_path.empty()) {
    std::ifstream is(idf_path, std::ios::binary);
    if (!is)
      throw common::ArtifactError("standby: cannot open " + idf_path);
    const linalg::Matrix m = linalg::load_matrix(is);
    if (m.rows() != 1)
      throw common::ArtifactError("standby: idf checkpoint is not a row");
    auto table = std::make_shared<std::vector<double>>(m.cols());
    for (std::size_t i = 0; i < m.cols(); ++i) (*table)[i] = m.at(0, i);
    idf = std::move(table);
  }

  std::vector<search::SearchComponent> comps;
  std::vector<std::uint64_t> search_versions;
  for (const auto& kv : search_files) {
    std::ifstream is(kv.second.second, std::ios::binary);
    if (!is)
      throw common::ArtifactError("standby: cannot open " + kv.second.second);
    comps.push_back(search::SearchComponent::load(is));
    search_versions.push_back(kv.second.first);
  }
  search_ = std::make_unique<search::SearchService>(std::move(comps), idf,
                                                    config_.k);
  search_->set_executor(&exec_);
  // Rebase each slot to the primary's checkpointed version: replayed
  // publishes now advance in lockstep with the delta stream, and the
  // promoted server reports the primary's effective epoch (no gap).
  search_cursor_.assign(search_versions.size(), Cursor{});
  for (std::size_t c = 0; c < search_versions.size(); ++c) {
    search_->component(c).rebase_epoch_version(search_versions[c]);
    search_cursor_[c].applied = search_versions[c];
  }

  if (!reco_files.empty()) {
    std::vector<reco::RecommenderComponent> rcomps;
    std::vector<std::uint64_t> reco_versions;
    for (const auto& kv : reco_files) {
      std::ifstream is(kv.second.second, std::ios::binary);
      if (!is)
        throw common::ArtifactError("standby: cannot open " + kv.second.second);
      rcomps.push_back(reco::RecommenderComponent::load(is));
      reco_versions.push_back(kv.second.first);
    }
    reco_ = std::make_unique<reco::CfService>(
        std::move(rcomps), config_.min_rating, config_.max_rating);
    reco_->set_executor(&exec_);
    reco_cursor_.assign(reco_versions.size(), Cursor{});
    for (std::size_t c = 0; c < reco_versions.size(); ++c) {
      reco_->component(c).rebase_epoch_version(reco_versions[c]);
      reco_cursor_[c].applied = reco_versions[c];
    }
  }

  state_ = StandbyState::kTailing;
  AT_LOG_DEBUG << "standby: loaded " << search_cursor_.size()
               << " search + " << reco_cursor_.size()
               << " recommender components";
}

// ---------------------------------------------------------------------------
// Tailing
// ---------------------------------------------------------------------------

void StandbyReplica::start() {
  common::MutexLock lock(mutex_);
  if (state_ != StandbyState::kTailing)
    throw std::runtime_error(std::string("standby: start() in state ") +
                             to_string(state_));
  if (tailer_.joinable()) return;  // already tailing
  stop_tailer_ = false;
  tailer_ = std::thread([this] { tail_loop(); });
}

void StandbyReplica::tail_loop() {
  common::MutexLock lock(mutex_);
  while (!stop_tailer_) {
    if (state_ == StandbyState::kTailing) poll_locked();
    // Interruptible pacing: stop()/promote() flip stop_tailer_ under the
    // mutex and notify, so shutdown never waits out a poll interval.
    cv_.wait_for(mutex_, config_.poll_interval_ms);
  }
}

std::size_t StandbyReplica::poll_once() {
  common::MutexLock lock(mutex_);
  return poll_locked();
}

std::size_t StandbyReplica::poll_locked() {
  if (state_ != StandbyState::kTailing) return 0;
  ++polls_;

  // One listing per poll, bucketed per (kind, component) stream.
  std::vector<std::vector<Entry>> ready_c(search_cursor_.size());
  std::vector<std::vector<Entry>> ready_r(reco_cursor_.size());
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(config_.delta_dir, ec)) {
    const std::string name = de.path().filename().string();
    char kind = 0;
    std::uint32_t comp = 0;
    std::uint64_t version = 0;
    if (!synopsis::parse_stream_filename(name, "delta", &kind, &comp,
                                         &version)) {
      ++files_ignored_;  // ".tmp" in-flight writes, foreign files
      continue;
    }
    auto& buckets = (kind == 'c') ? ready_c : ready_r;
    if (comp >= buckets.size()) {
      ++files_ignored_;  // component the checkpoint does not know
      continue;
    }
    buckets[comp].push_back(Entry{version, de.path().string()});
  }
  if (ec) {
    // An unreadable stream directory is a (transient or fatal) tail
    // failure, not a gap; retried next poll.
    ++load_errors_;
    return 0;
  }

  std::size_t applied = 0;
  for (std::size_t c = 0; c < ready_c.size(); ++c)
    applied += replay_component_locked('c', c, std::move(ready_c[c]));
  for (std::size_t c = 0; c < ready_r.size(); ++c)
    applied += replay_component_locked('r', c, std::move(ready_r[c]));
  return applied;
}

std::size_t StandbyReplica::replay_component_locked(char kind,
                                                    std::size_t comp,
                                                    std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.version < b.version; });
  Cursor& cur =
      (kind == 'c') ? search_cursor_.at(comp) : reco_cursor_.at(comp);
  std::size_t applied = 0;
  bool gap_ahead = false;
  bool retry_ahead = false;  // load/apply failure: retry, not a gap
  for (const Entry& e : entries) {
    if (state_ != StandbyState::kTailing) return applied;
    if (e.version <= cur.applied) continue;  // re-delivered history: no-op

    synopsis::DeltaArtifact delta;
    try {
      std::ifstream is(e.path, std::ios::binary);
      if (!is)
        throw common::ArtifactError("standby: cannot open " + e.path);
      delta = synopsis::load_delta(is);
    } catch (const std::exception& ex) {
      // A well-named file that does not load is torn or corrupt. It can
      // never be applied, but skipping past it would hide a hole in the
      // chain — stop here and let the gap patience decide.
      ++load_errors_;
      AT_LOG_DEBUG << "standby: delta load failed (" << e.path
                   << "): " << ex.what();
      gap_ahead = true;
      break;
    }

    if (delta.to_version <= cur.applied) continue;
    if (delta.from_version != cur.applied) {
      // The next available delta starts ahead of our state: a middle
      // version is missing (not yet renamed into place, or lost forever).
      gap_ahead = true;
      break;
    }

    try {
      // Fires before any mutation: an injected failure leaves the
      // component untouched and the delta is retried next poll.
      AT_FAILPOINT("standby.apply");
      if (kind == 'c')
        search_->update_component(comp, delta.batch);
      else
        reco_->update_component(comp, delta.batch);
    } catch (const std::exception& ex) {
      ++apply_failures_;
      AT_LOG_DEBUG << "standby: apply failed (" << e.path
                   << "): " << ex.what();
      retry_ahead = true;
      break;
    }

    // Lockstep invariant: one publish per delta, so the slot must land
    // exactly on to_version. Anything else means the replica and the
    // stream disagree about history — structured resync, never silence.
    const std::uint64_t now = (kind == 'c')
                                  ? search_->component(comp).epoch_version()
                                  : reco_->component(comp).epoch_version();
    if (now != delta.to_version) {
      declare_resync_locked(
          std::string("epoch mismatch after replay of ") + e.path +
          ": slot at " + std::to_string(now) + ", delta ends at " +
          std::to_string(delta.to_version));
      return applied;
    }
    cur.applied = delta.to_version;
    cur.gap_polls = 0;
    ++deltas_applied_;
    ++applied;
  }

  if (gap_ahead) {
    // Writers rename deltas into place in version order per component, so
    // a persistent hole cannot be an in-flight write. Give out-of-order
    // arrival `gap_patience` polls to resolve, then demand a resync.
    if (++cur.gap_polls >= config_.gap_patience) {
      declare_resync_locked(
          std::string("version gap in ") + kind + std::to_string(comp) +
          " delta stream: replayed up to " + std::to_string(cur.applied) +
          ", next available delta starts beyond it");
    }
  } else if (!retry_ahead) {
    cur.gap_polls = 0;
  }
  return applied;
}

void StandbyReplica::declare_resync_locked(const std::string& reason) {
  if (state_ == StandbyState::kResyncRequired) return;  // first cause wins
  state_ = StandbyState::kResyncRequired;
  resync_reason_ = reason;
  AT_LOG_WARN << "standby: resync required: " << reason;
}

// ---------------------------------------------------------------------------
// Promotion and shutdown
// ---------------------------------------------------------------------------

Server& StandbyReplica::promote() {
  {
    common::MutexLock lock(mutex_);
    // Fires before any side effect: an injected error aborts the
    // promotion and the replica keeps tailing.
    AT_FAILPOINT("standby.promote");
    if (state_ == StandbyState::kPromoted) return *server_;
    if (state_ == StandbyState::kResyncRequired)
      throw std::runtime_error("standby: cannot promote, resync required: " +
                               resync_reason_);
    if (state_ != StandbyState::kTailing)
      throw std::runtime_error(std::string("standby: promote() in state ") +
                               to_string(state_));
    stop_tailer_ = true;
    cv_.notify_all();
  }
  if (tailer_.joinable()) tailer_.join();

  common::MutexLock lock(mutex_);
  // Final drain: everything the primary managed to rename into place is
  // on disk now; catch up completely before taking traffic. While a
  // component is stuck behind a gap keep polling — the primary is gone,
  // so nothing else will be renamed in and the patience window turns a
  // real hole into the structured resync instead of serving past it.
  for (;;) {
    const std::size_t n = poll_locked();
    if (state_ != StandbyState::kTailing) break;
    if (n > 0) continue;
    bool gaps_pending = false;
    for (const Cursor& c : search_cursor_)
      if (c.gap_polls > 0) gaps_pending = true;
    for (const Cursor& c : reco_cursor_)
      if (c.gap_polls > 0) gaps_pending = true;
    if (!gaps_pending) break;
  }
  if (state_ == StandbyState::kResyncRequired)
    throw std::runtime_error("standby: cannot promote, resync required: " +
                             resync_reason_);

  auto srv = std::make_unique<Server>(*search_, reco_.get(), exec_,
                                      config_.server);
  srv->start();  // throws on bind failure; state stays kTailing
  server_ = std::move(srv);
  state_ = StandbyState::kPromoted;
  AT_LOG_DEBUG << "standby: promoted, serving on port " << server_->port();
  return *server_;
}

void StandbyReplica::stop() {
  {
    common::MutexLock lock(mutex_);
    stop_tailer_ = true;
    cv_.notify_all();
  }
  if (tailer_.joinable()) tailer_.join();
  std::unique_ptr<Server> victim;
  {
    common::MutexLock lock(mutex_);
    victim = std::move(server_);
    state_ = StandbyState::kStopped;
  }
  // Server::stop joins its own threads — never under our mutex.
  if (victim != nullptr) victim->stop();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

StandbyState StandbyReplica::state() const {
  common::MutexLock lock(mutex_);
  return state_;
}

Server* StandbyReplica::server() {
  common::MutexLock lock(mutex_);
  return server_.get();
}

StandbyStats StandbyReplica::stats() const {
  common::MutexLock lock(mutex_);
  StandbyStats s;
  s.state = state_;
  s.polls = polls_;
  s.deltas_applied = deltas_applied_;
  s.files_ignored = files_ignored_;
  s.load_errors = load_errors_;
  s.apply_failures = apply_failures_;
  for (const Cursor& c : search_cursor_)
    if (c.gap_polls > 0) ++s.gaps_pending;
  for (const Cursor& c : reco_cursor_)
    if (c.gap_polls > 0) ++s.gaps_pending;
  s.resync_reason = resync_reason_;
  if (search_ != nullptr) s.search_epoch = search_->data_version();
  return s;
}

std::string StandbyReplica::stats_json() const {
  const StandbyStats s = stats();
  std::ostringstream os;
  os << "{\"state\": \"" << to_string(s.state) << "\", \"polls\": " << s.polls
     << ", \"deltas_applied\": " << s.deltas_applied
     << ", \"files_ignored\": " << s.files_ignored
     << ", \"load_errors\": " << s.load_errors
     << ", \"apply_failures\": " << s.apply_failures
     << ", \"gaps_pending\": " << s.gaps_pending
     << ", \"search_epoch\": " << s.search_epoch << ", \"resync_reason\": \""
     << s.resync_reason << "\"}";
  return os.str();
}

}  // namespace at::server
