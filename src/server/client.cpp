#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

namespace at::server {

namespace {

void set_err(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
}

}  // namespace

Client::Client(ClientConfig config)
    : config_(std::move(config)), jitter_(config_.jitter_seed) {}

Client::~Client() { close(); }

bool Client::connect(std::string* err) {
  common::MutexLock lock(mutex_);
  return connect_locked(err);
}

bool Client::connect_locked(std::string* err) {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_err(err, "socket() failed");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    set_err(err, "bad host " + config_.host);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    set_err(err, "connect to " + config_.host + ":" +
                     std::to_string(config_.port) + " failed: " +
                     std::strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  frames_ = protocol::FrameBuffer{};
  return true;
}

void Client::close() {
  common::MutexLock lock(mutex_);
  close_locked();
}

void Client::close_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::recv_some(std::string* err) {
  pollfd pfd{fd_, POLLIN, 0};
  const int pr = ::poll(&pfd, 1, static_cast<int>(config_.io_timeout_ms));
  if (pr == 0) {
    set_err(err, "timeout waiting for response");
    return false;
  }
  if (pr < 0) {
    set_err(err, std::string("poll failed: ") + std::strerror(errno));
    return false;
  }
  std::uint8_t buf[16 * 1024];
  const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
  if (r <= 0) {
    set_err(err, r == 0 ? "connection closed by server"
                        : std::string("recv failed: ") + std::strerror(errno));
    return false;
  }
  frames_.append(buf, static_cast<std::size_t>(r));
  return true;
}

bool Client::attempt(const protocol::Request& req,
                     const std::vector<std::uint8_t>& frame,
                     protocol::Response* resp, std::string* err) {
  if (!connect_locked(err)) return false;
  const std::uint8_t* p = frame.data();
  std::size_t n = frame.size();
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      set_err(err, std::string("send failed: ") + std::strerror(errno));
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  std::vector<std::uint8_t> payload;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(
                            config_.io_timeout_ms);
  for (;;) {
    const auto pull = frames_.pull(&payload);
    if (pull == protocol::FrameBuffer::Pull::kBad) {
      set_err(err, "malformed frame from server");
      return false;
    }
    if (pull == protocol::FrameBuffer::Pull::kFrame) {
      resp->op = req.op;  // the wire does not repeat the op
      std::string derr;
      if (!protocol::decode_response(payload.data(), payload.size(), resp,
                                     &derr)) {
        set_err(err, "undecodable response: " + derr);
        return false;
      }
      if (resp->request_id != req.request_id) continue;  // stale frame
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      set_err(err, "timeout waiting for response");
      return false;
    }
    if (!recv_some(err)) return false;
  }
}

double backoff_delay_ms(const ClientConfig& config, std::size_t attempt_idx,
                        std::uint32_t retry_after_ms, double unit) {
  if (retry_after_ms > 0) {
    // The hint is a floor: the server sized it to the queue it is asking
    // the client to outwait, so sleeping less (the old equal-jitter
    // downward draw) re-offers the request into the same congestion it
    // was just shed from. Jitter spreads retries upward from the hint.
    const double floor = std::min(static_cast<double>(retry_after_ms),
                                  config.backoff_cap_ms);
    const double jittered = floor * (1.0 + 0.5 * unit);
    return std::max(std::min(jittered, config.backoff_cap_ms), floor);
  }
  const double base =
      std::min(config.backoff_base_ms *
                   std::pow(2.0, static_cast<double>(attempt_idx)),
               config.backoff_cap_ms);
  return base * (0.5 + 0.5 * unit);
}

void Client::backoff(std::size_t attempt_idx, std::uint32_t retry_after_ms) {
  const double sleep_ms = backoff_delay_ms(config_, attempt_idx,
                                           retry_after_ms,
                                           jitter_.uniform(0.0, 1.0));
  stats_.backoff_total_ms += sleep_ms;
  // atlint: allow(banned-sleep) — the backoff envelope IS the contract.
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(sleep_ms));
}

bool Client::call(const protocol::Request& req_in, protocol::Response* resp,
                  std::string* err) {
  // One lock across the whole call, backoff sleeps included: the client
  // runs a single connection, so concurrent calls must serialize anyway
  // (two callers draining one socket would steal each other's frames).
  common::MutexLock lock(mutex_);
  protocol::Request req = req_in;
  ++stats_.calls;
  std::string last_err = "no attempt made";
  for (std::size_t a = 0; a <= config_.max_retries; ++a) {
    if (a > 0) ++stats_.retries;
    req.request_id = next_request_id_++;  // fresh id per attempt
    const auto frame = protocol::encode_request(req);
    std::string aerr;
    if (attempt(req, frame, resp, &aerr)) {
      if (resp->status != protocol::Status::kShed) return true;
      ++stats_.sheds_seen;
      last_err = "shed by server";
      backoff(a, resp->retry_after_ms);
      continue;
    }
    ++stats_.transport_errors;
    last_err = aerr;
    close_locked();  // the stream may be mid-frame; reconnect clean
    ++stats_.reconnects;
    backoff(a, 0);
  }
  set_err(err, "retries exhausted: " + last_err);
  return false;
}

bool Client::search(const std::vector<std::uint32_t>& terms,
                    std::uint32_t deadline_ms, std::uint32_t k,
                    protocol::Response* resp, std::string* err) {
  protocol::Request req;
  req.op = protocol::Op::kSearch;
  req.deadline_ms = deadline_ms;
  req.k = k;
  req.terms = terms;
  return call(req, resp, err);
}

bool Client::recommend(
    std::uint32_t target_item,
    const std::vector<std::pair<std::uint32_t, double>>& ratings,
    std::uint32_t deadline_ms, protocol::Response* resp, std::string* err) {
  protocol::Request req;
  req.op = protocol::Op::kRecommend;
  req.deadline_ms = deadline_ms;
  req.target_item = target_item;
  req.ratings = ratings;
  return call(req, resp, err);
}

bool Client::ping(std::string* err) {
  protocol::Request req;
  req.op = protocol::Op::kPing;
  protocol::Response resp;
  return call(req, &resp, err) && resp.status == protocol::Status::kOk;
}

bool Client::update(std::uint32_t component, std::uint32_t adds,
                    std::uint32_t changes, std::uint64_t seed,
                    std::uint32_t deadline_ms, protocol::Response* resp,
                    std::string* err) {
  protocol::Request req;
  req.op = protocol::Op::kUpdate;
  req.deadline_ms = deadline_ms;
  req.update_component = component;
  req.update_adds = adds;
  req.update_changes = changes;
  req.update_seed = seed;
  return call(req, resp, err);
}

bool Client::stats(std::string* json, std::string* err) {
  protocol::Request req;
  req.op = protocol::Op::kStats;
  protocol::Response resp;
  if (!call(req, &resp, err) || resp.status != protocol::Status::kOk)
    return false;
  if (json != nullptr) *json = resp.text;
  return true;
}

}  // namespace at::server
