// Scripted replay driver: drives a running server with a deterministic
// topic-focused query stream from N concurrent clients and aggregates the
// client-observed outcome — per-tier latency percentiles, shed rate,
// transport errors. Headless by design: the CI smoke job and the serving
// benchmark both run it against a freshly started server (optionally with
// failpoints armed) and assert on / emit the report.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "server/client.h"
#include "workload/corpus.h"

namespace at::server {

struct ReplayConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t num_clients = 4;
  std::size_t requests_per_client = 100;
  std::uint32_t deadline_ms = 100;
  std::uint32_t k = 10;
  /// Fraction of requests sent as recommend ops (rest are searches).
  double recommend_fraction = 0.0;
  /// Fraction of requests sent as online-retraining updates, interleaved
  /// with the query load from the same seeded stream (--update-mix). Each
  /// update targets a seeded-random component with a deterministic batch.
  double update_fraction = 0.0;
  std::uint32_t update_adds = 4;
  std::uint32_t update_changes = 4;
  /// Components the update stream may target (server-side bound is
  /// authoritative; out-of-range picks come back as bad requests).
  std::uint32_t update_components = 1;
  std::uint64_t seed = 7;
  /// Query distribution; must match the corpus the server was built from
  /// for the workload to be meaningful (term ids outside the vocabulary
  /// are valid protocol-wise but score nothing).
  workload::CorpusConfig corpus;
  /// Per-client template; host/port are overwritten from above and the
  /// jitter seed is forked per client.
  ClientConfig client;
};

struct ReplayReport {
  std::uint64_t requests = 0;          // calls attempted
  std::uint64_t ok_full = 0;
  std::uint64_t ok_synopsis = 0;
  std::uint64_t ok_cached = 0;
  std::uint64_t ok_updates = 0;        // retraining batches applied
  std::uint64_t shed_responses = 0;    // kShed frames seen (pre-retry)
  std::uint64_t server_errors = 0;     // kError / kBadRequest answers
  std::uint64_t transport_errors = 0;
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;          // calls that exhausted retries
  common::PercentileTracker lat_full_ms, lat_synopsis_ms, lat_cached_ms,
      lat_update_ms;
  common::StreamingStats loss_full, loss_synopsis, loss_cached;

  void merge(const ReplayReport& other);
  double shed_rate() const {
    return requests ? static_cast<double>(shed_responses) /
                          static_cast<double>(requests)
                    : 0.0;
  }
  /// Per-tier {count, p50_ms, p99_ms, mean_loss_pct} + shed/error counts —
  /// the BENCH_serving.json payload.
  std::string to_json() const;
};

/// Runs the replay (blocking): num_clients threads, each its own
/// connection and deterministic query stream. The server must already be
/// listening.
ReplayReport run_replay(const ReplayConfig& config);

}  // namespace at::server
