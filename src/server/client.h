// Client library for the serving front end: one blocking connection,
// synchronous request/response, and the retry discipline the server's
// admission control expects from well-behaved callers — per-call timeout,
// jittered exponential backoff on transport errors, and honoring a shed
// response's retry_after_ms hint as a floor (jittered above it, capped at
// backoff_cap_ms, so a misbehaving server cannot park the client forever).
//
// Deterministic by construction: the jitter stream is seeded from the
// config, so replay runs and tests reproduce bit-identical schedules.
//
// Thread-safe: every public operation holds one internal mutex, so a
// Client may be shared across threads. Concurrent call()s serialize —
// necessary, not just convenient: the client runs one connection, and a
// second caller draining the socket mid-response would steal (and drop,
// as "stale") the first caller's frame.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "server/protocol.h"

namespace at::server {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Socket-level timeout per send/recv, and the cap on waiting for one
  /// response.
  double io_timeout_ms = 2000.0;
  /// Retry budget per call() across transport errors and sheds; 0 = one
  /// attempt, no retries.
  std::size_t max_retries = 4;
  /// Backoff for attempt n waits uniform(0.5, 1.0) * min(base * 2^n, cap)
  /// ("equal jitter"). A shed's retry_after_ms is a *floor*, not a base:
  /// the server sized the hint to the queue it is asking the client to
  /// outwait, so the client sleeps at least that long, jitters *above*
  /// the hint (up to 1.5x, de-synchronizing retry herds), and stays
  /// capped at backoff_cap_ms.
  double backoff_base_ms = 5.0;
  double backoff_cap_ms = 500.0;
  std::uint64_t jitter_seed = 0x5eedc11e;
};

/// Pure backoff schedule (exposed for deterministic regression tests).
/// `unit` is one draw from uniform[0, 1). With no hint (retry_after_ms ==
/// 0), attempt n sleeps equal-jittered exponential:
///   min(backoff_base_ms * 2^n, cap) * (0.5 + 0.5 * unit).
/// A shed hint is honored as a floor: the delay is in
///   [min(hint, cap), cap], drawn as hint * (1 + 0.5 * unit) then clamped
/// — never below what the server asked for, still bounded so a
/// misbehaving server cannot park the client forever.
double backoff_delay_ms(const ClientConfig& config, std::size_t attempt_idx,
                        std::uint32_t retry_after_ms, double unit);

struct ClientStats {
  std::uint64_t calls = 0;
  std::uint64_t retries = 0;           // re-attempts of any cause
  std::uint64_t transport_errors = 0;  // reset / timeout / short frame
  std::uint64_t sheds_seen = 0;        // kShed responses (each retried)
  std::uint64_t reconnects = 0;
  double backoff_total_ms = 0.0;       // time spent sleeping in backoff
};

class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects eagerly; call() also connects lazily, so this exists mainly
  /// to fail fast. Returns false (with err) when the server is unreachable.
  bool connect(std::string* err = nullptr);
  void close();
  bool connected() const {
    common::MutexLock lock(mutex_);
    return fd_ >= 0;
  }

  /// One synchronous RPC. Assigns the request id, sends, and waits for the
  /// response. Transport errors reconnect and retry with jittered
  /// exponential backoff; kShed responses back off by the server's
  /// retry_after_ms hint and retry. Returns true when a non-shed response
  /// was received (resp->status may still be kError / kBadRequest — those
  /// are answers, not transport failures). Returns false with `err` when
  /// the retry budget is exhausted.
  bool call(const protocol::Request& req, protocol::Response* resp,
            std::string* err);

  /// Conveniences over call().
  bool search(const std::vector<std::uint32_t>& terms,
              std::uint32_t deadline_ms, std::uint32_t k,
              protocol::Response* resp, std::string* err);
  bool recommend(std::uint32_t target_item,
                 const std::vector<std::pair<std::uint32_t, double>>& ratings,
                 std::uint32_t deadline_ms, protocol::Response* resp,
                 std::string* err);
  bool ping(std::string* err);
  /// Fetches the server's stats op; returns the JSON body.
  bool stats(std::string* json, std::string* err);
  /// Drives one online-retraining batch into `component`: the server
  /// synthesizes a deterministic batch from (seed, adds, changes), applies
  /// it and publishes a new epoch. The JSON report lands in resp->text.
  bool update(std::uint32_t component, std::uint32_t adds,
              std::uint32_t changes, std::uint64_t seed,
              std::uint32_t deadline_ms, protocol::Response* resp,
              std::string* err);

  /// Snapshot of the retry/transport counters (copied under the lock).
  ClientStats stats_counters() const {
    common::MutexLock lock(mutex_);
    return stats_;
  }

 private:
  bool connect_locked(std::string* err) AT_REQUIRES(mutex_);
  void close_locked() AT_REQUIRES(mutex_);
  /// One attempt: send the frame, read frames until the matching response.
  bool attempt(const protocol::Request& req,
               const std::vector<std::uint8_t>& frame,
               protocol::Response* resp, std::string* err)
      AT_REQUIRES(mutex_);
  bool recv_some(std::string* err) AT_REQUIRES(mutex_);
  void backoff(std::size_t attempt_idx, std::uint32_t retry_after_ms)
      AT_REQUIRES(mutex_);

  ClientConfig config_;
  mutable common::Mutex mutex_;
  int fd_ AT_GUARDED_BY(mutex_) = -1;
  std::uint64_t next_request_id_ AT_GUARDED_BY(mutex_) = 1;
  protocol::FrameBuffer frames_ AT_GUARDED_BY(mutex_);
  common::Rng jitter_ AT_GUARDED_BY(mutex_);
  ClientStats stats_ AT_GUARDED_BY(mutex_);
};

}  // namespace at::server
