// Warm-standby replica (ISSUE 10 tentpole): the process that actually
// consumes the DLTA delta stream the serving front end emits, and the
// missing half of replicated multi-node serving.
//
// Lifecycle:
//
//   load()     reads a full checkpoint (written by Server::write_checkpoint):
//              one SCMP per search component, one RCMP per recommender
//              component, and the corpus-global idf (MATX). Each loaded
//              component's epoch slot is REBASED to the version stamped in
//              the checkpoint filename, so replayed publishes advance in
//              lockstep with the primary's delta stream — after promotion
//              the replica reports the same effective epoch the primary
//              would (no epoch gap).
//   start()    spawns the tailer thread: every poll lists the delta
//              directory, ignores anything that is not a well-formed
//              "delta_<kind><comp>_<version>.atac" (".tmp" leftovers,
//              foreign files), sorts numerically by version per component,
//              and applies exactly the batches whose from_version matches
//              the component's replayed state. Re-delivered deltas (version
//              at or below the cursor) are no-ops.
//   promote()  stops tailing, drains every delta already on disk, then
//              starts a Server over the replayed components and begins
//              answering queries. Because SynopsisUpdater::apply is
//              deterministic and the checkpointed idf is installed
//              verbatim, the promoted replica's answers are byte-identical
//              to a primary that never failed (the takeover drill in
//              tests/server_test.cpp asserts both properties).
//
// Gap handling: a delta whose from_version is ahead of the replayed state
// means a delta the primary lost (e.g. a failed delta write — they are
// best-effort on the primary). Because delta files are written to ".tmp"
// and atomically renamed in version order per component, a missing middle
// version that persists across `gap_patience` consecutive polls cannot be
// an in-flight write; the replica then surfaces a structured resync
// condition (state kResyncRequired + reason) instead of silently skipping
// — replaying past a hole would diverge forever. Out-of-order *arrival*
// (a later version visible one poll before an earlier one) is absorbed by
// the patience window.
//
// Threading: one tailer thread, serialized with the control plane
// (load/start/promote/stop — call those from one thread) through `mutex_`;
// all shared state is AT_GUARDED_BY(mutex_) and the pacing wait is an
// interruptible CondVar::wait_for, never a bare sleep. Failpoints:
// "standby.apply" fires before a batch is applied (an injected error is
// counted and retried next poll — no partial state), "standby.promote"
// fires before promotion side effects (an injected error leaves the
// replica tailing).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sharded_executor.h"
#include "common/thread_annotations.h"
#include "server/server.h"
#include "services/recommender/service.h"
#include "services/search/service.h"

namespace at::server {

struct StandbyConfig {
  /// Directory holding ckpt_c*/ckpt_r*/ckpt_idf artifacts (see
  /// Server::write_checkpoint).
  std::string checkpoint_dir;
  /// Directory the primary emits delta artifacts into (ServerConfig::
  /// delta_dir on the primary).
  std::string delta_dir;
  /// Tailer pacing between polls.
  double poll_interval_ms = 20.0;
  /// Consecutive polls a version gap must persist before the replica
  /// declares resync. >= 2 absorbs out-of-order arrival within one poll
  /// window; 1 makes every observed gap immediate (tests).
  int gap_patience = 2;
  /// Search top-k of the reconstructed service.
  std::size_t k = 10;
  /// Rating bounds of the reconstructed recommender (not persisted in
  /// RCMP; must match the primary's).
  double min_rating = 1.0;
  double max_rating = 5.0;
  /// Config of the server started at promote(). When its delta_dir is
  /// set (e.g. to the tailed directory), the promoted replica continues
  /// the delta chain exactly where the primary stopped.
  ServerConfig server;
};

enum class StandbyState {
  kCreated,         // constructed, nothing loaded
  kTailing,         // checkpoint loaded; applying deltas (or ready to)
  kResyncRequired,  // structured failure: full re-checkpoint needed
  kPromoted,        // serving
  kStopped,
};

const char* to_string(StandbyState s);

struct StandbyStats {
  StandbyState state = StandbyState::kCreated;
  std::uint64_t polls = 0;
  std::uint64_t deltas_applied = 0;
  /// Directory entries skipped per poll (".tmp", foreign names,
  /// out-of-range components). Re-counted every poll by design — it is a
  /// rate, not a set size.
  std::uint64_t files_ignored = 0;
  /// Well-named delta files that failed to load (torn/corrupt); each is
  /// retried next poll and feeds the gap logic, never skipped past.
  std::uint64_t load_errors = 0;
  /// Injected or I/O apply failures ("standby.apply"); retried next poll.
  std::uint64_t apply_failures = 0;
  /// Components currently stuck behind a version gap (patience running).
  std::uint64_t gaps_pending = 0;
  /// Non-empty exactly when state == kResyncRequired.
  std::string resync_reason;
  /// Sum of search component epoch versions (the promoted server's
  /// epoch_now() contribution); comparable against the primary's.
  std::uint64_t search_epoch = 0;
};

class StandbyReplica {
 public:
  explicit StandbyReplica(StandbyConfig config);
  ~StandbyReplica();

  StandbyReplica(const StandbyReplica&) = delete;
  StandbyReplica& operator=(const StandbyReplica&) = delete;

  /// Loads the checkpoint and rebases every component's epoch version to
  /// its checkpointed value. Throws common::ArtifactError when the
  /// checkpoint is missing, non-contiguous or corrupt.
  void load();

  /// Spawns the tailer thread (load() first).
  void start();

  /// One synchronous tailer iteration: list, sort, apply everything ready.
  /// Returns the number of deltas applied. The deterministic test hook —
  /// usable with or without the tailer thread running.
  std::size_t poll_once();

  /// Stops tailing, drains all remaining on-disk deltas, then starts a
  /// Server over the replayed components and returns it (owned by the
  /// replica until stop()). Throws std::runtime_error when promotion is
  /// impossible (not loaded, resync required) — the replica keeps its
  /// state so the condition is observable. Idempotent once promoted.
  Server& promote();

  /// Joins the tailer and stops the promoted server (if any). Idempotent.
  void stop();

  StandbyStats stats() const;
  std::string stats_json() const;

  StandbyState state() const;
  /// Non-null once promoted, until stop().
  Server* server();
  /// Non-null once loaded. The replica owns both services and the
  /// executor they fan out on.
  search::SearchService* search_service() { return search_.get(); }
  reco::CfService* reco_service() { return reco_.get(); }

 private:
  /// Per-component replay cursor.
  struct Cursor {
    std::uint64_t applied = 0;  // epoch version replayed up to
    int gap_polls = 0;          // consecutive polls stuck behind a gap
  };
  /// One parsed directory entry, per (kind, component) stream.
  struct Entry {
    std::uint64_t version = 0;
    std::string path;
  };

  void tail_loop();
  std::size_t poll_locked() AT_REQUIRES(mutex_);
  /// Replays every ready entry of one component's stream; updates its
  /// cursor and the gap bookkeeping.
  std::size_t replay_component_locked(char kind, std::size_t comp,
                                      std::vector<Entry> entries)
      AT_REQUIRES(mutex_);
  void declare_resync_locked(const std::string& reason) AT_REQUIRES(mutex_);

  StandbyConfig config_;
  common::ShardedExecutor exec_;
  // Set once in load() before any thread exists; the services themselves
  // are internally synchronized (RCU epoch slots + writer mutexes).
  std::unique_ptr<search::SearchService> search_;
  std::unique_ptr<reco::CfService> reco_;

  mutable common::Mutex mutex_;
  common::CondVar cv_;
  StandbyState state_ AT_GUARDED_BY(mutex_) = StandbyState::kCreated;
  bool stop_tailer_ AT_GUARDED_BY(mutex_) = false;
  std::vector<Cursor> search_cursor_ AT_GUARDED_BY(mutex_);
  std::vector<Cursor> reco_cursor_ AT_GUARDED_BY(mutex_);
  std::uint64_t polls_ AT_GUARDED_BY(mutex_) = 0;
  std::uint64_t deltas_applied_ AT_GUARDED_BY(mutex_) = 0;
  std::uint64_t files_ignored_ AT_GUARDED_BY(mutex_) = 0;
  std::uint64_t load_errors_ AT_GUARDED_BY(mutex_) = 0;
  std::uint64_t apply_failures_ AT_GUARDED_BY(mutex_) = 0;
  std::string resync_reason_ AT_GUARDED_BY(mutex_);
  std::unique_ptr<Server> server_ AT_GUARDED_BY(mutex_);
  // Control-plane only (start/promote/stop run from one thread).
  std::thread tailer_;
};

}  // namespace at::server
