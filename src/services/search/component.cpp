#include "services/search/component.h"

#include <string>

#include "common/binary_io.h"
#include "core/algorithm1.h"
#include "synopsis/serialize.h"

namespace at::search {

// ---------------------------------------------------------------------------
// SearchSnapshot

SearchSnapshot::SearchSnapshot(
    synopsis::SparseRows docs, std::uint64_t doc_id_base,
    synopsis::BuildConfig config, ScorerParams scorer,
    synopsis::SynopsisStructure structure, synopsis::Synopsis synopsis,
    std::shared_ptr<const std::vector<double>> global_idf)
    : docs_(std::move(docs)),
      doc_id_base_(doc_id_base),
      config_(config),
      scorer_(scorer),
      structure_(std::move(structure)),
      synopsis_(std::move(synopsis)),
      index_(docs_, scorer),
      global_idf_(std::move(global_idf)) {
  if (global_idf_ != nullptr) index_.set_global_idf(global_idf_);
  build_derived();
}

SearchSnapshot::SearchSnapshot(const SearchSnapshot& o)
    : docs_(o.docs_),
      doc_id_base_(o.doc_id_base_),
      config_(o.config_),
      scorer_(o.scorer_),
      structure_(o.structure_.clone()),
      synopsis_(o.synopsis_),
      index_(o.index_),
      doc_group_(o.doc_group_),
      agg_length_(o.agg_length_),
      global_idf_(o.global_idf_) {}

void SearchSnapshot::build_derived() {
  doc_group_.assign(docs_.rows(), 0);
  const auto& groups = structure_.index.groups();
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    for (auto member : groups[g].members) doc_group_[member] = g;
  }
  agg_length_.assign(synopsis_.size(), 0.0);
  for (std::size_t g = 0; g < synopsis_.size(); ++g) {
    double len = 0.0;
    for (const auto& [term, count] : synopsis_.points[g].features)
      len += count;
    agg_length_[g] = len;
  }
}

std::vector<std::uint32_t> SearchSnapshot::doc_frequencies() const {
  std::vector<std::uint32_t> dfs(docs_.cols(), 0);
  for (std::uint32_t t = 0; t < docs_.cols(); ++t)
    dfs[t] = index_.doc_frequency(t);
  return dfs;
}

std::vector<std::uint32_t> SearchSnapshot::group_sizes() const {
  std::vector<std::uint32_t> sizes;
  sizes.reserve(structure_.index.size());
  for (const auto& g : structure_.index.groups())
    sizes.push_back(static_cast<std::uint32_t>(g.members.size()));
  return sizes;
}

SearchComponentWork SearchSnapshot::analyze(
    const SearchRequest& request) const {
  SearchComponentWork work;
  const std::size_t m = synopsis_.size();
  work.correlations.resize(m, 0.0);
  work.scored_by_group.resize(m);

  // Synopsis pass: score each merged page against the query; a higher
  // similarity means the group's member pages are, on average, more likely
  // to contain the actual top pages.
  for (std::size_t g = 0; g < m; ++g) {
    work.correlations[g] = index_.score_counts(
        request.terms, synopsis_.points[g].features, agg_length_[g]);
  }

  // Exact pass, decomposed by group.
  std::vector<ScoredDoc> scored;
  index_.score_query(request.terms, doc_id_base_, scored);
  for (const auto& d : scored) {
    const auto local = static_cast<std::uint32_t>(d.doc - doc_id_base_);
    work.scored_by_group[doc_group_[local]].push_back(d);
  }
  return work;
}

std::vector<ScoredDoc> SearchSnapshot::exact_topk(const SearchRequest& request,
                                                  std::size_t k) const {
  return index_.topk(request.terms, doc_id_base_, k);
}

std::vector<ScoredDoc> SearchSnapshot::synopsis_topk(
    const SearchRequest& request, std::size_t k) const {
  const std::size_t m = synopsis_.size();
  std::vector<double> corr(m, 0.0);
  for (std::size_t g = 0; g < m; ++g) {
    corr[g] = index_.score_counts(request.terms, synopsis_.points[g].features,
                                  agg_length_[g]);
  }
  std::vector<ScoredDoc> out;
  for (const std::size_t g : core::rank_by_correlation(corr)) {
    if (corr[g] <= 0.0 || out.size() >= k) break;  // no query overlap left
    for (auto member : structure_.index.groups()[g].members) {
      if (out.size() >= k) break;
      out.push_back(ScoredDoc{corr[g], doc_id_base_ + member});
    }
  }
  return out;
}

std::vector<std::uint64_t> SearchSnapshot::group_member_docs(
    std::size_t g) const {
  const auto& members = structure_.index.groups().at(g).members;
  std::vector<std::uint64_t> out;
  out.reserve(members.size());
  for (auto m : members) out.push_back(doc_id_base_ + m);
  return out;
}

void SearchSnapshot::save(std::ostream& os, common::Codec codec) const {
  common::ArtifactWriter w(os, "SCMP", 1);
  common::ChunkWriter conf;
  conf.u64(doc_id_base_);
  conf.u64(config_.svd.rank);
  conf.u64(config_.svd.epochs_per_dim);
  conf.f64(config_.svd.learning_rate);
  conf.f64(config_.svd.regularization);
  conf.f64(config_.size_ratio);
  conf.u64(config_.min_groups);
  conf.u8(scorer_.scorer == Scorer::kBm25 ? 1 : 0);
  conf.f64(scorer_.bm25_k1);
  conf.f64(scorer_.bm25_b);
  w.chunk("CONF", conf);
  synopsis::save(os, docs_);
  synopsis::save(os, structure_, codec);
  synopsis::save(os, synopsis_);
  w.finish();
}

std::unique_ptr<const SearchSnapshot> SearchSnapshot::with_global_idf(
    std::shared_ptr<const std::vector<double>> idf) const {
  std::unique_ptr<SearchSnapshot> copy(new SearchSnapshot(*this));
  copy->global_idf_ = std::move(idf);
  copy->index_.set_global_idf(copy->global_idf_);
  return copy;
}

// ---------------------------------------------------------------------------
// SearchBuilder

SearchBuilder::SearchBuilder(synopsis::SparseRows docs,
                             std::uint64_t doc_id_base,
                             const synopsis::BuildConfig& config,
                             ScorerParams scorer, common::ThreadPool* pool)
    : docs_(std::move(docs)),
      doc_id_base_(doc_id_base),
      config_(config),
      scorer_(scorer),
      structure_(synopsis::SynopsisBuilder(config).build(docs_, pool)),
      synopsis_(synopsis::aggregate_all(docs_, structure_.index,
                                        synopsis::AggregationKind::kMerge,
                                        pool)) {}

SearchBuilder::SearchBuilder(synopsis::SparseRows docs,
                             std::uint64_t doc_id_base,
                             synopsis::BuildConfig config, ScorerParams scorer,
                             synopsis::SynopsisStructure structure,
                             synopsis::Synopsis synopsis)
    : docs_(std::move(docs)),
      doc_id_base_(doc_id_base),
      config_(config),
      scorer_(scorer),
      structure_(std::move(structure)),
      synopsis_(std::move(synopsis)) {}

synopsis::UpdateReport SearchBuilder::apply(const synopsis::UpdateBatch& batch,
                                            common::ThreadPool* pool) {
  synopsis::SynopsisUpdater updater(config_);
  return updater.apply(structure_, docs_, synopsis_, batch,
                       synopsis::AggregationKind::kMerge, pool);
}

std::unique_ptr<const SearchSnapshot> SearchBuilder::build(
    std::shared_ptr<const std::vector<double>> global_idf) const {
  return std::make_unique<const SearchSnapshot>(
      docs_, doc_id_base_, config_, scorer_, structure_.clone(), synopsis_,
      std::move(global_idf));
}

// ---------------------------------------------------------------------------
// SearchComponent

/// The non-movable anchor behind the movable facade: the writer mutex, the
/// shadow copy it guards, and the epoch slot readers pin through. Held via
/// unique_ptr so SearchComponent still fits in std::vector.
struct SearchComponent::Core {
  common::Mutex writer_mutex;
  SearchBuilder builder AT_GUARDED_BY(writer_mutex);
  common::ThreadPool* pool AT_GUARDED_BY(writer_mutex) = nullptr;
  std::shared_ptr<const std::vector<double>> global_idf
      AT_GUARDED_BY(writer_mutex);
  DeltaSink delta_sink AT_GUARDED_BY(writer_mutex);
  common::EpochSlot<SearchSnapshot> epoch;

  explicit Core(SearchBuilder b) : builder(std::move(b)) {}
};

SearchComponent::SearchComponent(SearchBuilder builder,
                                 common::ThreadPool* pool)
    : core_(std::make_unique<Core>(std::move(builder))) {
  common::MutexLock lock(core_->writer_mutex);
  core_->pool = pool;
  core_->epoch.publish(core_->builder.build(nullptr));
}

SearchComponent::SearchComponent(synopsis::SparseRows docs,
                                 std::uint64_t doc_id_base,
                                 const synopsis::BuildConfig& config,
                                 ScorerParams scorer, common::ThreadPool* pool)
    : SearchComponent(
          SearchBuilder(std::move(docs), doc_id_base, config, scorer, pool),
          pool) {}

SearchComponent::~SearchComponent() = default;
SearchComponent::SearchComponent(SearchComponent&&) noexcept = default;
SearchComponent& SearchComponent::operator=(SearchComponent&&) noexcept =
    default;

void SearchComponent::set_pool(common::ThreadPool* pool) {
  common::MutexLock lock(core_->writer_mutex);
  core_->pool = pool;
}

std::shared_ptr<const SearchSnapshot> SearchComponent::snapshot() const {
  return core_->epoch.acquire();
}

std::pair<std::shared_ptr<const SearchSnapshot>, std::uint64_t>
SearchComponent::snapshot_versioned() const {
  return core_->epoch.acquire_versioned();
}

std::uint64_t SearchComponent::epoch_version() const {
  return core_->epoch.version();
}

common::EpochStats SearchComponent::epoch_stats() const {
  return core_->epoch.stats();
}

void SearchComponent::rebase_epoch_version(std::uint64_t v) {
  // The writer mutex serializes the rebase against concurrent update()
  // publishes, so the version can never move between their pre-publish
  // read and the publish itself.
  common::MutexLock lock(core_->writer_mutex);
  core_->epoch.rebase_version(v);
}

void SearchComponent::set_delta_sink(DeltaSink sink) {
  common::MutexLock lock(core_->writer_mutex);
  core_->delta_sink = std::move(sink);
}

const synopsis::SynopsisStructure& SearchComponent::structure() const {
  return snapshot()->structure();
}

const synopsis::Synopsis& SearchComponent::synopsis() const {
  return snapshot()->synopsis();
}

const InvertedIndex& SearchComponent::index() const {
  return snapshot()->index();
}

void SearchComponent::set_global_idf(
    std::shared_ptr<const std::vector<double>> idf) {
  common::MutexLock lock(core_->writer_mutex);
  core_->global_idf = idf;
  std::shared_ptr<const SearchSnapshot> cur = core_->epoch.acquire();
  // Cheap-copy publish: swap the idf table on a copy of the published
  // snapshot instead of rebuilding index + derived arrays from the shadow.
  core_->epoch.publish(cur->with_global_idf(std::move(idf)));
}

synopsis::UpdateReport SearchComponent::update(
    const synopsis::UpdateBatch& batch) {
  common::MutexLock lock(core_->writer_mutex);
  const std::uint64_t from = core_->epoch.version();
  // Retrain/fold-in runs on the shadow copy: readers keep scanning the
  // published epoch and never observe intermediate state.
  synopsis::UpdateReport report = core_->builder.apply(batch, core_->pool);
  core_->epoch.publish(core_->builder.build(core_->global_idf));
  if (core_->delta_sink) {
    core_->delta_sink(batch, from, core_->epoch.version());
  }
  return report;
}

void SearchComponent::adopt(SearchComponent&& fresh) {
  // Move the incoming shadow copy out from under `fresh`'s own mutex
  // first; both locks are never held at once (no ordering to get wrong).
  std::unique_ptr<Core> incoming = std::move(fresh.core_);
  SearchBuilder* adopted = nullptr;
  {
    common::MutexLock lock(incoming->writer_mutex);
    adopted = &incoming->builder;
  }
  common::MutexLock lock(core_->writer_mutex);
  core_->builder = std::move(*adopted);
  core_->epoch.publish(core_->builder.build(core_->global_idf));
}

SearchComponent SearchComponent::load(std::istream& is) try {
  if (!common::next_is_artifact(is)) {
    // Legacy "ATSC" v1 snapshot.
    common::BinaryReader r(is);
    if (r.magic("ATSC") != 1)
      throw std::runtime_error(
          "SearchComponent::load: unsupported legacy version");
    const auto doc_id_base = r.u64();
    synopsis::BuildConfig config;
    config.svd.rank = r.u64();
    config.svd.epochs_per_dim = r.u64();
    config.svd.learning_rate = r.f64();
    config.svd.regularization = r.f64();
    config.size_ratio = r.f64();
    config.min_groups = r.u64();
    ScorerParams scorer;
    scorer.scorer = r.u8() != 0 ? Scorer::kBm25 : Scorer::kTfIdf;
    scorer.bm25_k1 = r.f64();
    scorer.bm25_b = r.f64();
    auto docs = synopsis::load_sparse_rows(is);
    auto structure = synopsis::load_structure(is);
    auto synopsis = synopsis::load_synopsis(is);
    return SearchComponent(
        SearchBuilder(std::move(docs), doc_id_base, config, scorer,
                      std::move(structure), std::move(synopsis)),
        nullptr);
  }
  common::ArtifactReader r(is, "SCMP");
  if (r.version() != 1)
    throw common::ArtifactError("SearchComponent::load: unsupported version");
  common::ChunkReader conf = r.chunk("CONF");
  const auto doc_id_base = conf.u64();
  synopsis::BuildConfig config;
  config.svd.rank = conf.u64();
  config.svd.epochs_per_dim = conf.u64();
  config.svd.learning_rate = conf.f64();
  config.svd.regularization = conf.f64();
  config.size_ratio = conf.f64();
  config.min_groups = conf.u64();
  ScorerParams scorer;
  scorer.scorer = conf.u8() != 0 ? Scorer::kBm25 : Scorer::kTfIdf;
  scorer.bm25_k1 = conf.f64();
  scorer.bm25_b = conf.f64();
  conf.expect_consumed();
  auto docs = synopsis::load_sparse_rows(is);
  auto structure = synopsis::load_structure(is);
  auto synopsis = synopsis::load_synopsis(is);
  r.finish();
  return SearchComponent(
      SearchBuilder(std::move(docs), doc_id_base, config, scorer,
                    std::move(structure), std::move(synopsis)),
      nullptr);
} catch (const common::ArtifactError&) {
  throw;
} catch (const std::exception& e) {
  // Every load failure — truncated stream, bad legacy header, decoder
  // error mid-chunk — surfaces as the artifact layer's structured error.
  throw common::ArtifactError(std::string("SearchComponent::load: ") +
                              e.what());
}

}  // namespace at::search
