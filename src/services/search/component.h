// One parallel component of the search service: a shard of the web-page
// corpus, its inverted index, and the synopsis of merged ("aggregated")
// pages built over it.
//
// Ownership model (ISSUE 8): the component is split into an immutable
// published half and a mutable shadow half behind an RCU epoch slot.
//
//   SearchSnapshot   everything a query reads — docs, synopsis, inverted
//                    index, derived arrays — frozen at publish time. All
//                    methods are const and safe to call from any number
//                    of threads concurrently.
//   SearchBuilder    the writer's working copy. update batches mutate it
//                    in place on the component's home group, then build()
//                    copies it into a fresh SearchSnapshot.
//   SearchComponent  the facade the rest of the stack holds: queries pin
//                    the current snapshot (snapshot() / the delegating
//                    query methods), writers serialize on an internal
//                    mutex and publish through an EpochSlot. Publishing
//                    is a pointer swap: queries never block on
//                    retraining, and an epoch retires (frees) only when
//                    the last in-flight query drops its pin.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "services/search/inverted_index.h"
#include "services/search/topk.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"
#include "synopsis/updater.h"

namespace at::search {

struct SearchRequest {
  std::vector<std::uint32_t> terms;  // query term ids
};

/// Per-request decomposition of one component's contribution:
///  * correlations[g] — the aggregated page g's similarity score to the
///    query (the paper's correlation estimate for text services);
///  * scored_by_group[g] — the *exactly scored* member pages of group g
///    that match the query (global doc ids).
/// Exact processing is the union over all groups; AccuracyTrader with k
/// sets processed contributes the union over the top-k ranked groups.
struct SearchComponentWork {
  std::vector<double> correlations;
  std::vector<std::vector<ScoredDoc>> scored_by_group;
};

/// Immutable published state of one search component. Built by
/// SearchBuilder::build(); every member is frozen after construction, so
/// any number of threads may query one snapshot concurrently (the scan
/// scratch inside InvertedIndex is thread_local). Group indices, doc ids
/// and correlations returned by one snapshot are only meaningful against
/// that same snapshot — pin it once per request.
class SearchSnapshot {
 public:
  SearchSnapshot(synopsis::SparseRows docs, std::uint64_t doc_id_base,
                 synopsis::BuildConfig config, ScorerParams scorer,
                 synopsis::SynopsisStructure structure,
                 synopsis::Synopsis synopsis,
                 std::shared_ptr<const std::vector<double>> global_idf);

  std::size_t num_docs() const { return docs_.rows(); }
  std::size_t num_groups() const { return structure_.index.size(); }
  std::uint64_t doc_id_base() const { return doc_id_base_; }
  const synopsis::BuildConfig& config() const { return config_; }
  const ScorerParams& scorer_params() const { return scorer_; }
  const synopsis::SparseRows& docs() const { return docs_; }
  const synopsis::SynopsisStructure& structure() const { return structure_; }
  const synopsis::Synopsis& synopsis() const { return synopsis_; }
  const InvertedIndex& index() const { return index_; }
  const std::shared_ptr<const std::vector<double>>& global_idf() const {
    return global_idf_;
  }

  /// Compressed vs raw postings footprint of this shard's inverted index.
  IndexSizeStats index_size() const { return index_.size_stats(); }

  /// Per-term document frequencies (for building the corpus-global idf).
  std::vector<std::uint32_t> doc_frequencies() const;

  std::vector<std::uint32_t> group_sizes() const;

  /// Full per-request analysis (synopsis scores + exact member scores).
  SearchComponentWork analyze(const SearchRequest& request) const;

  /// Exact local top-k (all groups).
  std::vector<ScoredDoc> exact_topk(const SearchRequest& request,
                                    std::size_t k) const;

  /// Stage-1-only local answer: scores only the aggregated synopsis pages
  /// (O(groups) work, no postings scan), then returns the member docs of
  /// the best-correlated groups, each carrying its group's correlation as
  /// the score. The cheap rung of the serving degradation ladder — scores
  /// are approximate but comparable across components (global idf).
  std::vector<ScoredDoc> synopsis_topk(const SearchRequest& request,
                                       std::size_t k) const;

  /// Global doc ids of group g's members, in member order. Used for the
  /// stage-1-only fallback: when no group was processed exactly, the
  /// initial result returns members of the best-ranked aggregated pages
  /// (an approximation; individual member scores are unknown until their
  /// group is processed).
  std::vector<std::uint64_t> group_member_docs(std::size_t g) const;

  /// Persists the shard (documents + synopsis structure + aggregated
  /// synopsis + scorer) as an artifact-store snapshot (kind "SCMP"); f64
  /// columns go through `codec`, every chunk is CRC-checked, and the
  /// inverted index is rebuilt on load.
  void save(std::ostream& os,
            common::Codec codec = common::default_codec()) const;

  /// Identical snapshot with a different corpus-global idf table: copies
  /// the frozen state and swaps the idf — no SVD retrain, no index
  /// rebuild (the postings pool is copied, not reconstructed).
  std::unique_ptr<const SearchSnapshot> with_global_idf(
      std::shared_ptr<const std::vector<double>> idf) const;

 private:
  SearchSnapshot(const SearchSnapshot&);  // deep copy (clones the R-tree)

  void build_derived();  // doc_group_, agg_length_

  synopsis::SparseRows docs_;
  std::uint64_t doc_id_base_;
  synopsis::BuildConfig config_;
  ScorerParams scorer_;
  synopsis::SynopsisStructure structure_;
  synopsis::Synopsis synopsis_;
  InvertedIndex index_;
  std::vector<std::uint32_t> doc_group_;  // local doc -> group index
  std::vector<double> agg_length_;        // merged length per aggregated page
  std::shared_ptr<const std::vector<double>> global_idf_;
};

/// The writer's mutable half: the working copy retrain/fold-in batches
/// mutate, and the factory for published snapshots. Not thread-safe by
/// itself — SearchComponent serializes all access under its writer mutex.
class SearchBuilder {
 public:
  SearchBuilder(synopsis::SparseRows docs, std::uint64_t doc_id_base,
                const synopsis::BuildConfig& config, ScorerParams scorer,
                common::ThreadPool* pool);

  /// From loaded artifact pieces (no synopsis rebuild).
  SearchBuilder(synopsis::SparseRows docs, std::uint64_t doc_id_base,
                synopsis::BuildConfig config, ScorerParams scorer,
                synopsis::SynopsisStructure structure,
                synopsis::Synopsis synopsis);

  std::uint64_t doc_id_base() const { return doc_id_base_; }
  const synopsis::BuildConfig& config() const { return config_; }

  /// Applies an input-data change batch to the shadow copy.
  synopsis::UpdateReport apply(const synopsis::UpdateBatch& batch,
                               common::ThreadPool* pool);

  /// Copies the current shadow state into a fresh immutable snapshot
  /// (rebuilds the inverted index and derived arrays).
  std::unique_ptr<const SearchSnapshot> build(
      std::shared_ptr<const std::vector<double>> global_idf) const;

 private:
  synopsis::SparseRows docs_;
  std::uint64_t doc_id_base_;
  synopsis::BuildConfig config_;
  ScorerParams scorer_;
  synopsis::SynopsisStructure structure_;
  synopsis::Synopsis synopsis_;
};

class SearchComponent {
 public:
  /// Observer of successful publishes: receives the applied batch and the
  /// epoch versions it moved between. The serving layer uses this to emit
  /// DLTA delta artifacts a warm standby can tail (see synopsis/delta.h).
  /// Invoked under the writer mutex — publishes are serialized, so sink
  /// calls are too, in version order.
  using DeltaSink = std::function<void(
      const synopsis::UpdateBatch& batch, std::uint64_t from_version,
      std::uint64_t to_version)>;

  /// `docs`: row = page, col = term id, value = occurrence count.
  /// `doc_id_base`: offset of this shard's pages in the global id space.
  /// `scorer`: ranking function (Lucene-classic TF-IDF by default, BM25
  /// available); applied to both exact scoring and aggregated pages.
  /// `pool` parallelizes synopsis construction and later updates; the
  /// component keeps the pointer (caller owns the pool's lifetime).
  SearchComponent(synopsis::SparseRows docs, std::uint64_t doc_id_base,
                  const synopsis::BuildConfig& config,
                  ScorerParams scorer = {},
                  common::ThreadPool* pool = nullptr);
  ~SearchComponent();

  SearchComponent(SearchComponent&&) noexcept;
  SearchComponent& operator=(SearchComponent&&) noexcept;

  /// Installs (or clears) the pool used by update().
  void set_pool(common::ThreadPool* pool);

  /// Pins the currently published epoch. Use one pin per request when a
  /// request makes several calls whose results must be consistent with
  /// each other (e.g. analyze() then group_member_docs()).
  std::shared_ptr<const SearchSnapshot> snapshot() const;

  /// Pins the current epoch together with its version atomically — the
  /// checkpoint writer's primitive (the version stamped into the artifact
  /// filename must be the version of the saved bytes).
  std::pair<std::shared_ptr<const SearchSnapshot>, std::uint64_t>
  snapshot_versioned() const;

  /// Version of the published epoch / full slot counters.
  std::uint64_t epoch_version() const;
  common::EpochStats epoch_stats() const;

  /// Standby alignment: rebases the epoch version counter (no publish) to
  /// the version a loaded checkpoint corresponds to on the primary, so
  /// replayed deltas advance the slot in lockstep with the primary's
  /// stream. Serialized with writers.
  void rebase_epoch_version(std::uint64_t v);

  /// Installs (or clears, with nullptr) the publish observer.
  void set_delta_sink(DeltaSink sink);

  // Convenience delegates to the current snapshot. The returned
  // references stay valid until the next publish on this component (the
  // same contract in-place update() offered before the epoch split); pin
  // snapshot() instead when updates may run concurrently.
  std::size_t num_docs() const { return snapshot()->num_docs(); }
  std::size_t num_groups() const { return snapshot()->num_groups(); }
  std::uint64_t doc_id_base() const { return snapshot()->doc_id_base(); }
  const synopsis::SynopsisStructure& structure() const;
  const synopsis::Synopsis& synopsis() const;
  const InvertedIndex& index() const;
  IndexSizeStats index_size() const { return snapshot()->index_size(); }
  std::vector<std::uint32_t> doc_frequencies() const {
    return snapshot()->doc_frequencies();
  }
  std::vector<std::uint32_t> group_sizes() const {
    return snapshot()->group_sizes();
  }
  SearchComponentWork analyze(const SearchRequest& request) const {
    return snapshot()->analyze(request);
  }
  std::vector<ScoredDoc> exact_topk(const SearchRequest& request,
                                    std::size_t k) const {
    return snapshot()->exact_topk(request, k);
  }
  std::vector<ScoredDoc> synopsis_topk(const SearchRequest& request,
                                       std::size_t k) const {
    return snapshot()->synopsis_topk(request, k);
  }
  std::vector<std::uint64_t> group_member_docs(std::size_t g) const {
    return snapshot()->group_member_docs(g);
  }

  /// Installs the corpus-global idf table used in all scoring; publishes
  /// a new epoch (cheap snapshot copy, no rebuild).
  void set_global_idf(std::shared_ptr<const std::vector<double>> idf);

  /// Applies an input-data change batch to the shadow copy, then
  /// publishes the result as a new epoch. In-flight queries keep scanning
  /// the epoch they pinned; no reader ever waits on this call.
  synopsis::UpdateReport update(const synopsis::UpdateBatch& batch);

  /// Replaces this component's state with `fresh`'s (the reload path):
  /// adopts its shadow copy and publishes a new epoch built from it. The
  /// pool and delta sink installed on *this* component are kept.
  void adopt(SearchComponent&& fresh);

  void save(std::ostream& os,
            common::Codec codec = common::default_codec()) const {
    snapshot()->save(os, codec);
  }
  static SearchComponent load(std::istream& is);

 private:
  struct Core;  // non-movable anchor (mutex + epoch slot + shadow copy)

  explicit SearchComponent(SearchBuilder builder, common::ThreadPool* pool);

  std::unique_ptr<Core> core_;
};

}  // namespace at::search
