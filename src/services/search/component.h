// One parallel component of the search service: a shard of the web-page
// corpus, its inverted index, and the synopsis of merged ("aggregated")
// pages built over it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "services/search/inverted_index.h"
#include "services/search/topk.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"
#include "synopsis/updater.h"

namespace at::search {

struct SearchRequest {
  std::vector<std::uint32_t> terms;  // query term ids
};

/// Per-request decomposition of one component's contribution:
///  * correlations[g] — the aggregated page g's similarity score to the
///    query (the paper's correlation estimate for text services);
///  * scored_by_group[g] — the *exactly scored* member pages of group g
///    that match the query (global doc ids).
/// Exact processing is the union over all groups; AccuracyTrader with k
/// sets processed contributes the union over the top-k ranked groups.
struct SearchComponentWork {
  std::vector<double> correlations;
  std::vector<std::vector<ScoredDoc>> scored_by_group;
};

class SearchComponent {
 public:
  /// `docs`: row = page, col = term id, value = occurrence count.
  /// `doc_id_base`: offset of this shard's pages in the global id space.
  /// `scorer`: ranking function (Lucene-classic TF-IDF by default, BM25
  /// available); applied to both exact scoring and aggregated pages.
  /// `pool` parallelizes synopsis construction and later updates; the
  /// component keeps the pointer (caller owns the pool's lifetime).
  SearchComponent(synopsis::SparseRows docs, std::uint64_t doc_id_base,
                  const synopsis::BuildConfig& config,
                  ScorerParams scorer = {},
                  common::ThreadPool* pool = nullptr);

  /// Installs (or clears) the pool used by update().
  void set_pool(common::ThreadPool* pool) { pool_ = pool; }

  std::size_t num_docs() const { return docs_.rows(); }
  std::size_t num_groups() const { return structure_.index.size(); }
  std::uint64_t doc_id_base() const { return doc_id_base_; }
  const synopsis::SynopsisStructure& structure() const { return structure_; }
  const synopsis::Synopsis& synopsis() const { return synopsis_; }
  const InvertedIndex& index() const { return index_; }

  /// Compressed vs raw postings footprint of this shard's inverted index.
  IndexSizeStats index_size() const { return index_.size_stats(); }

  /// Per-term document frequencies (for building the corpus-global idf).
  std::vector<std::uint32_t> doc_frequencies() const;
  /// Installs the corpus-global idf table used in all scoring.
  void set_global_idf(std::shared_ptr<const std::vector<double>> idf);

  std::vector<std::uint32_t> group_sizes() const;

  /// Full per-request analysis (synopsis scores + exact member scores).
  SearchComponentWork analyze(const SearchRequest& request) const;

  /// Exact local top-k (all groups).
  std::vector<ScoredDoc> exact_topk(const SearchRequest& request,
                                    std::size_t k) const;

  /// Stage-1-only local answer: scores only the aggregated synopsis pages
  /// (O(groups) work, no postings scan), then returns the member docs of
  /// the best-correlated groups, each carrying its group's correlation as
  /// the score. The cheap rung of the serving degradation ladder — scores
  /// are approximate but comparable across components (global idf).
  std::vector<ScoredDoc> synopsis_topk(const SearchRequest& request,
                                       std::size_t k) const;

  /// Global doc ids of group g's members, in member order. Used for the
  /// stage-1-only fallback: when no group was processed exactly, the
  /// initial result returns members of the best-ranked aggregated pages
  /// (an approximation; individual member scores are unknown until their
  /// group is processed).
  std::vector<std::uint64_t> group_member_docs(std::size_t g) const;

  /// Applies an input-data change batch; rebuilds the inverted index.
  synopsis::UpdateReport update(const synopsis::UpdateBatch& batch);

  /// Persists the shard (documents + synopsis structure + aggregated
  /// synopsis + scorer) as an artifact-store snapshot (kind "SCMP"); f64
  /// columns go through `codec`, every chunk is CRC-checked, and the
  /// inverted index is rebuilt on load. The loader also accepts the legacy
  /// "ATSC" v1 snapshot.
  void save(std::ostream& os,
            common::Codec codec = common::default_codec()) const;
  static SearchComponent load(std::istream& is);

 private:
  struct LoadedTag {};
  SearchComponent(LoadedTag, synopsis::SparseRows docs,
                  std::uint64_t doc_id_base, synopsis::BuildConfig config,
                  ScorerParams scorer, synopsis::SynopsisStructure structure,
                  synopsis::Synopsis synopsis);

  void rebuild_index();

  synopsis::SparseRows docs_;
  common::ThreadPool* pool_ = nullptr;
  std::uint64_t doc_id_base_;
  synopsis::BuildConfig config_;
  ScorerParams scorer_;
  synopsis::SynopsisStructure structure_;
  synopsis::Synopsis synopsis_;
  InvertedIndex index_;
  std::vector<std::uint32_t> doc_group_;  // local doc -> group index
  std::vector<double> agg_length_;        // merged length per aggregated page
  std::shared_ptr<const std::vector<double>> global_idf_;
};

}  // namespace at::search
