#include "services/search/query_cache.h"

#include <algorithm>
#include <stdexcept>

namespace at::search {

QueryCache::QueryCache(std::size_t capacity, std::size_t max_bytes)
    : capacity_(capacity), max_bytes_(max_bytes) {
  if (capacity_ == 0)
    throw std::invalid_argument("QueryCache: capacity must be >= 1");
  index_.reserve(capacity_);
}

std::size_t QueryCache::entry_footprint(std::size_t key_terms,
                                        std::size_t result_docs) {
  // Key terms + scored docs + a flat allowance for the list node, the
  // hash slot and the two vector headers. An estimate, not malloc truth —
  // what matters is that it scales with the variable-size parts so the
  // budget genuinely bounds growth.
  constexpr std::size_t kPerEntryOverhead = 128;
  return key_terms * sizeof(std::uint32_t) + result_docs * sizeof(ScoredDoc) +
         kPerEntryOverhead;
}

void QueryCache::evict_for(std::size_t incoming_bytes,
                           std::size_t incoming_entries) {
  while (!lru_.empty() &&
         (lru_.size() + incoming_entries > capacity_ ||
          (max_bytes_ != 0 && bytes_ + incoming_bytes > max_bytes_))) {
    const Entry& victim = lru_.back();
    bytes_ -= entry_footprint(victim.key.size(), victim.result.size());
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::vector<std::uint32_t> QueryCache::canonical_key(
    const std::vector<std::uint32_t>& terms) {
  std::vector<std::uint32_t> key = terms;
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

bool QueryCache::lookup(const std::vector<std::uint32_t>& terms,
                        std::vector<ScoredDoc>* out, ResultMeta* meta) {
  const Key key = canonical_key(terms);
  common::MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  if (out != nullptr) *out = it->second->result;
  if (meta != nullptr) *meta = it->second->meta;
  return true;
}

void QueryCache::insert(const std::vector<std::uint32_t>& terms,
                        std::vector<ScoredDoc> result, ResultMeta meta) {
  Key key = canonical_key(terms);
  common::MutexLock lock(mutex_);
  const std::size_t incoming = entry_footprint(key.size(), result.size());
  if (max_bytes_ != 0 && incoming > max_bytes_) {
    ++stats_.oversized_rejects;
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= entry_footprint(it->second->key.size(),
                              it->second->result.size());
    it->second->result = std::move(result);
    it->second->meta = meta;
    bytes_ += incoming;
    lru_.splice(lru_.begin(), lru_, it->second);
    // A refreshed result can be larger than the one it replaced; restore
    // the byte bound (the refreshed entry itself is at the LRU front and
    // within budget, so it survives).
    evict_for(0, 0);
    return;
  }
  evict_for(incoming, 1);
  lru_.push_front(Entry{key, std::move(result), meta});
  index_[std::move(key)] = lru_.begin();
  bytes_ += incoming;
  ++stats_.insertions;
}

std::size_t QueryCache::mark_stale_epochs(std::uint64_t current_epoch,
                                          double penalty_pct) {
  common::MutexLock lock(mutex_);
  std::size_t marked = 0;
  for (Entry& e : lru_) {
    if (e.meta.stale || e.meta.epoch == current_epoch) continue;
    e.meta.stale = true;
    e.meta.loss_pct += penalty_pct;
    ++marked;
  }
  stats_.stale_marks += marked;
  return marked;
}

void QueryCache::invalidate_all() {
  common::MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  ++stats_.invalidations;
}

std::size_t QueryCache::size() const {
  common::MutexLock lock(mutex_);
  return lru_.size();
}

QueryCacheStats QueryCache::stats() const {
  common::MutexLock lock(mutex_);
  QueryCacheStats s = stats_;
  s.bytes = bytes_;
  return s;
}

}  // namespace at::search
