#include "services/search/query_cache.h"

#include <algorithm>
#include <stdexcept>

namespace at::search {

QueryCache::QueryCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0)
    throw std::invalid_argument("QueryCache: capacity must be >= 1");
  index_.reserve(capacity_);
}

std::vector<std::uint32_t> QueryCache::canonical_key(
    const std::vector<std::uint32_t>& terms) {
  std::vector<std::uint32_t> key = terms;
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

bool QueryCache::lookup(const std::vector<std::uint32_t>& terms,
                        std::vector<ScoredDoc>* out) {
  const Key key = canonical_key(terms);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  if (out != nullptr) *out = it->second->result;
  return true;
}

void QueryCache::insert(const std::vector<std::uint32_t>& terms,
                        std::vector<ScoredDoc> result) {
  Key key = canonical_key(terms);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_[std::move(key)] = lru_.begin();
  ++stats_.insertions;
}

void QueryCache::invalidate_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  ++stats_.invalidations;
}

std::size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

QueryCacheStats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace at::search
