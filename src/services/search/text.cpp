#include "services/search/text.h"

#include <cctype>

namespace at::search {

std::uint32_t Vocabulary::intern(std::string_view word) {
  auto it = ids_.find(std::string(word));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(words_.size());
  words_.emplace_back(word);
  ids_.emplace(words_.back(), id);
  return id;
}

std::uint32_t Vocabulary::lookup(std::string_view word) const {
  auto it = ids_.find(std::string(word));
  return it == ids_.end() ? kNotFound : it->second;
}

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

synopsis::SparseVector text_to_counts(std::string_view text,
                                      Vocabulary& vocab) {
  synopsis::SparseVector counts;
  for (const auto& token : tokenize(text)) {
    counts.emplace_back(vocab.intern(token), 1.0);
  }
  synopsis::normalize(counts);  // sorts and sums duplicate terms
  return counts;
}

std::vector<std::uint32_t> text_to_terms(std::string_view text,
                                         const Vocabulary& vocab) {
  std::vector<std::uint32_t> terms;
  for (const auto& token : tokenize(text)) {
    const auto id = vocab.lookup(token);
    if (id != Vocabulary::kNotFound) terms.push_back(id);
  }
  return terms;
}

}  // namespace at::search
