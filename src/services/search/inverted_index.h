// Inverted index + TF-IDF scoring for the web search service (paper §3.2,
// Lucene-style): postings map each term to the documents containing it,
// and a query's matching documents are scored by
//   score(d, q) = Σ_{t ∈ q}  sqrt(tf_{t,d}) * idf_t / sqrt(dl_d)
// with idf_t = ln(1 + N / (1 + df_t)). The idf table can be swapped for a
// service-global one so scores merge consistently across components.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "services/search/topk.h"
#include "synopsis/sparse_rows.h"

namespace at::search {

struct Posting {
  std::uint32_t doc = 0;  // local document id
  double tf = 0.0;        // term occurrence count
};

/// Ranking function.
enum class Scorer {
  /// sqrt(tf) * idf / sqrt(dl) — the Lucene-classic practical scoring used
  /// by the paper's evaluation service.
  kTfIdf,
  /// Okapi BM25 with the standard k1/b saturation and length normalization.
  kBm25,
};

struct ScorerParams {
  Scorer scorer = Scorer::kTfIdf;
  double bm25_k1 = 1.2;
  double bm25_b = 0.75;
};

class InvertedIndex {
 public:
  /// Builds the index from document rows (row = doc, col = term, value =
  /// occurrence count).
  explicit InvertedIndex(const synopsis::SparseRows& docs,
                         ScorerParams scorer = {});

  std::size_t num_docs() const { return doc_length_.size(); }
  std::size_t vocab_size() const { return postings_.size(); }

  const std::vector<Posting>& postings(std::uint32_t term) const;
  std::uint32_t doc_frequency(std::uint32_t term) const;
  double doc_length(std::uint32_t doc) const { return doc_length_.at(doc); }

  /// Local idf of a term (from this index's own document counts).
  double idf(std::uint32_t term) const;

  /// Overrides idf lookups with a shared (e.g. corpus-global) table.
  void set_global_idf(std::shared_ptr<const std::vector<double>> idf);

  /// Scores every document matching at least one query term; results are
  /// appended to `out` (unsorted). `doc_id_base` offsets local ids into the
  /// global doc-id space.
  void score_query(const std::vector<std::uint32_t>& terms,
                   std::uint64_t doc_id_base,
                   std::vector<ScoredDoc>& out) const;

  /// Convenience: score + rank, returning the top k.
  std::vector<ScoredDoc> topk(const std::vector<std::uint32_t>& terms,
                              std::uint64_t doc_id_base, std::size_t k) const;

  /// Scores one document against a query given raw term counts and length
  /// (used to score aggregated/merged pages with the same formula).
  double score_counts(const std::vector<std::uint32_t>& terms,
                      const synopsis::SparseVector& counts,
                      double length) const;

  const ScorerParams& scorer() const { return scorer_; }
  double mean_doc_length() const { return mean_doc_length_; }

 private:
  double idf_for(std::uint32_t term) const;
  double term_doc_score(double tf, double idf, double doc_len) const;

  ScorerParams scorer_;
  std::vector<std::vector<Posting>> postings_;
  std::vector<double> doc_length_;  // total term count per doc
  double mean_doc_length_ = 0.0;
  std::shared_ptr<const std::vector<double>> global_idf_;
};

/// Builds a corpus-global idf table from per-component document frequencies.
/// `dfs` holds each component's per-term document frequency; `total_docs`
/// is the corpus document count.
std::vector<double> merge_idf(
    const std::vector<std::vector<std::uint32_t>>& dfs,
    std::size_t total_docs);

}  // namespace at::search
