// Inverted index + TF-IDF scoring for the web search service (paper §3.2,
// Lucene-style): postings map each term to the documents containing it,
// and a query's matching documents are scored by
//   score(d, q) = Σ_{t ∈ q}  sqrt(tf_{t,d}) * idf_t / sqrt(dl_d)
// with idf_t = ln(1 + N / (1 + df_t)). The idf table can be swapped for a
// service-global one so scores merge consistently across components.
//
// Postings are stored CSR-style: one contiguous doc-id array and one tf
// array shared by all terms, with per-term offsets — built in two passes
// (count, fill) with no per-term vector growth. Scoring accumulates into a
// dense, epoch-stamped per-doc scratch buffer that is reused across
// queries (no per-query hashing or allocation), and top-k selection runs
// directly over the touched docs without materializing the candidate list.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "services/search/topk.h"
#include "synopsis/sparse_rows.h"

namespace at::search {

struct Posting {
  std::uint32_t doc = 0;  // local document id
  double tf = 0.0;        // term occurrence count
};

/// Non-owning slice of one term's postings (docs ascending).
class PostingsView {
 public:
  PostingsView() = default;
  PostingsView(const std::uint32_t* docs, const double* tfs, std::size_t n)
      : docs_(docs), tfs_(tfs), size_(n) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Posting operator[](std::size_t i) const { return {docs_[i], tfs_[i]}; }

  const std::uint32_t* docs() const { return docs_; }
  const double* tfs() const { return tfs_; }

  class const_iterator {
   public:
    const_iterator(const std::uint32_t* d, const double* t) : d_(d), t_(t) {}
    Posting operator*() const { return {*d_, *t_}; }
    const_iterator& operator++() {
      ++d_;
      ++t_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return d_ != o.d_; }

   private:
    const std::uint32_t* d_;
    const double* t_;
  };
  const_iterator begin() const { return {docs_, tfs_}; }
  const_iterator end() const { return {docs_ + size_, tfs_ + size_}; }

 private:
  const std::uint32_t* docs_ = nullptr;
  const double* tfs_ = nullptr;
  std::size_t size_ = 0;
};

/// Ranking function.
enum class Scorer {
  /// sqrt(tf) * idf / sqrt(dl) — the Lucene-classic practical scoring used
  /// by the paper's evaluation service.
  kTfIdf,
  /// Okapi BM25 with the standard k1/b saturation and length normalization.
  kBm25,
};

struct ScorerParams {
  Scorer scorer = Scorer::kTfIdf;
  double bm25_k1 = 1.2;
  double bm25_b = 0.75;
};

/// Dense per-doc score scratch, reusable across queries. A doc's slot is
/// valid only when its stamp matches the current epoch, so clearing costs
/// O(#touched docs) rather than O(#docs); `touched` lists the matching
/// docs in first-touch order.
class ScoreAccumulator {
 public:
  /// Starts a new accumulation over `num_docs` local doc ids.
  void begin(std::size_t num_docs);

  void add(std::uint32_t doc, double score) {
    if (stamp_[doc] != epoch_) {
      stamp_[doc] = epoch_;
      score_[doc] = score;
      touched_.push_back(doc);
    } else {
      score_[doc] += score;
    }
  }

  double score(std::uint32_t doc) const { return score_[doc]; }
  const std::vector<std::uint32_t>& touched() const { return touched_; }

 private:
  std::vector<double> score_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> touched_;
  std::uint32_t epoch_ = 0;
};

class InvertedIndex {
 public:
  /// Builds the index from document rows (row = doc, col = term, value =
  /// occurrence count).
  explicit InvertedIndex(const synopsis::SparseRows& docs,
                         ScorerParams scorer = {});

  std::size_t num_docs() const { return doc_length_.size(); }
  std::size_t vocab_size() const { return term_ptr_.empty() ? 0
                                       : term_ptr_.size() - 1; }

  PostingsView postings(std::uint32_t term) const;
  std::uint32_t doc_frequency(std::uint32_t term) const;
  double doc_length(std::uint32_t doc) const { return doc_length_.at(doc); }

  /// Local idf of a term (from this index's own document counts).
  double idf(std::uint32_t term) const;

  /// Overrides idf lookups with a shared (e.g. corpus-global) table.
  void set_global_idf(std::shared_ptr<const std::vector<double>> idf);

  /// Scores every document matching at least one query term; results are
  /// appended to `out` (unsorted). `doc_id_base` offsets local ids into the
  /// global doc-id space.
  void score_query(const std::vector<std::uint32_t>& terms,
                   std::uint64_t doc_id_base,
                   std::vector<ScoredDoc>& out) const;

  /// Convenience: score + rank, returning the top k. The candidate set is
  /// never materialized — touched docs stream straight into the bounded
  /// top-k heap.
  std::vector<ScoredDoc> topk(const std::vector<std::uint32_t>& terms,
                              std::uint64_t doc_id_base, std::size_t k) const;

  /// Scores one document (or aggregated page) against a query given raw
  /// term counts and length. `Row` is any sorted sparse row type
  /// (SparseVector or SparseRowView).
  template <typename Row>
  double score_counts(const std::vector<std::uint32_t>& terms,
                      const Row& counts, double length) const {
    double score = 0.0;
    for (auto term : terms) {
      const double tf = synopsis::value_at(counts, term);
      if (tf <= 0.0) continue;
      score += term_doc_score(tf, idf_for(term), length);
    }
    return score;
  }

  const ScorerParams& scorer() const { return scorer_; }
  double mean_doc_length() const { return mean_doc_length_; }

 private:
  double idf_for(std::uint32_t term) const;
  double term_doc_score(double tf, double idf, double doc_len) const;
  /// Runs the term-at-a-time accumulation into `acc`.
  void accumulate(const std::vector<std::uint32_t>& terms,
                  ScoreAccumulator& acc) const;

  ScorerParams scorer_;
  // CSR postings: term t's postings live at [term_ptr_[t], term_ptr_[t+1])
  // in post_doc_/post_tf_; post_sqrt_tf_ caches sqrt(tf) for the tf-idf
  // scorer so the hot loop does one multiply per posting.
  std::vector<std::size_t> term_ptr_;
  std::vector<std::uint32_t> post_doc_;
  std::vector<double> post_tf_;
  std::vector<double> post_sqrt_tf_;
  std::vector<double> doc_length_;  // total term count per doc
  std::vector<double> len_norm_;    // 1/sqrt(doc length), 0 for empty docs
  std::vector<double> bm25_norm_;   // k1*(1-b+b*dl/avg) per doc
  double mean_doc_length_ = 0.0;
  std::shared_ptr<const std::vector<double>> global_idf_;
};

/// Builds a corpus-global idf table from per-component document frequencies.
/// `dfs` holds each component's per-term document frequency; `total_docs`
/// is the corpus document count.
std::vector<double> merge_idf(
    const std::vector<std::vector<std::uint32_t>>& dfs,
    std::size_t total_docs);

}  // namespace at::search
