// Inverted index + TF-IDF scoring for the web search service (paper §3.2,
// Lucene-style): postings map each term to the documents containing it,
// and a query's matching documents are scored by
//   score(d, q) = Σ_{t ∈ q}  sqrt(tf_{t,d}) * idf_t / sqrt(dl_d)
// with idf_t = ln(1 + N / (1 + df_t)). The idf table can be swapped for a
// service-global one so scores merge consistently across components.
//
// Postings are stored block-compressed (postings_codec.h): delta-encoded
// doc ids in 128-entry varint/group-varint blocks with one-byte quantized
// tfs, decoded a block at a time inside the scoring loop — the raw arrays
// are never materialized and results stay bit-identical to the
// uncompressed layout. Scoring accumulates into a dense, epoch-stamped
// per-doc scratch buffer that is reused across queries (no per-query
// hashing or allocation), and top-k selection runs directly over the
// touched docs without materializing the candidate list.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "services/search/postings_codec.h"
#include "services/search/topk.h"
#include "synopsis/sparse_rows.h"

namespace at::search {

struct Posting {
  std::uint32_t doc = 0;  // local document id
  double tf = 0.0;        // term occurrence count
};

/// Ranking function.
enum class Scorer {
  /// sqrt(tf) * idf / sqrt(dl) — the Lucene-classic practical scoring used
  /// by the paper's evaluation service.
  kTfIdf,
  /// Okapi BM25 with the standard k1/b saturation and length normalization.
  kBm25,
};

struct ScorerParams {
  Scorer scorer = Scorer::kTfIdf;
  double bm25_k1 = 1.2;
  double bm25_b = 0.75;
};

/// Index storage footprint: the compressed byte pool against the raw
/// (u32 doc + f64 tf [+ f64 cached sqrt]) layout it replaced, both
/// including the per-term directory.
struct IndexSizeStats {
  std::size_t postings = 0;
  std::size_t raw_bytes = 0;
  std::size_t compressed_bytes = 0;
  double ratio() const {
    return raw_bytes > 0
               ? static_cast<double>(compressed_bytes) /
                     static_cast<double>(raw_bytes)
               : 0.0;
  }
};

/// Dense per-doc score scratch, reusable across queries. A doc's slot is
/// valid only when its stamp matches the current epoch, so clearing costs
/// O(#touched docs) rather than O(#docs); `touched` lists the matching
/// docs in first-touch order.
///
/// Stamp 0 is reserved as "never touched": freshly grown slots hold it and
/// begin() never hands out epoch 0, so a resize can't alias a new slot
/// into the current query. On epoch wraparound every stamp is cleared once
/// so counter reuse can't resurrect stale slots either.
class ScoreAccumulator {
 public:
  /// Starts a new accumulation over `num_docs` local doc ids.
  void begin(std::size_t num_docs);

  void add(std::uint32_t doc, double score) {
    assert(doc < stamp_.size() && "add() before begin() sized this doc");
    if (stamp_[doc] != epoch_) {
      stamp_[doc] = epoch_;
      score_[doc] = score;
      touched_.push_back(doc);
    } else {
      score_[doc] += score;
    }
  }

  /// Fresh-epoch fast path (ROADMAP accumulator-drain item): bulk-appends
  /// docs the CALLER guarantees are untouched this epoch — e.g. a query's
  /// first term, whose postings contain each doc id at most once. Skips
  /// the per-posting stamp compare/branch and appends the staged block ids
  /// with one memcpy; the resulting state (scores, touched order, stamps)
  /// is identical to n add() calls, which the parity test pins.
  void bulk_add_fresh(const std::uint32_t* docs, const double* scores,
                      std::size_t n) {
    const std::size_t base = touched_.size();
    touched_.resize(base + n);
    std::memcpy(touched_.data() + base, docs, n * sizeof(std::uint32_t));
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t doc = docs[i];
      assert(doc < stamp_.size() && "bulk_add_fresh() beyond begin() size");
      assert(stamp_[doc] != epoch_ && "bulk_add_fresh() on a touched doc");
      stamp_[doc] = epoch_;
      score_[doc] = scores[i];
    }
  }

  double score(std::uint32_t doc) const { return score_[doc]; }
  const std::vector<std::uint32_t>& touched() const { return touched_; }

  std::uint32_t epoch() const { return epoch_; }
  /// Test hook: jumps the epoch counter (e.g. next to the wrap point).
  /// begin() still owns stamp invalidation.
  void set_epoch_for_test(std::uint32_t e) { epoch_ = e; }

 private:
  std::vector<double> score_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> touched_;
  std::uint32_t epoch_ = 0;
};

class InvertedIndex {
 public:
  /// Builds the index from document rows (row = doc, col = term, value =
  /// occurrence count).
  explicit InvertedIndex(const synopsis::SparseRows& docs,
                         ScorerParams scorer = {});

  std::size_t num_docs() const { return doc_length_.size(); }
  std::size_t vocab_size() const { return postings_.num_terms(); }

  /// Decoded copy of one term's postings (docs ascending). Debug/interop
  /// path — scoring decodes blocks in place and never materializes this.
  std::vector<Posting> postings(std::uint32_t term) const;
  /// The compressed postings pool itself (benches/tests time the
  /// decode+score kernel stage over exactly the blocks scoring scans).
  const CompressedPostings& postings_pool() const { return postings_; }
  std::uint32_t doc_frequency(std::uint32_t term) const {
    return postings_.count(term);
  }
  double doc_length(std::uint32_t doc) const { return doc_length_.at(doc); }

  /// Local idf of a term (from this index's own document counts).
  double idf(std::uint32_t term) const;

  /// Overrides idf lookups with a shared (e.g. corpus-global) table.
  void set_global_idf(std::shared_ptr<const std::vector<double>> idf);

  /// Scores every document matching at least one query term; results are
  /// appended to `out` (unsorted). `doc_id_base` offsets local ids into the
  /// global doc-id space.
  void score_query(const std::vector<std::uint32_t>& terms,
                   std::uint64_t doc_id_base,
                   std::vector<ScoredDoc>& out) const;

  /// Convenience: score + rank, returning the top k. The candidate set is
  /// never materialized — touched docs stream straight into the bounded
  /// top-k heap.
  std::vector<ScoredDoc> topk(const std::vector<std::uint32_t>& terms,
                              std::uint64_t doc_id_base, std::size_t k) const;

  /// Scores one document (or aggregated page) against a query given raw
  /// term counts and length. `Row` is any sorted sparse row type
  /// (SparseVector or SparseRowView).
  template <typename Row>
  double score_counts(const std::vector<std::uint32_t>& terms,
                      const Row& counts, double length) const {
    double score = 0.0;
    for (auto term : terms) {
      const double tf = synopsis::value_at(counts, term);
      if (tf <= 0.0) continue;
      score += term_doc_score(tf, idf_for(term), length);
    }
    return score;
  }

  const ScorerParams& scorer() const { return scorer_; }
  double mean_doc_length() const { return mean_doc_length_; }

  /// Compressed vs raw-equivalent postings footprint.
  IndexSizeStats size_stats() const;

 private:
  double idf_for(std::uint32_t term) const;
  double term_doc_score(double tf, double idf, double doc_len) const;
  /// Runs the term-at-a-time accumulation into `acc`, decoding postings
  /// blocks on the fly.
  void accumulate(const std::vector<std::uint32_t>& terms,
                  ScoreAccumulator& acc) const;

  ScorerParams scorer_;
  CompressedPostings postings_;
  std::vector<double> local_idf_;   // ln(1 + N/(1+df)) per term
  std::vector<double> doc_length_;  // total term count per doc
  std::vector<double> len_norm_;    // 1/sqrt(doc length), 0 for empty docs
  std::vector<double> bm25_norm_;   // k1*(1-b+b*dl/avg) per doc
  double mean_doc_length_ = 0.0;
  std::shared_ptr<const std::vector<double>> global_idf_;
};

/// Builds a corpus-global idf table from per-component document frequencies.
/// `dfs` holds each component's per-term document frequency; `total_docs`
/// is the corpus document count.
std::vector<double> merge_idf(
    const std::vector<std::vector<std::uint32_t>>& dfs,
    std::size_t total_docs);

}  // namespace at::search
