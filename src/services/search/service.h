// The fan-out search service: a query is dispatched to every shard
// component; local results merge into the global top-k, whose overlap with
// the exact top-k is the paper's accuracy metric.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/sharded_executor.h"
#include "core/outcome.h"
#include "core/technique.h"
#include "services/search/component.h"
#include "services/search/query_cache.h"

namespace at::search {

/// Per-component outcome observed by the simulator for one request.
using ComponentOutcome = core::ComponentOutcome;

struct SearchEvalResult {
  double accuracy = 0.0;     // mean top-k overlap with exact results
  double loss_pct = 0.0;     // (1 - accuracy) * 100 relative to exact
  std::size_t requests = 0;
};

class SearchService {
 public:
  /// Builds the service over per-shard components and installs a shared
  /// corpus-global idf so scores are comparable across shards.
  SearchService(std::vector<SearchComponent> components, std::size_t k = 10);

  /// Builds the service with a *preset* corpus-global idf instead of
  /// rebuilding it from current component contents. The warm-standby
  /// path needs this: the primary's idf is a function of the contents at
  /// *its* construction time and is deliberately not refreshed by online
  /// updates, so a replica reconstructing from a post-update checkpoint
  /// must install the checkpointed idf verbatim to score byte-identically.
  /// Falls back to a rebuild when `global_idf` is null.
  SearchService(std::vector<SearchComponent> components,
                std::shared_ptr<const std::vector<double>> global_idf,
                std::size_t k);

  std::size_t num_components() const { return components_.size(); }
  const SearchComponent& component(std::size_t i) const {
    return components_.at(i);
  }
  SearchComponent& component(std::size_t i) { return components_.at(i); }
  std::size_t k() const { return k_; }
  std::size_t total_docs() const {
    return total_docs_.load(std::memory_order_relaxed);
  }

  /// Sum of every component's epoch version: changes whenever any shard
  /// publishes a new epoch (update, reload, idf rebuild). The freshness
  /// token cached answers are stamped with.
  std::uint64_t data_version() const;
  /// Aggregated epoch counters across all components (version/published/
  /// retired/live summed per slot).
  common::EpochStats epoch_stats() const;

  /// Aggregate inverted-index footprint across all shard components.
  IndexSizeStats index_size() const;

  /// Enables the LRU query cache consulted by exact_topk (paper §3.2: the
  /// engine scans its index only "if a query request does not hit the
  /// query cache").
  void enable_query_cache(std::size_t capacity);
  const QueryCache* query_cache() const { return cache_.get(); }

  /// Installs a thread pool: per-component work (local top-k scans,
  /// request analysis, synopsis updates) fans out across it. Results are
  /// merged in component order, so they match the sequential path. The
  /// caller owns the pool's lifetime; pass nullptr to go sequential.
  void set_pool(common::ThreadPool* pool);

  /// Installs a topology-aware executor (overrides any set_pool): every
  /// component is assigned a home group (round-robin over the executor's
  /// nodes), its update/build work runs on that group's pinned pool, and
  /// query fan-out dispatches each component to its home group, collecting
  /// into one top-k heap per node that is merged at the end. The scoring
  /// order (score desc, doc asc) is a strict total order over globally
  /// unique doc ids, so the per-node merge is bit-identical to the
  /// sequential component-order scan (pinned by tests). The caller owns
  /// the executor's lifetime; pass nullptr to fall back to the plain pool.
  void set_executor(common::ShardedExecutor* exec);
  common::ShardedExecutor* executor() const { return exec_; }

  /// Routes an input-data change batch to component `c` and invalidates
  /// the query cache (every cached answer is potentially stale). The
  /// component retrains into its shadow copy and publishes a new epoch —
  /// concurrent queries keep scanning their pinned snapshots and never
  /// block on this call.
  synopsis::UpdateReport update_component(std::size_t c,
                                          const synopsis::UpdateBatch& batch);

  /// Exact global top-k (served from the query cache when enabled).
  std::vector<ScoredDoc> exact_topk(const SearchRequest& request) const;

  /// Fault-tolerant exact top-k: a component whose scan throws (dead
  /// worker group, artifact fault, injected failpoint) contributes
  /// nothing instead of failing the query. `components_ok` (may be null)
  /// receives how many components actually contributed, so callers can
  /// mark the answer degraded and estimate its accuracy loss. Bypasses
  /// the query cache — a partial answer must never be cached as exact.
  std::vector<ScoredDoc> exact_topk_partial(const SearchRequest& request,
                                            std::size_t* components_ok) const;

  /// Synopsis-only global top-k: every component answers from its
  /// aggregated pages alone (stage 1, no postings scan). The cheap rung
  /// of the serving degradation ladder.
  std::vector<ScoredDoc> synopsis_topk(const SearchRequest& request) const;

  /// Replaces component `c` with a snapshot loaded from `is`, with the
  /// strong exception guarantee: the snapshot is fully loaded and indexed
  /// into a temporary first, so a truncated/corrupt stream throws
  /// ArtifactError and leaves the service (and the old component) exactly
  /// as it was. On success the global idf table is rebuilt and the query
  /// cache invalidated.
  void reload_component(std::size_t c, std::istream& is);

  /// Retrieved top-k under a technique given per-component outcomes.
  /// For AccuracyTrader, if fewer than k exactly-scored pages exist in the
  /// processed sets, the result is padded from the initial (stage-1)
  /// synopsis ranking: member pages of the globally best-ranked
  /// *unprocessed* aggregated pages, in correlation order.
  std::vector<ScoredDoc> retrieve(
      const SearchRequest& request, core::Technique technique,
      const std::vector<ComponentOutcome>& outcomes) const;

  /// Mean accuracy over a request batch; `outcome_for(r)` supplies request
  /// r's per-component outcomes.
  SearchEvalResult evaluate(
      const std::vector<SearchRequest>& requests, core::Technique technique,
      const std::function<std::vector<ComponentOutcome>(std::size_t)>&
          outcome_for) const;

  SearchEvalResult evaluate_uniform(const std::vector<SearchRequest>& requests,
                                    core::Technique technique,
                                    ComponentOutcome outcome) const;

 private:
  /// Runs the per-component scan and merges the locals into `top`: on the
  /// executor via per-node heaps, else on the pool / sequentially in
  /// component order. `scan` returns the component's local top-k (empty
  /// for skipped components).
  void fan_out_topk(
      const std::function<std::vector<ScoredDoc>(std::size_t)>& scan,
      TopK& top) const;

  /// Recomputes the corpus-global idf from current component contents and
  /// publishes it into every component (each a cheap epoch).
  void rebuild_global_idf();

  std::vector<SearchComponent> components_;
  std::size_t k_;
  std::atomic<std::size_t> total_docs_{0};
  std::unique_ptr<QueryCache> cache_;
  common::ThreadPool* pool_ = nullptr;
  common::ShardedExecutor* exec_ = nullptr;
};

}  // namespace at::search
