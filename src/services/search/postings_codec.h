// Block-compressed postings storage (ROADMAP "Postings compression").
//
// The PR-1 inverted index kept one raw u32 doc id plus two doubles (tf and
// cached sqrt(tf)) per posting — ~20 bytes each — which made cold index
// scans memory-bound and the synopsis footprint 3-4x larger than needed.
// This codec stores each term's postings as delta-encoded doc ids in
// fixed-size blocks (128 postings, the RediSearch/Lucene block shape) with
// two interchangeable delta encodings chosen per block, and term
// frequencies quantized to one byte with an exception side-table for the
// rare non-integral or >255 values.
//
// Per-block layout (values before ids, so decoding needs no staging):
//   tag      u8                 0 = varint deltas, 1 = group-varint
//                               deltas, 2 = raw u8 deltas (all gaps <= 255)
//   tfs      n x u8             1..255 = exact integral tf; 0 = exception
//   excs     varint count, then count raw IEEE f64s in posting order
//   deltas   n encoded u32      doc-id gaps; the running previous doc id
//                               carries across blocks of the same list
//
// Decoding is exact: a tf byte c decodes to double(c) (bit-identical to
// the original count) and exceptions store the original double verbatim,
// so sqrt(tf)/norm products reproduce the uncompressed scorer bit for bit
// (kSqrtLut[c] == std::sqrt(double(c)) for the quantized range).
//
// The low-level list primitives (encode_list/decode_list) are shared with
// the synopsis serializer, which uses the same layout for the v2
// on-disk SparseRows format.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/simd.h"

namespace at::search {

namespace codec {

/// Postings per block. 128 keeps the decode buffers L1-resident while
/// amortizing the per-block tag/exception headers.
inline constexpr std::size_t kBlockSize = 128;

/// Block encoding tags. kTagU8Delta stores each doc-id gap as one raw
/// byte — eligible whenever every gap in the block is <= 255, which dense
/// postings lists (small gaps) almost always satisfy. It is never larger
/// than the varint layout (a varint costs >= 1 byte per gap) and decodes
/// with a SIMD widening prefix-sum instead of a serial continuation-bit
/// chain, so the encoder prefers it whenever it is eligible.
inline constexpr std::uint8_t kTagVarint = 0;
inline constexpr std::uint8_t kTagGroupVarint = 1;
inline constexpr std::uint8_t kTagU8Delta = 2;

/// kSqrtLut[c] == std::sqrt(double(c)); lets the tf-idf decode path skip
/// the sqrt for quantized tfs without changing a single result bit.
extern const double kSqrtLut[256];

/// LEB128 varint (u32 payloads; u64 accepted for counts). The decoders
/// are header-inline so the scoring loop's fused decode inlines fully.
///
/// Both readers cap the continuation walk at the widest canonical
/// encoding (10 bytes / shift 63 for u64, 5 bytes / shift 28 for u32):
/// well-formed input decodes unchanged, while a malformed run of
/// continuation bytes can no longer grow the shift count past the operand
/// width (undefined behavior) or march the cursor arbitrarily far past the
/// buffer. Garbage in still means garbage out on the trusted in-memory
/// path — decode_block is the checked walk that rejects it loudly.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
inline const std::uint8_t* get_varint(const std::uint8_t* p,
                                      std::uint64_t* v) {
  std::uint64_t r = 0;
  int shift = 0;
  while ((*p & 0x80) && shift < 63) {
    r |= static_cast<std::uint64_t>(*p & 0x7F) << shift;
    shift += 7;
    ++p;
  }
  *v = r | (static_cast<std::uint64_t>(*p & 0x7F) << shift);
  return p + 1;
}

/// u32 varint read with an explicit one/two-byte fast path — doc-id gaps
/// are overwhelmingly short, and keeping the common widths branch-cheap
/// measurably helps the fused scoring scan.
inline const std::uint8_t* get_varint32(const std::uint8_t* p,
                                        std::uint32_t* v) {
  std::uint32_t b = *p++;
  if (b < 0x80) {
    *v = b;
    return p;
  }
  std::uint32_t r = b & 0x7F;
  b = *p++;
  if (b < 0x80) {
    *v = r | (b << 7);
    return p;
  }
  r |= (b & 0x7F) << 7;
  int shift = 14;
  while ((b = *p++) >= 0x80 && shift < 28) {
    r |= (b & 0x7F) << shift;
    shift += 7;
  }
  *v = r | ((b & 0x7F) << shift);
  return p;
}

/// Group varint: 4 u32s packed as one control byte (2 length bits per
/// value) followed by 4..16 little-endian data bytes.
void put_group4(std::vector<std::uint8_t>& out, const std::uint32_t v[4]);
inline const std::uint8_t* get_group4(const std::uint8_t* p,
                                      std::uint32_t v[4]) {
  const std::uint8_t control = *p++;
  for (int i = 0; i < 4; ++i) {
    const std::size_t len = ((control >> (2 * i)) & 0x3) + 1;
    std::uint32_t x = 0;
    for (std::size_t b = 0; b < len; ++b) {
      x |= static_cast<std::uint32_t>(*p++) << (8 * b);
    }
    v[i] = x;
  }
  return p;
}

/// One-byte tf code: 1..255 for a value that is exactly that integer,
/// 0 ("exception") for everything else — non-integral, negative, zero, or
/// larger than 255 values go to the side-table as exact doubles.
std::uint8_t quantize_tf(double tf);

/// Encodes a sorted, duplicate-free id list with parallel double values
/// into `out` (appended). Ids must be strictly ascending.
void encode_list(std::vector<std::uint8_t>& out, const std::uint32_t* ids,
                 const double* vals, std::size_t n);

/// Decodes one block of `n` (<= kBlockSize) entries into flat arrays.
/// `prev` is the running previous id (0 before the first block). This is
/// the *checked* walk of the block wire format for file-supplied bytes:
/// every read is bounds-checked against `end` and the exception count is
/// validated in both directions, so corrupt input throws instead of
/// reading out of bounds or silently patching values to 0.
/// CompressedPostings::scan mirrors this walk unchecked — keep the two in
/// lockstep on any format change (the shared-template unification was
/// measured at ~15% scoring-loop cost and rejected; the parity and
/// round-trip suites pin them to each other).
const std::uint8_t* decode_block(const std::uint8_t* p,
                                 const std::uint8_t* end, std::size_t n,
                                 std::uint32_t prev, std::uint32_t* ids,
                                 double* vals);

/// Full-list decode of `n` entries from a `bytes`-sized buffer (appends to
/// the output vectors). Throws on truncated or corrupt input.
void decode_list(const std::uint8_t* p, std::size_t bytes, std::size_t n,
                 std::vector<std::uint32_t>& ids, std::vector<double>& vals);

/// One decoded block as staged by CompressedPostings::scan_blocks: doc ids
/// are materialized into an L1-resident buffer (SIMD shuffle decode for
/// group-varint blocks), tf codes and exception doubles stay views into
/// the compressed pool. `excs` packs exc_count raw f64s in posting order
/// for the entries whose code is 0.
struct BlockView {
  const std::uint32_t* docs = nullptr;
  const std::uint8_t* codes = nullptr;
  const std::uint8_t* excs = nullptr;
  std::size_t exc_count = 0;
  std::size_t n = 0;
};

}  // namespace codec

/// All terms' postings in one compressed byte pool with per-term offsets
/// (the CSR shape of the raw layout, minus ~80% of the bytes).
class CompressedPostings {
 public:
  CompressedPostings() = default;

  /// Builds from raw CSR postings: term t's postings are
  /// docs/tfs[term_ptr[t], term_ptr[t+1]), docs ascending per term.
  CompressedPostings(const std::vector<std::size_t>& term_ptr,
                     const std::vector<std::uint32_t>& docs,
                     const std::vector<double>& tfs);

  std::size_t num_terms() const { return counts_.size(); }
  std::uint32_t count(std::uint32_t term) const {
    return term < counts_.size() ? counts_[term] : 0;
  }
  std::size_t total_postings() const { return total_postings_; }

  /// Compressed footprint: byte pool (payload only, excluding the SIMD
  /// decode pad) plus the per-term offset/count directory.
  std::size_t compressed_bytes() const {
    return (offsets_.empty() ? 0 : offsets_.back()) +
           offsets_.size() * sizeof(std::uint64_t) +
           counts_.size() * sizeof(std::uint32_t);
  }

  /// Decodes one term's full postings (tests / interop; the scoring path
  /// uses scan() and never materializes this).
  void decode_term(std::uint32_t term, std::vector<std::uint32_t>& docs,
                   std::vector<double>& tfs) const;

  /// Block-at-a-time decode-and-visit over one term's postings:
  /// `fn(const codec::BlockView&)` once per block, doc ids staged into an
  /// L1-resident buffer (group-varint blocks decode through the dispatched
  /// SSE shuffle-table kernel; varint blocks through the scalar chain).
  /// Staging the ids first lets callers run vectorized kernels over the
  /// whole block — gathered norms, LUT-expanded tfs — instead of paying a
  /// decode/score dependency per posting.
  ///
  /// This is the *unchecked* mirror of codec::decode_block — it trusts the
  /// in-memory pool the encoder built and elides every bounds check; keep
  /// the two walks in lockstep on any format change (a shared policy
  /// template was measured at ~15% scoring-loop cost and rejected).
  template <typename Fn>
  void scan_blocks(std::uint32_t term, Fn&& fn) const {
    if (term >= num_terms()) return;
    const std::uint8_t* p = bytes_.data() + offsets_[term];
    std::size_t remaining = counts_[term];
    std::uint32_t prev = 0;
    // kBlockSize is a multiple of 4, so the SIMD decoder's full-quad
    // stores never step outside the staging buffer.
    static_assert(codec::kBlockSize % 4 == 0);
    std::uint32_t ids[codec::kBlockSize];
    while (remaining > 0) {
      const std::size_t n = std::min(remaining, codec::kBlockSize);
      const std::uint8_t tag = *p++;
      assert(tag == codec::kTagVarint || tag == codec::kTagGroupVarint ||
             tag == codec::kTagU8Delta);
      const std::uint8_t* codes = p;
      p += n;
      std::uint64_t exc_count;
      p = codec::get_varint(p, &exc_count);
      const std::uint8_t* excp = p;
      p += sizeof(double) * exc_count;
      if (tag == codec::kTagU8Delta) {
        // The SIMD tiers read rounded-up 4-byte windows; the pool keeps
        // simd::kDecodePadBytes of slack after the payload for this.
        p = simd::decode_u8_deltas(p, ids, &prev, n);
      } else if (tag == codec::kTagGroupVarint) {
        // The SIMD tier reads 16-byte windows (same pool slack).
        p = simd::decode_group_deltas(p, ids, &prev, n);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          std::uint32_t delta;
          p = codec::get_varint32(p, &delta);
          prev += delta;
          ids[i] = prev;
        }
      }
      fn(codec::BlockView{ids, codes, excp,
                          static_cast<std::size_t>(exc_count), n});
      remaining -= n;
    }
  }

  /// Fused per-posting visit, in doc order: `fn(doc, code, exc)` where
  /// code is the quantized tf (tf == code bit-exactly when nonzero) and
  /// exc the exact exception value when code == 0. Thin adapter over
  /// scan_blocks for callers that don't batch.
  template <typename Fn>
  void scan(std::uint32_t term, Fn&& fn) const {
    scan_blocks(term, [&](const codec::BlockView& bv) {
      const std::uint8_t* excp = bv.excs;
      for (std::size_t i = 0; i < bv.n; ++i) {
        double exc = 0.0;
        if (bv.codes[i] == 0) {
          std::memcpy(&exc, excp, sizeof exc);
          excp += sizeof exc;
        }
        fn(bv.docs[i], bv.codes[i], exc);
      }
    });
  }

 private:
  std::vector<std::uint64_t> offsets_;  // per-term byte offset, terms+1
  std::vector<std::uint32_t> counts_;   // postings per term (df)
  std::vector<std::uint8_t> bytes_;     // payload + simd::kDecodePadBytes
  std::size_t total_postings_ = 0;
};

}  // namespace at::search
