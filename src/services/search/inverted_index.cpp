#include "services/search/inverted_index.h"

#include <cmath>
#include <unordered_map>

namespace at::search {

InvertedIndex::InvertedIndex(const synopsis::SparseRows& docs,
                             ScorerParams scorer)
    : scorer_(scorer) {
  postings_.resize(docs.cols());
  doc_length_.resize(docs.rows(), 0.0);
  double total_len = 0.0;
  for (std::uint32_t d = 0; d < docs.rows(); ++d) {
    double len = 0.0;
    for (const auto& [term, count] : docs.row(d)) {
      postings_[term].push_back(Posting{d, count});
      len += count;
    }
    doc_length_[d] = len;
    total_len += len;
  }
  mean_doc_length_ =
      docs.rows() > 0 ? total_len / static_cast<double>(docs.rows()) : 0.0;
}

const std::vector<Posting>& InvertedIndex::postings(std::uint32_t term) const {
  static const std::vector<Posting> kEmpty;
  if (term >= postings_.size()) return kEmpty;
  return postings_[term];
}

std::uint32_t InvertedIndex::doc_frequency(std::uint32_t term) const {
  if (term >= postings_.size()) return 0;
  return static_cast<std::uint32_t>(postings_[term].size());
}

double InvertedIndex::idf(std::uint32_t term) const {
  const double n = static_cast<double>(num_docs());
  const double df = static_cast<double>(doc_frequency(term));
  return std::log(1.0 + n / (1.0 + df));
}

void InvertedIndex::set_global_idf(
    std::shared_ptr<const std::vector<double>> idf) {
  global_idf_ = std::move(idf);
}

double InvertedIndex::idf_for(std::uint32_t term) const {
  if (global_idf_ != nullptr) {
    if (term < global_idf_->size()) return (*global_idf_)[term];
    return 0.0;
  }
  return idf(term);
}

double InvertedIndex::term_doc_score(double tf, double idf,
                                     double doc_len) const {
  if (tf <= 0.0 || idf <= 0.0) return 0.0;
  if (scorer_.scorer == Scorer::kBm25) {
    const double k1 = scorer_.bm25_k1;
    const double b = scorer_.bm25_b;
    const double avg = mean_doc_length_ > 0.0 ? mean_doc_length_ : 1.0;
    const double norm = k1 * (1.0 - b + b * doc_len / avg);
    return idf * (tf * (k1 + 1.0)) / (tf + norm);
  }
  // Lucene-classic: sqrt(tf) * idf with 1/sqrt(dl) length normalization.
  const double len_norm = doc_len > 0.0 ? 1.0 / std::sqrt(doc_len) : 0.0;
  return std::sqrt(tf) * idf * len_norm;
}

void InvertedIndex::score_query(const std::vector<std::uint32_t>& terms,
                                std::uint64_t doc_id_base,
                                std::vector<ScoredDoc>& out) const {
  // Term-at-a-time accumulation over matching docs only.
  std::unordered_map<std::uint32_t, double> acc;
  for (auto term : terms) {
    const double w = idf_for(term);
    if (w <= 0.0) continue;
    for (const auto& p : postings(term)) {
      acc[p.doc] += term_doc_score(p.tf, w, doc_length_[p.doc]);
    }
  }
  out.reserve(out.size() + acc.size());
  for (const auto& [doc, score] : acc) {
    if (score <= 0.0) continue;
    out.push_back(ScoredDoc{score, doc_id_base + doc});
  }
}

std::vector<ScoredDoc> InvertedIndex::topk(
    const std::vector<std::uint32_t>& terms, std::uint64_t doc_id_base,
    std::size_t k) const {
  std::vector<ScoredDoc> scored;
  score_query(terms, doc_id_base, scored);
  TopK top(k);
  for (const auto& d : scored) top.offer(d);
  return top.take();
}

double InvertedIndex::score_counts(const std::vector<std::uint32_t>& terms,
                                   const synopsis::SparseVector& counts,
                                   double length) const {
  double score = 0.0;
  for (auto term : terms) {
    const double tf = synopsis::value_at(counts, term);
    if (tf <= 0.0) continue;
    score += term_doc_score(tf, idf_for(term), length);
  }
  return score;
}

std::vector<double> merge_idf(
    const std::vector<std::vector<std::uint32_t>>& dfs,
    std::size_t total_docs) {
  std::size_t vocab = 0;
  for (const auto& v : dfs) vocab = std::max(vocab, v.size());
  std::vector<double> idf(vocab, 0.0);
  for (std::size_t t = 0; t < vocab; ++t) {
    std::uint64_t df = 0;
    for (const auto& v : dfs) {
      if (t < v.size()) df += v[t];
    }
    idf[t] = std::log(1.0 + static_cast<double>(total_docs) /
                                (1.0 + static_cast<double>(df)));
  }
  return idf;
}

}  // namespace at::search
