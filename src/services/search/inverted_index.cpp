#include "services/search/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/simd.h"

namespace at::search {

void ScoreAccumulator::begin(std::size_t num_docs) {
  if (score_.size() < num_docs) {
    score_.resize(num_docs, 0.0);
    stamp_.resize(num_docs, 0);  // 0 == reserved "never touched" stamp
  }
  touched_.clear();
  // The first begin() moves the epoch off the reserved value before any
  // add() can compare against it; on wraparound to 0, clear every stamp so
  // values stamped one full cycle ago can't alias the reused epochs.
  if (++epoch_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

InvertedIndex::InvertedIndex(const synopsis::SparseRows& docs,
                             ScorerParams scorer)
    : scorer_(scorer) {
  const std::size_t vocab = docs.cols();
  const std::size_t n = docs.rows();
  std::vector<std::size_t> term_ptr(vocab + 1, 0);
  doc_length_.assign(n, 0.0);

  // Pass 1: per-term posting counts and per-doc lengths.
  double total_len = 0.0;
  for (std::uint32_t d = 0; d < n; ++d) {
    double len = 0.0;
    for (const auto& [term, count] : docs.row(d)) {
      ++term_ptr[term + 1];
      len += count;
    }
    doc_length_[d] = len;
    total_len += len;
  }
  for (std::size_t t = 0; t < vocab; ++t) term_ptr[t + 1] += term_ptr[t];

  // Pass 2: fill flat posting arrays (docs ascending per term because rows
  // are visited in doc order), then compress them block-wise. The raw
  // arrays are build scratch only and are freed on return.
  const std::size_t entries = term_ptr[vocab];
  std::vector<std::uint32_t> post_doc(entries);
  std::vector<double> post_tf(entries);
  std::vector<std::size_t> fill(term_ptr.begin(), term_ptr.end() - 1);
  for (std::uint32_t d = 0; d < n; ++d) {
    for (const auto& [term, count] : docs.row(d)) {
      const std::size_t slot = fill[term]++;
      post_doc[slot] = d;
      post_tf[slot] = count;
    }
  }
  postings_ = CompressedPostings(term_ptr, post_doc, post_tf);

  // Local idf is fixed once the counts are known; caching it keeps the
  // per-term log() out of the query loop.
  local_idf_.resize(vocab);
  const double nd = static_cast<double>(n);
  for (std::size_t t = 0; t < vocab; ++t) {
    const double df = static_cast<double>(term_ptr[t + 1] - term_ptr[t]);
    local_idf_[t] = std::log(1.0 + nd / (1.0 + df));
  }

  mean_doc_length_ = n > 0 ? total_len / static_cast<double>(n) : 0.0;
  len_norm_.resize(n);
  bm25_norm_.resize(n);
  const double k1 = scorer_.bm25_k1;
  const double b = scorer_.bm25_b;
  const double avg = mean_doc_length_ > 0.0 ? mean_doc_length_ : 1.0;
  // Vectorized norm passes (ROADMAP "vectorized sqrt pass in index
  // construction"): hardware sqrt/div are correctly rounded, so every
  // dispatch tier produces the exact doubles of the scalar loop.
  simd::inv_sqrt_or_zero(len_norm_.data(), doc_length_.data(), n);
  simd::bm25_doc_norms(bm25_norm_.data(), doc_length_.data(), k1, b, avg, n);
}

std::vector<Posting> InvertedIndex::postings(std::uint32_t term) const {
  std::vector<std::uint32_t> docs;
  std::vector<double> tfs;
  postings_.decode_term(term, docs, tfs);
  std::vector<Posting> out(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) out[i] = {docs[i], tfs[i]};
  return out;
}

double InvertedIndex::idf(std::uint32_t term) const {
  if (term < local_idf_.size()) return local_idf_[term];
  const double n = static_cast<double>(num_docs());
  const double df = static_cast<double>(doc_frequency(term));
  return std::log(1.0 + n / (1.0 + df));
}

void InvertedIndex::set_global_idf(
    std::shared_ptr<const std::vector<double>> idf) {
  global_idf_ = std::move(idf);
}

double InvertedIndex::idf_for(std::uint32_t term) const {
  if (global_idf_ != nullptr) {
    if (term < global_idf_->size()) return (*global_idf_)[term];
    return 0.0;
  }
  return idf(term);
}

double InvertedIndex::term_doc_score(double tf, double idf,
                                     double doc_len) const {
  if (tf <= 0.0 || idf <= 0.0) return 0.0;
  if (scorer_.scorer == Scorer::kBm25) {
    const double k1 = scorer_.bm25_k1;
    const double b = scorer_.bm25_b;
    const double avg = mean_doc_length_ > 0.0 ? mean_doc_length_ : 1.0;
    const double norm = k1 * (1.0 - b + b * doc_len / avg);
    return idf * (tf * (k1 + 1.0)) / (tf + norm);
  }
  // Lucene-classic: sqrt(tf) * idf with 1/sqrt(dl) length normalization.
  const double len_norm = doc_len > 0.0 ? 1.0 / std::sqrt(doc_len) : 0.0;
  return std::sqrt(tf) * idf * len_norm;
}

IndexSizeStats InvertedIndex::size_stats() const {
  IndexSizeStats s;
  s.postings = postings_.total_postings();
  // Raw layout this codec replaced: size_t term offsets plus u32 doc and
  // f64 tf per posting, and the cached f64 sqrt(tf) the tf-idf path kept.
  const std::size_t per_posting =
      sizeof(std::uint32_t) + sizeof(double) +
      (scorer_.scorer == Scorer::kTfIdf ? sizeof(double) : 0);
  s.raw_bytes = (postings_.num_terms() + 1) * sizeof(std::size_t) +
                s.postings * per_posting;
  s.compressed_bytes = postings_.compressed_bytes();
  return s;
}

namespace {
// One dense scratch per thread, reused across queries and indexes.
ScoreAccumulator& scratch() {
  thread_local ScoreAccumulator acc;
  return acc;
}
}  // namespace

void InvertedIndex::accumulate(const std::vector<std::uint32_t>& terms,
                               ScoreAccumulator& acc) const {
  acc.begin(num_docs());
  const bool bm25 = scorer_.scorer == Scorer::kBm25;
  const double k1p1 = scorer_.bm25_k1 + 1.0;
  // Block-staged decode-and-score: each 128-posting block decodes its doc
  // ids into an L1 staging buffer (SIMD shuffle decode for group-varint
  // blocks), the tf column expands through the sqrt LUT (tf-idf) or an
  // int->double convert (BM25) and the per-posting score is computed with
  // the dispatched vector kernels — gathered norms, no per-posting
  // decode/score dependency. Every tier performs the scalar loop's exact
  // IEEE operations in the same per-element order, so scores (and the
  // accumulator's add order) are bit-identical to the fused scalar walk
  // this replaced. Only the accumulator drain stays scalar: the
  // first-touch stamp/touched bookkeeping is data-dependent.
  double tf_buf[codec::kBlockSize];
  double score_buf[codec::kBlockSize];
  // The first scored term hits a fresh epoch: within one term's postings
  // every doc id occurs once, so none of its adds can be a repeat touch
  // and the whole term bulk-appends without stamp checks (ROADMAP drain
  // fast path). Later terms (including a duplicated first term) take the
  // stamped path.
  bool fresh = true;
  for (auto term : terms) {
    const double w = idf_for(term);
    if (w <= 0.0 || term >= vocab_size()) continue;
    postings_.scan_blocks(term, [&](const codec::BlockView& bv) {
      if (bv.exc_count == 0) {
        // Common case: every tf is a quantized code — score straight from
        // the code bytes, no tf staging round-trip. Bit-identical to the
        // two-step path below (same ops, same order).
        if (bm25) {
          simd::score_bm25_codes(score_buf, bv.codes, bv.docs,
                                 bm25_norm_.data(), w, k1p1, bv.n);
        } else {
          simd::score_tfidf_codes(score_buf, bv.codes, codec::kSqrtLut,
                                  bv.docs, len_norm_.data(), w, bv.n);
        }
      } else {
        // Rare path: expand tfs, patch the exception entries (code 0)
        // with their exact doubles in posting order, then score.
        if (bm25) {
          simd::u8_to_f64(tf_buf, bv.codes, bv.n);
        } else {
          simd::expand_lut_u8(tf_buf, bv.codes, codec::kSqrtLut, bv.n);
        }
        const std::uint8_t* excp = bv.excs;
        for (std::size_t i = 0; i < bv.n; ++i) {
          if (bv.codes[i] != 0) continue;
          double exc;
          std::memcpy(&exc, excp, sizeof exc);
          excp += sizeof exc;
          tf_buf[i] = bm25 ? exc : std::sqrt(exc);
        }
        if (bm25) {
          simd::score_bm25(score_buf, tf_buf, bv.docs, bm25_norm_.data(), w,
                           k1p1, bv.n);
        } else {
          simd::score_tfidf(score_buf, tf_buf, bv.docs, len_norm_.data(), w,
                            bv.n);
        }
      }
      if (fresh) {
        acc.bulk_add_fresh(bv.docs, score_buf, bv.n);
      } else {
        for (std::size_t i = 0; i < bv.n; ++i)
          acc.add(bv.docs[i], score_buf[i]);
      }
    });
    fresh = false;
  }
}

void InvertedIndex::score_query(const std::vector<std::uint32_t>& terms,
                                std::uint64_t doc_id_base,
                                std::vector<ScoredDoc>& out) const {
  ScoreAccumulator& acc = scratch();
  accumulate(terms, acc);
  out.reserve(out.size() + acc.touched().size());
  for (auto doc : acc.touched()) {
    const double score = acc.score(doc);
    if (score <= 0.0) continue;
    out.push_back(ScoredDoc{score, doc_id_base + doc});
  }
}

std::vector<ScoredDoc> InvertedIndex::topk(
    const std::vector<std::uint32_t>& terms, std::uint64_t doc_id_base,
    std::size_t k) const {
  ScoreAccumulator& acc = scratch();
  accumulate(terms, acc);
  TopK top(k);
  for (auto doc : acc.touched()) {
    const double score = acc.score(doc);
    if (score <= 0.0) continue;
    top.offer(ScoredDoc{score, doc_id_base + doc});
  }
  return top.take();
}

std::vector<double> merge_idf(
    const std::vector<std::vector<std::uint32_t>>& dfs,
    std::size_t total_docs) {
  std::size_t vocab = 0;
  for (const auto& v : dfs) vocab = std::max(vocab, v.size());
  std::vector<double> idf(vocab, 0.0);
  for (std::size_t t = 0; t < vocab; ++t) {
    std::uint64_t df = 0;
    for (const auto& v : dfs) {
      if (t < v.size()) df += v[t];
    }
    idf[t] = std::log(1.0 + static_cast<double>(total_docs) /
                                (1.0 + static_cast<double>(df)));
  }
  return idf;
}

}  // namespace at::search
