#include "services/search/postings_codec.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace at::search {
namespace codec {
namespace {

std::size_t varint_len(std::uint32_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Bytes needed by the group-varint data section for one value (1..4).
std::size_t group_len(std::uint32_t v) {
  if (v < (1u << 8)) return 1;
  if (v < (1u << 16)) return 2;
  if (v < (1u << 24)) return 3;
  return 4;
}

[[noreturn]] void fail_truncated() {
  throw std::runtime_error("postings codec: truncated input");
}

/// Bounds-checked varint read for file-supplied bytes (the header-inline
/// get_varint trusts in-memory pools the encoder built).
const std::uint8_t* get_varint_bounded(const std::uint8_t* p,
                                       const std::uint8_t* end,
                                       std::uint64_t* v) {
  std::uint64_t r = 0;
  int shift = 0;
  for (;;) {
    if (p >= end) fail_truncated();
    if (shift > 63)
      throw std::runtime_error("postings codec: over-long varint");
    const std::uint8_t byte = *p++;
    r |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = r;
  return p;
}

/// Bounded u32 varint read: rejects encodings wider than the 5-byte
/// canonical maximum (an over-long run of continuation bytes would
/// otherwise decode as silent garbage after the shift cap).
const std::uint8_t* get_varint32_bounded(const std::uint8_t* p,
                                         const std::uint8_t* end,
                                         std::uint32_t* v) {
  std::uint32_t r = 0;
  int shift = 0;
  for (;;) {
    if (p >= end) fail_truncated();
    if (shift > 28)
      throw std::runtime_error("postings codec: over-long varint");
    const std::uint8_t byte = *p++;
    r |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = r;
  return p;
}

const std::uint8_t* get_group4_bounded(const std::uint8_t* p,
                                       const std::uint8_t* end,
                                       std::uint32_t v[4]) {
  if (p >= end) fail_truncated();
  std::size_t data_len = 0;
  const std::uint8_t control = *p;
  for (int i = 0; i < 4; ++i) data_len += ((control >> (2 * i)) & 0x3) + 1;
  if (end - p < static_cast<std::ptrdiff_t>(1 + data_len)) fail_truncated();
  return get_group4(p, v);
}

void write_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint8_t buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.insert(out.end(), buf, buf + sizeof v);
}

/// Appends one block (<= kBlockSize postings); returns the new running
/// previous id. Layout: tag, tf codes, exception count + exception
/// doubles, then the encoded deltas — values before ids so decoders can
/// pin the code/exception cursors and stream the delta walk straight into
/// the consumer without staging doc ids.
std::uint32_t encode_block(std::vector<std::uint8_t>& out,
                           const std::uint32_t* ids, const double* vals,
                           std::size_t n, std::uint32_t prev) {
  std::uint32_t deltas[kBlockSize];
  std::size_t varint_bytes = 0;
  std::size_t group_bytes = (n + 3) / 4;  // control bytes
  bool u8_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    deltas[i] = ids[i] - prev;
    prev = ids[i];
    varint_bytes += varint_len(deltas[i]);
    group_bytes += group_len(deltas[i]);
    u8_ok = u8_ok && deltas[i] <= 0xFF;
  }
  group_bytes += (n + 3) / 4 * 4 - n;  // padded tail slots cost 1 byte each
  // Raw u8 deltas cost exactly n bytes, which is <= both alternatives
  // (varints are >= 1 byte per delta, group adds 1/4 control byte per
  // delta) — so whenever every gap fits a byte the u8 layout wins on size
  // and decodes with the SIMD prefix-sum kernel.
  const std::uint8_t tag =
      u8_ok ? kTagU8Delta
            : (group_bytes < varint_bytes ? kTagGroupVarint : kTagVarint);
  out.push_back(tag);

  std::uint8_t codes[kBlockSize];
  std::uint32_t exc_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    codes[i] = quantize_tf(vals[i]);
    out.push_back(codes[i]);
    if (codes[i] == 0) ++exc_count;
  }
  put_varint(out, exc_count);
  for (std::size_t i = 0; i < n; ++i) {
    if (codes[i] == 0) write_f64(out, vals[i]);
  }

  if (tag == kTagU8Delta) {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(deltas[i]));
    }
  } else if (tag == kTagGroupVarint) {
    for (std::size_t i = 0; i < n; i += 4) {
      std::uint32_t quad[4] = {0, 0, 0, 0};
      for (std::size_t j = 0; j < 4 && i + j < n; ++j) quad[j] = deltas[i + j];
      put_group4(out, quad);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) put_varint(out, deltas[i]);
  }
  return prev;
}

}  // namespace

// Shared with the scoring loop: the LUT entries are the very std::sqrt
// values the uncompressed index cached per posting, so substituting a
// lookup for the call cannot change a result bit.
const double kSqrtLut[256] = {
#define AT_SQRT1(i) std::sqrt(static_cast<double>(i))
#define AT_SQRT8(i)                                                    \
  AT_SQRT1(i), AT_SQRT1(i + 1), AT_SQRT1(i + 2), AT_SQRT1(i + 3),      \
      AT_SQRT1(i + 4), AT_SQRT1(i + 5), AT_SQRT1(i + 6), AT_SQRT1(i + 7)
#define AT_SQRT64(i) \
  AT_SQRT8(i), AT_SQRT8(i + 8), AT_SQRT8(i + 16), AT_SQRT8(i + 24), \
      AT_SQRT8(i + 32), AT_SQRT8(i + 40), AT_SQRT8(i + 48), AT_SQRT8(i + 56)
    AT_SQRT64(0), AT_SQRT64(64), AT_SQRT64(128), AT_SQRT64(192)
#undef AT_SQRT64
#undef AT_SQRT8
#undef AT_SQRT1
};

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_group4(std::vector<std::uint8_t>& out, const std::uint32_t v[4]) {
  std::uint8_t control = 0;
  for (int i = 0; i < 4; ++i) {
    control |= static_cast<std::uint8_t>((group_len(v[i]) - 1) << (2 * i));
  }
  out.push_back(control);
  for (int i = 0; i < 4; ++i) {
    std::uint32_t x = v[i];
    for (std::size_t b = group_len(v[i]); b > 0; --b) {
      out.push_back(static_cast<std::uint8_t>(x));
      x >>= 8;
    }
  }
}

std::uint8_t quantize_tf(double tf) {
  // Negated range test so NaN (which fails every comparison) takes the
  // exception path instead of reaching the float->int cast (UB for
  // unrepresentable values).
  if (!(tf >= 1.0 && tf <= 255.0)) return 0;
  const auto i = static_cast<std::uint32_t>(tf);
  return static_cast<double>(i) == tf ? static_cast<std::uint8_t>(i) : 0;
}

void encode_list(std::vector<std::uint8_t>& out, const std::uint32_t* ids,
                 const double* vals, std::size_t n) {
  std::uint32_t prev = 0;
  for (std::size_t b = 0; b < n; b += kBlockSize) {
    const std::size_t m = std::min(kBlockSize, n - b);
    prev = encode_block(out, ids + b, vals + b, m, prev);
  }
}

// Checked mirror of CompressedPostings::scan (see the header note on why
// the two walks stay separate): every read bounds-checked, exception
// count validated in both directions.
const std::uint8_t* decode_block(const std::uint8_t* p,
                                 const std::uint8_t* end, std::size_t n,
                                 std::uint32_t prev, std::uint32_t* ids,
                                 double* vals) {
  if (p >= end) fail_truncated();
  const std::uint8_t tag = *p++;
  if (tag != kTagVarint && tag != kTagGroupVarint && tag != kTagU8Delta)
    throw std::runtime_error("postings codec: bad block tag");

  if (end - p < static_cast<std::ptrdiff_t>(n)) fail_truncated();
  const std::uint8_t* codes = p;
  p += n;
  std::uint64_t exc_count;
  p = get_varint_bounded(p, end, &exc_count);
  std::uint64_t zero_codes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (codes[i] == 0) ++zero_codes;
  }
  // Exact match both ways: a short count would desync the delta section
  // into the exception doubles, a long one the other way around — either
  // must fail loudly rather than silently mis-decode.
  if (zero_codes != exc_count)
    throw std::runtime_error("postings codec: exception count mismatch");
  if (end - p <
      static_cast<std::ptrdiff_t>(sizeof(double) * exc_count))
    fail_truncated();
  const std::uint8_t* excp = p;
  p += sizeof(double) * exc_count;
  for (std::size_t i = 0; i < n; ++i) {
    if (codes[i] != 0) {
      vals[i] = static_cast<double>(codes[i]);
    } else {
      std::memcpy(&vals[i], excp, sizeof(double));
      excp += sizeof(double);
    }
  }

  if (tag == kTagU8Delta) {
    if (end - p < static_cast<std::ptrdiff_t>(n)) fail_truncated();
    for (std::size_t i = 0; i < n; ++i) {
      prev += *p++;
      ids[i] = prev;
    }
  } else if (tag == kTagGroupVarint) {
    for (std::size_t i = 0; i < n; i += 4) {
      std::uint32_t quad[4];
      p = get_group4_bounded(p, end, quad);
      for (std::size_t j = 0; j < 4 && i + j < n; ++j) {
        prev += quad[j];
        ids[i + j] = prev;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t delta;
      p = get_varint32_bounded(p, end, &delta);
      prev += delta;
      ids[i] = prev;
    }
  }
  return p;
}

void decode_list(const std::uint8_t* p, std::size_t bytes, std::size_t n,
                 std::vector<std::uint32_t>& ids, std::vector<double>& vals) {
  std::uint32_t id_buf[kBlockSize];
  double val_buf[kBlockSize];
  const std::uint8_t* end = p + bytes;
  std::uint32_t prev = 0;
  ids.reserve(ids.size() + n);
  vals.reserve(vals.size() + n);
  for (std::size_t b = 0; b < n; b += kBlockSize) {
    const std::size_t m = std::min(kBlockSize, n - b);
    p = decode_block(p, end, m, prev, id_buf, val_buf);
    prev = id_buf[m - 1];
    ids.insert(ids.end(), id_buf, id_buf + m);
    vals.insert(vals.end(), val_buf, val_buf + m);
  }
}

}  // namespace codec

CompressedPostings::CompressedPostings(
    const std::vector<std::size_t>& term_ptr,
    const std::vector<std::uint32_t>& docs, const std::vector<double>& tfs) {
  const std::size_t terms = term_ptr.empty() ? 0 : term_ptr.size() - 1;
  offsets_.reserve(terms + 1);
  counts_.reserve(terms);
  offsets_.push_back(0);
  for (std::size_t t = 0; t < terms; ++t) {
    const std::size_t lo = term_ptr[t];
    const std::size_t hi = term_ptr[t + 1];
    codec::encode_list(bytes_, docs.data() + lo, tfs.data() + lo, hi - lo);
    offsets_.push_back(bytes_.size());
    counts_.push_back(static_cast<std::uint32_t>(hi - lo));
    total_postings_ += hi - lo;
  }
  // Slack for the SIMD group-varint decoder's 16-byte loads: the last
  // group of the last block may read past its own data bytes, and these
  // zeros keep that read inside the allocation. Not counted in
  // compressed_bytes().
  bytes_.insert(bytes_.end(), simd::kDecodePadBytes, 0);
  bytes_.shrink_to_fit();
}

void CompressedPostings::decode_term(std::uint32_t term,
                                     std::vector<std::uint32_t>& docs,
                                     std::vector<double>& tfs) const {
  docs.clear();
  tfs.clear();
  if (term >= num_terms()) return;
  codec::decode_list(bytes_.data() + offsets_[term],
                     offsets_[term + 1] - offsets_[term], counts_[term], docs,
                     tfs);
}

}  // namespace at::search
