#include "services/search/topk.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace at::search {

namespace {
// std::push_heap with this comparator keeps the *worst* element at front.
bool heap_cmp(const ScoredDoc& a, const ScoredDoc& b) { return better(a, b); }
}  // namespace

TopK::TopK(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("TopK: k must be >= 1");
  heap_.reserve(k + 1);
}

void TopK::offer(const ScoredDoc& d) {
  if (heap_.size() < k_) {
    heap_.push_back(d);
    std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
    return;
  }
  if (better(d, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
    heap_.back() = d;
    std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
  }
}

std::vector<ScoredDoc> TopK::take() const {
  std::vector<ScoredDoc> out = heap_;
  std::sort(out.begin(), out.end(), better);
  return out;
}

double topk_overlap(const std::vector<ScoredDoc>& retrieved,
                    const std::vector<ScoredDoc>& actual) {
  if (actual.empty()) return 1.0;
  std::unordered_set<std::uint64_t> got;
  got.reserve(retrieved.size());
  for (const auto& d : retrieved) got.insert(d.doc);
  std::size_t hit = 0;
  for (const auto& d : actual) hit += got.count(d.doc);
  return static_cast<double>(hit) / static_cast<double>(actual.size());
}

}  // namespace at::search
