// Text handling for the search service: a string<->id vocabulary and a
// simple tokenizer. The synthetic corpus generator works directly in term
// ids; the vocabulary exists so the examples can index and query real text
// through the same pipeline (the paper's step 1 converts each web page to
// a numeric point whose attributes are word occurrence counts).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "synopsis/sparse_rows.h"

namespace at::search {

class Vocabulary {
 public:
  /// Returns the id of `word`, inserting it if new.
  std::uint32_t intern(std::string_view word);

  /// Returns the id of `word` or kNotFound.
  std::uint32_t lookup(std::string_view word) const;

  const std::string& word(std::uint32_t id) const { return words_.at(id); }
  std::size_t size() const { return words_.size(); }

  static constexpr std::uint32_t kNotFound = 0xffffffffu;

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> words_;
};

/// Lower-cases and splits on non-alphanumeric characters.
std::vector<std::string> tokenize(std::string_view text);

/// Tokenizes and interns, producing a term-count sparse vector (a document
/// row suitable for SparseRows / the inverted index).
synopsis::SparseVector text_to_counts(std::string_view text, Vocabulary& vocab);

/// Tokenizes against a frozen vocabulary (unknown words dropped), producing
/// query term ids.
std::vector<std::uint32_t> text_to_terms(std::string_view text,
                                         const Vocabulary& vocab);

}  // namespace at::search
