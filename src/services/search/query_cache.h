// LRU query-result cache. The paper's search service consults it first:
// "if a query request does not hit the query cache, the search engine
// scans its index file..." — high-frequency queries short-circuit the
// whole two-stage pipeline.
//
// Keys are canonicalized (terms sorted, duplicates removed) so "a b" and
// "b a" share an entry, and looked up through a hashed index (FNV-1a over
// the canonical term ids) — O(key length) per probe instead of the
// ordered-map's O(log n) full-key comparisons. Thread-safe; the service
// invalidates the cache whenever a component's input data changes.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "services/search/topk.h"

namespace at::search {

struct QueryCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

class QueryCache {
 public:
  explicit QueryCache(std::size_t capacity);

  /// Returns the cached result and refreshes its recency, or nullopt-like
  /// empty optional semantics via bool + out param: true on hit.
  bool lookup(const std::vector<std::uint32_t>& terms,
              std::vector<ScoredDoc>* out);

  /// Inserts (or refreshes) the result for a query; evicts the least
  /// recently used entry when full.
  void insert(const std::vector<std::uint32_t>& terms,
              std::vector<ScoredDoc> result);

  /// Drops everything (input data changed; all cached answers are stale).
  void invalidate_all();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  QueryCacheStats stats() const;

  /// Canonical cache key of a term list: sorted and deduplicated.
  static std::vector<std::uint32_t> canonical_key(
      const std::vector<std::uint32_t>& terms);

 private:
  using Key = std::vector<std::uint32_t>;
  struct Entry {
    Key key;
    std::vector<ScoredDoc> result;
  };

  /// FNV-1a over the canonical key's term ids (length folded in first so
  /// prefixes do not collide trivially).
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = 0xCBF29CE484222325ull ^ (k.size() * 0x9E3779B97F4A7C15ull);
      for (const std::uint32_t t : k) {
        h ^= t;
        h *= 0x100000001B3ull;
      }
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  QueryCacheStats stats_;
};

}  // namespace at::search
