// LRU query-result cache. The paper's search service consults it first:
// "if a query request does not hit the query cache, the search engine
// scans its index file..." — high-frequency queries short-circuit the
// whole two-stage pipeline.
//
// Keys are canonicalized (terms sorted, duplicates removed) so "a b" and
// "b a" share an entry, and looked up through a hashed index (FNV-1a over
// the canonical term ids) — O(key length) per probe instead of the
// ordered-map's O(log n) full-key comparisons. Thread-safe; the service
// invalidates the cache whenever a component's input data changes.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "services/search/topk.h"

namespace at::search {

struct QueryCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  /// Inserts refused because one entry alone exceeds the byte budget.
  std::uint64_t oversized_rejects = 0;
  /// Entries re-annotated stale by mark_stale_epochs() (epoch publish).
  std::uint64_t stale_marks = 0;
  /// Current estimated footprint of all cached entries (gauge, not a
  /// counter): keys + results + per-entry bookkeeping.
  std::uint64_t bytes = 0;

  double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Annotation stored with each cached answer. The in-service exact path
/// leaves it defaulted; the serving front end records the answer's
/// estimated accuracy loss and the data epoch it was computed in, so a
/// cache hit can be marked fresh or stale-degraded.
struct ResultMeta {
  double loss_pct = 0.0;
  std::uint64_t epoch = 0;
  /// Set by mark_stale_epochs() when the entry's epoch was retired while
  /// the entry stayed cached: its loss_pct already includes the staleness
  /// penalty, and it must never be served as fresh again.
  bool stale = false;
};

class QueryCache {
 public:
  /// Bounds the cache two ways: at most `capacity` entries AND at most
  /// `max_bytes` of estimated entry footprint (0 = no byte bound). Entry
  /// count alone does not bound memory under a live query stream — result
  /// and key sizes vary per query — so the byte budget is what actually
  /// caps the working set; eviction is LRU under both bounds. An entry
  /// larger than the whole budget is refused (stats().oversized_rejects).
  explicit QueryCache(std::size_t capacity, std::size_t max_bytes = 0);

  /// Returns the cached result and refreshes its recency, or nullopt-like
  /// empty optional semantics via bool + out param: true on hit. `meta`
  /// (optional) receives the entry's annotation.
  bool lookup(const std::vector<std::uint32_t>& terms,
              std::vector<ScoredDoc>* out, ResultMeta* meta = nullptr);

  /// Inserts (or refreshes) the result for a query; evicts least recently
  /// used entries until both the entry-count and byte bounds hold.
  void insert(const std::vector<std::uint32_t>& terms,
              std::vector<ScoredDoc> result, ResultMeta meta = {});

  /// Drops everything (input data changed; all cached answers are stale).
  void invalidate_all();

  /// Epoch-publish hook: every entry computed in an epoch other than
  /// `current_epoch` (and not already marked) is re-annotated stale —
  /// `penalty_pct` is folded into its loss_pct once, and the entry can
  /// only be served as a degraded answer from then on. Keeping (rather
  /// than dropping) the entries preserves the degradation ladder's last
  /// rung: a stale answer still beats shedding the request. Returns how
  /// many entries were newly marked.
  std::size_t mark_stale_epochs(std::uint64_t current_epoch,
                                double penalty_pct);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t max_bytes() const { return max_bytes_; }
  QueryCacheStats stats() const;

  /// Estimated footprint of one entry (key + result + bookkeeping), the
  /// unit the byte budget is accounted in. Exposed so tests can compute
  /// exact expected byte totals.
  static std::size_t entry_footprint(std::size_t key_terms,
                                     std::size_t result_docs);

  /// Canonical cache key of a term list: sorted and deduplicated.
  static std::vector<std::uint32_t> canonical_key(
      const std::vector<std::uint32_t>& terms);

 private:
  using Key = std::vector<std::uint32_t>;
  struct Entry {
    Key key;
    std::vector<ScoredDoc> result;
    ResultMeta meta;
  };

  /// FNV-1a over the canonical key's term ids (length folded in first so
  /// prefixes do not collide trivially).
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = 0xCBF29CE484222325ull ^ (k.size() * 0x9E3779B97F4A7C15ull);
      for (const std::uint32_t t : k) {
        h ^= t;
        h *= 0x100000001B3ull;
      }
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  /// Evicts LRU entries until both bounds hold with `incoming` more bytes
  /// pending.
  void evict_for(std::size_t incoming_bytes, std::size_t incoming_entries)
      AT_REQUIRES(mutex_);

  std::size_t capacity_;
  std::size_t max_bytes_;
  mutable common::Mutex mutex_;
  std::size_t bytes_ AT_GUARDED_BY(mutex_) = 0;
  std::list<Entry> lru_ AT_GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      AT_GUARDED_BY(mutex_);
  QueryCacheStats stats_ AT_GUARDED_BY(mutex_);
};

}  // namespace at::search
