// Bounded top-k collection of scored documents with deterministic
// tie-breaking (higher score first; equal scores ordered by lower doc id).
#pragma once

#include <cstdint>
#include <vector>

namespace at::search {

struct ScoredDoc {
  double score = 0.0;
  std::uint64_t doc = 0;
};

/// Ordering used everywhere results are ranked.
inline bool better(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

class TopK {
 public:
  explicit TopK(std::size_t k);

  void offer(const ScoredDoc& d);
  void offer(double score, std::uint64_t doc) { offer(ScoredDoc{score, doc}); }

  std::size_t k() const { return k_; }
  std::size_t size() const { return heap_.size(); }

  /// Results in rank order (best first). Does not consume the collector.
  std::vector<ScoredDoc> take() const;

 private:
  std::size_t k_;
  // Min-heap on `better`: heap_.front() is the currently worst kept doc.
  std::vector<ScoredDoc> heap_;
};

/// Fraction of `actual`'s docs present in `retrieved` (the paper's search
/// accuracy metric with actual = exact top-10). Returns 1 when actual is
/// empty (nothing to find).
double topk_overlap(const std::vector<ScoredDoc>& retrieved,
                    const std::vector<ScoredDoc>& actual);

}  // namespace at::search
