#include "services/search/service.h"

#include <algorithm>
#include <atomic>
#include <istream>
#include <stdexcept>
#include <string>

#include "common/failpoint.h"
#include "common/thread_annotations.h"
#include "core/algorithm1.h"

namespace at::search {

SearchService::SearchService(std::vector<SearchComponent> components,
                             std::size_t k)
    : SearchService(std::move(components), nullptr, k) {}

SearchService::SearchService(
    std::vector<SearchComponent> components,
    std::shared_ptr<const std::vector<double>> global_idf, std::size_t k)
    : components_(std::move(components)), k_(k) {
  if (components_.empty())
    throw std::invalid_argument("SearchService: no components");
  if (global_idf == nullptr) {
    rebuild_global_idf();
    return;
  }
  std::size_t total = 0;
  for (const auto& c : components_) total += c.num_docs();
  total_docs_.store(total, std::memory_order_relaxed);
  for (auto& c : components_) c.set_global_idf(global_idf);
}

void SearchService::rebuild_global_idf() {
  std::vector<std::vector<std::uint32_t>> dfs;
  dfs.reserve(components_.size());
  std::size_t total = 0;
  for (const auto& c : components_) {
    dfs.push_back(c.doc_frequencies());
    total += c.num_docs();
  }
  total_docs_.store(total, std::memory_order_relaxed);
  auto idf = std::make_shared<const std::vector<double>>(
      merge_idf(dfs, total));
  for (auto& c : components_) c.set_global_idf(idf);
}

std::uint64_t SearchService::data_version() const {
  std::uint64_t v = 0;
  for (const auto& c : components_) v += c.epoch_version();
  return v;
}

common::EpochStats SearchService::epoch_stats() const {
  common::EpochStats total;
  for (const auto& c : components_) {
    const common::EpochStats s = c.epoch_stats();
    total.version += s.version;
    total.published += s.published;
    total.retired += s.retired;
    total.live += s.live;
  }
  return total;
}

IndexSizeStats SearchService::index_size() const {
  IndexSizeStats total;
  for (const auto& c : components_) {
    const IndexSizeStats s = c.index_size();
    total.postings += s.postings;
    total.raw_bytes += s.raw_bytes;
    total.compressed_bytes += s.compressed_bytes;
  }
  return total;
}

void SearchService::enable_query_cache(std::size_t capacity) {
  cache_ = std::make_unique<QueryCache>(capacity);
}

void SearchService::set_pool(common::ThreadPool* pool) {
  pool_ = pool;
  if (exec_ != nullptr) return;  // executor assignment wins until cleared
  for (auto& c : components_) c.set_pool(pool);
}

void SearchService::set_executor(common::ShardedExecutor* exec) {
  exec_ = exec;
  if (exec_ != nullptr) {
    // Each component's internal parallelism (synopsis updates, rebuilds)
    // runs on its home node's pinned pool, so the shard's pages stay
    // node-local as the data evolves.
    for (std::size_t c = 0; c < components_.size(); ++c)
      components_[c].set_pool(&exec_->group(exec_->home_group(c)));
  } else {
    for (auto& c : components_) c.set_pool(pool_);
  }
}

synopsis::UpdateReport SearchService::update_component(
    std::size_t c, const synopsis::UpdateBatch& batch) {
  synopsis::UpdateReport report;
  if (exec_ != nullptr) {
    // Run the mutation on the shard's home group: the batch's new rows and
    // rebuilt postings are first-touched by node-local threads. The
    // update's own parallel phases fan out on the same group (nested
    // parallel_for helps while waiting, so one-worker groups are safe).
    exec_->submit(exec_->home_group(c),
                  [&] { report = components_.at(c).update(batch); })
        .get();
  } else {
    report = components_.at(c).update(batch);
  }
  if (cache_ != nullptr) cache_->invalidate_all();
  return report;
}

void SearchService::fan_out_topk(
    const std::function<std::vector<ScoredDoc>(std::size_t)>& scan,
    TopK& top) const {
  if (exec_ != nullptr && components_.size() > 1) {
    // Topology path: every component scans on its home group and offers
    // into its node's heap; the tiny per-node heaps merge at the end
    // instead of funneling every local list through one thread. `better`
    // is a strict total order over unique doc ids, so heap contents are
    // insertion-order independent and the merged result is identical to
    // the sequential component-order scan.
    const std::size_t groups = exec_->num_groups();
    std::vector<TopK> node_tops(groups, TopK(top.k()));
    std::vector<common::Mutex> node_locks(groups);
    exec_->for_each_shard_grouped(components_.size(), [&](std::size_t c) {
      const auto local = scan(c);
      if (local.empty()) return;
      const std::size_t g = exec_->home_group(c);
      common::MutexLock lock(node_locks[g]);
      for (const auto& d : local) node_tops[g].offer(d);
    });
    for (const auto& nt : node_tops) {
      for (const auto& d : nt.take()) top.offer(d);
    }
    return;
  }
  if (pool_ != nullptr && components_.size() > 1) {
    // Fan the local scans out across the pool; merge in component order so
    // the result is identical to the sequential path.
    std::vector<std::vector<ScoredDoc>> locals(components_.size());
    pool_->parallel_for(components_.size(),
                        [&](std::size_t c) { locals[c] = scan(c); });
    for (const auto& local : locals) {
      for (const auto& d : local) top.offer(d);
    }
    return;
  }
  for (std::size_t c = 0; c < components_.size(); ++c) {
    for (const auto& d : scan(c)) top.offer(d);
  }
}

std::vector<ScoredDoc> SearchService::exact_topk(
    const SearchRequest& request) const {
  // Freshness token: the sum of component epoch versions at lookup time.
  // A hit computed in any other epoch set is treated as a miss, and a
  // result is only inserted if no component published while the fan-out
  // was in flight — a concurrently-updated answer must not be cached as
  // current.
  const std::uint64_t v = data_version();
  if (cache_ != nullptr) {
    std::vector<ScoredDoc> cached;
    ResultMeta meta;
    if (cache_->lookup(request.terms, &cached, &meta) && !meta.stale &&
        meta.epoch == v) {
      return cached;
    }
  }
  TopK top(k_);
  fan_out_topk(
      [&](std::size_t c) { return components_[c].exact_topk(request, k_); },
      top);
  auto result = top.take();
  if (cache_ != nullptr && data_version() == v) {
    cache_->insert(request.terms, result, ResultMeta{0.0, v, false});
  }
  return result;
}

std::vector<ScoredDoc> SearchService::exact_topk_partial(
    const SearchRequest& request, std::size_t* components_ok) const {
  std::atomic<std::size_t> ok{0};
  TopK top(k_);
  fan_out_topk(
      [&](std::size_t c) -> std::vector<ScoredDoc> {
        try {
          // Fault-injection sites: "server.scan" kills every component's
          // scan, "server.scan.c<C>" kills one component (its home
          // executor group) mid-query.
          if (common::failpoint::any_armed()) {
            common::failpoint::check_throw("server.scan");
            common::failpoint::check_throw(
                ("server.scan.c" + std::to_string(c)).c_str());
          }
          auto local = components_[c].exact_topk(request, k_);
          ok.fetch_add(1, std::memory_order_relaxed);
          return local;
        } catch (...) {
          // The component is unavailable (its group died mid-query, its
          // scan hit an injected fault); the merge proceeds without it.
          return {};
        }
      },
      top);
  if (components_ok != nullptr) *components_ok = ok.load();
  return top.take();
}

std::vector<ScoredDoc> SearchService::synopsis_topk(
    const SearchRequest& request) const {
  TopK top(k_);
  fan_out_topk(
      [&](std::size_t c) { return components_[c].synopsis_topk(request, k_); },
      top);
  return top.take();
}

void SearchService::reload_component(std::size_t c, std::istream& is) {
  if (c >= components_.size())
    throw std::invalid_argument("SearchService::reload_component: bad index");
  // Load into a temporary: every failure mode (truncation, corruption,
  // injected artifact fault) throws out of here before any service state
  // is touched.
  SearchComponent fresh = SearchComponent::load(is);
  // Adopt the loaded shadow copy and publish it as a new epoch on the
  // *existing* component object — in-flight queries hold pinned snapshots
  // and drain against the old epoch, while the component's mutex/epoch
  // anchor (which concurrent readers go through) is never replaced.
  components_[c].adopt(std::move(fresh));
  // The shard's contents may have changed: rebuild the corpus-global idf
  // and drop every cached answer.
  rebuild_global_idf();
  if (cache_ != nullptr) cache_->invalidate_all();
}

std::vector<ScoredDoc> SearchService::retrieve(
    const SearchRequest& request, core::Technique technique,
    const std::vector<ComponentOutcome>& outcomes) const {
  using core::Technique;
  if (technique == Technique::kBasic ||
      technique == Technique::kRequestReissue) {
    return exact_topk(request);
  }
  if (outcomes.size() != components_.size())
    throw std::invalid_argument("SearchService::retrieve: outcome mismatch");

  if (technique == Technique::kPartialExecution) {
    TopK top(k_);
    fan_out_topk(
        [&](std::size_t c) -> std::vector<ScoredDoc> {
          if (!outcomes[c].included) return {};
          return components_[c].exact_topk(request, k_);
        },
        top);
    return top.take();
  }

  // AccuracyTrader: union of the exactly scored pages from each
  // component's processed ranked sets. The per-component analysis (synopsis
  // correlations + exact member scoring) fans out across the pool; the
  // merge below walks components in order, so results are identical to the
  // sequential path.
  TopK top(k_);
  struct PendingGroup {
    double correlation;
    std::size_t comp;
    std::size_t group;
  };
  std::vector<PendingGroup> unprocessed;
  std::vector<SearchComponentWork> works(components_.size());
  // Pin ONE snapshot per component for the whole request: the group
  // indices coming out of analyze() are only meaningful against the same
  // epoch's group index, so the padding pass below must read member docs
  // from the snapshot that produced them — not whatever a concurrent
  // update published in between.
  std::vector<std::shared_ptr<const SearchSnapshot>> snaps(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c)
    snaps[c] = components_[c].snapshot();
  if (exec_ != nullptr && components_.size() > 1) {
    exec_->for_each_shard_grouped(components_.size(), [&](std::size_t c) {
      works[c] = snaps[c]->analyze(request);
    });
  } else if (pool_ != nullptr && components_.size() > 1) {
    pool_->parallel_for(components_.size(), [&](std::size_t c) {
      works[c] = snaps[c]->analyze(request);
    });
  } else {
    for (std::size_t c = 0; c < components_.size(); ++c)
      works[c] = snaps[c]->analyze(request);
  }
  for (std::size_t c = 0; c < components_.size(); ++c) {
    const SearchComponentWork& work = works[c];
    const auto ranked = core::rank_by_correlation(work.correlations);
    const std::size_t sets =
        std::min<std::size_t>(outcomes[c].sets, ranked.size());
    for (std::size_t i = 0; i < sets; ++i) {
      for (const auto& d : work.scored_by_group[ranked[i]]) top.offer(d);
    }
    for (std::size_t i = sets; i < ranked.size(); ++i) {
      unprocessed.push_back(
          PendingGroup{work.correlations[ranked[i]], c, ranked[i]});
    }
  }
  std::vector<ScoredDoc> result = top.take();

  // Stage-1 padding: too few exactly-scored pages (e.g. zero sets fit the
  // deadline) — fall back on the synopsis ranking, best groups first.
  if (result.size() < k_) {
    std::sort(unprocessed.begin(), unprocessed.end(),
              [](const PendingGroup& a, const PendingGroup& b) {
                if (a.correlation != b.correlation)
                  return a.correlation > b.correlation;
                if (a.comp != b.comp) return a.comp < b.comp;
                return a.group < b.group;
              });
    for (const auto& pg : unprocessed) {
      if (result.size() >= k_) break;
      if (pg.correlation <= 0.0) break;  // no query overlap at all
      for (auto doc : snaps[pg.comp]->group_member_docs(pg.group)) {
        if (result.size() >= k_) break;
        const bool dup =
            std::any_of(result.begin(), result.end(),
                        [doc](const ScoredDoc& d) { return d.doc == doc; });
        if (!dup) result.push_back(ScoredDoc{0.0, doc});
      }
    }
  }
  return result;
}

SearchEvalResult SearchService::evaluate(
    const std::vector<SearchRequest>& requests, core::Technique technique,
    const std::function<std::vector<ComponentOutcome>(std::size_t)>&
        outcome_for) const {
  SearchEvalResult result;
  result.requests = requests.size();
  if (requests.empty()) return result;

  double acc = 0.0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto actual = exact_topk(requests[r]);
    std::vector<ScoredDoc> retrieved;
    if (technique == core::Technique::kBasic ||
        technique == core::Technique::kRequestReissue) {
      retrieved = actual;
    } else {
      retrieved = retrieve(requests[r], technique, outcome_for(r));
    }
    acc += topk_overlap(retrieved, actual);
  }
  result.accuracy = acc / static_cast<double>(requests.size());
  result.loss_pct = (1.0 - result.accuracy) * 100.0;
  return result;
}

SearchEvalResult SearchService::evaluate_uniform(
    const std::vector<SearchRequest>& requests, core::Technique technique,
    ComponentOutcome outcome) const {
  const std::vector<ComponentOutcome> uniform(components_.size(), outcome);
  return evaluate(requests, technique,
                  [&uniform](std::size_t) { return uniform; });
}

}  // namespace at::search
