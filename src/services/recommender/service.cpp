#include "services/recommender/service.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/algorithm1.h"

namespace at::reco {

CfService::CfService(std::vector<RecommenderComponent> components,
                     double min_rating, double max_rating)
    : components_(std::move(components)),
      min_rating_(min_rating),
      max_rating_(max_rating) {
  if (components_.empty())
    throw std::invalid_argument("CfService: no components");
  if (!(max_rating_ > min_rating_))
    throw std::invalid_argument("CfService: bad rating range");
}

std::uint64_t CfService::data_version() const {
  std::uint64_t v = 0;
  for (const auto& c : components_) v += c.epoch_version();
  return v;
}

common::EpochStats CfService::epoch_stats() const {
  common::EpochStats total;
  for (const auto& c : components_) {
    const common::EpochStats s = c.epoch_stats();
    total.version += s.version;
    total.published += s.published;
    total.retired += s.retired;
    total.live += s.live;
  }
  return total;
}

void CfService::set_pool(common::ThreadPool* pool) {
  pool_ = pool;
  if (exec_ != nullptr) return;  // executor assignment wins until cleared
  for (auto& c : components_) c.set_pool(pool);
}

void CfService::set_executor(common::ShardedExecutor* exec) {
  exec_ = exec;
  if (exec_ != nullptr) {
    for (std::size_t c = 0; c < components_.size(); ++c)
      components_[c].set_pool(&exec_->group(exec_->home_group(c)));
  } else {
    for (auto& c : components_) c.set_pool(pool_);
  }
}

synopsis::UpdateReport CfService::update_component(
    std::size_t c, const synopsis::UpdateBatch& batch) {
  synopsis::UpdateReport report;
  if (exec_ != nullptr) {
    // Mutate the subset on its home group so new rows and re-aggregated
    // groups are first-touched node-locally (the component's own pool is
    // already the home group's).
    exec_->submit(exec_->home_group(c),
                  [&] { report = components_.at(c).update(batch); })
        .get();
  } else {
    report = components_.at(c).update(batch);
  }
  return report;
}

void CfService::for_each_component(
    const std::function<void(std::size_t)>& fn) const {
  if (exec_ != nullptr && components_.size() > 1) {
    // Topology path: each component analyzes on its home group; the
    // callers' merges stay in component order, so results are identical.
    exec_->for_each_shard_grouped(components_.size(), fn);
  } else if (pool_ != nullptr && components_.size() > 1) {
    pool_->parallel_for(components_.size(), fn);
  } else {
    for (std::size_t c = 0; c < components_.size(); ++c) fn(c);
  }
}

double CfService::predict_exact(const CfRequest& request) const {
  std::vector<CfPartial> partials(components_.size());
  for_each_component([&](std::size_t c) {
    partials[c] = components_[c].analyze(request).exact();
  });
  CfPartial merged;
  for (const auto& p : partials) merged.merge(p);
  return ::at::reco::predict(request, merged, min_rating_, max_rating_);
}

double CfService::predict(const CfRequest& request, core::Technique technique,
                          const std::vector<ComponentOutcome>& outcomes) const {
  using core::Technique;
  if (technique == Technique::kBasic ||
      technique == Technique::kRequestReissue) {
    return predict_exact(request);
  }
  if (outcomes.size() != components_.size())
    throw std::invalid_argument("CfService::predict: outcome size mismatch");

  std::vector<CfPartial> partials(components_.size());
  std::vector<char> contributed(components_.size(), 0);
  for_each_component([&](std::size_t c) {
    if (technique == Technique::kPartialExecution) {
      if (!outcomes[c].included) return;
      partials[c] = components_[c].analyze(request).exact();
      contributed[c] = 1;
    } else {  // AccuracyTrader
      const CfComponentWork work = components_[c].analyze(request);
      const auto ranked = core::rank_by_correlation(work.correlations);
      partials[c] = work.after_sets(ranked, outcomes[c].sets);
      contributed[c] = 1;
    }
  });
  CfPartial merged;
  bool any = false;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    if (!contributed[c]) continue;
    merged.merge(partials[c]);
    any = true;
  }
  if (!any) return std::numeric_limits<double>::quiet_NaN();
  return ::at::reco::predict(request, merged, min_rating_, max_rating_);
}

CfEvalResult CfService::evaluate(
    const std::vector<CfRequest>& requests, const std::vector<double>& actuals,
    core::Technique technique,
    const std::function<std::vector<ComponentOutcome>(std::size_t)>&
        outcome_for) const {
  if (requests.size() != actuals.size())
    throw std::invalid_argument("CfService::evaluate: size mismatch");

  std::vector<double> approx(requests.size());
  std::vector<double> exact(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    exact[r] = predict_exact(requests[r]);
    if (technique == core::Technique::kBasic ||
        technique == core::Technique::kRequestReissue) {
      approx[r] = exact[r];
    } else {
      approx[r] = predict(requests[r], technique, outcome_for(r));
    }
  }
  const double range = rating_range();
  CfEvalResult result;
  result.requests = requests.size();
  result.rmse = rmse(approx, actuals, range);
  result.accuracy = accuracy_from_rmse(result.rmse, range);
  const double exact_acc =
      accuracy_from_rmse(rmse(exact, actuals, range), range);
  result.loss_pct = accuracy_loss_pct(exact_acc, result.accuracy);
  return result;
}

CfEvalResult CfService::evaluate_uniform(const std::vector<CfRequest>& requests,
                                         const std::vector<double>& actuals,
                                         core::Technique technique,
                                         ComponentOutcome outcome) const {
  const std::vector<ComponentOutcome> uniform(components_.size(), outcome);
  return evaluate(requests, actuals, technique,
                  [&uniform](std::size_t) { return uniform; });
}

}  // namespace at::reco
