// One parallel service component of the CF recommender: it owns a subset of
// the user-item rating matrix plus the synopsis built from it, and performs
// the per-request analysis that every processing technique is evaluated on.
//
// Ownership model (ISSUE 8): same RCU epoch split as the search component —
// an immutable published RecommenderSnapshot behind an EpochSlot, a mutable
// RecommenderBuilder shadow copy on the writer side, and the
// RecommenderComponent facade that pins snapshots for readers and
// serializes publishes.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "services/recommender/cf.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"
#include "synopsis/updater.h"

namespace at::reco {

/// Everything a component can contribute to one request, decomposed by
/// synopsis group so that any technique's result can be assembled:
///  * Basic/Reissue (exact):  Σ_g real_by_group[g]
///  * AccuracyTrader with k sets processed: Σ real over the top-k ranked
///    groups + Σ aggregated terms over the remaining groups
///  * stage-1 only: Σ_g agg_by_group[g]
struct CfComponentWork {
  std::vector<double> correlations;    // |Pearson| per aggregated user
  std::vector<CfPartial> real_by_group;
  std::vector<CfPartial> agg_by_group;

  CfPartial exact() const;
  CfPartial stage1() const;
  /// Partial after processing the top `sets` groups of `ranked` (the rest
  /// contribute their aggregated approximations).
  CfPartial after_sets(const std::vector<std::size_t>& ranked,
                       std::size_t sets) const;
};

/// Immutable published state of one recommender component. All methods are
/// const and safe for any number of concurrent readers; results from one
/// snapshot are only meaningful against that same snapshot.
class RecommenderSnapshot {
 public:
  RecommenderSnapshot(synopsis::SparseRows users, synopsis::BuildConfig config,
                      synopsis::SynopsisStructure structure,
                      synopsis::Synopsis synopsis);

  std::size_t num_users() const { return users_.rows(); }
  std::size_t num_items() const { return users_.cols(); }
  std::size_t num_groups() const { return structure_.index.size(); }
  const synopsis::BuildConfig& config() const { return config_; }
  const synopsis::SynopsisStructure& structure() const { return structure_; }
  const synopsis::Synopsis& synopsis() const { return synopsis_; }
  const synopsis::SparseRows& users() const { return users_; }

  /// Member counts per group, in group order (the sim's cost model input).
  std::vector<std::uint32_t> group_sizes() const;

  /// Per-request decomposition (see CfComponentWork). Cost notes: the
  /// correlations and aggregated terms scan the synopsis (m aggregated
  /// users); the real terms scan only the subset users who rated the
  /// target item, via the item->raters postings.
  CfComponentWork analyze(const CfRequest& request) const;

  /// Pearson weight between the request and one original user (exposed for
  /// the Fig. 4 "highly related users" evaluation).
  double user_weight(const CfRequest& request, std::uint32_t user) const;
  double user_mean(std::uint32_t user) const { return user_means_.at(user); }

  /// Persists the component (subset + synopsis structure + aggregated
  /// synopsis) as an artifact-store snapshot (kind "RCMP").
  void save(std::ostream& os,
            common::Codec codec = common::default_codec()) const;

 private:
  void build_derived();  // means, postings, user->group map

  synopsis::SparseRows users_;
  synopsis::BuildConfig config_;
  synopsis::SynopsisStructure structure_;
  synopsis::Synopsis synopsis_;

  std::vector<double> user_means_;
  std::vector<double> agg_means_;                    // per aggregated user
  std::vector<std::vector<std::uint32_t>> raters_;   // item -> user ids
  std::vector<std::uint32_t> user_group_;            // user -> group index
};

/// Writer-side shadow copy; not thread-safe by itself — the facade
/// serializes access under its writer mutex.
class RecommenderBuilder {
 public:
  RecommenderBuilder(synopsis::SparseRows users,
                     const synopsis::BuildConfig& config,
                     common::ThreadPool* pool);

  /// From loaded artifact pieces (no synopsis rebuild).
  RecommenderBuilder(synopsis::SparseRows users, synopsis::BuildConfig config,
                     synopsis::SynopsisStructure structure,
                     synopsis::Synopsis synopsis);

  const synopsis::BuildConfig& config() const { return config_; }

  /// Applies an input-data change batch to the shadow copy.
  synopsis::UpdateReport apply(const synopsis::UpdateBatch& batch,
                               common::ThreadPool* pool);

  /// Copies the shadow state into a fresh immutable snapshot.
  std::unique_ptr<const RecommenderSnapshot> build() const;

 private:
  synopsis::SparseRows users_;
  synopsis::BuildConfig config_;
  synopsis::SynopsisStructure structure_;
  synopsis::Synopsis synopsis_;
};

class RecommenderComponent {
 public:
  /// Publish observer — see SearchComponent::DeltaSink.
  using DeltaSink = std::function<void(
      const synopsis::UpdateBatch& batch, std::uint64_t from_version,
      std::uint64_t to_version)>;

  /// Builds the synopsis (steps 1–3) over the given user subset. `pool`
  /// parallelizes construction and later updates; the component keeps the
  /// pointer (caller owns the pool's lifetime).
  RecommenderComponent(synopsis::SparseRows users,
                       const synopsis::BuildConfig& config,
                       common::ThreadPool* pool = nullptr);
  ~RecommenderComponent();

  RecommenderComponent(RecommenderComponent&&) noexcept;
  RecommenderComponent& operator=(RecommenderComponent&&) noexcept;

  /// Installs (or clears) the pool used by update().
  void set_pool(common::ThreadPool* pool);

  /// Pins the currently published epoch — one pin per request when
  /// multiple calls must be mutually consistent.
  std::shared_ptr<const RecommenderSnapshot> snapshot() const;

  /// Atomic (snapshot, version) pin — see SearchComponent.
  std::pair<std::shared_ptr<const RecommenderSnapshot>, std::uint64_t>
  snapshot_versioned() const;

  std::uint64_t epoch_version() const;
  common::EpochStats epoch_stats() const;

  /// Standby alignment: rebases the epoch version counter (no publish) —
  /// see SearchComponent::rebase_epoch_version.
  void rebase_epoch_version(std::uint64_t v);

  /// Installs (or clears, with nullptr) the publish observer.
  void set_delta_sink(DeltaSink sink);

  // Convenience delegates to the current snapshot. References stay valid
  // until the next publish on this component; pin snapshot() when updates
  // may run concurrently.
  std::size_t num_users() const { return snapshot()->num_users(); }
  std::size_t num_items() const { return snapshot()->num_items(); }
  std::size_t num_groups() const { return snapshot()->num_groups(); }
  const synopsis::SynopsisStructure& structure() const;
  const synopsis::Synopsis& synopsis() const;
  const synopsis::SparseRows& users() const;
  std::vector<std::uint32_t> group_sizes() const {
    return snapshot()->group_sizes();
  }
  CfComponentWork analyze(const CfRequest& request) const {
    return snapshot()->analyze(request);
  }
  double user_weight(const CfRequest& request, std::uint32_t user) const {
    return snapshot()->user_weight(request, user);
  }
  double user_mean(std::uint32_t user) const {
    return snapshot()->user_mean(user);
  }

  /// Applies an input-data change batch to the shadow copy, then publishes
  /// the result as a new epoch (readers never wait on this call).
  synopsis::UpdateReport update(const synopsis::UpdateBatch& batch);

  /// Replaces this component's state with `fresh`'s via a new epoch (the
  /// reload path); keeps this component's pool and delta sink.
  void adopt(RecommenderComponent&& fresh);

  void save(std::ostream& os,
            common::Codec codec = common::default_codec()) const {
    snapshot()->save(os, codec);
  }
  /// Also accepts the legacy "ATRC" v1 snapshot.
  static RecommenderComponent load(std::istream& is);

 private:
  struct Core;  // non-movable anchor (mutex + epoch slot + shadow copy)

  explicit RecommenderComponent(RecommenderBuilder builder,
                                common::ThreadPool* pool);

  std::unique_ptr<Core> core_;
};

}  // namespace at::reco
