// One parallel service component of the CF recommender: it owns a subset of
// the user-item rating matrix plus the synopsis built from it, and performs
// the per-request analysis that every processing technique is evaluated on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "services/recommender/cf.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"
#include "synopsis/updater.h"

namespace at::reco {

/// Everything a component can contribute to one request, decomposed by
/// synopsis group so that any technique's result can be assembled:
///  * Basic/Reissue (exact):  Σ_g real_by_group[g]
///  * AccuracyTrader with k sets processed: Σ real over the top-k ranked
///    groups + Σ aggregated terms over the remaining groups
///  * stage-1 only: Σ_g agg_by_group[g]
struct CfComponentWork {
  std::vector<double> correlations;    // |Pearson| per aggregated user
  std::vector<CfPartial> real_by_group;
  std::vector<CfPartial> agg_by_group;

  CfPartial exact() const;
  CfPartial stage1() const;
  /// Partial after processing the top `sets` groups of `ranked` (the rest
  /// contribute their aggregated approximations).
  CfPartial after_sets(const std::vector<std::size_t>& ranked,
                       std::size_t sets) const;
};

class RecommenderComponent {
 public:
  /// Builds the synopsis (steps 1–3) over the given user subset. `pool`
  /// parallelizes construction and later updates; the component keeps the
  /// pointer (caller owns the pool's lifetime).
  RecommenderComponent(synopsis::SparseRows users,
                       const synopsis::BuildConfig& config,
                       common::ThreadPool* pool = nullptr);

  /// Installs (or clears) the pool used by update().
  void set_pool(common::ThreadPool* pool) { pool_ = pool; }

  std::size_t num_users() const { return users_.rows(); }
  std::size_t num_items() const { return users_.cols(); }
  std::size_t num_groups() const { return structure_.index.size(); }

  const synopsis::SynopsisStructure& structure() const { return structure_; }
  const synopsis::Synopsis& synopsis() const { return synopsis_; }
  const synopsis::SparseRows& users() const { return users_; }

  /// Member counts per group, in group order (the sim's cost model input).
  std::vector<std::uint32_t> group_sizes() const;

  /// Per-request decomposition (see CfComponentWork). Cost notes: the
  /// correlations and aggregated terms scan the synopsis (m aggregated
  /// users); the real terms scan only the subset users who rated the
  /// target item, via the item->raters postings.
  CfComponentWork analyze(const CfRequest& request) const;

  /// Pearson weight between the request and one original user (exposed for
  /// the Fig. 4 "highly related users" evaluation).
  double user_weight(const CfRequest& request, std::uint32_t user) const;
  double user_mean(std::uint32_t user) const { return user_means_.at(user); }

  /// Applies an input-data change batch through the synopsis updater.
  synopsis::UpdateReport update(const synopsis::UpdateBatch& batch);

  /// Persists the component (subset + synopsis structure + aggregated
  /// synopsis) as an artifact-store snapshot (kind "RCMP"); a reloaded
  /// component serves requests and continues incremental updates
  /// identically. The loader also accepts the legacy "ATRC" v1 snapshot.
  void save(std::ostream& os,
            common::Codec codec = common::default_codec()) const;
  static RecommenderComponent load(std::istream& is);

 private:
  struct LoadedTag {};
  RecommenderComponent(LoadedTag, synopsis::SparseRows users,
                       synopsis::BuildConfig config,
                       synopsis::SynopsisStructure structure,
                       synopsis::Synopsis synopsis);

  void rebuild_derived();  // means, postings, user->group map

  synopsis::SparseRows users_;
  common::ThreadPool* pool_ = nullptr;
  synopsis::BuildConfig config_;
  synopsis::SynopsisStructure structure_;
  synopsis::Synopsis synopsis_;

  std::vector<double> user_means_;
  std::vector<double> agg_means_;                    // per aggregated user
  std::vector<std::vector<std::uint32_t>> raters_;   // item -> user ids
  std::vector<std::uint32_t> user_group_;            // user -> group index
};

}  // namespace at::reco
