// The fan-out CF recommender service: a request is dispatched to every
// component (each holding one subset of the rating matrix) and the partial
// results are merged into the final prediction.
//
// The service is evaluated *post hoc*: the cluster simulator decides, per
// request and component, whether the component's result was included
// (partial execution) or how many ranked sets it processed
// (AccuracyTrader); this class assembles the corresponding prediction and
// scores its accuracy.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/sharded_executor.h"
#include "core/outcome.h"
#include "core/technique.h"
#include "services/recommender/component.h"

namespace at::reco {

/// What the simulator observed for one component while serving one request.
using ComponentOutcome = core::ComponentOutcome;

struct CfEvalResult {
  double rmse = 0.0;
  double accuracy = 0.0;      // 1 - rmse/range, clamped
  double loss_pct = 0.0;      // vs. the exact accuracy
  std::size_t requests = 0;
};

class CfService {
 public:
  CfService(std::vector<RecommenderComponent> components, double min_rating,
            double max_rating);

  std::size_t num_components() const { return components_.size(); }
  const RecommenderComponent& component(std::size_t i) const {
    return components_.at(i);
  }
  RecommenderComponent& component(std::size_t i) { return components_.at(i); }
  double min_rating() const { return min_rating_; }
  double max_rating() const { return max_rating_; }
  double rating_range() const { return max_rating_ - min_rating_; }

  /// Sum of every component's epoch version (changes on any publish).
  std::uint64_t data_version() const;
  /// Aggregated epoch counters across all components.
  common::EpochStats epoch_stats() const;

  /// Installs a thread pool: per-component request analysis and synopsis
  /// updates fan out across it. Partial results merge in component order,
  /// so predictions are identical to the sequential path. The caller owns
  /// the pool's lifetime; pass nullptr to go sequential.
  void set_pool(common::ThreadPool* pool);

  /// Installs a topology-aware executor (overrides any set_pool): each
  /// component is homed on one executor group (round-robin), its synopsis
  /// updates run on that group's pinned pool, and request fan-out
  /// dispatches every component to its home group. Partial results still
  /// merge in component order, so predictions are bit-identical to the
  /// sequential path. Caller owns the executor's lifetime; pass nullptr to
  /// fall back to the plain pool.
  void set_executor(common::ShardedExecutor* exec);
  common::ShardedExecutor* executor() const { return exec_; }

  /// Routes an input-data change batch to component `c`, on its home group
  /// when an executor is installed.
  synopsis::UpdateReport update_component(std::size_t c,
                                          const synopsis::UpdateBatch& batch);

  /// Exact prediction: every component contributes its full subset.
  double predict_exact(const CfRequest& request) const;

  /// Prediction under a technique, given the per-component outcomes
  /// (ignored for exact techniques). Returns NaN when the technique
  /// produced no result at all (partial execution with every component
  /// skipped) — callers charge the worst-case error.
  double predict(const CfRequest& request, core::Technique technique,
                 const std::vector<ComponentOutcome>& outcomes) const;

  /// Scores a request batch under a technique. `outcome_for(r)` supplies
  /// the per-component outcomes of request r.
  CfEvalResult evaluate(
      const std::vector<CfRequest>& requests,
      const std::vector<double>& actuals, core::Technique technique,
      const std::function<std::vector<ComponentOutcome>(std::size_t)>&
          outcome_for) const;

  /// Convenience: same outcome on every component for every request.
  CfEvalResult evaluate_uniform(const std::vector<CfRequest>& requests,
                                const std::vector<double>& actuals,
                                core::Technique technique,
                                ComponentOutcome outcome) const;

 private:
  /// Runs fn(c) for every component, on the pool when installed.
  void for_each_component(
      const std::function<void(std::size_t)>& fn) const;

  std::vector<RecommenderComponent> components_;
  double min_rating_;
  double max_rating_;
  common::ThreadPool* pool_ = nullptr;
  common::ShardedExecutor* exec_ = nullptr;
};

}  // namespace at::reco
