#include "services/recommender/component.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "common/binary_io.h"
#include "synopsis/serialize.h"

namespace at::reco {

CfPartial CfComponentWork::exact() const {
  CfPartial out;
  for (const auto& p : real_by_group) out.merge(p);
  return out;
}

CfPartial CfComponentWork::stage1() const {
  CfPartial out;
  for (const auto& p : agg_by_group) out.merge(p);
  return out;
}

CfPartial CfComponentWork::after_sets(const std::vector<std::size_t>& ranked,
                                      std::size_t sets) const {
  CfPartial out = stage1();
  const std::size_t n = std::min(sets, ranked.size());
  for (std::size_t k = 0; k < n; ++k) {
    out.subtract(agg_by_group[ranked[k]]);
    out.merge(real_by_group[ranked[k]]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// RecommenderSnapshot

RecommenderSnapshot::RecommenderSnapshot(synopsis::SparseRows users,
                                         synopsis::BuildConfig config,
                                         synopsis::SynopsisStructure structure,
                                         synopsis::Synopsis synopsis)
    : users_(std::move(users)),
      config_(config),
      structure_(std::move(structure)),
      synopsis_(std::move(synopsis)) {
  build_derived();
}

void RecommenderSnapshot::build_derived() {
  const std::size_t n = users_.rows();
  user_means_.assign(n, 0.0);
  raters_.assign(users_.cols(), {});
  for (std::uint32_t u = 0; u < n; ++u) {
    user_means_[u] = vector_mean(users_.row(u));
    for (const auto& [item, rating] : users_.row(u)) {
      (void)rating;
      raters_[item].push_back(u);
    }
  }
  user_group_.assign(n, 0);
  const auto& groups = structure_.index.groups();
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    for (auto member : groups[g].members) user_group_[member] = g;
  }
  agg_means_.assign(synopsis_.size(), 0.0);
  for (std::size_t g = 0; g < synopsis_.size(); ++g) {
    agg_means_[g] = vector_mean(synopsis_.points[g].features);
  }
}

std::vector<std::uint32_t> RecommenderSnapshot::group_sizes() const {
  std::vector<std::uint32_t> sizes;
  sizes.reserve(structure_.index.size());
  for (const auto& g : structure_.index.groups())
    sizes.push_back(static_cast<std::uint32_t>(g.members.size()));
  return sizes;
}

double RecommenderSnapshot::user_weight(const CfRequest& request,
                                        std::uint32_t user) const {
  return pearson_weight(request.ratings, request.rating_mean,
                        users_.row(user), user_means_[user]);
}

CfComponentWork RecommenderSnapshot::analyze(const CfRequest& request) const {
  const std::size_t m = synopsis_.size();
  CfComponentWork work;
  work.correlations.resize(m);
  work.real_by_group.resize(m);
  work.agg_by_group.resize(m);

  // Synopsis pass: one Pearson weight per aggregated user; aggregated users
  // that "rated" the target item also contribute an approximate prediction
  // term scaled by the number of member users behind that rating.
  for (std::size_t g = 0; g < m; ++g) {
    const auto& agg = synopsis_.points[g];
    const double w = pearson_weight(request.ratings, request.rating_mean,
                                    agg.features, agg_means_[g]);
    work.correlations[g] = std::abs(w);

    // Find the aggregated rating of the target item and how many members
    // back it (the `support` array is aligned with `features`).
    const auto& f = agg.features;
    auto it = std::lower_bound(f.begin(), f.end(), request.target_item,
                               [](const auto& e, std::uint32_t c) {
                                 return e.first < c;
                               });
    if (it != f.end() && it->first == request.target_item && w != 0.0) {
      const auto idx = static_cast<std::size_t>(it - f.begin());
      const double backing = agg.support.empty()
                                 ? agg.member_count
                                 : static_cast<double>(agg.support[idx]);
      CfPartial& p = work.agg_by_group[g];
      p.weighted_dev = backing * w * (it->second - agg_means_[g]);
      p.weight_abs = backing * std::abs(w);
      p.neighbors = static_cast<std::uint32_t>(backing);
    }
  }

  // Exact pass, decomposed by group: only the subset users who rated the
  // target item participate in the prediction.
  if (request.target_item < raters_.size()) {
    for (auto v : raters_[request.target_item]) {
      const double w = user_weight(request, v);
      if (w == 0.0) continue;
      const double rating_vi = synopsis::value_at(users_.row(v),
                                                  request.target_item);
      CfPartial& p = work.real_by_group[user_group_[v]];
      p.weighted_dev += w * (rating_vi - user_means_[v]);
      p.weight_abs += std::abs(w);
      p.neighbors += 1;
    }
  }
  return work;
}

void RecommenderSnapshot::save(std::ostream& os, common::Codec codec) const {
  common::ArtifactWriter w(os, "RCMP", 1);
  common::ChunkWriter conf;
  conf.u64(config_.svd.rank);
  conf.u64(config_.svd.epochs_per_dim);
  conf.f64(config_.svd.learning_rate);
  conf.f64(config_.svd.regularization);
  conf.f64(config_.size_ratio);
  conf.u64(config_.min_groups);
  w.chunk("CONF", conf);
  synopsis::save(os, users_);
  synopsis::save(os, structure_, codec);
  synopsis::save(os, synopsis_);
  w.finish();
}

// ---------------------------------------------------------------------------
// RecommenderBuilder

RecommenderBuilder::RecommenderBuilder(synopsis::SparseRows users,
                                       const synopsis::BuildConfig& config,
                                       common::ThreadPool* pool)
    : users_(std::move(users)),
      config_(config),
      structure_(synopsis::SynopsisBuilder(config).build(users_, pool)),
      synopsis_(synopsis::aggregate_all(users_, structure_.index,
                                        synopsis::AggregationKind::kMean,
                                        pool)) {}

RecommenderBuilder::RecommenderBuilder(synopsis::SparseRows users,
                                       synopsis::BuildConfig config,
                                       synopsis::SynopsisStructure structure,
                                       synopsis::Synopsis synopsis)
    : users_(std::move(users)),
      config_(config),
      structure_(std::move(structure)),
      synopsis_(std::move(synopsis)) {}

synopsis::UpdateReport RecommenderBuilder::apply(
    const synopsis::UpdateBatch& batch, common::ThreadPool* pool) {
  synopsis::SynopsisUpdater updater(config_);
  return updater.apply(structure_, users_, synopsis_, batch,
                       synopsis::AggregationKind::kMean, pool);
}

std::unique_ptr<const RecommenderSnapshot> RecommenderBuilder::build() const {
  return std::make_unique<const RecommenderSnapshot>(
      users_, config_, structure_.clone(), synopsis_);
}

// ---------------------------------------------------------------------------
// RecommenderComponent

/// Non-movable anchor behind the movable facade — see SearchComponent::Core.
struct RecommenderComponent::Core {
  common::Mutex writer_mutex;
  RecommenderBuilder builder AT_GUARDED_BY(writer_mutex);
  common::ThreadPool* pool AT_GUARDED_BY(writer_mutex) = nullptr;
  DeltaSink delta_sink AT_GUARDED_BY(writer_mutex);
  common::EpochSlot<RecommenderSnapshot> epoch;

  explicit Core(RecommenderBuilder b) : builder(std::move(b)) {}
};

RecommenderComponent::RecommenderComponent(RecommenderBuilder builder,
                                           common::ThreadPool* pool)
    : core_(std::make_unique<Core>(std::move(builder))) {
  common::MutexLock lock(core_->writer_mutex);
  core_->pool = pool;
  core_->epoch.publish(core_->builder.build());
}

RecommenderComponent::RecommenderComponent(synopsis::SparseRows users,
                                           const synopsis::BuildConfig& config,
                                           common::ThreadPool* pool)
    : RecommenderComponent(
          RecommenderBuilder(std::move(users), config, pool), pool) {}

RecommenderComponent::~RecommenderComponent() = default;
RecommenderComponent::RecommenderComponent(RecommenderComponent&&) noexcept =
    default;
RecommenderComponent& RecommenderComponent::operator=(
    RecommenderComponent&&) noexcept = default;

void RecommenderComponent::set_pool(common::ThreadPool* pool) {
  common::MutexLock lock(core_->writer_mutex);
  core_->pool = pool;
}

std::shared_ptr<const RecommenderSnapshot> RecommenderComponent::snapshot()
    const {
  return core_->epoch.acquire();
}

std::pair<std::shared_ptr<const RecommenderSnapshot>, std::uint64_t>
RecommenderComponent::snapshot_versioned() const {
  return core_->epoch.acquire_versioned();
}

std::uint64_t RecommenderComponent::epoch_version() const {
  return core_->epoch.version();
}

void RecommenderComponent::rebase_epoch_version(std::uint64_t v) {
  // Serialized with writers so the rebase cannot interleave a publish.
  common::MutexLock lock(core_->writer_mutex);
  core_->epoch.rebase_version(v);
}

common::EpochStats RecommenderComponent::epoch_stats() const {
  return core_->epoch.stats();
}

void RecommenderComponent::set_delta_sink(DeltaSink sink) {
  common::MutexLock lock(core_->writer_mutex);
  core_->delta_sink = std::move(sink);
}

const synopsis::SynopsisStructure& RecommenderComponent::structure() const {
  return snapshot()->structure();
}

const synopsis::Synopsis& RecommenderComponent::synopsis() const {
  return snapshot()->synopsis();
}

const synopsis::SparseRows& RecommenderComponent::users() const {
  return snapshot()->users();
}

synopsis::UpdateReport RecommenderComponent::update(
    const synopsis::UpdateBatch& batch) {
  common::MutexLock lock(core_->writer_mutex);
  const std::uint64_t from = core_->epoch.version();
  synopsis::UpdateReport report = core_->builder.apply(batch, core_->pool);
  core_->epoch.publish(core_->builder.build());
  if (core_->delta_sink) {
    core_->delta_sink(batch, from, core_->epoch.version());
  }
  return report;
}

void RecommenderComponent::adopt(RecommenderComponent&& fresh) {
  std::unique_ptr<Core> incoming = std::move(fresh.core_);
  RecommenderBuilder* adopted = nullptr;
  {
    common::MutexLock lock(incoming->writer_mutex);
    adopted = &incoming->builder;
  }
  common::MutexLock lock(core_->writer_mutex);
  core_->builder = std::move(*adopted);
  core_->epoch.publish(core_->builder.build());
}

RecommenderComponent RecommenderComponent::load(std::istream& is) try {
  if (!common::next_is_artifact(is)) {
    // Legacy "ATRC" v1 snapshot.
    common::BinaryReader r(is);
    if (r.magic("ATRC") != 1)
      throw std::runtime_error(
          "RecommenderComponent::load: unsupported legacy version");
    synopsis::BuildConfig config;
    config.svd.rank = r.u64();
    config.svd.epochs_per_dim = r.u64();
    config.svd.learning_rate = r.f64();
    config.svd.regularization = r.f64();
    config.size_ratio = r.f64();
    config.min_groups = r.u64();
    auto users = synopsis::load_sparse_rows(is);
    auto structure = synopsis::load_structure(is);
    auto synopsis = synopsis::load_synopsis(is);
    return RecommenderComponent(
        RecommenderBuilder(std::move(users), config, std::move(structure),
                           std::move(synopsis)),
        nullptr);
  }
  common::ArtifactReader r(is, "RCMP");
  if (r.version() != 1)
    throw common::ArtifactError(
        "RecommenderComponent::load: unsupported version");
  common::ChunkReader conf = r.chunk("CONF");
  synopsis::BuildConfig config;
  config.svd.rank = conf.u64();
  config.svd.epochs_per_dim = conf.u64();
  config.svd.learning_rate = conf.f64();
  config.svd.regularization = conf.f64();
  config.size_ratio = conf.f64();
  config.min_groups = conf.u64();
  conf.expect_consumed();
  auto users = synopsis::load_sparse_rows(is);
  auto structure = synopsis::load_structure(is);
  auto synopsis = synopsis::load_synopsis(is);
  r.finish();
  return RecommenderComponent(
      RecommenderBuilder(std::move(users), config, std::move(structure),
                         std::move(synopsis)),
      nullptr);
} catch (const common::ArtifactError&) {
  throw;
} catch (const std::exception& e) {
  // Every load failure — truncated stream, bad legacy header, decoder
  // error mid-chunk — surfaces as the artifact layer's structured error.
  throw common::ArtifactError(std::string("RecommenderComponent::load: ") +
                              e.what());
}

}  // namespace at::reco
