// User-based collaborative filtering primitives (paper §3.2).
//
// For a request from active user u targeting item i, the predictor
//  1. computes the Pearson correlation weight between u and every
//     neighborhood user v who has rated item i, and
//  2. predicts p(u,i) = r̄_u + Σ_v w_uv (r_vi − r̄_v) / Σ_v |w_uv|.
// The per-neighbor terms are associative, so partial results from parallel
// components (and from aggregated vs. original users) merge by addition.
#pragma once

#include <cstdint>
#include <vector>

#include "synopsis/sparse_rows.h"

namespace at::reco {

/// A rating-prediction request: the active user's known ratings and the
/// item whose rating should be predicted.
struct CfRequest {
  synopsis::SparseVector ratings;  // (item, rating), normalized
  double rating_mean = 0.0;        // mean of `ratings` (r̄_u)
  std::uint32_t target_item = 0;

  /// Builds a request, computing the mean.
  static CfRequest make(synopsis::SparseVector ratings,
                        std::uint32_t target_item);
};

/// Mergeable fragment of a prediction: the numerator and denominator sums
/// of the weighted-deviation formula.
struct CfPartial {
  double weighted_dev = 0.0;  // Σ w_uv (r_vi − r̄_v)
  double weight_abs = 0.0;    // Σ |w_uv|
  std::uint32_t neighbors = 0;

  void merge(const CfPartial& other) {
    weighted_dev += other.weighted_dev;
    weight_abs += other.weight_abs;
    neighbors += other.neighbors;
  }
  void subtract(const CfPartial& other) {
    weighted_dev -= other.weighted_dev;
    weight_abs -= other.weight_abs;
    neighbors -= other.neighbors;
  }
};

/// Pearson correlation between the active user's ratings and a neighbor's
/// ratings over their co-rated items, deviations taken against each side's
/// supplied mean. Returns 0 when fewer than 2 co-rated items exist or a
/// variance vanishes.
double pearson_weight(const synopsis::SparseVector& a, double mean_a,
                      const synopsis::SparseVector& b, double mean_b);

/// Mean of a sparse vector's values (0 for empty).
double vector_mean(const synopsis::SparseVector& v);

/// Final prediction from merged partials; falls back to the active user's
/// mean when no neighbor carried weight. Clamped to [min_rating, max_rating].
double predict(const CfRequest& request, const CfPartial& merged,
               double min_rating, double max_rating);

/// Root-mean-square error between predictions and actual ratings.
/// Entries where the prediction is NaN (no result produced at all) are
/// charged the worst-case error `range` — a skipped request cannot be
/// scored better than a wrong one.
double rmse(const std::vector<double>& predicted,
            const std::vector<double>& actual, double range);

/// Maps an RMSE to the paper's accuracy scale: accuracy = 1 − RMSE/range,
/// clamped to [0, 1]. The accuracy *loss percentage* of an approximate
/// technique is (A_exact − A_approx)/A_exact × 100.
double accuracy_from_rmse(double rmse_value, double range);
double accuracy_loss_pct(double exact_accuracy, double approx_accuracy);

}  // namespace at::reco
