// User-based collaborative filtering primitives (paper §3.2).
//
// For a request from active user u targeting item i, the predictor
//  1. computes the Pearson correlation weight between u and every
//     neighborhood user v who has rated item i, and
//  2. predicts p(u,i) = r̄_u + Σ_v w_uv (r_vi − r̄_v) / Σ_v |w_uv|.
// The per-neighbor terms are associative, so partial results from parallel
// components (and from aggregated vs. original users) merge by addition.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "synopsis/sparse_rows.h"

namespace at::reco {

/// A rating-prediction request: the active user's known ratings and the
/// item whose rating should be predicted.
struct CfRequest {
  synopsis::SparseVector ratings;  // (item, rating), normalized
  double rating_mean = 0.0;        // mean of `ratings` (r̄_u)
  std::uint32_t target_item = 0;

  /// Builds a request, computing the mean.
  static CfRequest make(synopsis::SparseVector ratings,
                        std::uint32_t target_item);
};

/// Mergeable fragment of a prediction: the numerator and denominator sums
/// of the weighted-deviation formula.
struct CfPartial {
  double weighted_dev = 0.0;  // Σ w_uv (r_vi − r̄_v)
  double weight_abs = 0.0;    // Σ |w_uv|
  std::uint32_t neighbors = 0;

  void merge(const CfPartial& other) {
    weighted_dev += other.weighted_dev;
    weight_abs += other.weight_abs;
    neighbors += other.neighbors;
  }
  void subtract(const CfPartial& other) {
    weighted_dev -= other.weighted_dev;
    weight_abs -= other.weight_abs;
    neighbors -= other.neighbors;
  }
};

namespace detail {

/// Row concept as in synopsis/sparse_rows.h: works for SparseVector and
/// SparseRowView alike (the CSR-backed row views are what the hot analyze
/// loops pass in).
template <typename RowA, typename RowB>
double pearson_impl(const RowA& a, double mean_a, const RowB& b,
                    double mean_b) {
  double num = 0.0, var_a = 0.0, var_b = 0.0;
  std::size_t co = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint32_t ca = a[i].first;
    const std::uint32_t cb = b[j].first;
    if (ca < cb) {
      ++i;
    } else if (ca > cb) {
      ++j;
    } else {
      const double da = a[i].second - mean_a;
      const double db = b[j].second - mean_b;
      num += da * db;
      var_a += da * da;
      var_b += db * db;
      ++co;
      ++i;
      ++j;
    }
  }
  if (co < 2 || var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return num / (std::sqrt(var_a) * std::sqrt(var_b));
}

template <typename Row>
double mean_impl(const Row& v) {
  if (v.size() == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) acc += v[i].second;
  return acc / static_cast<double>(v.size());
}

}  // namespace detail

/// Pearson correlation between the active user's ratings and a neighbor's
/// ratings over their co-rated items, deviations taken against each side's
/// supplied mean. Returns 0 when fewer than 2 co-rated items exist or a
/// variance vanishes.
template <typename RowA, typename RowB>
double pearson_weight(const RowA& a, double mean_a, const RowB& b,
                      double mean_b) {
  return detail::pearson_impl(a, mean_a, b, mean_b);
}
inline double pearson_weight(const synopsis::SparseVector& a, double mean_a,
                             const synopsis::SparseVector& b, double mean_b) {
  return detail::pearson_impl(a, mean_a, b, mean_b);
}

/// Mean of a sparse vector's values (0 for empty).
template <typename Row>
double vector_mean(const Row& v) {
  return detail::mean_impl(v);
}
inline double vector_mean(const synopsis::SparseVector& v) {
  return detail::mean_impl(v);
}

/// Final prediction from merged partials; falls back to the active user's
/// mean when no neighbor carried weight. Clamped to [min_rating, max_rating].
double predict(const CfRequest& request, const CfPartial& merged,
               double min_rating, double max_rating);

/// Root-mean-square error between predictions and actual ratings.
/// Entries where the prediction is NaN (no result produced at all) are
/// charged the worst-case error `range` — a skipped request cannot be
/// scored better than a wrong one.
double rmse(const std::vector<double>& predicted,
            const std::vector<double>& actual, double range);

/// Maps an RMSE to the paper's accuracy scale: accuracy = 1 − RMSE/range,
/// clamped to [0, 1]. The accuracy *loss percentage* of an approximate
/// technique is (A_exact − A_approx)/A_exact × 100.
double accuracy_from_rmse(double rmse_value, double range);
double accuracy_loss_pct(double exact_accuracy, double approx_accuracy);

}  // namespace at::reco
