#include "services/recommender/cf.h"

#include <algorithm>
#include <cmath>

namespace at::reco {

CfRequest CfRequest::make(synopsis::SparseVector ratings,
                          std::uint32_t target_item) {
  CfRequest req;
  synopsis::normalize(ratings);
  req.ratings = std::move(ratings);
  req.rating_mean = vector_mean(req.ratings);
  req.target_item = target_item;
  return req;
}

double predict(const CfRequest& request, const CfPartial& merged,
               double min_rating, double max_rating) {
  double p = request.rating_mean;
  if (merged.weight_abs > 1e-12) {
    p += merged.weighted_dev / merged.weight_abs;
  }
  return std::clamp(p, min_rating, max_rating);
}

double rmse(const std::vector<double>& predicted,
            const std::vector<double>& actual, double range) {
  if (predicted.size() != actual.size() || predicted.empty()) return 0.0;
  double sq = 0.0;
  for (std::size_t k = 0; k < predicted.size(); ++k) {
    const double err =
        std::isnan(predicted[k]) ? range : predicted[k] - actual[k];
    sq += err * err;
  }
  return std::sqrt(sq / static_cast<double>(predicted.size()));
}

double accuracy_from_rmse(double rmse_value, double range) {
  if (range <= 0.0) return 0.0;
  return std::clamp(1.0 - rmse_value / range, 0.0, 1.0);
}

double accuracy_loss_pct(double exact_accuracy, double approx_accuracy) {
  if (exact_accuracy <= 0.0) return 0.0;
  return std::max(0.0, (exact_accuracy - approx_accuracy) / exact_accuracy) *
         100.0;
}

}  // namespace at::reco
