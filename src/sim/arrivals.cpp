#include "sim/arrivals.h"

#include <stdexcept>

namespace at::sim {

std::vector<double> poisson_arrivals(double rate_per_s, double duration_s,
                                     common::Rng& rng) {
  if (rate_per_s <= 0.0)
    throw std::invalid_argument("poisson_arrivals: rate must be > 0");
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(rate_per_s * duration_s * 1.1) + 8);
  double t = rng.exponential(rate_per_s);
  while (t < duration_s) {
    times.push_back(t);
    t += rng.exponential(rate_per_s);
  }
  return times;
}

std::vector<double> nhpp_arrivals(const std::function<double(double)>& rate_at,
                                  double rate_max, double duration_s,
                                  common::Rng& rng) {
  if (rate_max <= 0.0)
    throw std::invalid_argument("nhpp_arrivals: rate_max must be > 0");
  std::vector<double> times;
  double t = 0.0;
  for (;;) {
    t += rng.exponential(rate_max);
    if (t >= duration_s) break;
    const double r = rate_at(t);
    if (r > rate_max)
      throw std::invalid_argument("nhpp_arrivals: rate_at exceeds rate_max");
    if (rng.uniform() < r / rate_max) times.push_back(t);
  }
  return times;
}

std::vector<double> uniform_arrivals(double rate_per_s, double duration_s) {
  if (rate_per_s <= 0.0)
    throw std::invalid_argument("uniform_arrivals: rate must be > 0");
  std::vector<double> times;
  const double gap = 1.0 / rate_per_s;
  for (double t = gap * 0.5; t < duration_s; t += gap) times.push_back(t);
  return times;
}

}  // namespace at::sim
