#include "sim/cluster.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "core/algorithm1.h"

namespace at::sim {

namespace {
constexpr std::uint64_t kNone = ~0ull;
}  // namespace

ClusterSim::ClusterSim(SimConfig config, std::vector<ComponentProfile> profiles)
    : config_(std::move(config)), profiles_(std::move(profiles)) {
  if (profiles_.size() != config_.num_components)
    throw std::invalid_argument("ClusterSim: profile count mismatch");
  if (config_.num_nodes == 0)
    throw std::invalid_argument("ClusterSim: need at least one node");
  for (const auto& p : profiles_) {
    if (p.num_points == 0 || p.group_sizes.empty())
      throw std::invalid_argument("ClusterSim: empty component profile");
  }
}

double ClusterSim::mean_exact_service_ms() const {
  double acc = 0.0;
  for (const auto& p : profiles_)
    acc += static_cast<double>(p.num_points) * config_.us_per_point / 1e3;
  return acc / static_cast<double>(profiles_.size());
}

double ClusterSim::mean_synopsis_service_ms() const {
  double acc = 0.0;
  for (const auto& p : profiles_) {
    acc += static_cast<double>(p.group_sizes.size()) * config_.us_per_point *
           config_.synopsis_point_factor / 1e3;
  }
  return acc / static_cast<double>(profiles_.size());
}

SimResult ClusterSim::run(core::Technique technique,
                          const std::vector<double>& arrival_times_s) const {
  using core::Technique;

  struct SubOp {
    std::uint64_t req = 0;
    std::uint32_t data_comp = 0;    // which subset it processes
    std::uint32_t server_comp = 0;  // which component's queue executes it
    bool is_replica = false;
    std::uint64_t twin = kNone;
    double submit_ms = 0.0;
    double start_ms = 0.0;      // when service began (valid once started)
    bool logical_done = false;  // this (req, data_comp) sub-op has a result
    bool canceled = false;
    bool started = false;
  };
  struct Request {
    double submit_ms = 0.0;
    std::uint32_t outstanding = 0;
    double last_complete_ms = 0.0;
    bool record_detail = false;
    std::vector<core::ComponentOutcome> outcomes;
  };
  struct Server {
    std::deque<std::uint64_t> queue;
    bool busy = false;
  };

  const std::size_t n_comp = config_.num_components;
  SimResult result;
  result.technique = technique;
  result.requests = arrival_times_s.size();

  // Per-run deterministic randomness: identical across techniques so the
  // comparison isolates the technique, not the noise.
  common::Rng rng(config_.seed);
  InterferenceTimeline interference =
      config_.interference_trace.empty()
          ? InterferenceTimeline(config_.interference, config_.num_nodes,
                                 config_.seed ^ 0x1f2e3d4cULL)
          : InterferenceTimeline(config_.interference_trace,
                                 config_.num_nodes);
  std::vector<double> node_speed(config_.num_nodes);
  for (auto& s : node_speed)
    s = rng.uniform(config_.node_speed_min, config_.node_speed_max);

  // Sessions cover the arrival horizon.
  const double horizon_s =
      arrival_times_s.empty() ? 0.0 : arrival_times_s.back();
  const std::size_t n_sessions =
      static_cast<std::size_t>(horizon_s / config_.session_length_s) + 1;
  result.sessions.resize(n_sessions);
  for (std::size_t s = 0; s < n_sessions; ++s) {
    result.sessions[s].start_s =
        static_cast<double>(s) * config_.session_length_s;
    result.sessions[s].end_s = result.sessions[s].start_s +
                               config_.session_length_s;
  }
  auto session_of = [&](double submit_ms) -> SessionStats& {
    auto idx = static_cast<std::size_t>(submit_ms / 1e3 /
                                        config_.session_length_s);
    if (idx >= n_sessions) idx = n_sessions - 1;
    return result.sessions[idx];
  };

  std::vector<Request> requests(arrival_times_s.size());
  std::vector<SubOp> subops;
  subops.reserve(arrival_times_s.size() * n_comp * 11 / 10 + 16);
  std::vector<Server> servers(n_comp);

  // Hedging threshold for request reissue: the 95th percentile of the
  // *expected* latency of this class of sub-operations (paper §4.1). The
  // estimate adapts to observed latencies but is clamped to a sane
  // multiple of the nominal service time — under overload the observed
  // distribution diverges, and an unbounded threshold would simply switch
  // hedging off (the expectation is a property of the sub-operation
  // class, not of the current backlog).
  common::P2Quantile latency_quantile(config_.reissue_quantile);
  const double init_threshold_ms =
      mean_exact_service_ms() * config_.reissue_init_factor +
      config_.base_overhead_ms;
  const double max_threshold_ms =
      mean_exact_service_ms() *
          std::max(config_.reissue_init_factor,
                   config_.interference.cpu_slowdown_max * 2.0) +
      config_.base_overhead_ms;
  auto reissue_threshold_ms = [&]() {
    if (latency_quantile.count() < 100) return init_threshold_ms;
    return std::clamp(latency_quantile.value(), config_.base_overhead_ms,
                      max_threshold_ms);
  };

  EventQueue eq;
  for (std::size_t i = 0; i < arrival_times_s.size(); ++i) {
    eq.push(arrival_times_s[i] * 1e3, EventKind::kArrival, i);
  }

  // Starts serving `op_id` on its server at `now_ms`; schedules completion.
  auto start_service = [&](std::uint64_t op_id, double now_ms) {
    SubOp& op = subops[op_id];
    op.started = true;
    op.start_ms = now_ms;
    // Tied-request semantics (Dean & Barroso): the first copy to *start*
    // cancels its still-queued twin, so hedging load-balances across
    // queues without duplicating work. Copies that both started (the
    // twin was already running when this one was dispatched) race to
    // completion.
    if (op.twin != kNone) {
      SubOp& twin = subops[op.twin];
      if (!twin.started) twin.canceled = true;
    }
    const std::size_t node = op.server_comp % config_.num_nodes;
    const double slow =
        node_speed[node] * interference.slowdown(node, now_ms / 1e3);
    const ComponentProfile& prof = profiles_[op.data_comp];

    double demand_ms = config_.base_overhead_ms;
    if (technique == Technique::kAccuracyTrader) {
      // Drive the real Algorithm 1 with a virtual clock; elapsed time
      // includes the queueing delay already incurred, exactly as l_ela in
      // the paper counts from request submission.
      core::VirtualClock clock(now_ms - op.submit_ms);
      const std::size_t m = prof.group_sizes.size();
      double work_ms = 0.0;
      auto stage1 = [&]() {
        const double syn_ms = static_cast<double>(m) * config_.us_per_point *
                              config_.synopsis_point_factor / 1e3 * slow;
        clock.advance(syn_ms);
        work_ms += syn_ms;
        // The simulator does not know real correlations (the services
        // replay them on real data); ranking order does not affect cost
        // because R-tree groups are size-balanced.
        return std::vector<double>(m, 0.0);
      };
      auto improve = [&](std::size_t g) {
        const double set_ms = static_cast<double>(prof.group_sizes[g]) *
                              config_.us_per_point / 1e3 * slow;
        clock.advance(set_ms);
        work_ms += set_ms;
      };
      core::Algorithm1Config acfg;
      acfg.deadline_ms = config_.deadline_ms;
      acfg.imax = config_.imax;
      const auto trace = core::run_algorithm1(acfg, clock, stage1, improve);
      demand_ms += work_ms;
      // Remember how many ranked sets fit (for accuracy replay).
      Request& req = requests[op.req];
      if (req.record_detail && !op.is_replica) {
        req.outcomes[op.data_comp].sets =
            static_cast<std::uint32_t>(trace.sets_processed);
      }
    } else {
      demand_ms += static_cast<double>(prof.num_points) *
                   config_.us_per_point / 1e3 * slow;
    }
    eq.push(now_ms + demand_ms, EventKind::kServiceComplete, op_id);
  };

  auto pump_server = [&](std::uint32_t comp, double now_ms) {
    Server& srv = servers[comp];
    if (srv.busy) return;
    while (!srv.queue.empty()) {
      const std::uint64_t op_id = srv.queue.front();
      srv.queue.pop_front();
      if (subops[op_id].canceled) {
        ++result.replica_cancels;
        continue;
      }
      srv.busy = true;
      start_service(op_id, now_ms);
      return;
    }
  };

  auto enqueue_subop = [&](std::uint64_t op_id, double now_ms) {
    servers[subops[op_id].server_comp].queue.push_back(op_id);
    pump_server(subops[op_id].server_comp, now_ms);
  };

  // Called when the logical (req, data_comp) sub-operation first completes.
  auto logical_complete = [&](SubOp& op, double now_ms) {
    op.logical_done = true;
    if (op.twin != kNone) {
      SubOp& twin = subops[op.twin];
      twin.logical_done = true;
      if (!twin.started) twin.canceled = true;
      if (op.is_replica) ++result.reissue_wins;
    }
    Request& req = requests[op.req];
    const double latency_ms = now_ms - req.submit_ms;
    result.subop_latency_ms.add(latency_ms);
    result.subop_wait_ms.add(op.start_ms - op.submit_ms);
    session_of(req.submit_ms).subop_latency_ms.add(latency_ms);
    ++result.subops;
    if (technique == Technique::kRequestReissue) {
      // The hedging threshold tracks the expected latency distribution of
      // this class of sub-operations (paper §4.1: 95th percentile).
      latency_quantile.add(latency_ms);
    }

    if (req.record_detail) {
      req.outcomes[op.data_comp].included =
          latency_ms <= config_.deadline_ms;
    }
    req.last_complete_ms = std::max(req.last_complete_ms, now_ms);
    if (--req.outstanding == 0) {
      // Merger semantics: partial execution answers at the deadline with
      // whatever arrived; all other techniques wait for every component.
      const double request_latency =
          technique == Technique::kPartialExecution
              ? config_.deadline_ms
              : req.last_complete_ms - req.submit_ms;
      result.request_latency_ms.add(request_latency);
      auto& sess = session_of(req.submit_ms);
      sess.request_latency_ms.add(request_latency);
      ++sess.requests;
      if (req.record_detail) {
        RequestDetail detail;
        detail.request_id = op.req;
        detail.submit_ms = req.submit_ms;
        detail.latency_ms = request_latency;
        detail.outcomes = std::move(req.outcomes);
        result.details.push_back(std::move(detail));
      }
    }
  };

  while (!eq.empty()) {
    const Event ev = eq.pop();
    switch (ev.kind) {
      case EventKind::kArrival: {
        const std::uint64_t rid = ev.a;
        Request& req = requests[rid];
        req.submit_ms = ev.time_ms;
        req.outstanding = static_cast<std::uint32_t>(n_comp);
        req.record_detail = (rid % config_.detail_every) == 0;
        if (req.record_detail) req.outcomes.resize(n_comp);

        for (std::uint32_t c = 0; c < n_comp; ++c) {
          SubOp op;
          op.req = rid;
          op.data_comp = c;
          op.server_comp = c;
          op.submit_ms = ev.time_ms;
          subops.push_back(op);
          const std::uint64_t op_id = subops.size() - 1;
          enqueue_subop(op_id, ev.time_ms);
          if (technique == Technique::kRequestReissue) {
            eq.push(ev.time_ms + reissue_threshold_ms(),
                    EventKind::kReissueCheck, op_id);
          }
        }
        break;
      }
      case EventKind::kServiceComplete: {
        SubOp& op = subops[ev.a];
        servers[op.server_comp].busy = false;
        if (!op.logical_done) {
          logical_complete(op, ev.time_ms);
        }
        // else: the twin already produced the result; this was wasted work.
        pump_server(op.server_comp, ev.time_ms);
        break;
      }
      case EventKind::kReissueCheck: {
        SubOp& op = subops[ev.a];
        if (op.logical_done || op.twin != kNone) break;
        SubOp replica;
        replica.req = op.req;
        replica.data_comp = op.data_comp;
        // Replica placement: prefer a component on a *different node* (a
        // replica co-located with the straggling primary would suffer the
        // same interference), starting the search half-way around the ring.
        replica.server_comp = op.data_comp;
        const std::size_t primary_node = op.data_comp % config_.num_nodes;
        for (std::size_t off = 0; off < n_comp; ++off) {
          const auto cand = static_cast<std::uint32_t>(
              (op.data_comp + n_comp / 2 + off) % n_comp);
          if (cand == op.data_comp) continue;
          replica.server_comp = cand;
          if (cand % config_.num_nodes != primary_node) break;
        }
        replica.is_replica = true;
        replica.submit_ms = op.submit_ms;
        subops.push_back(replica);
        const std::uint64_t replica_id = subops.size() - 1;
        subops[ev.a].twin = replica_id;
        subops[replica_id].twin = ev.a;
        ++result.reissues;
        enqueue_subop(replica_id, ev.time_ms);
        break;
      }
    }
  }
  return result;
}

}  // namespace at::sim
