// Discrete-event simulator of the paper's deployment: a fan-out online
// service of n parallel components (one per input-data subset) hosted on a
// smaller set of nodes, with co-located MapReduce interference, evaluated
// under the four request-processing techniques.
//
// What is simulated vs. computed for real:
//  * Time is virtual. Each component is a FIFO single server; a
//    sub-operation's service demand is derived from the amount of data the
//    technique actually touches (full subset scan, or synopsis + ranked
//    member sets under AccuracyTrader) times a per-point cost, scaled by
//    node speed and the interference slowdown at service start.
//  * AccuracyTrader's deadline/imax logic is NOT re-implemented here: the
//    simulator drives core::run_algorithm1 with a VirtualClock, so the very
//    code a live component would run decides how many sets fit.
//  * Result *content* is not simulated. The simulator records, per request
//    and component, the outcome (included-before-deadline flags, number of
//    sets processed); the services replay those outcomes on the real data
//    to measure accuracy.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "core/outcome.h"
#include "core/technique.h"
#include "sim/event_queue.h"
#include "sim/interference.h"

namespace at::sim {

/// Cost/profile description of one component's data.
struct ComponentProfile {
  /// Original data points in the subset (exact scan cost driver).
  std::uint32_t num_points = 0;
  /// Member count of each synopsis group, in group order. Also defines the
  /// synopsis size (#groups) for stage-1 cost.
  std::vector<std::uint32_t> group_sizes;
};

struct SimConfig {
  std::size_t num_components = 16;
  /// Physical nodes; components map round-robin. Interference and the
  /// static speed factor are per node.
  std::size_t num_nodes = 8;

  /// l_spe for AccuracyTrader and partial execution, in ms.
  double deadline_ms = 100.0;
  /// i_max for AccuracyTrader (max ranked sets per component).
  std::size_t imax = std::numeric_limits<std::size_t>::max();

  /// Hedging quantile for request reissue (the paper uses the 95th).
  double reissue_quantile = 0.95;
  /// Initial hedging threshold before enough latency samples exist, as a
  /// multiple of the mean exact service time.
  double reissue_init_factor = 3.0;

  /// Work model: microseconds per original data point scanned.
  double us_per_point = 2.0;
  /// An aggregated (synopsis) point costs this multiple of an original
  /// point (denser features).
  double synopsis_point_factor = 2.0;
  /// Fixed per-sub-operation overhead (dispatch, merge share), ms.
  double base_overhead_ms = 0.3;

  /// Static per-node speed heterogeneity: service multiplier drawn
  /// uniformly from [speed_min, speed_max] per node.
  double node_speed_min = 0.9;
  double node_speed_max = 1.2;

  InterferenceConfig interference;
  /// When non-empty, replaces the synthetic interference process with an
  /// explicit job trace (e.g. workload::generate_swim_trace), replayed
  /// identically across runs and techniques.
  std::vector<InterferenceJob> interference_trace;

  std::uint64_t seed = 1;

  /// Stats are additionally sliced into sessions of this length.
  double session_length_s = 60.0;
  /// Record per-request outcome detail for every k-th request (1 = all).
  std::size_t detail_every = 1;
};

/// Outcome detail for one (sampled) request.
struct RequestDetail {
  std::uint64_t request_id = 0;
  double submit_ms = 0.0;
  double latency_ms = 0.0;  // merger-observed request latency
  std::vector<core::ComponentOutcome> outcomes;  // one per component
};

struct SessionStats {
  double start_s = 0.0;
  double end_s = 0.0;
  std::size_t requests = 0;
  common::PercentileTracker subop_latency_ms;
  common::PercentileTracker request_latency_ms;
};

struct SimResult {
  core::Technique technique = core::Technique::kBasic;
  std::size_t requests = 0;
  std::size_t subops = 0;
  std::size_t reissues = 0;        // replicas actually dispatched
  std::size_t reissue_wins = 0;    // replica finished before the primary
  std::size_t replica_cancels = 0; // replicas cancelled while still queued
  common::PercentileTracker subop_latency_ms;
  common::PercentileTracker request_latency_ms;
  /// Queueing delay of each logical sub-operation (latency = wait +
  /// service); exposes where the tail comes from.
  common::PercentileTracker subop_wait_ms;
  std::vector<SessionStats> sessions;
  std::vector<RequestDetail> details;

  /// The paper's headline metric.
  double p999_component_ms() const { return subop_latency_ms.percentile(99.9); }
};

class ClusterSim {
 public:
  /// `profiles` must have num_components entries.
  ClusterSim(SimConfig config, std::vector<ComponentProfile> profiles);

  const SimConfig& config() const { return config_; }

  /// Runs one experiment: the given arrival times (seconds, ascending)
  /// processed under `technique`. Each call is independent (fresh queues,
  /// same seeds — techniques are compared on identical randomness).
  SimResult run(core::Technique technique,
                const std::vector<double>& arrival_times_s) const;

  /// Mean exact service demand (ms) across components, before slowdowns.
  double mean_exact_service_ms() const;
  /// Mean synopsis (stage-1) demand (ms) across components.
  double mean_synopsis_service_ms() const;

 private:
  SimConfig config_;
  std::vector<ComponentProfile> profiles_;
};

}  // namespace at::sim
