// Open-loop request arrival processes.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"

namespace at::sim {

/// Homogeneous Poisson arrivals at `rate_per_s` over [0, duration_s).
/// Returns ascending arrival times in seconds.
std::vector<double> poisson_arrivals(double rate_per_s, double duration_s,
                                     common::Rng& rng);

/// Non-homogeneous Poisson arrivals by thinning. `rate_at(t)` must be
/// bounded by `rate_max` over [0, duration_s).
std::vector<double> nhpp_arrivals(const std::function<double(double)>& rate_at,
                                  double rate_max, double duration_s,
                                  common::Rng& rng);

/// Deterministic, evenly spaced arrivals (useful in tests).
std::vector<double> uniform_arrivals(double rate_per_s, double duration_s);

}  // namespace at::sim
