// Co-located MapReduce interference model.
//
// The paper stresses its testbed by co-locating each service VM with
// Hadoop jobs replayed from the Facebook SWIM trace (a mix of short
// CPU-bound WordCount jobs and IO-bound Sort jobs, 1 MB–10 GB inputs).
// What the service sees is a time-varying, node-correlated slowdown. This
// model reproduces exactly that: per node, an alternating renewal process
// of idle gaps (exponential) and jobs (log-normal durations, heavy upper
// tail from the size range) whose class determines a multiplicative
// service-rate degradation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace at::sim {

struct InterferenceConfig {
  bool enabled = true;
  /// Mean idle seconds between consecutive jobs on a node.
  double mean_idle_s = 15.0;
  /// Fraction of jobs that are CPU-bound (WordCount-like); the rest are
  /// IO-bound (Sort-like).
  double cpu_job_fraction = 0.5;
  /// Log-normal job-duration parameters (seconds): median exp(mu).
  double duration_mu = 1.0;     // ~2.7 s median
  double duration_sigma = 1.1;  // occasional multi-minute stragglers
  /// Per-class slowdown factor ranges (service time multiplier while the
  /// job runs).
  double cpu_slowdown_min = 1.6;
  double cpu_slowdown_max = 2.8;
  double io_slowdown_min = 1.15;
  double io_slowdown_max = 1.7;
};

/// One co-located batch job occupying a node for an interval and degrading
/// its service rate by `factor`.
struct InterferenceJob {
  std::size_t node = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double factor = 1.0;  // service-time multiplier while running
};

/// Lazily generated per-node slowdown timeline. Queries may arrive in any
/// time order; each node's job list is extended on demand and cached.
class InterferenceTimeline {
 public:
  InterferenceTimeline(const InterferenceConfig& config,
                       std::size_t num_nodes, std::uint64_t seed);

  /// Builds a timeline from an explicit job trace (e.g. a SWIM-style
  /// replay, workload::generate_swim_trace). Jobs outside [0, inf) per
  /// node are kept as-is; overlapping jobs resolve to the later one.
  InterferenceTimeline(std::vector<InterferenceJob> trace,
                       std::size_t num_nodes);

  /// Service-time multiplier (>= 1) on `node` at time `t_s` seconds.
  double slowdown(std::size_t node, double t_s);

  /// Fraction of [0, horizon_s] during which `node` runs a job (generated
  /// on demand; used by tests and calibration).
  double busy_fraction(std::size_t node, double horizon_s);

 private:
  struct Interval {
    double start_s;
    double end_s;
    double factor;
  };
  struct NodeState {
    common::Rng rng;
    std::vector<Interval> jobs;
    double generated_until_s = 0.0;
    bool from_trace = false;  // explicit trace: never extend

    explicit NodeState(common::Rng r) : rng(r) {}
  };

  void extend(NodeState& node, double until_s);

  InterferenceConfig config_;
  std::vector<NodeState> nodes_;
};

}  // namespace at::sim
