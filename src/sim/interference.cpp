#include "sim/interference.h"

#include <algorithm>

namespace at::sim {

InterferenceTimeline::InterferenceTimeline(const InterferenceConfig& config,
                                           std::size_t num_nodes,
                                           std::uint64_t seed)
    : config_(config) {
  common::Rng parent(seed);
  nodes_.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    nodes_.emplace_back(parent.fork(n + 1));
  }
}

InterferenceTimeline::InterferenceTimeline(std::vector<InterferenceJob> trace,
                                           std::size_t num_nodes) {
  config_.enabled = true;
  common::Rng unused(0);
  nodes_.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    nodes_.emplace_back(unused);
    nodes_.back().from_trace = true;
  }
  std::sort(trace.begin(), trace.end(),
            [](const InterferenceJob& a, const InterferenceJob& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.start_s < b.start_s;
            });
  for (const auto& job : trace) {
    if (job.node >= num_nodes) continue;
    NodeState& node = nodes_[job.node];
    double start = job.start_s;
    // Overlap resolution: a job starting inside the previous one begins
    // when the previous job ends.
    if (!node.jobs.empty() && start < node.jobs.back().end_s) {
      start = node.jobs.back().end_s;
    }
    if (start >= job.end_s) continue;
    node.jobs.push_back(Interval{start, job.end_s, job.factor});
  }
}

void InterferenceTimeline::extend(NodeState& node, double until_s) {
  if (node.from_trace) return;
  while (node.generated_until_s <= until_s) {
    const double idle = node.rng.exponential(1.0 / config_.mean_idle_s);
    const double start = node.generated_until_s + idle;
    const double duration =
        node.rng.lognormal(config_.duration_mu, config_.duration_sigma);
    const bool cpu = node.rng.bernoulli(config_.cpu_job_fraction);
    const double factor =
        cpu ? node.rng.uniform(config_.cpu_slowdown_min,
                               config_.cpu_slowdown_max)
            : node.rng.uniform(config_.io_slowdown_min,
                               config_.io_slowdown_max);
    node.jobs.push_back(Interval{start, start + duration, factor});
    node.generated_until_s = start + duration;
  }
}

double InterferenceTimeline::slowdown(std::size_t node_idx, double t_s) {
  if (!config_.enabled) return 1.0;
  NodeState& node = nodes_.at(node_idx);
  extend(node, t_s);
  // Binary search for the first job ending after t.
  auto it = std::lower_bound(
      node.jobs.begin(), node.jobs.end(), t_s,
      [](const Interval& iv, double t) { return iv.end_s <= t; });
  if (it != node.jobs.end() && it->start_s <= t_s) return it->factor;
  return 1.0;
}

double InterferenceTimeline::busy_fraction(std::size_t node_idx,
                                           double horizon_s) {
  if (!config_.enabled || horizon_s <= 0.0) return 0.0;
  NodeState& node = nodes_.at(node_idx);
  extend(node, horizon_s);
  double busy = 0.0;
  for (const auto& iv : node.jobs) {
    if (iv.start_s >= horizon_s) break;
    busy += std::min(iv.end_s, horizon_s) - iv.start_s;
  }
  return busy / horizon_s;
}

}  // namespace at::sim
