// Discrete-event calendar: a time-ordered priority queue with FIFO
// tie-breaking (events at the same instant fire in scheduling order, which
// keeps the simulator deterministic).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace at::sim {

enum class EventKind : std::uint8_t {
  kArrival,          // a request enters the service
  kServiceComplete,  // a component finishes its current sub-operation
  kReissueCheck,     // hedging timer for a sub-operation fired
};

struct Event {
  double time_ms = 0.0;
  std::uint64_t seq = 0;  // insertion order, breaks time ties
  EventKind kind = EventKind::kArrival;
  std::uint64_t a = 0;    // payload: request id / sub-op id / component id
  std::uint64_t b = 0;
};

class EventQueue {
 public:
  void push(double time_ms, EventKind kind, std::uint64_t a = 0,
            std::uint64_t b = 0);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Removes and returns the earliest event.
  Event pop();

  const Event& peek() const { return heap_.top(); }

 private:
  struct Later {
    bool operator()(const Event& x, const Event& y) const {
      if (x.time_ms != y.time_ms) return x.time_ms > y.time_ms;
      return x.seq > y.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace at::sim
