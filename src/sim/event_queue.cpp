#include "sim/event_queue.h"

#include <stdexcept>

namespace at::sim {

void EventQueue::push(double time_ms, EventKind kind, std::uint64_t a,
                      std::uint64_t b) {
  heap_.push(Event{time_ms, next_seq_++, kind, a, b});
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace at::sim
