// The 24-hour diurnal arrival-rate profile of the search workload.
//
// The paper replays a 24-hour Sogou query log (Fig. 7(a)); the three hours
// it studies in detail are hour 9 (rising morning ramp), hour 10 (steady)
// and hour 24 (decaying tail of the day). This profile reproduces that
// shape: hourly anchor rates with linear interpolation inside each hour,
// so hour 9 is increasing, hour 10 is flat, and hour 24 is decreasing.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace at::workload {

class DiurnalProfile {
 public:
  /// `peak_rate_per_s`: the highest instantaneous request rate of the day.
  explicit DiurnalProfile(double peak_rate_per_s);

  /// Instantaneous rate at absolute day time `t_s` seconds in [0, 86400).
  double rate_at(double t_s) const;

  /// Instantaneous rate `t_in_hour_s` seconds into 1-based `hour` (1..24).
  double rate_in_hour(std::size_t hour, double t_in_hour_s) const;

  /// Mean rate of 1-based hour (1..24).
  double hourly_mean(std::size_t hour) const;

  /// All 24 hourly means, index 0 = hour 1.
  std::vector<double> hourly_means() const;

  double peak_rate() const { return peak_; }

  /// Relative anchor value at hour boundary h (0..24), before scaling.
  static double anchor(std::size_t h);

 private:
  double peak_;
};

}  // namespace at::workload
