// SWIM-style MapReduce interference trace generation.
//
// The paper co-locates its service VMs with Hadoop jobs replayed by
// BigDataBench-MT from the Facebook production trace published with SWIM
// (Statistical Workload Injector for MapReduce): a heavy-tailed stream of
// short jobs, mixing CPU-bound WordCount and IO-bound Sort, with input
// sizes from 1 MB to 10 GB. This generator reproduces those statistics as
// an explicit job trace that sim::InterferenceTimeline can replay, so the
// same interference schedule can be inspected, stored, and applied
// identically across techniques.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/interference.h"

namespace at::workload {

struct SwimConfig {
  /// Mean job arrivals per node per minute (Poisson).
  double jobs_per_node_per_min = 3.0;
  /// Log-normal input-size distribution in MB; defaults span the paper's
  /// 1 MB – 10 GB range with a heavy upper tail (median ~64 MB).
  double size_mu_log_mb = 4.16;   // ln(64)
  double size_sigma_log = 2.0;
  double min_size_mb = 1.0;
  double max_size_mb = 10240.0;
  /// Job runtime model: seconds per GB of input, by class.
  double cpu_seconds_per_gb = 18.0;  // WordCount-like
  double io_seconds_per_gb = 10.0;   // Sort-like (IO-parallel)
  double min_duration_s = 0.5;
  /// Class mix and per-class service-rate degradation while running.
  double cpu_fraction = 0.5;
  double cpu_slowdown_min = 1.6;
  double cpu_slowdown_max = 2.8;
  double io_slowdown_min = 1.15;
  double io_slowdown_max = 1.7;
};

/// One generated job with its workload-level attributes (the sim only
/// needs the embedded interference interval; the rest supports analysis).
struct SwimJob {
  sim::InterferenceJob interval;
  double input_mb = 0.0;
  bool cpu_bound = false;
};

/// Generates the full trace for `num_nodes` nodes over [0, horizon_s).
std::vector<SwimJob> generate_swim_trace(const SwimConfig& config,
                                         std::size_t num_nodes,
                                         double horizon_s,
                                         std::uint64_t seed);

/// Projects a SWIM trace onto the interference intervals the simulator
/// consumes.
std::vector<sim::InterferenceJob> to_interference(
    const std::vector<SwimJob>& jobs);

}  // namespace at::workload
