#include "workload/diurnal.h"

#include <cmath>
#include <stdexcept>

namespace at::workload {

namespace {
// Relative load at the *end* of each hour h (anchor[0] is midnight at the
// start of the day). Shaped after the paper's Fig. 7(a): night trough,
// steep morning ramp through hour 9, steady hours 10–11, afternoon
// plateau, evening peak around hours 20–22, decay through hour 24.
constexpr double kAnchors[25] = {
    0.42,  // 00:00
    0.30, 0.18, 0.12, 0.10, 0.10, 0.14,        // hours 1-6: night trough
    0.22, 0.35, 0.68,                          // hours 7-9: morning ramp
    0.72, 0.74, 0.72,                          // hours 10-12: steady
    0.66, 0.70, 0.76, 0.80, 0.78, 0.74,        // hours 13-18: plateau
    0.78, 0.90, 1.00, 0.95,                    // hours 19-22: evening peak
    0.72, 0.42,                                // hours 23-24: decay
};
}  // namespace

DiurnalProfile::DiurnalProfile(double peak_rate_per_s) : peak_(peak_rate_per_s) {
  if (peak_ <= 0.0)
    throw std::invalid_argument("DiurnalProfile: peak rate must be > 0");
}

double DiurnalProfile::anchor(std::size_t h) {
  if (h > 24) throw std::out_of_range("DiurnalProfile::anchor: h > 24");
  return kAnchors[h];
}

double DiurnalProfile::rate_at(double t_s) const {
  double t = std::fmod(t_s, 86400.0);
  if (t < 0) t += 86400.0;
  const double hour_f = t / 3600.0;
  const auto h0 = static_cast<std::size_t>(hour_f);
  const double frac = hour_f - static_cast<double>(h0);
  const double rel =
      kAnchors[h0] + (kAnchors[h0 + 1] - kAnchors[h0]) * frac;
  return rel * peak_;
}

double DiurnalProfile::rate_in_hour(std::size_t hour,
                                    double t_in_hour_s) const {
  if (hour < 1 || hour > 24)
    throw std::out_of_range("DiurnalProfile: hour must be in [1, 24]");
  return rate_at(static_cast<double>(hour - 1) * 3600.0 + t_in_hour_s);
}

double DiurnalProfile::hourly_mean(std::size_t hour) const {
  if (hour < 1 || hour > 24)
    throw std::out_of_range("DiurnalProfile: hour must be in [1, 24]");
  return 0.5 * (kAnchors[hour - 1] + kAnchors[hour]) * peak_;
}

std::vector<double> DiurnalProfile::hourly_means() const {
  std::vector<double> out(24);
  for (std::size_t h = 1; h <= 24; ++h) out[h - 1] = hourly_mean(h);
  return out;
}

}  // namespace at::workload
