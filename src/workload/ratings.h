// Synthetic clustered user-item rating workload (MovieLens stand-in).
//
// The paper's CF experiments use the MovieLens 10M dataset partitioned
// into per-component subsets (~4,000 users × 1,000 items × 0.27 M ratings
// each). What AccuracyTrader exploits in that data is its *cluster
// structure*: users with similar tastes exist, so aggregating similar
// users loses little information, and Pearson weights identify them. This
// generator reproduces that structure directly:
//   rating(u, i) = clamp(q_i + a_{cluster(u), i} + noise)
// where q_i is a global item-quality term and a_{k,i} a per-cluster
// affinity; items are selected with Zipf popularity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "services/recommender/cf.h"
#include "synopsis/sparse_rows.h"

namespace at::workload {

struct RatingConfig {
  std::size_t num_components = 8;
  std::size_t users_per_component = 600;
  std::size_t num_items = 400;
  std::size_t num_clusters = 24;
  std::size_t ratings_per_user_min = 30;
  std::size_t ratings_per_user_max = 80;
  double item_popularity_skew = 0.8;  // Zipf exponent
  double cluster_affinity_stddev = 1.0;
  double noise_stddev = 0.5;
  double min_rating = 1.0;
  double max_rating = 5.0;
  /// Round ratings to integer stars (MovieLens-style) when true.
  bool integer_ratings = true;
  std::uint64_t seed = 7;
};

/// A full CF evaluation workload: the per-component subsets plus a request
/// set with ground-truth ratings.
struct RatingWorkload {
  std::vector<synopsis::SparseRows> subsets;  // one per component
  std::vector<reco::CfRequest> requests;
  std::vector<double> actuals;  // true rating of each request's target
};

class RatingWorkloadGen {
 public:
  explicit RatingWorkloadGen(RatingConfig config);

  /// Generates subsets plus `num_active_users` held-out active users; for
  /// each, 80% of their ratings form the request context and up to
  /// `targets_per_user` of the remaining 20% become prediction requests
  /// (mirroring §4.2/§4.3's setup).
  RatingWorkload generate(std::size_t num_active_users,
                          std::size_t targets_per_user) const;

  /// One extra user's rating vector, drawn from a random cluster — used to
  /// synthesize update batches ("new data points") for Fig. 3.
  synopsis::SparseVector sample_user(common::Rng& rng) const;

  const RatingConfig& config() const { return config_; }

 private:
  synopsis::SparseVector make_user(std::size_t cluster,
                                   common::Rng& rng) const;
  double rating_of(std::size_t cluster, std::uint32_t item,
                   common::Rng& rng) const;

  RatingConfig config_;
  common::ZipfDistribution item_popularity_;
  std::vector<double> item_quality_;              // q_i
  std::vector<std::vector<double>> affinity_;     // a_{k,i}
};

}  // namespace at::workload
