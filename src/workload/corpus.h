// Synthetic clustered web-page corpus and query workload (Sogou stand-in).
//
// Documents follow a simple topic model: each page has one main topic; its
// tokens come from the topic's term distribution with probability
// `topic_mix`, otherwise from a background Zipf over the whole vocabulary.
// Queries pick a topic and sample a few of its characteristic terms, so
// per query there is a well-defined set of strongly matching pages — the
// skewed score distribution that makes top-k retrieval (and the paper's
// group-ranking argument) meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "services/search/component.h"
#include "synopsis/sparse_rows.h"

namespace at::workload {

struct CorpusConfig {
  std::size_t num_components = 8;
  std::size_t docs_per_component = 400;
  std::size_t vocab_size = 4000;
  std::size_t num_topics = 32;
  std::size_t topic_vocab = 120;   // characteristic terms per topic
  std::size_t doc_len_min = 40;
  std::size_t doc_len_max = 160;
  double topic_mix = 0.7;          // fraction of tokens from the main topic
  double background_skew = 1.05;   // Zipf exponent of the background dist
  double topic_term_skew = 0.9;    // Zipf exponent within a topic's terms
  std::size_t query_terms_min = 1;
  std::size_t query_terms_max = 4;
  std::uint64_t seed = 11;
};

struct SearchWorkload {
  std::vector<synopsis::SparseRows> shards;  // one per component
  std::vector<search::SearchRequest> queries;
};

class CorpusGen {
 public:
  explicit CorpusGen(CorpusConfig config);

  /// Generates the shards plus `num_queries` topic-focused queries.
  SearchWorkload generate(std::size_t num_queries) const;

  /// One additional document (for update batches).
  synopsis::SparseVector sample_doc(common::Rng& rng) const;

  /// One query (topic-focused), for streaming query generation.
  search::SearchRequest sample_query(common::Rng& rng) const;

  const CorpusConfig& config() const { return config_; }

 private:
  synopsis::SparseVector make_doc(std::size_t topic, common::Rng& rng) const;

  CorpusConfig config_;
  common::ZipfDistribution background_;
  common::ZipfDistribution topic_rank_;  // rank within a topic's vocab
  std::vector<std::vector<std::uint32_t>> topic_terms_;
};

}  // namespace at::workload
