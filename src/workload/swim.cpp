#include "workload/swim.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace at::workload {

std::vector<SwimJob> generate_swim_trace(const SwimConfig& config,
                                         std::size_t num_nodes,
                                         double horizon_s,
                                         std::uint64_t seed) {
  if (config.jobs_per_node_per_min <= 0.0)
    throw std::invalid_argument("generate_swim_trace: rate must be > 0");
  common::Rng parent(seed);
  std::vector<SwimJob> out;
  const double rate_per_s = config.jobs_per_node_per_min / 60.0;

  for (std::size_t node = 0; node < num_nodes; ++node) {
    common::Rng rng = parent.fork(node + 100);
    double t = rng.exponential(rate_per_s);
    while (t < horizon_s) {
      SwimJob job;
      job.input_mb =
          std::clamp(rng.lognormal(config.size_mu_log_mb,
                                   config.size_sigma_log),
                     config.min_size_mb, config.max_size_mb);
      job.cpu_bound = rng.bernoulli(config.cpu_fraction);
      const double seconds_per_gb = job.cpu_bound
                                        ? config.cpu_seconds_per_gb
                                        : config.io_seconds_per_gb;
      const double duration = std::max(
          config.min_duration_s, job.input_mb / 1024.0 * seconds_per_gb);
      job.interval.node = node;
      job.interval.start_s = t;
      job.interval.end_s = t + duration;
      job.interval.factor =
          job.cpu_bound
              ? rng.uniform(config.cpu_slowdown_min, config.cpu_slowdown_max)
              : rng.uniform(config.io_slowdown_min, config.io_slowdown_max);
      out.push_back(job);
      t = job.interval.end_s + rng.exponential(rate_per_s);
    }
  }
  return out;
}

std::vector<sim::InterferenceJob> to_interference(
    const std::vector<SwimJob>& jobs) {
  std::vector<sim::InterferenceJob> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) out.push_back(j.interval);
  return out;
}

}  // namespace at::workload
