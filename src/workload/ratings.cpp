#include "workload/ratings.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace at::workload {

RatingWorkloadGen::RatingWorkloadGen(RatingConfig config)
    : config_(config),
      item_popularity_(config.num_items, config.item_popularity_skew) {
  if (config_.num_clusters == 0 || config_.num_items == 0)
    throw std::invalid_argument("RatingWorkloadGen: empty config");
  common::Rng rng(config_.seed);
  item_quality_.resize(config_.num_items);
  const double mid = 0.5 * (config_.min_rating + config_.max_rating);
  for (auto& q : item_quality_) q = rng.normal(mid, 0.5);
  affinity_.resize(config_.num_clusters);
  for (auto& row : affinity_) {
    row.resize(config_.num_items);
    for (auto& a : row) a = rng.normal(0.0, config_.cluster_affinity_stddev);
  }
}

double RatingWorkloadGen::rating_of(std::size_t cluster, std::uint32_t item,
                                    common::Rng& rng) const {
  double r = item_quality_[item] + affinity_[cluster][item] +
             rng.normal(0.0, config_.noise_stddev);
  if (config_.integer_ratings) r = std::round(r);
  return std::clamp(r, config_.min_rating, config_.max_rating);
}

synopsis::SparseVector RatingWorkloadGen::make_user(std::size_t cluster,
                                                    common::Rng& rng) const {
  const std::size_t count = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config_.ratings_per_user_min),
      static_cast<std::int64_t>(config_.ratings_per_user_max)));
  std::unordered_set<std::uint32_t> chosen;
  synopsis::SparseVector ratings;
  ratings.reserve(count);
  std::size_t guard = 0;
  while (chosen.size() < count && guard < count * 30) {
    ++guard;
    const auto item = static_cast<std::uint32_t>(item_popularity_(rng));
    if (!chosen.insert(item).second) continue;
    ratings.emplace_back(item, rating_of(cluster, item, rng));
  }
  synopsis::normalize(ratings);
  return ratings;
}

synopsis::SparseVector RatingWorkloadGen::sample_user(
    common::Rng& rng) const {
  const std::size_t cluster = rng.uniform_index(config_.num_clusters);
  return make_user(cluster, rng);
}

RatingWorkload RatingWorkloadGen::generate(std::size_t num_active_users,
                                           std::size_t targets_per_user) const {
  common::Rng rng(config_.seed ^ 0xa11ceULL);
  RatingWorkload out;
  out.subsets.reserve(config_.num_components);
  for (std::size_t c = 0; c < config_.num_components; ++c) {
    synopsis::SparseRows subset(config_.num_items);
    for (std::size_t u = 0; u < config_.users_per_component; ++u) {
      const std::size_t cluster = rng.uniform_index(config_.num_clusters);
      subset.add_row(make_user(cluster, rng));
    }
    out.subsets.push_back(std::move(subset));
  }

  // Active users: held out of the subsets; 80% of each one's ratings are
  // the request context, targets come from the withheld 20%.
  for (std::size_t a = 0; a < num_active_users; ++a) {
    const std::size_t cluster = rng.uniform_index(config_.num_clusters);
    synopsis::SparseVector full = make_user(cluster, rng);
    if (full.size() < 5) continue;
    // Shuffle indices, withhold the last 20%.
    std::vector<std::size_t> idx(full.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (std::size_t i = idx.size(); i > 1; --i) {
      std::swap(idx[i - 1], idx[rng.uniform_index(i)]);
    }
    const std::size_t held = std::max<std::size_t>(1, full.size() / 5);
    synopsis::SparseVector context;
    std::vector<std::pair<std::uint32_t, double>> targets;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      if (i < idx.size() - held) {
        context.push_back(full[idx[i]]);
      } else {
        targets.emplace_back(full[idx[i]].first, full[idx[i]].second);
      }
    }
    const std::size_t take = std::min(targets_per_user, targets.size());
    for (std::size_t t = 0; t < take; ++t) {
      out.requests.push_back(
          reco::CfRequest::make(context, targets[t].first));
      out.actuals.push_back(targets[t].second);
    }
  }
  return out;
}

}  // namespace at::workload
