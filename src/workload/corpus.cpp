#include "workload/corpus.h"

#include <stdexcept>

namespace at::workload {

CorpusGen::CorpusGen(CorpusConfig config)
    : config_(config),
      background_(config.vocab_size, config.background_skew),
      topic_rank_(config.topic_vocab, config.topic_term_skew) {
  if (config_.num_topics == 0 || config_.vocab_size == 0)
    throw std::invalid_argument("CorpusGen: empty config");
  if (config_.topic_vocab > config_.vocab_size)
    throw std::invalid_argument("CorpusGen: topic_vocab > vocab_size");
  common::Rng rng(config_.seed);
  topic_terms_.resize(config_.num_topics);
  for (auto& terms : topic_terms_) {
    // A topic's characteristic terms: distinct draws across the vocabulary
    // (biased toward the mid/low-frequency region by skipping the most
    // common background terms, like real topical words).
    terms.reserve(config_.topic_vocab);
    std::vector<bool> used(config_.vocab_size, false);
    while (terms.size() < config_.topic_vocab) {
      const std::size_t offset = config_.vocab_size / 20;  // skip stopwords
      const auto t = static_cast<std::uint32_t>(
          offset + rng.uniform_index(config_.vocab_size - offset));
      if (used[t]) continue;
      used[t] = true;
      terms.push_back(t);
    }
  }
}

synopsis::SparseVector CorpusGen::make_doc(std::size_t topic,
                                           common::Rng& rng) const {
  const std::size_t len = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config_.doc_len_min),
      static_cast<std::int64_t>(config_.doc_len_max)));
  synopsis::SparseVector counts;
  counts.reserve(len);
  for (std::size_t k = 0; k < len; ++k) {
    std::uint32_t term;
    if (rng.uniform() < config_.topic_mix) {
      term = topic_terms_[topic][topic_rank_(rng)];
    } else {
      term = static_cast<std::uint32_t>(background_(rng));
    }
    counts.emplace_back(term, 1.0);
  }
  synopsis::normalize(counts);
  return counts;
}

synopsis::SparseVector CorpusGen::sample_doc(common::Rng& rng) const {
  return make_doc(rng.uniform_index(config_.num_topics), rng);
}

search::SearchRequest CorpusGen::sample_query(common::Rng& rng) const {
  const std::size_t topic = rng.uniform_index(config_.num_topics);
  const std::size_t nterms = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config_.query_terms_min),
      static_cast<std::int64_t>(config_.query_terms_max)));
  search::SearchRequest req;
  req.terms.reserve(nterms);
  while (req.terms.size() < nterms) {
    const auto term = topic_terms_[topic][topic_rank_(rng)];
    bool dup = false;
    for (auto t : req.terms) dup = dup || (t == term);
    if (!dup) req.terms.push_back(term);
  }
  return req;
}

SearchWorkload CorpusGen::generate(std::size_t num_queries) const {
  common::Rng rng(config_.seed ^ 0xc0ffeeULL);
  SearchWorkload out;
  out.shards.reserve(config_.num_components);
  for (std::size_t c = 0; c < config_.num_components; ++c) {
    synopsis::SparseRows shard(config_.vocab_size);
    for (std::size_t d = 0; d < config_.docs_per_component; ++d) {
      const std::size_t topic = rng.uniform_index(config_.num_topics);
      shard.add_row(make_doc(topic, rng));
    }
    out.shards.push_back(std::move(shard));
  }
  out.queries.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    out.queries.push_back(sample_query(rng));
  }
  return out;
}

}  // namespace at::workload
