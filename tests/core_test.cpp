// Algorithm 1 and technique-metadata tests.
#include <gtest/gtest.h>

#include <vector>

#include <atomic>
#include <future>
#include <thread>

#include "core/algorithm1.h"
#include "core/fanout.h"
#include "core/outcome.h"
#include "core/runtime.h"
#include "core/technique.h"

namespace at::core {
namespace {

TEST(Technique, Names) {
  EXPECT_EQ(to_string(Technique::kBasic), "Basic");
  EXPECT_EQ(to_string(Technique::kRequestReissue), "Request reissue");
  EXPECT_EQ(to_string(Technique::kPartialExecution), "Partial execution");
  EXPECT_EQ(to_string(Technique::kAccuracyTrader), "AccuracyTrader");
}

TEST(Technique, ApproximateClassification) {
  EXPECT_FALSE(is_approximate(Technique::kBasic));
  EXPECT_FALSE(is_approximate(Technique::kRequestReissue));
  EXPECT_TRUE(is_approximate(Technique::kPartialExecution));
  EXPECT_TRUE(is_approximate(Technique::kAccuracyTrader));
}

TEST(RankByCorrelation, DescendingWithStableTies) {
  const std::vector<double> c{0.1, 0.9, 0.5, 0.9, 0.0};
  const auto order = rank_by_correlation(c);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 1u);  // first 0.9 (stable)
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);
  EXPECT_EQ(order[4], 4u);
}

TEST(RankByCorrelation, Empty) {
  EXPECT_TRUE(rank_by_correlation({}).empty());
}

TEST(VirtualClockBehaviour, AdvanceAndSet) {
  VirtualClock clock(5.0);
  EXPECT_DOUBLE_EQ(clock.elapsed_ms(), 5.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.elapsed_ms(), 7.5);
  clock.set(100.0);
  EXPECT_DOUBLE_EQ(clock.elapsed_ms(), 100.0);
}

TEST(WallClockBehaviour, MonotoneNonNegative) {
  WallClock clock;
  const double a = clock.elapsed_ms();
  const double b = clock.elapsed_ms();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

struct Harness {
  VirtualClock clock{0.0};
  std::vector<double> correlations;
  double synopsis_cost_ms = 2.0;
  double set_cost_ms = 10.0;
  std::vector<std::size_t> processed;

  Algorithm1Trace run(const Algorithm1Config& cfg) {
    return run_algorithm1(
        cfg, clock,
        [this] {
          clock.advance(synopsis_cost_ms);
          return correlations;
        },
        [this](std::size_t g) {
          processed.push_back(g);
          clock.advance(set_cost_ms);
        });
  }
};

TEST(Algorithm1, ProcessesInRankedOrder) {
  Harness h;
  h.correlations = {0.2, 0.9, 0.5};
  Algorithm1Config cfg;
  cfg.deadline_ms = 1000.0;
  const auto trace = h.run(cfg);
  EXPECT_EQ(trace.sets_processed, 3u);
  ASSERT_EQ(h.processed.size(), 3u);
  EXPECT_EQ(h.processed[0], 1u);
  EXPECT_EQ(h.processed[1], 2u);
  EXPECT_EQ(h.processed[2], 0u);
  EXPECT_FALSE(trace.stopped_by_deadline);
}

TEST(Algorithm1, DeadlineCutsStage2) {
  Harness h;
  h.correlations = std::vector<double>(100, 1.0);
  Algorithm1Config cfg;
  cfg.deadline_ms = 35.0;  // synopsis 2ms + 10ms per set
  const auto trace = h.run(cfg);
  // Sets start at t=2,12,22,32; the check at t=42 fails -> 4 sets.
  EXPECT_EQ(trace.sets_processed, 4u);
  EXPECT_TRUE(trace.stopped_by_deadline);
}

TEST(Algorithm1, SynopsisAlwaysProcessedEvenPastDeadline) {
  // Queueing delay alone exceeded the deadline: stage 1 still runs (that
  // is what bounds AccuracyTrader's latency) but no sets are processed.
  Harness h;
  h.clock.set(500.0);
  h.correlations = {0.5, 0.1};
  Algorithm1Config cfg;
  cfg.deadline_ms = 100.0;
  const auto trace = h.run(cfg);
  EXPECT_EQ(trace.sets_processed, 0u);
  EXPECT_TRUE(trace.stopped_by_deadline);
  EXPECT_DOUBLE_EQ(h.clock.elapsed_ms(), 502.0);  // synopsis cost paid
}

TEST(Algorithm1, ImaxBoundsProcessedSets) {
  Harness h;
  h.correlations = std::vector<double>(50, 1.0);
  Algorithm1Config cfg;
  cfg.deadline_ms = 1e9;
  cfg.imax = 7;
  const auto trace = h.run(cfg);
  EXPECT_EQ(trace.sets_processed, 7u);
  EXPECT_FALSE(trace.stopped_by_deadline);
}

TEST(Algorithm1, SetExhaustion) {
  Harness h;
  h.correlations = {0.3, 0.1};
  Algorithm1Config cfg;
  cfg.deadline_ms = 1e9;
  const auto trace = h.run(cfg);
  EXPECT_EQ(trace.sets_processed, 2u);
  EXPECT_FALSE(trace.stopped_by_deadline);
}

TEST(Algorithm1, EmptySynopsis) {
  Harness h;
  h.correlations = {};
  Algorithm1Config cfg;
  const auto trace = h.run(cfg);
  EXPECT_EQ(trace.sets_processed, 0u);
}

TEST(Algorithm1, ElapsedReportedFromClock) {
  Harness h;
  h.correlations = {1.0};
  Algorithm1Config cfg;
  cfg.deadline_ms = 100.0;
  const auto trace = h.run(cfg);
  EXPECT_DOUBLE_EQ(trace.elapsed_ms, 12.0);  // 2ms synopsis + 10ms set
}

TEST(Algorithm1, WallClockRealTimeDeadline) {
  // Real-time smoke test: with a wall clock and a slow improve step, the
  // deadline must stop processing long before all sets are done.
  WallClock clock;
  std::size_t processed = 0;
  Algorithm1Config cfg;
  cfg.deadline_ms = 30.0;
  const auto trace = run_algorithm1(
      cfg, clock,
      [] { return std::vector<double>(1000, 1.0); },
      [&processed](std::size_t) {
        ++processed;
        // ~1ms of spinning per set.
        WallClock w;
        while (w.elapsed_ms() < 1.0) {
        }
      });
  EXPECT_LT(trace.sets_processed, 1000u);
  EXPECT_TRUE(trace.stopped_by_deadline);
  EXPECT_GE(trace.elapsed_ms, 30.0);
  EXPECT_LT(trace.elapsed_ms, 300.0);  // bounded overshoot
}

TEST(Outcome, Defaults) {
  ComponentOutcome o;
  EXPECT_TRUE(o.included);
  EXPECT_EQ(o.sets, 0u);
}

// ---------------------------------------------------------------------------
// ComponentRuntime: the live online module
// ---------------------------------------------------------------------------

TEST(Runtime, CompletesSubmittedJobs) {
  RuntimeConfig cfg;
  cfg.algorithm.deadline_ms = 50.0;
  ComponentRuntime runtime(cfg);
  std::atomic<int> completions{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(runtime.submit(
        [] { return std::vector<double>{1.0, 0.5}; },
        [](std::size_t) {},
        [&completions](const JobResult& r) {
          EXPECT_EQ(r.trace.sets_processed, 2u);
          EXPECT_GE(r.total_latency_ms, r.queue_wait_ms);
          completions++;
        }));
  }
  runtime.shutdown();
  EXPECT_EQ(completions.load(), 20);
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.accepted, 20u);
  EXPECT_EQ(stats.completed, 20u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(runtime.latency_snapshot().count(), 20u);
}

TEST(Runtime, QueueWaitCountsAgainstDeadline) {
  // Flood a slow runtime: late jobs have burned their budget in the queue,
  // so they process 0 sets — yet every job still completes (stage 1 always
  // runs), which is the latency-bounding property.
  RuntimeConfig cfg;
  cfg.algorithm.deadline_ms = 10.0;
  ComponentRuntime runtime(cfg);
  std::atomic<int> zero_set_jobs{0};
  std::atomic<int> completions{0};
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(runtime.submit(
        [] { return std::vector<double>(100, 1.0); },
        [](std::size_t) {
          common::Stopwatch w;  // ~2ms per set
          while (w.elapsed_ms() < 2.0) {
          }
        },
        [&](const JobResult& r) {
          completions++;
          if (r.trace.sets_processed == 0) zero_set_jobs++;
        }));
  }
  runtime.shutdown();
  EXPECT_EQ(completions.load(), 30);
  EXPECT_GT(zero_set_jobs.load(), 10);  // most of the flood hit the deadline
}

TEST(Runtime, RejectsWhenQueueFull) {
  RuntimeConfig cfg;
  cfg.queue_capacity = 2;
  cfg.algorithm.deadline_ms = 1000.0;
  ComponentRuntime runtime(cfg);
  std::atomic<bool> release{false};
  // Block the worker with one long job, then overfill the queue.
  runtime.submit(
      [&release] {
        while (!release.load()) {
        }
        return std::vector<double>{};
      },
      [](std::size_t) {});
  // Give the worker a moment to pick up the blocking job.
  common::Stopwatch w;
  while (runtime.pending() > 0 && w.elapsed_ms() < 1000.0) {
  }
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    if (runtime.submit([] { return std::vector<double>{}; },
                       [](std::size_t) {})) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(rejected, 8);
  release = true;
  runtime.shutdown();
  EXPECT_EQ(runtime.stats().rejected, 8u);
}

TEST(Runtime, SubmitAfterShutdownRejected) {
  RuntimeConfig cfg;
  ComponentRuntime runtime(cfg);
  runtime.shutdown();
  EXPECT_FALSE(runtime.submit([] { return std::vector<double>{}; },
                              [](std::size_t) {}));
}

TEST(Runtime, DrainsQueueOnShutdown) {
  RuntimeConfig cfg;
  cfg.algorithm.deadline_ms = 1000.0;
  std::atomic<int> done{0};
  {
    ComponentRuntime runtime(cfg);
    for (int i = 0; i < 50; ++i) {
      runtime.submit([] { return std::vector<double>{0.1}; },
                     [](std::size_t) {},
                     [&done](const JobResult&) { done++; });
    }
    // Destructor must drain everything.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(Runtime, ConcurrentShutdownIsSafe) {
  // Regression (found by the thread-safety annotation pass): two threads
  // calling shutdown() used to race to worker_.join() — joining the same
  // std::thread twice is undefined behavior. Exactly one caller joins
  // now; the others block until the worker is down, so every caller still
  // observes a fully drained runtime on return.
  RuntimeConfig cfg;
  cfg.algorithm.deadline_ms = 1000.0;
  ComponentRuntime runtime(cfg);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(runtime.submit([] { return std::vector<double>{0.5}; },
                               [](std::size_t) {},
                               [&done](const JobResult&) { done++; }));
  }
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t)
    callers.emplace_back([&runtime] { runtime.shutdown(); });
  for (auto& th : callers) th.join();
  EXPECT_EQ(done.load(), 10);  // drained before any shutdown() returned
  EXPECT_FALSE(runtime.submit([] { return std::vector<double>{}; },
                              [](std::size_t) {}));
}

// ---------------------------------------------------------------------------
// FanOutCoordinator: the in-process deployment topology
// ---------------------------------------------------------------------------

TEST(FanOut, MergerFiresOnceWithAllComponents) {
  RuntimeConfig cfg;
  cfg.algorithm.deadline_ms = 100.0;
  FanOutCoordinator coord(cfg, 4);
  std::promise<FanOutResult> merged;
  auto fut = merged.get_future();
  const auto accepted = coord.dispatch(
      [](std::size_t comp) {
        return std::vector<double>(comp + 1, 1.0);  // comp c has c+1 groups
      },
      [](std::size_t, std::size_t) {},
      [&merged](const FanOutResult& r) { merged.set_value(r); });
  EXPECT_EQ(accepted, 4u);
  const auto result = fut.get();
  ASSERT_EQ(result.components.size(), 4u);
  EXPECT_EQ(result.accepted_count(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(result.components[c].accepted);
    EXPECT_EQ(result.components[c].job.trace.sets_processed, c + 1);
  }
  EXPECT_GE(result.latency_ms, 0.0);
  coord.shutdown();
}

TEST(FanOut, ManyConcurrentRequests) {
  RuntimeConfig cfg;
  cfg.algorithm.deadline_ms = 50.0;
  FanOutCoordinator coord(cfg, 3);
  std::atomic<int> merges{0};
  std::atomic<int> subops{0};
  for (int r = 0; r < 100; ++r) {
    coord.dispatch(
        [&subops](std::size_t) {
          subops++;
          return std::vector<double>{0.5};
        },
        [](std::size_t, std::size_t) {},
        [&merges](const FanOutResult& res) {
          EXPECT_EQ(res.accepted_count(), 3u);
          merges++;
        });
  }
  coord.shutdown();
  EXPECT_EQ(merges.load(), 100);
  EXPECT_EQ(subops.load(), 300);
}

TEST(FanOut, ShedComponentsReportedNotAccepted) {
  RuntimeConfig cfg;
  cfg.algorithm.deadline_ms = 1000.0;
  cfg.queue_capacity = 1;
  FanOutCoordinator coord(cfg, 2);
  // Block both workers.
  std::atomic<bool> release{false};
  std::atomic<int> merges{0};
  coord.dispatch(
      [&release](std::size_t) {
        while (!release.load()) {
        }
        return std::vector<double>{};
      },
      [](std::size_t, std::size_t) {},
      [&merges](const FanOutResult&) { merges++; });
  // Wait until both runtimes picked up their blocking job.
  common::Stopwatch w;
  while ((coord.component(0).pending() > 0 ||
          coord.component(1).pending() > 0) &&
         w.elapsed_ms() < 1000.0) {
  }
  // Fill the queues (capacity 1 each).
  coord.dispatch([](std::size_t) { return std::vector<double>{}; },
                 [](std::size_t, std::size_t) {},
                 [&merges](const FanOutResult&) { merges++; });
  // Third dispatch: everything sheds; merger still fires, inline.
  std::atomic<bool> shed_merge_fired{false};
  coord.dispatch([](std::size_t) { return std::vector<double>{}; },
                 [](std::size_t, std::size_t) {},
                 [&shed_merge_fired](const FanOutResult& r) {
                   EXPECT_EQ(r.accepted_count(), 0u);
                   shed_merge_fired = true;
                 });
  EXPECT_TRUE(shed_merge_fired.load());
  release = true;
  coord.shutdown();
  EXPECT_EQ(merges.load(), 2);
}

TEST(FanOut, QueueingCountsAgainstEveryComponentDeadline) {
  // Flood a 2-component fan-out whose improve step is slow: late requests
  // must process fewer sets, but every merger fires.
  RuntimeConfig cfg;
  cfg.algorithm.deadline_ms = 15.0;
  FanOutCoordinator coord(cfg, 2);
  std::atomic<int> merges{0};
  std::atomic<std::uint64_t> first_sets{0}, last_sets{0};
  const int n = 20;
  for (int r = 0; r < n; ++r) {
    coord.dispatch(
        [](std::size_t) { return std::vector<double>(50, 1.0); },
        [](std::size_t, std::size_t) {
          common::Stopwatch w;
          while (w.elapsed_ms() < 1.0) {
          }
        },
        [&, r](const FanOutResult& res) {
          std::uint64_t sets = 0;
          for (const auto& c : res.components)
            sets += c.job.trace.sets_processed;
          if (r == 0) first_sets = sets;
          if (r == n - 1) last_sets = sets;
          merges++;
        });
  }
  coord.shutdown();
  EXPECT_EQ(merges.load(), n);
  EXPECT_GT(first_sets.load(), last_sets.load());
}

// Parameterized consistency: sets_processed equals the analytic count for
// a grid of deadlines.
class Algorithm1Deadlines : public ::testing::TestWithParam<double> {};

TEST_P(Algorithm1Deadlines, AnalyticSetCount) {
  const double deadline = GetParam();
  Harness h;
  h.correlations = std::vector<double>(1000, 1.0);
  Algorithm1Config cfg;
  cfg.deadline_ms = deadline;
  const auto trace = h.run(cfg);
  // Stage 2 starts a set whenever elapsed < deadline; elapsed before set i
  // is 2 + 10*i.
  std::size_t expect = 0;
  while (expect < 1000 && 2.0 + 10.0 * static_cast<double>(expect) < deadline)
    ++expect;
  EXPECT_EQ(trace.sets_processed, expect) << "deadline " << deadline;
}

INSTANTIATE_TEST_SUITE_P(Grid, Algorithm1Deadlines,
                         ::testing::Values(1.0, 2.0, 2.5, 12.0, 50.0, 102.0,
                                           1000.0));

}  // namespace
}  // namespace at::core
