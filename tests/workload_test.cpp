// Workload generator tests: rating cluster structure, corpus topicality,
// diurnal profile shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "services/recommender/cf.h"
#include "sim/arrivals.h"
#include "sim/interference.h"
#include "workload/corpus.h"
#include "workload/diurnal.h"
#include "workload/ratings.h"
#include "workload/swim.h"

namespace at::workload {
namespace {

TEST(Ratings, ShapesMatchConfig) {
  RatingConfig cfg;
  cfg.num_components = 3;
  cfg.users_per_component = 50;
  cfg.num_items = 40;
  RatingWorkloadGen gen(cfg);
  const auto wl = gen.generate(10, 2);
  ASSERT_EQ(wl.subsets.size(), 3u);
  for (const auto& s : wl.subsets) {
    EXPECT_EQ(s.rows(), 50u);
    EXPECT_EQ(s.cols(), 40u);
  }
  EXPECT_EQ(wl.requests.size(), wl.actuals.size());
  EXPECT_GT(wl.requests.size(), 0u);
  EXPECT_LE(wl.requests.size(), 20u);
}

TEST(Ratings, ValuesWithinRange) {
  RatingConfig cfg;
  cfg.users_per_component = 30;
  cfg.num_components = 1;
  RatingWorkloadGen gen(cfg);
  const auto wl = gen.generate(5, 1);
  for (std::uint32_t u = 0; u < wl.subsets[0].rows(); ++u) {
    for (const auto& [item, r] : wl.subsets[0].row(u)) {
      EXPECT_GE(r, cfg.min_rating);
      EXPECT_LE(r, cfg.max_rating);
      if (cfg.integer_ratings) {
        EXPECT_DOUBLE_EQ(r, std::round(r));
      }
    }
  }
}

TEST(Ratings, RatingsPerUserWithinBounds) {
  RatingConfig cfg;
  cfg.num_components = 1;
  cfg.users_per_component = 40;
  cfg.ratings_per_user_min = 20;
  cfg.ratings_per_user_max = 30;
  cfg.num_items = 200;
  RatingWorkloadGen gen(cfg);
  const auto wl = gen.generate(0, 0);
  for (std::uint32_t u = 0; u < wl.subsets[0].rows(); ++u) {
    const auto n = wl.subsets[0].row(u).size();
    EXPECT_GE(n, 20u);
    EXPECT_LE(n, 30u);
  }
}

TEST(Ratings, DeterministicForSeed) {
  RatingConfig cfg;
  cfg.num_components = 1;
  cfg.users_per_component = 20;
  RatingWorkloadGen a(cfg), b(cfg);
  const auto wa = a.generate(3, 1);
  const auto wb = b.generate(3, 1);
  ASSERT_EQ(wa.subsets[0].rows(), wb.subsets[0].rows());
  for (std::uint32_t u = 0; u < wa.subsets[0].rows(); ++u)
    EXPECT_EQ(wa.subsets[0].row(u), wb.subsets[0].row(u));
}

TEST(Ratings, ClusterStructureIsDetectable) {
  // Same-cluster users must correlate far more than random pairs — the
  // property the whole synopsis approach rests on. We detect clusters via
  // the generator's determinism: users are assigned clusters uniformly, so
  // instead we verify the *distribution* of pairwise Pearson weights is
  // bimodal-ish: the top decile of |w| should be much larger than median.
  RatingConfig cfg;
  cfg.num_components = 1;
  cfg.users_per_component = 80;
  cfg.num_clusters = 4;
  cfg.num_items = 60;
  cfg.ratings_per_user_min = 40;
  cfg.ratings_per_user_max = 50;
  RatingWorkloadGen gen(cfg);
  const auto wl = gen.generate(0, 0);
  const auto& rows = wl.subsets[0];
  std::vector<double> weights;
  for (std::uint32_t a = 0; a < 40; ++a) {
    for (std::uint32_t b = a + 1; b < 40; ++b) {
      const double ma = reco::vector_mean(rows.row(a));
      const double mb = reco::vector_mean(rows.row(b));
      weights.push_back(
          std::abs(reco::pearson_weight(rows.row(a), ma, rows.row(b), mb)));
    }
  }
  std::sort(weights.begin(), weights.end());
  const double median = weights[weights.size() / 2];
  const double p90 = weights[weights.size() * 9 / 10];
  EXPECT_GT(p90, 0.5);
  EXPECT_GT(p90, median * 1.5);
}

TEST(Ratings, RequestsHoldOutTargets) {
  RatingConfig cfg;
  cfg.num_components = 1;
  RatingWorkloadGen gen(cfg);
  const auto wl = gen.generate(20, 3);
  for (std::size_t r = 0; r < wl.requests.size(); ++r) {
    const auto& req = wl.requests[r];
    // The target item must not be present in the request context.
    EXPECT_DOUBLE_EQ(synopsis::value_at(req.ratings, req.target_item), 0.0);
    EXPECT_GE(wl.actuals[r], cfg.min_rating);
    EXPECT_LE(wl.actuals[r], cfg.max_rating);
  }
}

TEST(Corpus, ShapesMatchConfig) {
  CorpusConfig cfg;
  cfg.num_components = 2;
  cfg.docs_per_component = 30;
  cfg.vocab_size = 300;
  CorpusGen gen(cfg);
  const auto wl = gen.generate(15);
  ASSERT_EQ(wl.shards.size(), 2u);
  EXPECT_EQ(wl.shards[0].rows(), 30u);
  EXPECT_EQ(wl.queries.size(), 15u);
  for (const auto& q : wl.queries) {
    EXPECT_GE(q.terms.size(), cfg.query_terms_min);
    EXPECT_LE(q.terms.size(), cfg.query_terms_max);
    std::set<std::uint32_t> uniq(q.terms.begin(), q.terms.end());
    EXPECT_EQ(uniq.size(), q.terms.size());  // no duplicate terms
  }
}

TEST(Corpus, DocLengthBounds) {
  CorpusConfig cfg;
  cfg.num_components = 1;
  cfg.docs_per_component = 40;
  cfg.doc_len_min = 30;
  cfg.doc_len_max = 60;
  CorpusGen gen(cfg);
  const auto wl = gen.generate(0);
  for (std::uint32_t d = 0; d < wl.shards[0].rows(); ++d) {
    double len = 0.0;
    for (const auto& [t, c] : wl.shards[0].row(d)) len += c;
    EXPECT_GE(len, 30.0);
    EXPECT_LE(len, 60.0);
  }
}

TEST(Corpus, QueriesFavorTopicalDocs) {
  // A topic-focused query must score same-topic docs higher than random
  // docs on average — checked indirectly: at least one doc contains every
  // query term for most queries.
  CorpusConfig cfg;
  cfg.num_components = 1;
  cfg.docs_per_component = 200;
  cfg.num_topics = 6;
  cfg.topic_mix = 0.8;
  CorpusGen gen(cfg);
  const auto wl = gen.generate(30);
  std::size_t matched = 0;
  for (const auto& q : wl.queries) {
    bool any = false;
    for (std::uint32_t d = 0; d < wl.shards[0].rows() && !any; ++d) {
      bool all = true;
      for (auto t : q.terms)
        all = all && synopsis::value_at(wl.shards[0].row(d), t) > 0.0;
      any = all;
    }
    matched += any;
  }
  EXPECT_GT(matched, wl.queries.size() / 2);
}

TEST(Corpus, DeterministicForSeed) {
  CorpusConfig cfg;
  cfg.num_components = 1;
  cfg.docs_per_component = 10;
  CorpusGen a(cfg), b(cfg);
  const auto wa = a.generate(5);
  const auto wb = b.generate(5);
  for (std::uint32_t d = 0; d < 10; ++d)
    EXPECT_EQ(wa.shards[0].row(d), wb.shards[0].row(d));
  for (std::size_t q = 0; q < 5; ++q)
    EXPECT_EQ(wa.queries[q].terms, wb.queries[q].terms);
}

TEST(Diurnal, AnchorsAndScaling) {
  DiurnalProfile p(100.0);
  EXPECT_DOUBLE_EQ(p.peak_rate(), 100.0);
  // Peak hour anchor is 1.0 -> instantaneous rate hits 100 at hour 21.
  EXPECT_NEAR(p.rate_at(21.0 * 3600.0), 100.0, 1e-9);
  EXPECT_THROW(DiurnalProfile(0.0), std::invalid_argument);
}

TEST(Diurnal, Hour9RampsUp) {
  DiurnalProfile p(50.0);
  const double start = p.rate_in_hour(9, 0.0);
  const double mid = p.rate_in_hour(9, 1800.0);
  const double end = p.rate_in_hour(9, 3599.0);
  EXPECT_LT(start, mid);
  EXPECT_LT(mid, end);
}

TEST(Diurnal, Hour10Steady) {
  DiurnalProfile p(50.0);
  const double start = p.rate_in_hour(10, 0.0);
  const double end = p.rate_in_hour(10, 3599.0);
  EXPECT_NEAR(end / start, 1.0, 0.1);  // within 10%
}

TEST(Diurnal, Hour24Decays) {
  DiurnalProfile p(50.0);
  EXPECT_GT(p.rate_in_hour(24, 0.0), p.rate_in_hour(24, 3599.0) * 1.3);
}

TEST(Diurnal, NightTroughBelowDayPlateau) {
  DiurnalProfile p(50.0);
  EXPECT_LT(p.hourly_mean(4), p.hourly_mean(15) * 0.3);
}

TEST(Diurnal, HourlyMeansMatchRateIntegral) {
  DiurnalProfile p(80.0);
  for (std::size_t h : {3u, 9u, 12u, 21u, 24u}) {
    // Trapezoid of a linear segment = average of endpoints.
    const double expect =
        0.5 * (p.rate_in_hour(h, 0.0) + p.rate_in_hour(h, 3600.0 - 1e-9));
    EXPECT_NEAR(p.hourly_mean(h), expect, 0.05 * expect + 1e-9);
  }
  EXPECT_EQ(p.hourly_means().size(), 24u);
}

TEST(Diurnal, WrapsAroundMidnight) {
  DiurnalProfile p(10.0);
  EXPECT_NEAR(p.rate_at(86400.0 + 100.0), p.rate_at(100.0), 1e-9);
  EXPECT_NEAR(p.rate_at(-3600.0), p.rate_at(82800.0), 1e-9);
}

TEST(Swim, JobsWithinConfiguredBounds) {
  SwimConfig cfg;
  const auto jobs = generate_swim_trace(cfg, 4, 600.0, 9);
  ASSERT_FALSE(jobs.empty());
  for (const auto& j : jobs) {
    EXPECT_GE(j.input_mb, cfg.min_size_mb);
    EXPECT_LE(j.input_mb, cfg.max_size_mb);
    EXPECT_LT(j.interval.node, 4u);
    EXPECT_LT(j.interval.start_s, 600.0);
    EXPECT_GT(j.interval.end_s, j.interval.start_s);
    EXPECT_GE(j.interval.end_s - j.interval.start_s, cfg.min_duration_s);
    if (j.cpu_bound) {
      EXPECT_GE(j.interval.factor, cfg.cpu_slowdown_min);
      EXPECT_LE(j.interval.factor, cfg.cpu_slowdown_max);
    } else {
      EXPECT_GE(j.interval.factor, cfg.io_slowdown_min);
      EXPECT_LE(j.interval.factor, cfg.io_slowdown_max);
    }
  }
}

TEST(Swim, RateApproximatelyConfigured) {
  SwimConfig cfg;
  cfg.jobs_per_node_per_min = 6.0;
  // Long horizon so the mean converges despite job-duration gaps.
  const auto jobs = generate_swim_trace(cfg, 2, 7200.0, 11);
  const double per_node_per_min =
      static_cast<double>(jobs.size()) / 2.0 / 120.0;
  // Jobs cannot overlap on a node, so the observed rate is slightly below
  // the nominal arrival rate.
  EXPECT_GT(per_node_per_min, 2.0);
  EXPECT_LE(per_node_per_min, 6.5);
}

TEST(Swim, HeavyTailPresent) {
  SwimConfig cfg;
  const auto jobs = generate_swim_trace(cfg, 8, 3600.0, 13);
  double max_mb = 0.0, median_count = 0.0;
  for (const auto& j : jobs) {
    max_mb = std::max(max_mb, j.input_mb);
    median_count += (j.input_mb < 128.0);
  }
  EXPECT_GT(max_mb, 1024.0);  // multi-GB stragglers exist
  EXPECT_GT(median_count / static_cast<double>(jobs.size()), 0.5);
}

TEST(Swim, NoOverlapPerNodeAndDeterministic) {
  SwimConfig cfg;
  const auto a = generate_swim_trace(cfg, 3, 900.0, 17);
  const auto b = generate_swim_trace(cfg, 3, 900.0, 17);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].interval.start_s, b[i].interval.start_s);
  }
  std::array<double, 3> last_end{0.0, 0.0, 0.0};
  for (const auto& j : a) {
    EXPECT_GE(j.interval.start_s, last_end[j.interval.node]);
    last_end[j.interval.node] = j.interval.end_s;
  }
}

TEST(Swim, DrivesInterferenceTimeline) {
  SwimConfig cfg;
  const auto jobs = generate_swim_trace(cfg, 2, 300.0, 19);
  sim::InterferenceTimeline timeline(to_interference(jobs), 2);
  // Inside any job interval the slowdown equals the job's factor.
  for (const auto& j : jobs) {
    const double mid = 0.5 * (j.interval.start_s + j.interval.end_s);
    EXPECT_DOUBLE_EQ(timeline.slowdown(j.interval.node, mid),
                     j.interval.factor)
        << "node " << j.interval.node << " t " << mid;
  }
  // Far beyond the trace horizon there is no interference.
  EXPECT_DOUBLE_EQ(timeline.slowdown(0, 1e7), 1.0);
}

TEST(Diurnal, DrivesNhppWithinBounds) {
  DiurnalProfile p(30.0);
  common::Rng rng(5);
  const auto arrivals = sim::nhpp_arrivals(
      [&p](double t) { return p.rate_in_hour(9, t); }, p.peak_rate(),
      3600.0, rng);
  // Hour 9 averages ~0.5 * peak -> ~54k/3600... just sanity-check density.
  const double empirical = static_cast<double>(arrivals.size()) / 3600.0;
  EXPECT_NEAR(empirical, p.hourly_mean(9), p.hourly_mean(9) * 0.15);
}

}  // namespace
}  // namespace at::workload
